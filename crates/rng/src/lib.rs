//! A small deterministic PRNG with the subset of the `rand` API this
//! workspace uses.
//!
//! The build must work with no network and no crates.io registry, so the
//! external `rand` crate is off the table. Everything the repo needs from
//! it is seeded uniform draws — synthetic weights, samplers, test
//! matrices — which xoshiro256** (Blackman & Vigna) provides with
//! excellent statistical quality and ~4 ns per draw.
//!
//! Sequences are stable across platforms and compiler versions: the
//! generator is pure integer arithmetic and the float conversion uses the
//! standard 53-bit (or 24-bit) mantissa-fill construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seeded xoshiro256** generator, API-compatible with the workspace's
/// former `rand::rngs::StdRng` usage (`seed_from_u64`, `gen_range`).
///
/// # Example
///
/// ```
/// use zllm_rng::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let x = rng.gen_range(0.0f32..1.0);
/// assert!((0.0..1.0).contains(&x));
/// // Same seed, same sequence.
/// let mut again = StdRng::seed_from_u64(7);
/// assert_eq!(again.gen_range(0.0f32..1.0), x);
/// ```
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded, as
    /// the xoshiro reference implementation recommends).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from a range, for every numeric type the workspace
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform f64 in `[0, 1)` with 53 random mantissa bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform f32 in `[0, 1)` with 24 random mantissa bits.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A bool that is `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// An unbiased uniform integer in `[0, bound)` (Lemire's method with
    /// rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection-sample the biased tail away.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Range types [`StdRng::gen_range`] accepts.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one value.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (a as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f32()
    }
}

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl UniformRange for std::ops::RangeInclusive<f32> {
    type Output = f32;
    fn sample(self, rng: &mut StdRng) -> f32 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        a + (b - a) * rng.gen_f32()
    }
}

impl UniformRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        a + (b - a) * rng.gen_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
            let w = rng.gen_range(0.0f64..1e-3);
            assert!((0.0..1e-3).contains(&w));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let _ = StdRng::seed_from_u64(0).gen_range(3u32..3);
    }
}
