//! The compact interleaved model-weight arrangement of Fig. 4A, plus the
//! alternative layouts it is evaluated against.
//!
//! A quantized linear layer consists of 4-bit codes plus per-group FP16
//! scales and 4-bit zero points. Fetching the metadata "group by group"
//! issues tiny scattered reads; staging a whole layer's metadata on-chip
//! overflows BRAM. The paper's format interleaves metadata with the codes
//! so the *entire layer* streams as one consecutive burst: each
//! *superblock* packs one zero-point beat, then the scale beats, then the
//! weight beats of as many groups as one zero beat covers.
//!
//! With a 512-bit beat, 4-bit codes and groups of 128 this gives
//! `1 (zeros) + 4 (scales) + 128 (weights) = 133` beats per 128 groups —
//! a 3.76 % metadata overhead and an on-chip metadata buffer of just five
//! beats.

use crate::beat::{Beat, BEAT_BYTES};
use crate::burst::BurstDescriptor;
use zllm_fp16::F16;
use zllm_quant::group::QuantizedTensor;

/// Geometry of the interleaved weight format.
///
/// # Example
///
/// ```
/// use zllm_layout::weight::WeightFormat;
///
/// let fmt = WeightFormat::kv260();
/// assert_eq!(fmt.superblock_beats(), 133);
/// assert!((fmt.metadata_fraction() - 5.0 / 133.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeightFormat {
    /// Bus transaction width in bits (512 for the merged 4×128-bit stream).
    pub bus_bits: usize,
    /// Weight/zero-point code width in bits.
    pub weight_bits: u32,
    /// Elements per quantization group.
    pub group_size: usize,
}

impl WeightFormat {
    /// The accelerator's native geometry: 512-bit beats, W4, groups of 128.
    pub const fn kv260() -> WeightFormat {
        WeightFormat {
            bus_bits: 512,
            weight_bits: 4,
            group_size: 128,
        }
    }

    /// The geometry as enumerated in the paper's Fig. 4A prose (64 weights
    /// or 16 scales per transaction, i.e. 256-bit transactions).
    pub const fn paper_fig4() -> WeightFormat {
        WeightFormat {
            bus_bits: 256,
            weight_bits: 4,
            group_size: 128,
        }
    }

    /// Creates a format, validating divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics unless `bus_bits` is a multiple of 16, `weight_bits` divides
    /// `bus_bits`, and a group's codes fill a whole number of beats.
    pub fn new(bus_bits: usize, weight_bits: u32, group_size: usize) -> WeightFormat {
        assert!(
            bus_bits.is_multiple_of(16),
            "bus must carry whole FP16 scales"
        );
        assert!(
            bus_bits.is_multiple_of(weight_bits as usize),
            "weight codes must pack the bus exactly"
        );
        let group_bits = group_size * weight_bits as usize;
        assert!(
            group_bits.is_multiple_of(bus_bits),
            "a group's codes must fill a whole number of beats"
        );
        WeightFormat {
            bus_bits,
            weight_bits,
            group_size,
        }
    }

    /// Weight codes per beat.
    pub fn weights_per_beat(&self) -> usize {
        self.bus_bits / self.weight_bits as usize
    }

    /// Zero points per beat (same width as weight codes).
    pub fn zeros_per_beat(&self) -> usize {
        self.weights_per_beat()
    }

    /// FP16 scales per beat.
    pub fn scales_per_beat(&self) -> usize {
        self.bus_bits / 16
    }

    /// Groups covered by one superblock (one full zero-point beat).
    pub fn groups_per_superblock(&self) -> usize {
        self.zeros_per_beat()
    }

    /// Scale beats per superblock.
    pub fn scale_beats_per_superblock(&self) -> usize {
        self.groups_per_superblock()
            .div_ceil(self.scales_per_beat())
    }

    /// Weight beats per group.
    pub fn weight_beats_per_group(&self) -> usize {
        self.group_size * self.weight_bits as usize / self.bus_bits
    }

    /// Total beats per superblock (zeros + scales + weights).
    pub fn superblock_beats(&self) -> usize {
        1 + self.scale_beats_per_superblock()
            + self.groups_per_superblock() * self.weight_beats_per_group()
    }

    /// Weights per superblock.
    pub fn weights_per_superblock(&self) -> usize {
        self.groups_per_superblock() * self.group_size
    }

    /// Fraction of the stream that is metadata rather than weight codes.
    pub fn metadata_fraction(&self) -> f64 {
        let meta = 1 + self.scale_beats_per_superblock();
        meta as f64 / self.superblock_beats() as f64
    }

    /// Beats needed to stream `n_weights` codes with their metadata
    /// (the final superblock is padded to full size, as the converter pads
    /// the DDR image).
    pub fn beats_for(&self, n_weights: usize) -> usize {
        let supers = n_weights.div_ceil(self.weights_per_superblock());
        supers * self.superblock_beats()
    }

    /// On-chip metadata buffer required while streaming: one zero beat plus
    /// the scale beats of the current superblock, in bytes.
    pub fn on_chip_metadata_bytes(&self) -> usize {
        (1 + self.scale_beats_per_superblock()) * (self.bus_bits / 8)
    }

    /// Metadata bytes a *split-region* layout would have to stage on-chip
    /// to avoid scattered reads: all scales and zeros of a layer with
    /// `n_weights` weights. This is the quantity the paper argues exceeds
    /// BRAM/URAM capacity (§V-B1).
    pub fn staged_metadata_bytes(&self, n_weights: usize) -> usize {
        let groups = n_weights.div_ceil(self.group_size);
        // 16-bit scale + code-width zero point per group, padded to bytes.
        groups * 2 + (groups * self.weight_bits as usize).div_ceil(8)
    }
}

impl Default for WeightFormat {
    fn default() -> WeightFormat {
        WeightFormat::kv260()
    }
}

/// A quantized tensor encoded into the interleaved beat stream.
#[derive(Debug, Clone)]
pub struct EncodedWeights {
    format: WeightFormat,
    n_weights: usize,
    beats: Vec<Beat>,
}

impl EncodedWeights {
    /// The format geometry.
    pub fn format(&self) -> WeightFormat {
        self.format
    }

    /// Number of weight codes encoded (before padding).
    pub fn n_weights(&self) -> usize {
        self.n_weights
    }

    /// The interleaved beat stream.
    pub fn beats(&self) -> &[Beat] {
        &self.beats
    }

    /// Byte size of the stream.
    pub fn bytes(&self) -> usize {
        self.beats.len() * BEAT_BYTES
    }
}

/// Encodes a quantized tensor into the interleaved layout (512-bit beats).
///
/// # Panics
///
/// Panics if the tensor's group size differs from the format's, if the code
/// width is not 4 bits, or if the format is not 512-bit (only the native
/// geometry is materialised; other geometries are used analytically).
pub fn encode(fmt: &WeightFormat, tensor: &QuantizedTensor) -> EncodedWeights {
    assert_eq!(
        fmt.bus_bits, 512,
        "only the 512-bit geometry is materialised"
    );
    assert_eq!(
        fmt.weight_bits, 4,
        "interleaved encoding is defined for 4-bit codes"
    );
    assert_eq!(
        tensor.config().group_size,
        fmt.group_size,
        "tensor group size must match the format"
    );
    assert_eq!(tensor.config().bits, 4, "tensor must be 4-bit quantized");

    let gps = fmt.groups_per_superblock();
    let sb_beats = fmt.superblock_beats();
    let scale_beats = fmt.scale_beats_per_superblock();
    let spb = fmt.scales_per_beat();
    let n_groups = tensor.num_groups();
    let supers = n_groups.div_ceil(gps);
    let mut beats = vec![Beat::zeroed(); supers * sb_beats];

    for sb in 0..supers {
        let base = sb * sb_beats;
        for local_g in 0..gps {
            let g = sb * gps + local_g;
            if g >= n_groups {
                break;
            }
            // Zero points: nibble `local_g` of the superblock's first beat.
            beats[base].set_nibble(local_g, tensor.zeros()[g]);
            // Scales: half `local_g % spb` of scale beat `local_g / spb`.
            beats[base + 1 + local_g / spb].set_half(local_g % spb, tensor.scales()[g].to_bits());
            // Weight codes of group g: one beat (128 nibbles).
            let wbeat = base + 1 + scale_beats + local_g;
            let lo = g * fmt.group_size;
            let hi = (lo + fmt.group_size).min(tensor.len());
            for (n, idx) in (lo..hi).enumerate() {
                beats[wbeat].set_nibble(n, tensor.codes()[idx]);
            }
        }
    }

    EncodedWeights {
        format: *fmt,
        n_weights: tensor.len(),
        beats,
    }
}

/// Decoded view of an interleaved stream: the demultiplexer output (§VI-A).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedWeights {
    /// Weight codes in logical order.
    pub codes: Vec<u8>,
    /// Per-group scales.
    pub scales: Vec<F16>,
    /// Per-group zero points.
    pub zeros: Vec<u8>,
}

/// Decodes an interleaved stream back into codes and metadata — the inverse
/// of [`encode`], i.e. what the MCU's stream demultiplexer does on-chip.
pub fn decode(enc: &EncodedWeights) -> DecodedWeights {
    let fmt = enc.format;
    let gps = fmt.groups_per_superblock();
    let sb_beats = fmt.superblock_beats();
    let scale_beats = fmt.scale_beats_per_superblock();
    let spb = fmt.scales_per_beat();
    let n_groups = enc.n_weights.div_ceil(fmt.group_size);

    let mut codes = Vec::with_capacity(enc.n_weights);
    let mut scales = Vec::with_capacity(n_groups);
    let mut zeros = Vec::with_capacity(n_groups);

    for g in 0..n_groups {
        let sb = g / gps;
        let local_g = g % gps;
        let base = sb * sb_beats;
        zeros.push(enc.beats[base].nibble(local_g));
        scales.push(F16::from_bits(
            enc.beats[base + 1 + local_g / spb].half(local_g % spb),
        ));
        let wbeat = base + 1 + scale_beats + local_g;
        let lo = g * fmt.group_size;
        let hi = (lo + fmt.group_size).min(enc.n_weights);
        for n in 0..(hi - lo) {
            codes.push(enc.beats[wbeat].nibble(n));
        }
    }

    DecodedWeights {
        codes,
        scales,
        zeros,
    }
}

/// The layouts compared in the Fig. 4 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutScheme {
    /// The paper's interleaved arrangement: one long consecutive stream.
    Interleaved,
    /// Zeros, scales and weights in three separate DDR regions, fetched at
    /// superblock granularity in processing order (three rotating streams).
    SplitRegions,
    /// Metadata fetched group-by-group as consumed: one tiny metadata read
    /// followed by one group of weights, repeated (the strawman of §V-B1).
    PerGroupFetch,
}

impl LayoutScheme {
    /// All schemes, in the order the ablation reports them.
    pub const ALL: [LayoutScheme; 3] = [
        LayoutScheme::Interleaved,
        LayoutScheme::SplitRegions,
        LayoutScheme::PerGroupFetch,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            LayoutScheme::Interleaved => "interleaved",
            LayoutScheme::SplitRegions => "split-regions",
            LayoutScheme::PerGroupFetch => "per-group-fetch",
        }
    }
}

impl std::fmt::Display for LayoutScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the read-burst stream for fetching `n_weights` quantized
/// weights under a given scheme. `base` is the start address of the layer's
/// data; split schemes place their regions at `base`, `base + 256 MiB` and
/// `base + 512 MiB` to model the distinct DDR regions a linker would choose.
pub fn fetch_stream(
    scheme: LayoutScheme,
    fmt: &WeightFormat,
    n_weights: usize,
    base: u64,
) -> Vec<BurstDescriptor> {
    const REGION_STRIDE: u64 = 256 << 20;
    let beat = BEAT_BYTES as u64;
    match scheme {
        LayoutScheme::Interleaved => {
            vec![BurstDescriptor::new(base, fmt.beats_for(n_weights) as u32)]
        }
        LayoutScheme::SplitRegions => {
            let zeros_base = base;
            let scales_base = base + REGION_STRIDE;
            let weights_base = base + 2 * REGION_STRIDE;
            let gps = fmt.groups_per_superblock();
            let scale_beats = fmt.scale_beats_per_superblock() as u32;
            let wbeats = (gps * fmt.weight_beats_per_group()) as u32;
            let supers = n_weights.div_ceil(fmt.weights_per_superblock());
            let mut out = Vec::with_capacity(supers * 3);
            for sb in 0..supers as u64 {
                out.push(BurstDescriptor::new(zeros_base + sb * beat, 1));
                out.push(BurstDescriptor::new(
                    scales_base + sb * scale_beats as u64 * beat,
                    scale_beats,
                ));
                out.push(BurstDescriptor::new(
                    weights_base + sb * wbeats as u64 * beat,
                    wbeats,
                ));
            }
            out
        }
        LayoutScheme::PerGroupFetch => {
            let meta_base = base;
            let weights_base = base + 2 * REGION_STRIDE;
            let wbpg = fmt.weight_beats_per_group() as u32;
            let groups = n_weights.div_ceil(fmt.group_size);
            let mut out = Vec::with_capacity(groups * 2);
            for g in 0..groups as u64 {
                // The scale+zero of one group occupy a few bytes; the bus
                // still moves (at least) one beat per read.
                out.push(BurstDescriptor::new(meta_base + g * beat, 1));
                out.push(BurstDescriptor::new(
                    weights_base + g * wbpg as u64 * beat,
                    wbpg,
                ));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::{mean_burst_beats, total_bytes};
    use zllm_quant::group::{GroupQuantConfig, GroupQuantizer};

    fn sample_tensor(n: usize) -> QuantizedTensor {
        let values: Vec<f32> = (0..n)
            .map(|i| ((i * 29) % 257) as f32 / 64.0 - 2.0)
            .collect();
        GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values)
    }

    #[test]
    fn kv260_geometry_matches_paper_ratios() {
        let fmt = WeightFormat::kv260();
        assert_eq!(fmt.weights_per_beat(), 128);
        assert_eq!(fmt.scales_per_beat(), 32);
        assert_eq!(fmt.groups_per_superblock(), 128);
        assert_eq!(fmt.scale_beats_per_superblock(), 4);
        assert_eq!(fmt.weight_beats_per_group(), 1);
        assert_eq!(fmt.superblock_beats(), 133);
        assert_eq!(fmt.weights_per_superblock(), 16384);
        assert_eq!(fmt.on_chip_metadata_bytes(), 5 * 64);
    }

    #[test]
    fn paper_fig4_geometry() {
        // The 256-bit "transaction" reading of Fig. 4A: 64 weights or
        // 16 scales per transaction; one scale transaction covers 2048
        // weights = 32 weight transactions.
        let fmt = WeightFormat::paper_fig4();
        assert_eq!(fmt.weights_per_beat(), 64);
        assert_eq!(fmt.scales_per_beat(), 16);
        assert_eq!(fmt.weight_beats_per_group(), 2);
        let weights_per_scale_beat = fmt.scales_per_beat() * fmt.group_size;
        assert_eq!(weights_per_scale_beat, 2048);
        assert_eq!(weights_per_scale_beat / fmt.weights_per_beat(), 32);
    }

    #[test]
    fn metadata_overhead_is_under_four_percent() {
        let fmt = WeightFormat::kv260();
        assert!((fmt.metadata_fraction() - 5.0 / 133.0).abs() < 1e-12);
        assert!(fmt.metadata_fraction() < 0.04);
    }

    #[test]
    fn beats_for_pads_final_superblock() {
        let fmt = WeightFormat::kv260();
        assert_eq!(fmt.beats_for(0), 0);
        assert_eq!(fmt.beats_for(1), 133);
        assert_eq!(fmt.beats_for(16384), 133);
        assert_eq!(fmt.beats_for(16385), 266);
    }

    #[test]
    fn staged_metadata_exceeds_bram_for_7b_layers() {
        // A 4096×11008 LLaMA2-7B MLP projection has 45M weights; staging
        // its scales+zeros needs ~880 KB — more than the KV260's ~1.3 MB of
        // BRAM+URAM could spare alongside everything else, and over 200×
        // the interleaved format's 320 B working buffer.
        let fmt = WeightFormat::kv260();
        let staged = fmt.staged_metadata_bytes(4096 * 11008);
        assert!(staged > 800 << 10, "staged metadata only {staged} bytes");
        assert!(staged / fmt.on_chip_metadata_bytes() > 200);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample_tensor(16384 * 2 + 300);
        let fmt = WeightFormat::kv260();
        let enc = encode(&fmt, &t);
        assert_eq!(enc.beats().len(), fmt.beats_for(t.len()));
        assert_eq!(enc.n_weights(), t.len());
        let dec = decode(&enc);
        assert_eq!(dec.codes, t.codes());
        assert_eq!(dec.zeros, t.zeros());
        assert_eq!(dec.scales.len(), t.scales().len());
        for (a, b) in dec.scales.iter().zip(t.scales()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn encode_single_group() {
        let t = sample_tensor(128);
        let enc = encode(&WeightFormat::kv260(), &t);
        assert_eq!(enc.beats().len(), 133);
        assert_eq!(enc.bytes(), 133 * 64);
        let dec = decode(&enc);
        assert_eq!(dec.codes.len(), 128);
        assert_eq!(dec.scales.len(), 1);
    }

    #[test]
    #[should_panic(expected = "group size must match")]
    fn encode_rejects_mismatched_group() {
        let values = vec![0.5f32; 64];
        let t = GroupQuantizer::new(GroupQuantConfig::new(64, 4)).quantize(&values);
        let _ = encode(&WeightFormat::kv260(), &t);
    }

    #[test]
    fn fetch_stream_interleaved_is_one_burst() {
        let fmt = WeightFormat::kv260();
        let s = fetch_stream(LayoutScheme::Interleaved, &fmt, 16384 * 4, 0x8000_0000);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].beats as usize, 133 * 4);
    }

    #[test]
    fn fetch_stream_totals_are_comparable_but_burst_lengths_differ() {
        let fmt = WeightFormat::kv260();
        let n = 16384 * 8;
        let inter = fetch_stream(LayoutScheme::Interleaved, &fmt, n, 0);
        let split = fetch_stream(LayoutScheme::SplitRegions, &fmt, n, 0);
        let pergroup = fetch_stream(LayoutScheme::PerGroupFetch, &fmt, n, 0);
        // All schemes move the same weight payload; metadata padding makes
        // per-group slightly larger (a whole beat per group).
        let w_bytes = total_bytes(&fetch_stream(LayoutScheme::Interleaved, &fmt, n, 0));
        assert!(total_bytes(&split) <= w_bytes + (64 << 10));
        assert!(total_bytes(&pergroup) >= w_bytes);
        // The headline difference: mean burst length.
        assert!(mean_burst_beats(&inter) > 500.0);
        assert!(mean_burst_beats(&split) > 40.0 && mean_burst_beats(&split) < 50.0);
        assert!(mean_burst_beats(&pergroup) <= 1.0);
    }

    #[test]
    fn split_stream_rotates_three_regions() {
        let fmt = WeightFormat::kv260();
        let s = fetch_stream(LayoutScheme::SplitRegions, &fmt, 16384 * 2, 0);
        assert_eq!(s.len(), 6);
        // Region bases 256 MiB apart.
        assert!(s[1].addr >= 256 << 20);
        assert!(s[2].addr >= 512 << 20);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(LayoutScheme::Interleaved.to_string(), "interleaved");
        assert_eq!(LayoutScheme::ALL.len(), 3);
    }

    #[test]
    #[should_panic(expected = "whole number of beats")]
    fn format_validates_group_divisibility() {
        let _ = WeightFormat::new(512, 4, 100);
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Encode → decode is the identity for any tensor size.
            #[test]
            fn roundtrip_any_size(
                n in 1usize..40_000,
                seed in proptest::num::u64::ANY,
            ) {
                let values: Vec<f32> = (0..n)
                    .map(|i| (((i as u64).wrapping_mul(seed | 1) >> 16) % 1000) as f32 / 500.0 - 1.0)
                    .collect();
                let t = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
                let enc = encode(&WeightFormat::kv260(), &t);
                let dec = decode(&enc);
                prop_assert_eq!(&dec.codes, t.codes());
                prop_assert_eq!(&dec.zeros, t.zeros());
                for (a, b) in dec.scales.iter().zip(t.scales()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }

            /// The stream length formula matches the materialized stream.
            #[test]
            fn beats_for_matches_encode(n in 1usize..60_000) {
                let values = vec![0.25f32; n];
                let t = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
                let fmt = WeightFormat::kv260();
                let enc = encode(&fmt, &t);
                prop_assert_eq!(enc.beats().len(), fmt.beats_for(n));
            }

            /// Every fetch scheme moves at least the payload bytes and
            /// produces beat-aligned addresses.
            #[test]
            fn fetch_streams_are_well_formed(
                n in 1usize..100_000,
                base in (0u64..(1 << 30)).prop_map(|a| a & !63),
            ) {
                let fmt = WeightFormat::kv260();
                for scheme in LayoutScheme::ALL {
                    let stream = fetch_stream(scheme, &fmt, n, base);
                    let payload = (n as u64 * 4).div_ceil(8);
                    prop_assert!(total_bytes(&stream) >= payload, "{scheme}");
                    for b in &stream {
                        prop_assert_eq!(b.addr % 64, 0, "{} misaligned", scheme);
                    }
                }
            }
        }
    }
}
