//! The KV-cache scale-zero packing FIFO of Fig. 4B.
//!
//! KV-cache quantization metadata is produced on the fly: one 32-bit
//! scale-zero pack per (layer, head, K/V) stream per token. Writing each
//! pack to DDR as it appears would be a 4-byte scattered write — the exact
//! anti-pattern §V-B exists to avoid. Instead the accelerator keeps one
//! 512-bit FIFO element per stream; as inference proceeds head-wise and
//! layer-wise it pops the front element, appends the new pack, and pushes
//! the element back. After 16 tokens every element holds 16 valid packs
//! (a full bus word) and is written back to DDR as one aligned beat.

use crate::beat::Beat;
use std::collections::VecDeque;
use zllm_telemetry::{Counter, MetricsRegistry};

/// Scale-zero packs per 512-bit FIFO element.
pub const PACKS_PER_ELEMENT: usize = Beat::WORDS;

/// One flushed FIFO element: a full beat of 16 packs belonging to one
/// metadata stream, plus which stream and token window it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushedElement {
    /// Stream index (the position in layer/head/KV iteration order).
    pub stream: usize,
    /// First token index covered by this beat.
    pub first_token: u64,
    /// The packed beat.
    pub beat: Beat,
}

/// The scale-zero packing FIFO.
///
/// `streams` is the number of metadata streams per token: for LLaMA2-7B,
/// 32 layers × 32 heads × 2 (K and V) = 2048. The hardware FIFO holds one
/// element per stream; this model replays its exact pop-update-push
/// discipline and emits a [`FlushedElement`] whenever an element fills.
///
/// # Example
///
/// ```
/// use zllm_layout::kv_pack::{KvPackFifo, PACKS_PER_ELEMENT};
///
/// let mut fifo = KvPackFifo::new(4);
/// let mut flushed = Vec::new();
/// for token in 0..PACKS_PER_ELEMENT as u64 {
///     for stream in 0..4 {
///         let pack = (token as u32) << 8 | stream as u32;
///         if let Some(el) = fifo.append(pack) {
///             flushed.push(el);
///         }
///     }
/// }
/// // All four elements filled on the 16th token.
/// assert_eq!(flushed.len(), 4);
/// assert!(flushed.iter().all(|e| e.first_token == 0));
/// ```
#[derive(Debug, Clone)]
pub struct KvPackFifo {
    streams: usize,
    /// Per-stream accumulation state, kept in FIFO order.
    slots: VecDeque<Slot>,
    /// How many packs have been appended in total.
    appended: u64,
    counters: KvPackCounters,
}

/// Telemetry handles for the KV-pack path. Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct KvPackCounters {
    /// Scale-zero packs appended.
    pub packs: Counter,
    /// Full 512-bit beats flushed to DDR.
    pub flushed_beats: Counter,
    /// Partially filled elements drained at end of generation.
    pub partial_flushes: Counter,
}

impl KvPackCounters {
    /// Free-standing counters, not visible in any registry.
    pub fn detached() -> KvPackCounters {
        KvPackCounters {
            packs: Counter::detached(),
            flushed_beats: Counter::detached(),
            partial_flushes: Counter::detached(),
        }
    }

    /// Registers the counter set under `prefix` (e.g. `"kv_pack"` yields
    /// `kv_pack.packs`, `kv_pack.flushed_beats`, ...).
    pub fn register(reg: &mut MetricsRegistry, prefix: &str) -> KvPackCounters {
        KvPackCounters {
            packs: reg.counter(&format!("{prefix}.packs")),
            flushed_beats: reg.counter(&format!("{prefix}.flushed_beats")),
            partial_flushes: reg.counter(&format!("{prefix}.partial_flushes")),
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    stream: usize,
    first_token: u64,
    valid: usize,
    beat: Beat,
}

impl KvPackFifo {
    /// Creates the FIFO with one element per metadata stream.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn new(streams: usize) -> KvPackFifo {
        KvPackFifo::with_counters(streams, KvPackCounters::detached())
    }

    /// Creates the FIFO publishing into the given telemetry handles.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn with_counters(streams: usize, counters: KvPackCounters) -> KvPackFifo {
        assert!(streams > 0, "at least one stream required");
        let slots = (0..streams)
            .map(|stream| Slot {
                stream,
                first_token: 0,
                valid: 0,
                beat: Beat::zeroed(),
            })
            .collect();
        KvPackFifo {
            streams,
            slots,
            appended: 0,
            counters,
        }
    }

    /// The telemetry handles this FIFO publishes into.
    pub fn counters(&self) -> &KvPackCounters {
        &self.counters
    }

    /// Swaps in a different set of telemetry handles, leaving the FIFO
    /// contents untouched. This is the speculative-rollback hook: a
    /// rolled-back FIFO is rebuilt by replaying the retained packs into
    /// a detached twin, and the shared (registered) counters are
    /// re-attached afterwards so the replay itself is not double-counted
    /// as new quantization traffic.
    pub fn attach_counters(&mut self, counters: KvPackCounters) {
        self.counters = counters;
    }

    /// Number of metadata streams (FIFO depth).
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// The token index the next appended pack belongs to.
    pub fn current_token(&self) -> u64 {
        self.appended / self.streams as u64
    }

    /// Appends the next pack in iteration order (the hardware's
    /// pop-update-push). Returns a full beat when the element fills.
    pub fn append(&mut self, pack: u32) -> Option<FlushedElement> {
        let token = self.current_token();
        let mut slot = self.slots.pop_front().expect("fifo is never empty");
        if slot.valid == 0 {
            slot.first_token = token;
        }
        slot.beat.set_word(slot.valid, pack);
        slot.valid += 1;
        self.appended += 1;
        self.counters.packs.inc();

        let flushed = if slot.valid == PACKS_PER_ELEMENT {
            let el = FlushedElement {
                stream: slot.stream,
                first_token: slot.first_token,
                beat: slot.beat,
            };
            slot.valid = 0;
            slot.beat = Beat::zeroed();
            self.counters.flushed_beats.inc();
            Some(el)
        } else {
            None
        };
        self.slots.push_back(slot);
        flushed
    }

    /// Flushes all partially filled elements (end of generation): returns
    /// the beats with their valid pack counts so the caller can mask them.
    pub fn drain_partial(&mut self) -> Vec<(FlushedElement, usize)> {
        let mut out = Vec::new();
        for slot in self.slots.iter_mut() {
            if slot.valid > 0 {
                out.push((
                    FlushedElement {
                        stream: slot.stream,
                        first_token: slot.first_token,
                        beat: slot.beat,
                    },
                    slot.valid,
                ));
                self.counters.partial_flushes.inc();
                slot.valid = 0;
                slot.beat = Beat::zeroed();
            }
        }
        out
    }

    /// Count of DDR write beats this FIFO discipline produces for `tokens`
    /// tokens across all streams (full elements only).
    pub fn write_beats_for(streams: usize, tokens: u64) -> u64 {
        streams as u64 * (tokens / PACKS_PER_ELEMENT as u64)
    }

    /// Count of 4-byte scattered writes the naive discipline would issue.
    pub fn naive_writes_for(streams: usize, tokens: u64) -> u64 {
        streams as u64 * tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_tokens_fill_every_element() {
        let streams = 8;
        let mut fifo = KvPackFifo::new(streams);
        let mut flushed = Vec::new();
        for token in 0..16u64 {
            for s in 0..streams {
                assert_eq!(fifo.current_token(), token);
                if let Some(el) = fifo.append(((token as u32) << 16) | s as u32) {
                    flushed.push(el);
                }
            }
        }
        assert_eq!(flushed.len(), streams);
        for (i, el) in flushed.iter().enumerate() {
            assert_eq!(el.stream, i);
            assert_eq!(el.first_token, 0);
            // Word t of the beat is token t's pack for this stream.
            for t in 0..PACKS_PER_ELEMENT {
                assert_eq!(el.beat.word(t), ((t as u32) << 16) | i as u32);
            }
        }
    }

    #[test]
    fn no_flush_before_sixteenth_token() {
        let mut fifo = KvPackFifo::new(4);
        for token in 0..15u64 {
            for s in 0..4 {
                assert!(fifo.append((token * 4 + s) as u32).is_none());
            }
        }
    }

    #[test]
    fn second_window_restarts_token_base() {
        let mut fifo = KvPackFifo::new(2);
        let mut flushed = Vec::new();
        for token in 0..32u64 {
            for s in 0..2 {
                if let Some(el) = fifo.append((token * 2 + s) as u32) {
                    flushed.push(el);
                }
            }
        }
        assert_eq!(flushed.len(), 4);
        assert_eq!(flushed[0].first_token, 0);
        assert_eq!(flushed[2].first_token, 16);
    }

    #[test]
    fn drain_partial_returns_masked_elements() {
        let mut fifo = KvPackFifo::new(3);
        for token in 0..5u64 {
            for s in 0..3 {
                let _ = fifo.append((token * 3 + s) as u32);
            }
        }
        let partial = fifo.drain_partial();
        assert_eq!(partial.len(), 3);
        for (el, valid) in &partial {
            assert_eq!(*valid, 5);
            assert_eq!(el.first_token, 0);
        }
        // Draining again yields nothing.
        assert!(fifo.drain_partial().is_empty());
    }

    #[test]
    fn write_amplification_accounting() {
        // 1024 tokens, 2048 streams (LLaMA2-7B): the FIFO turns 2M scattered
        // 4-byte writes into 128K aligned 64-byte beats.
        let beats = KvPackFifo::write_beats_for(2048, 1024);
        let naive = KvPackFifo::naive_writes_for(2048, 1024);
        assert_eq!(beats, 2048 * 64);
        assert_eq!(naive, 2048 * 1024);
        assert_eq!(naive / beats, 16);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = KvPackFifo::new(0);
    }

    #[test]
    fn replaying_into_a_detached_twin_preserves_state_without_recounting() {
        let mut reg = MetricsRegistry::new();
        let counters = KvPackCounters::register(&mut reg, "kv_pack");
        let streams = 2;
        let mut live = KvPackFifo::with_counters(streams, counters.clone());
        let packs: Vec<u32> = (0..streams as u32 * 7).collect();
        for &p in &packs {
            let _ = live.append(p);
        }
        let counted = reg.counter_value("kv_pack.packs");

        // Rollback discipline: rebuild by replaying the retained packs
        // into a detached FIFO, then re-attach the shared counters.
        let mut rebuilt = KvPackFifo::new(streams);
        for &p in &packs {
            let _ = rebuilt.append(p);
        }
        rebuilt.attach_counters(counters);
        assert_eq!(
            reg.counter_value("kv_pack.packs"),
            counted,
            "replay must not double-count"
        );
        // The rebuilt FIFO continues exactly where the live one would:
        // same flush timing, same beat contents.
        let mut a = live;
        let mut b = rebuilt;
        for token in 7..16u64 {
            for s in 0..streams as u64 {
                let pack = (token * streams as u64 + s) as u32;
                assert_eq!(a.append(pack), b.append(pack));
            }
        }
    }

    #[test]
    fn counters_track_appends_flushes_and_partials() {
        let mut reg = MetricsRegistry::new();
        let counters = KvPackCounters::register(&mut reg, "kv_pack");
        let streams = 4;
        let mut fifo = KvPackFifo::with_counters(streams, counters);
        for token in 0..20u64 {
            for s in 0..streams {
                let _ = fifo.append((token * streams as u64 + s as u64) as u32);
            }
        }
        let _ = fifo.drain_partial();
        assert_eq!(
            reg.counter_value("kv_pack.packs"),
            Some(20 * streams as u64)
        );
        // 16 of the 20 tokens filled every element once.
        assert_eq!(
            reg.counter_value("kv_pack.flushed_beats"),
            Some(streams as u64)
        );
        // The remaining 4 tokens left every element partially filled.
        assert_eq!(
            reg.counter_value("kv_pack.partial_flushes"),
            Some(streams as u64)
        );
    }
}
