//! Bus-width aligned data arrangement formats and the bare-metal memory map
//! (§V-B and Fig. 1/4 of the paper).
//!
//! Sustained DDR bandwidth depends on *how* data is laid out far more than
//! on how much is moved: large consecutive bursts run near the pin rate,
//! while short scattered reads pay row-activation and bus-turnaround
//! penalties on every access. This crate implements the paper's two layout
//! contributions plus the address map that makes a 7B model fit in 4 GB:
//!
//! * [`weight`] — the interleaved zero-point/scale/weight arrangement of
//!   Fig. 4A that turns an entire quantized linear layer into one long
//!   sequential burst, with the split-region and per-group alternatives
//!   needed for the ablation study.
//! * [`kv_pack`] — the scale-zero packing FIFO of Fig. 4B that batches the
//!   32-bit KV-cache quantization metadata of 16 tokens into full 512-bit
//!   bus words before writing them back to DDR.
//! * [`kv_page`] — the paged KV allocator: fixed-size pack-window-aligned
//!   KV blocks granted on demand, with per-sequence page tables, so
//!   capacity is charged as sequences actually grow instead of at their
//!   worst case.
//! * [`addr_map`] — the bare-metal 4 GB address map of Fig. 1 (lower 2 GB
//!   minus the compiler-reserved megabyte, upper 2 GB) with region
//!   accounting for the 93.3 % capacity-utilization figure.
//! * [`weight_cache`] — layer-granular resident-set accounting against a
//!   DDR weight budget, the mechanism under the tiered (flash-backed)
//!   weight storage's prefetch policies.
//! * [`beat`] / [`burst`] — 512-bit bus beats and burst descriptors, the
//!   currency both the layouts and the DDR simulator trade in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr_map;
pub mod beat;
pub mod burst;
pub mod kv_pack;
pub mod kv_page;
pub mod weight;
pub mod weight_cache;

pub use beat::{Beat, BEAT_BYTES};
pub use burst::BurstDescriptor;
pub use kv_page::PagedKvAllocator;
pub use weight_cache::WeightCache;
