//! Paged KV-cache allocation (the capacity-side dual of Fig. 4B).
//!
//! The contiguous layout provisions every sequence `ctx_capacity` tokens
//! of KV up front, so a short-lived request strands capacity it never
//! touches. Paging carves the same KV space into fixed-size blocks of
//! [`PAGE_TOKEN_QUANTUM`]-aligned tokens and hands them out on demand:
//! each sequence owns a small page table mapping its logical token range
//! onto whichever physical pages were free, and capacity is charged as
//! the sequence actually grows.
//!
//! The page size must be a multiple of the KV scale-zero pack window
//! ([`crate::kv_pack::PACKS_PER_ELEMENT`] = 16 tokens): the packing FIFO
//! flushes one metadata beat per stream per 16-token window, and keeping
//! windows page-aligned means a flush never straddles two pages — the
//! metadata beat stays one aligned burst, exactly the §V-B discipline.

use crate::kv_pack::PACKS_PER_ELEMENT;
use std::collections::BTreeSet;

/// Tokens per page must be a positive multiple of this quantum — the
/// 16-token scale-zero pack window of the KV FIFO.
pub const PAGE_TOKEN_QUANTUM: usize = PACKS_PER_ELEMENT;

/// A paged KV allocator: a pool of physical pages plus one page table
/// per sequence slot.
///
/// Pages are granted smallest-index-first and returned to the pool on
/// release, so replaying the same admit/grow/release trace reproduces
/// the same physical placement — the same determinism discipline the
/// rest of the stack follows.
///
/// # Example
///
/// ```
/// use zllm_layout::kv_page::PagedKvAllocator;
///
/// let mut pool = PagedKvAllocator::new(4, 2, 16);
/// assert_eq!(pool.grow(0), Some(0));
/// assert_eq!(pool.grow(1), Some(1));
/// assert_eq!(pool.grow(0), Some(2));
/// assert_eq!(pool.pages_of(0), &[0, 2]);
/// assert_eq!(pool.release(0), vec![0, 2]);
/// assert_eq!(pool.grow(1), Some(0), "freed pages are reused smallest-first");
/// ```
#[derive(Debug, Clone)]
pub struct PagedKvAllocator {
    page_tokens: usize,
    total_pages: usize,
    free: BTreeSet<usize>,
    tables: Vec<Vec<usize>>,
}

impl PagedKvAllocator {
    /// Creates a pool of `total_pages` physical pages shared by `seqs`
    /// sequence slots, each page holding `page_tokens` tokens of KV.
    ///
    /// # Panics
    ///
    /// Panics if `total_pages` or `seqs` is zero, or `page_tokens` is
    /// not a positive multiple of [`PAGE_TOKEN_QUANTUM`].
    pub fn new(total_pages: usize, seqs: usize, page_tokens: usize) -> PagedKvAllocator {
        assert!(total_pages > 0, "at least one page required");
        assert!(seqs > 0, "at least one sequence slot required");
        assert!(
            page_tokens > 0 && page_tokens.is_multiple_of(PAGE_TOKEN_QUANTUM),
            "page_tokens {page_tokens} must be a positive multiple of {PAGE_TOKEN_QUANTUM}"
        );
        PagedKvAllocator {
            page_tokens,
            total_pages,
            free: (0..total_pages).collect(),
            tables: vec![Vec::new(); seqs],
        }
    }

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.page_tokens
    }

    /// Physical pages in the pool.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages currently unallocated.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Pages currently held across all sequence tables.
    pub fn used_pages(&self) -> usize {
        self.total_pages - self.free.len()
    }

    /// Sequence slots the pool serves.
    pub fn seqs(&self) -> usize {
        self.tables.len()
    }

    /// Pages a context of `tokens` needs (`ceil(tokens / page_tokens)`).
    pub fn pages_needed(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_tokens)
    }

    /// `seq`'s page table: physical page of logical page `p` at index
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn pages_of(&self, seq: usize) -> &[usize] {
        &self.tables[seq]
    }

    /// Grants `seq` one more page (the smallest free physical index),
    /// or `None` when the pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn grow(&mut self, seq: usize) -> Option<usize> {
        assert!(seq < self.tables.len(), "sequence {seq} out of range");
        let page = *self.free.iter().next()?;
        self.free.remove(&page);
        self.tables[seq].push(page);
        Some(page)
    }

    /// Grows `seq`'s table until it covers `tokens` tokens. Returns
    /// `false` (allocating nothing) if the pool cannot supply every
    /// missing page — growth is all-or-nothing so a failed grow never
    /// leaves a sequence holding pages it cannot use.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn grow_to(&mut self, seq: usize, tokens: usize) -> bool {
        assert!(seq < self.tables.len(), "sequence {seq} out of range");
        let needed = self.pages_needed(tokens);
        let have = self.tables[seq].len();
        if needed <= have {
            return true;
        }
        if needed - have > self.free.len() {
            return false;
        }
        for _ in have..needed {
            self.grow(seq).expect("free count checked");
        }
        true
    }

    /// Shrinks `seq`'s table back to exactly the pages a context of
    /// `tokens` needs, returning the freed physical pages in table
    /// order. This is the speculative-decode rollback path: a verify
    /// window grows the table by the transient K-token overhang, and
    /// the rejected suffix hands its pages straight back.
    ///
    /// Shrinking to a token count the table already satisfies (or to a
    /// larger one) frees nothing.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn shrink_to(&mut self, seq: usize, tokens: usize) -> Vec<usize> {
        assert!(seq < self.tables.len(), "sequence {seq} out of range");
        let keep = self.pages_needed(tokens);
        let table = &mut self.tables[seq];
        if keep >= table.len() {
            return Vec::new();
        }
        let freed = table.split_off(keep);
        for &p in &freed {
            assert!(self.free.insert(p), "page {p} double-freed");
        }
        freed
    }

    /// Releases every page `seq` holds back to the pool, returning the
    /// freed physical pages in table order.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn release(&mut self, seq: usize) -> Vec<usize> {
        assert!(seq < self.tables.len(), "sequence {seq} out of range");
        let pages = std::mem::take(&mut self.tables[seq]);
        for &p in &pages {
            assert!(self.free.insert(p), "page {p} double-freed");
        }
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_smallest_free_page_deterministically() {
        let mut pool = PagedKvAllocator::new(3, 2, 16);
        assert_eq!(pool.grow(0), Some(0));
        assert_eq!(pool.grow(1), Some(1));
        assert_eq!(pool.grow(0), Some(2));
        assert_eq!(pool.grow(1), None, "pool exhausted");
        assert_eq!(pool.free_pages(), 0);
        assert_eq!(pool.used_pages(), 3);
        assert_eq!(pool.release(0), vec![0, 2]);
        // Freed pages come back smallest-first regardless of free order.
        assert_eq!(pool.grow(1), Some(0));
        assert_eq!(pool.pages_of(1), &[1, 0]);
    }

    #[test]
    fn grow_to_is_all_or_nothing() {
        let mut pool = PagedKvAllocator::new(2, 2, 16);
        assert!(pool.grow_to(0, 17), "needs 2 pages, 2 free");
        assert_eq!(pool.pages_of(0).len(), 2);
        assert!(!pool.grow_to(1, 16), "pool empty; nothing allocated");
        assert!(pool.pages_of(1).is_empty());
        assert!(pool.grow_to(0, 32), "already covered: trivially true");
    }

    #[test]
    fn pages_needed_rounds_up() {
        let pool = PagedKvAllocator::new(1, 1, 32);
        assert_eq!(pool.pages_needed(0), 0);
        assert_eq!(pool.pages_needed(1), 1);
        assert_eq!(pool.pages_needed(32), 1);
        assert_eq!(pool.pages_needed(33), 2);
    }

    #[test]
    fn shrink_to_frees_exactly_the_rejected_suffix() {
        let mut pool = PagedKvAllocator::new(6, 2, 16);
        assert!(pool.grow_to(0, 80), "5 pages for 80 tokens");
        assert_eq!(pool.pages_of(0), &[0, 1, 2, 3, 4]);
        // Rolling back from 80 to 40 tokens keeps ceil(40/16) = 3 pages.
        assert_eq!(pool.shrink_to(0, 40), vec![3, 4]);
        assert_eq!(pool.pages_of(0), &[0, 1, 2]);
        // Shrinking to a covered (or larger) count is a no-op.
        assert_eq!(pool.shrink_to(0, 48), Vec::<usize>::new());
        assert_eq!(pool.shrink_to(0, 100), Vec::<usize>::new());
        // Freed pages are immediately grantable again, smallest-first.
        assert_eq!(pool.grow(1), Some(3));
        // Shrinking to zero tokens releases the whole table.
        assert_eq!(pool.shrink_to(0, 0), vec![0, 1, 2]);
        assert!(pool.pages_of(0).is_empty());
        assert_eq!(pool.free_pages() + pool.used_pages(), pool.total_pages());
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn page_size_must_align_to_pack_window() {
        let _ = PagedKvAllocator::new(4, 1, 24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sequence_bounds_checked() {
        let mut pool = PagedKvAllocator::new(4, 2, 16);
        let _ = pool.grow(2);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone)]
    enum Op {
        Grow { seq: usize },
        GrowTo { seq: usize, tokens: usize },
        ShrinkTo { seq: usize, tokens: usize },
        Release { seq: usize },
    }

    fn op_strategy(seqs: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..seqs).prop_map(|seq| Op::Grow { seq }),
            (0..seqs, 0usize..200).prop_map(|(seq, tokens)| Op::GrowTo { seq, tokens }),
            (0..seqs, 0usize..200).prop_map(|(seq, tokens)| Op::ShrinkTo { seq, tokens }),
            (0..seqs).prop_map(|seq| Op::Release { seq }),
        ]
    }

    proptest! {
        /// Under random admit/decode/release interleavings: no page is
        /// ever granted twice, tables never alias, release returns
        /// exactly the pages that sequence held, and the pool's total
        /// footprint (pages × page size) never exceeds the budget it
        /// was provisioned with.
        #[test]
        fn paged_allocator_invariants(
            ops in proptest::collection::vec(op_strategy(4), 1..150),
            page_windows in 1usize..4,
            total_pages in 1usize..24,
        ) {
            let page_tokens = page_windows * PAGE_TOKEN_QUANTUM;
            let budget_bytes = (total_pages * page_tokens * 64) as u64;
            let mut pool = PagedKvAllocator::new(total_pages, 4, page_tokens);
            // Shadow model: what each sequence should be holding.
            let mut shadow: Vec<Vec<usize>> = vec![Vec::new(); 4];
            for op in ops {
                match op {
                    Op::Grow { seq } => {
                        if let Some(p) = pool.grow(seq) {
                            shadow[seq].push(p);
                        }
                    }
                    Op::GrowTo { seq, tokens } => {
                        let before = shadow[seq].len();
                        if pool.grow_to(seq, tokens) {
                            shadow[seq] = pool.pages_of(seq).to_vec();
                            prop_assert!(shadow[seq].len() >= before);
                            prop_assert!(
                                shadow[seq].len() >= pool.pages_needed(tokens)
                            );
                        } else {
                            // All-or-nothing: a failed grow changed nothing.
                            prop_assert_eq!(pool.pages_of(seq).len(), before);
                        }
                    }
                    Op::ShrinkTo { seq, tokens } => {
                        // Speculative rollback: the freed pages are
                        // exactly the table's suffix past what the
                        // accepted prefix needs — no more, no less.
                        let keep = pool.pages_needed(tokens).min(shadow[seq].len());
                        let expect: Vec<usize> = shadow[seq][keep..].to_vec();
                        let freed = pool.shrink_to(seq, tokens);
                        prop_assert_eq!(&freed, &expect);
                        shadow[seq].truncate(keep);
                    }
                    Op::Release { seq } => {
                        let freed = pool.release(seq);
                        // Free returns exactly the allocated pages.
                        prop_assert_eq!(&freed, &shadow[seq]);
                        shadow[seq].clear();
                    }
                }
                // Tables match the shadow model and never alias.
                let mut seen = BTreeSet::new();
                for (seq, table) in shadow.iter().enumerate() {
                    prop_assert_eq!(pool.pages_of(seq), table.as_slice());
                    for &p in table {
                        prop_assert!(p < total_pages, "page beyond pool");
                        prop_assert!(seen.insert(p), "page {} aliased", p);
                    }
                }
                // Accounting is conserved and the budget holds.
                prop_assert_eq!(pool.used_pages(), seen.len());
                prop_assert_eq!(pool.free_pages() + pool.used_pages(), total_pages);
                let used_bytes = (pool.used_pages() * page_tokens * 64) as u64;
                prop_assert!(used_bytes <= budget_bytes);
            }
        }

        /// The recycle path specifically: a freed page is reissued
        /// (smallest free index first), a grant never hands out a page
        /// still charged to some table, and cumulative grant/free
        /// accounting balances exactly — so random admit/grow/preempt
        /// churn neither leaks pages nor double-charges them.
        #[test]
        fn freed_pages_recycle_without_leak_or_double_charge(
            ops in proptest::collection::vec(op_strategy(3), 1..200),
            total_pages in 1usize..16,
        ) {
            let mut pool = PagedKvAllocator::new(total_pages, 3, PAGE_TOKEN_QUANTUM);
            // Shadow free set: which physical pages are legal to grant.
            let mut free: BTreeSet<usize> = (0..total_pages).collect();
            let mut granted: u64 = 0;
            let mut freed: u64 = 0;
            for op in ops {
                match op {
                    Op::Grow { seq } => {
                        let expect = free.iter().next().copied();
                        match pool.grow(seq) {
                            Some(p) => {
                                // Reissue is exactly the smallest free
                                // page — including ones freed earlier.
                                prop_assert_eq!(Some(p), expect);
                                prop_assert!(
                                    free.remove(&p),
                                    "page {} granted while still charged", p
                                );
                                granted += 1;
                            }
                            None => prop_assert!(free.is_empty()),
                        }
                    }
                    Op::GrowTo { seq, tokens } => {
                        let before = pool.pages_of(seq).len();
                        if pool.grow_to(seq, tokens) {
                            let table = pool.pages_of(seq).to_vec();
                            for &p in &table[before..] {
                                prop_assert!(
                                    free.remove(&p),
                                    "page {} granted while still charged", p
                                );
                                granted += 1;
                            }
                        }
                    }
                    Op::ShrinkTo { seq, tokens } => {
                        for p in pool.shrink_to(seq, tokens) {
                            prop_assert!(free.insert(p), "page {} freed twice", p);
                            freed += 1;
                        }
                    }
                    Op::Release { seq } => {
                        for p in pool.release(seq) {
                            prop_assert!(free.insert(p), "page {} freed twice", p);
                            freed += 1;
                        }
                    }
                }
                // Every grant is balanced by a hold or a free: nothing
                // is charged twice, nothing is charged and forgotten.
                prop_assert_eq!(granted - freed, pool.used_pages() as u64);
                prop_assert_eq!(free.len(), pool.free_pages());
            }
            // Drain everything: the pool recovers its full capacity.
            for seq in 0..3 {
                freed += pool.release(seq).len() as u64;
            }
            prop_assert_eq!(granted, freed);
            prop_assert_eq!(pool.free_pages(), pool.total_pages());
        }

        /// Speculative-decode accounting: each verify window grows a
        /// sequence by a transient K-token overhang, commits a random
        /// accepted prefix, and rolls the rejected suffix back. Across
        /// random windows the pool conserves pages exactly — rollback
        /// returns precisely the pages the rejected tokens occupied
        /// beyond the accepted prefix, nothing leaks, and nothing is
        /// charged twice.
        #[test]
        fn speculative_windows_conserve_pages(
            windows in proptest::collection::vec((0usize..3, 0usize..9), 1..80),
        ) {
            let total_pages = 24;
            let mut pool = PagedKvAllocator::new(total_pages, 3, PAGE_TOKEN_QUANTUM);
            // Committed context per sequence (tokens actually kept).
            let mut ctx = [0usize; 3];
            for (seq, k) in windows {
                // Draft k tokens: the target verifies k + 1 positions, so
                // the transient footprint covers ctx + 1 + k tokens.
                let want = ctx[seq] + 1 + k;
                if !pool.grow_to(seq, want) {
                    // Pool pressure: retire the fullest sequence and move on,
                    // like the server's preemption path would.
                    let victim = (0..3).max_by_key(|&s| ctx[s]).unwrap();
                    pool.release(victim);
                    ctx[victim] = 0;
                    continue;
                }
                let held = pool.pages_of(seq).len();
                prop_assert_eq!(held, pool.pages_needed(want));
                // Accept a random prefix of the k drafts (the `seq`/`k`
                // pair doubles as the randomness source), emit the bonus
                // token, and roll the rejected suffix back.
                let accepted = if k == 0 { 0 } else { (seq * 31 + k * 7) % (k + 1) };
                let keep = ctx[seq] + 1 + accepted;
                let freed = pool.shrink_to(seq, keep);
                prop_assert_eq!(
                    freed.len(),
                    held - pool.pages_needed(keep),
                    "rollback must return exactly the rejected tokens' pages"
                );
                prop_assert_eq!(pool.pages_of(seq).len(), pool.pages_needed(keep));
                ctx[seq] = keep;
                // Conservation after every window.
                let held_total: usize = (0..3).map(|s| pool.pages_of(s).len()).sum();
                prop_assert_eq!(held_total, pool.used_pages());
                prop_assert_eq!(pool.used_pages() + pool.free_pages(), total_pages);
            }
        }
    }
}
