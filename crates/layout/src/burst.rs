//! Burst descriptors: the interface between layouts and the DDR simulator.
//!
//! A layout's job is to turn a logical fetch (e.g. "the weights of layer 7's
//! gate projection") into a list of `(address, length)` bursts. The DDR
//! model then prices each burst. Long bursts at consecutive addresses win;
//! that is the entire point of §V-B.

/// One contiguous bus transfer: `beats` consecutive 512-bit words starting
/// at byte address `addr`.
///
/// # Example
///
/// ```
/// use zllm_layout::BurstDescriptor;
///
/// let b = BurstDescriptor::new(0x1000, 8);
/// assert_eq!(b.bytes(), 512);
/// assert_eq!(b.end_addr(), 0x1000 + 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BurstDescriptor {
    /// Start byte address (must be beat-aligned for the accelerator's MCU).
    pub addr: u64,
    /// Number of consecutive 512-bit beats.
    pub beats: u32,
    /// `true` for a write (KV cache write-back), `false` for a read.
    pub write: bool,
}

impl BurstDescriptor {
    /// Creates a read burst.
    pub fn new(addr: u64, beats: u32) -> BurstDescriptor {
        BurstDescriptor {
            addr,
            beats,
            write: false,
        }
    }

    /// Creates a write burst.
    pub fn write(addr: u64, beats: u32) -> BurstDescriptor {
        BurstDescriptor {
            addr,
            beats,
            write: true,
        }
    }

    /// Transfer size in bytes.
    pub fn bytes(&self) -> u64 {
        self.beats as u64 * crate::BEAT_BYTES as u64
    }

    /// One-past-the-end byte address.
    pub fn end_addr(&self) -> u64 {
        self.addr + self.bytes()
    }
}

/// Coalesces adjacent same-direction bursts into maximal contiguous bursts,
/// optionally capping the burst length (AXI caps bursts at 256 data beats;
/// at 128-bit port width a 512-bit beat is 4 port beats, so the cap is 64).
///
/// The input order is preserved: only *consecutive* descriptors that extend
/// each other are merged, because the MCU issues commands in stream order.
pub fn coalesce(bursts: &[BurstDescriptor], max_beats: u32) -> Vec<BurstDescriptor> {
    assert!(max_beats > 0, "max_beats must be non-zero");
    let mut out: Vec<BurstDescriptor> = Vec::new();
    for &b in bursts {
        if b.beats == 0 {
            continue;
        }
        if let Some(last) = out.last_mut() {
            if last.write == b.write
                && last.end_addr() == b.addr
                && last.beats + b.beats <= max_beats
            {
                last.beats += b.beats;
                continue;
            }
        }
        // Split descriptors that individually exceed the cap.
        let mut addr = b.addr;
        let mut remaining = b.beats;
        while remaining > 0 {
            let take = remaining.min(max_beats);
            out.push(BurstDescriptor {
                addr,
                beats: take,
                write: b.write,
            });
            addr += take as u64 * crate::BEAT_BYTES as u64;
            remaining -= take;
        }
    }
    out
}

/// Total bytes moved by a stream of bursts.
pub fn total_bytes(bursts: &[BurstDescriptor]) -> u64 {
    bursts.iter().map(BurstDescriptor::bytes).sum()
}

/// Average burst length in beats (0 for an empty stream) — the headline
/// statistic of the data-arrangement experiment.
pub fn mean_burst_beats(bursts: &[BurstDescriptor]) -> f64 {
    if bursts.is_empty() {
        return 0.0;
    }
    bursts.iter().map(|b| b.beats as f64).sum::<f64>() / bursts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let b = BurstDescriptor::new(0, 4);
        assert_eq!(b.bytes(), 256);
        assert_eq!(total_bytes(&[b, BurstDescriptor::write(0x100, 1)]), 320);
    }

    #[test]
    fn coalesce_merges_adjacent() {
        let bursts = [
            BurstDescriptor::new(0, 2),
            BurstDescriptor::new(128, 2),
            BurstDescriptor::new(256, 2),
        ];
        let merged = coalesce(&bursts, 64);
        assert_eq!(merged, vec![BurstDescriptor::new(0, 6)]);
    }

    #[test]
    fn coalesce_respects_gaps_and_direction() {
        let bursts = [
            BurstDescriptor::new(0, 2),
            BurstDescriptor::new(256, 2),   // gap
            BurstDescriptor::write(384, 2), // direction change
        ];
        let merged = coalesce(&bursts, 64);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn coalesce_caps_burst_length() {
        let bursts = [BurstDescriptor::new(0, 150)];
        let merged = coalesce(&bursts, 64);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].beats, 64);
        assert_eq!(merged[1].beats, 64);
        assert_eq!(merged[2].beats, 22);
        assert_eq!(merged[1].addr, 64 * 64);
        assert_eq!(total_bytes(&merged), 150 * 64);
    }

    #[test]
    fn coalesce_drops_empty_bursts() {
        let bursts = [BurstDescriptor::new(0, 0), BurstDescriptor::new(0, 1)];
        let merged = coalesce(&bursts, 64);
        assert_eq!(merged, vec![BurstDescriptor::new(0, 1)]);
    }

    #[test]
    fn mean_burst_statistic() {
        assert_eq!(mean_burst_beats(&[]), 0.0);
        let bursts = [BurstDescriptor::new(0, 2), BurstDescriptor::new(1024, 6)];
        assert_eq!(mean_burst_beats(&bursts), 4.0);
    }
}
