//! Layer-granular resident-set accounting for tiered weight storage.
//!
//! When a model's weights live on flash and only a subset fits the DDR
//! budget, something must track *which* layers are resident and how many
//! bytes they pin. [`WeightCache`] is that mechanism — pure bookkeeping,
//! no policy: it answers "is layer `i` resident", "does layer `i` fit",
//! and "who is least-recently used", and it asserts the byte budget on
//! every insert. Prefetch and eviction *decisions* live behind the
//! `PrefetchPolicy` trait in `zllm-accel`, which drives this cache from
//! the decode schedule.
//!
//! Layers keep their canonical image addresses whether or not they are
//! resident (residency is an accounting overlay, not a re-placement), so
//! schedules stay cacheable and an all-resident cache is bit-identical to
//! not having a tier at all.

/// Resident-set accounting for per-layer weight blocks against a DDR
/// byte budget.
///
/// # Example
///
/// ```
/// use zllm_layout::WeightCache;
///
/// // Three 100-byte layers, budget for two.
/// let mut cache = WeightCache::new(vec![100, 100, 100], 200);
/// cache.insert(0);
/// cache.insert(1);
/// assert!(!cache.can_fit(2));
/// assert_eq!(cache.lru(&[1]), Some(0)); // 1 excluded, 0 is the victim
/// cache.evict(0);
/// cache.insert(2);
/// assert_eq!(cache.resident_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WeightCache {
    layer_bytes: Vec<u64>,
    budget_bytes: u64,
    used_bytes: u64,
    resident: Vec<bool>,
    /// Monotone use stamp per layer; 0 = never used.
    last_use: Vec<u64>,
    tick: u64,
}

impl WeightCache {
    /// A cache over `layer_bytes.len()` layers with the given byte
    /// budget. Starts empty.
    ///
    /// # Panics
    ///
    /// Panics if there are no layers or the budget cannot hold even the
    /// largest single layer — a tier that can never make a layer
    /// resident prices nothing meaningful.
    pub fn new(layer_bytes: Vec<u64>, budget_bytes: u64) -> WeightCache {
        assert!(!layer_bytes.is_empty(), "at least one layer required");
        let largest = *layer_bytes.iter().max().expect("non-empty");
        assert!(
            budget_bytes >= largest,
            "budget {budget_bytes} B cannot hold the largest layer ({largest} B)"
        );
        let n = layer_bytes.len();
        WeightCache {
            layer_bytes,
            budget_bytes,
            used_bytes: 0,
            resident: vec![false; n],
            last_use: vec![0; n],
            tick: 0,
        }
    }

    /// Number of layers the cache tracks.
    pub fn n_layers(&self) -> usize {
        self.layer_bytes.len()
    }

    /// Bytes of layer `layer`'s weights.
    pub fn layer_bytes(&self, layer: usize) -> u64 {
        self.layer_bytes[layer]
    }

    /// The DDR byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently pinned by resident layers.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Whether layer `layer` is resident (or reserved by an in-flight
    /// fetch — space accounting does not distinguish).
    pub fn resident(&self, layer: usize) -> bool {
        self.resident[layer]
    }

    /// Number of resident layers.
    pub fn resident_count(&self) -> usize {
        self.resident.iter().filter(|&&r| r).count()
    }

    /// Whether layer `layer` fits the remaining budget right now.
    pub fn can_fit(&self, layer: usize) -> bool {
        self.resident[layer] || self.used_bytes + self.layer_bytes[layer] <= self.budget_bytes
    }

    /// Largest number of layers the budget can hold at once, filling in
    /// the given order. The capacity a pin/stream plan divides up.
    pub fn capacity_layers(&self) -> usize {
        let mut sizes: Vec<u64> = self.layer_bytes.clone();
        sizes.sort_unstable();
        let mut used = 0;
        let mut n = 0;
        for s in sizes {
            if used + s > self.budget_bytes {
                break;
            }
            used += s;
            n += 1;
        }
        n
    }

    /// Marks layer `layer` resident, charging its bytes. Also stamps it
    /// as most-recently used (a fetched layer is hot).
    ///
    /// # Panics
    ///
    /// Panics if the layer is already resident or does not fit —
    /// policies must evict first; silent over-budget would defeat the
    /// accounting this type exists for.
    pub fn insert(&mut self, layer: usize) {
        assert!(!self.resident[layer], "layer {layer} already resident");
        assert!(
            self.used_bytes + self.layer_bytes[layer] <= self.budget_bytes,
            "layer {layer} ({} B) over budget ({} of {} B used)",
            self.layer_bytes[layer],
            self.used_bytes,
            self.budget_bytes
        );
        self.resident[layer] = true;
        self.used_bytes += self.layer_bytes[layer];
        self.touch(layer);
    }

    /// Marks layer `layer` non-resident, releasing its bytes.
    ///
    /// # Panics
    ///
    /// Panics if the layer is not resident (double-evict is a policy
    /// bug).
    pub fn evict(&mut self, layer: usize) {
        assert!(self.resident[layer], "layer {layer} not resident");
        self.resident[layer] = false;
        self.used_bytes -= self.layer_bytes[layer];
    }

    /// Stamps layer `layer` as most-recently used.
    pub fn touch(&mut self, layer: usize) {
        self.tick += 1;
        self.last_use[layer] = self.tick;
    }

    /// The least-recently-used resident layer, excluding `exclude`.
    /// `None` if no resident layer remains after exclusions.
    pub fn lru(&self, exclude: &[usize]) -> Option<usize> {
        (0..self.n_layers())
            .filter(|&l| self.resident[l] && !exclude.contains(&l))
            .min_by_key(|&l| self.last_use[l])
    }

    /// Resident layers in index order (tests and debugging).
    pub fn resident_layers(&self) -> Vec<usize> {
        (0..self.n_layers()).filter(|&l| self.resident[l]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_accounting_charges_and_releases() {
        let mut c = WeightCache::new(vec![10, 20, 30], 40);
        c.insert(0);
        c.insert(1);
        assert_eq!(c.used_bytes(), 30);
        assert!(!c.can_fit(2));
        c.evict(1);
        assert_eq!(c.used_bytes(), 10);
        assert!(c.can_fit(2));
        c.insert(2);
        assert_eq!(c.resident_layers(), vec![0, 2]);
    }

    #[test]
    fn lru_tracks_touch_order_and_respects_exclusions() {
        let mut c = WeightCache::new(vec![1, 1, 1], 3);
        c.insert(0);
        c.insert(1);
        c.insert(2);
        c.touch(0); // order now: 1, 2, 0
        assert_eq!(c.lru(&[]), Some(1));
        assert_eq!(c.lru(&[1]), Some(2));
        assert_eq!(c.lru(&[1, 2, 0]), None);
    }

    #[test]
    fn capacity_layers_counts_whole_layers() {
        let c = WeightCache::new(vec![100, 100, 100, 100], 250);
        assert_eq!(c.capacity_layers(), 2);
        let full = WeightCache::new(vec![100, 100], 200);
        assert_eq!(full.capacity_layers(), 2);
    }

    #[test]
    #[should_panic(expected = "over budget")]
    fn insert_past_budget_panics() {
        let mut c = WeightCache::new(vec![100, 100], 150);
        c.insert(0);
        c.insert(1);
    }

    #[test]
    #[should_panic(expected = "cannot hold the largest layer")]
    fn budget_below_one_layer_is_rejected() {
        let _ = WeightCache::new(vec![100, 200], 150);
    }
}
