//! The bare-metal 4 GB address map (Fig. 1, §VII-A).
//!
//! The KV260's Zynq UltraScale+ exposes its 4 GB of DDR4 as two windows:
//! the lower 2 GB at `0x0000_0000–0x7FF0_0000` (the compiler reserves the
//! first megabyte for the bare-metal program) and the upper 2 GB at
//! `0x8000_0000–0xFFFF_FFFF`. The paper places the embedding table, model
//! weights and the KV-cache space of the first 16 layers in the high
//! window and the rest low, filling 93.3 % of the device — too little
//! slack to boot Linux, which is why the system is bare-metal.
//!
//! [`MemoryMap`] is a simple bump allocator over the two windows with the
//! occupancy accounting the capacity experiment reports.

use std::fmt;

/// Which DDR window a region is placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// `0x0000_0000–0x7FF0_0000`, first 1 MiB reserved by the compiler.
    Low,
    /// `0x8000_0000–0xFFFF_FFFF`.
    High,
}

/// A named, placed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name ("model weights", "kv cache L0-15", …).
    pub name: String,
    /// Start byte address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// The window it lives in.
    pub window: Window,
}

impl Region {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }
}

/// Error returned when a region does not fit its window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// Region name that failed to place.
    pub name: String,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free in the window.
    pub available: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region '{}' needs {} bytes but only {} remain in its window",
            self.name, self.requested, self.available
        )
    }
}

impl std::error::Error for AllocError {}

/// The KV260 bare-metal memory map: a bump allocator over the two windows.
///
/// # Example
///
/// ```
/// use zllm_layout::addr_map::{MemoryMap, Window};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut map = MemoryMap::kv260();
/// let w = map.alloc("weights", 1900 << 20, Window::High)?;
/// assert_eq!(w.base, 0x8000_0000);
/// assert!(map.occupancy() > 0.4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryMap {
    total_bytes: u64,
    low_base: u64,
    low_end: u64,
    high_base: u64,
    high_end: u64,
    low_cursor: u64,
    high_cursor: u64,
    reserved_bytes: u64,
    regions: Vec<Region>,
}

impl MemoryMap {
    /// The KV260's 4 GB map with the paper's window boundaries.
    pub fn kv260() -> MemoryMap {
        const MIB: u64 = 1 << 20;
        let low_base = MIB; // 1 MiB reserved by the compiler
        let low_end = 0x7FF0_0000;
        let high_base = 0x8000_0000;
        let high_end = 0x1_0000_0000;
        MemoryMap {
            total_bytes: 4 << 30,
            low_base,
            low_end,
            high_base,
            high_end,
            low_cursor: low_base,
            high_cursor: high_base,
            reserved_bytes: (4 << 30) - (low_end - low_base) - (high_end - high_base),
            regions: Vec::new(),
        }
    }

    /// A *virtual* map for tiered (flash-backed) weight storage: the
    /// KV260's low window plus a high window extended to `total_bytes`.
    ///
    /// Layers that live on flash still need canonical, stable DDR
    /// addresses — residency under a weight cache is an accounting
    /// overlay, not a re-placement — so a model bigger than the physical
    /// 4 GiB is placed in this extended address space and the *physical*
    /// budget is enforced by `WeightCache` byte accounting instead of by
    /// placement. The DDR controller's address interleave is a pure
    /// function of the address, so pricing is deterministic at any size.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is below the physical 4 GiB.
    pub fn tiered_virtual(total_bytes: u64) -> MemoryMap {
        assert!(
            total_bytes >= 4 << 30,
            "virtual map must be at least the 4 GiB physical map"
        );
        let mut map = MemoryMap::kv260();
        map.high_end = map.high_base + (total_bytes - (map.low_end - map.low_base));
        map.total_bytes = total_bytes;
        map
    }

    /// Total physical DDR bytes (4 GiB on the KV260).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes unusable by data (compiler reservation + window gap).
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved_bytes
    }

    /// Allocates a region at the current cursor of the chosen window,
    /// aligned up to 64 bytes (one bus beat).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the window cannot hold the region.
    pub fn alloc(&mut self, name: &str, size: u64, window: Window) -> Result<Region, AllocError> {
        let align = 64;
        let (cursor, end) = match window {
            Window::Low => (&mut self.low_cursor, self.low_end),
            Window::High => (&mut self.high_cursor, self.high_end),
        };
        let base = (*cursor).div_ceil(align) * align;
        if base + size > end {
            return Err(AllocError {
                name: name.to_owned(),
                requested: size,
                available: end.saturating_sub(base),
            });
        }
        *cursor = base + size;
        let region = Region {
            name: name.to_owned(),
            base,
            size,
            window,
        };
        self.regions.push(region.clone());
        Ok(region)
    }

    /// All placed regions in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Looks a region up by name.
    pub fn region(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Bytes allocated to regions.
    pub fn allocated_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }

    /// Fraction of the physical DDR used by data regions — the paper's
    /// capacity-utilization metric (93.3 % for the 7B deployment).
    pub fn occupancy(&self) -> f64 {
        self.allocated_bytes() as f64 / self.total_bytes as f64
    }

    /// Bytes still free in a window.
    pub fn free_bytes(&self, window: Window) -> u64 {
        match window {
            Window::Low => self.low_end - self.low_cursor,
            Window::High => self.high_end - self.high_cursor,
        }
    }

    /// Largest single free extent across both windows.
    pub fn largest_free_extent(&self) -> u64 {
        self.free_bytes(Window::Low)
            .max(self.free_bytes(Window::High))
    }

    /// Whether a Linux kernel could still be loaded. A minimal headless
    /// ARM64 Linux with initramfs wants on the order of 512 MiB of
    /// contiguous memory; the 7B deployment leaves nowhere near that,
    /// which is the paper's argument for going bare-metal.
    pub fn linux_bootable(&self) -> bool {
        self.largest_free_extent() >= 512 << 20
    }

    /// Verifies the structural invariant that no two regions overlap and
    /// every region sits inside its window. (The bump allocator guarantees
    /// this by construction; the method exists for property tests.)
    pub fn check_invariants(&self) -> bool {
        let mut sorted: Vec<&Region> = self.regions.iter().collect();
        sorted.sort_by_key(|r| r.base);
        for pair in sorted.windows(2) {
            if pair[0].end() > pair[1].base {
                return false;
            }
        }
        self.regions.iter().all(|r| match r.window {
            Window::Low => r.base >= self.low_base && r.end() <= self.low_end,
            Window::High => r.base >= self.high_base && r.end() <= self.high_end,
        })
    }
}

impl fmt::Display for MemoryMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "KV260 4GB DDR map ({:.1}% occupied)",
            self.occupancy() * 100.0
        )?;
        for r in &self.regions {
            writeln!(
                f,
                "  {:<24} {:#010x}..{:#010x}  {:>9.1} MiB  [{}]",
                r.name,
                r.base,
                r.end(),
                r.size as f64 / (1 << 20) as f64,
                match r.window {
                    Window::Low => "low",
                    Window::High => "high",
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_match_paper_boundaries() {
        let map = MemoryMap::kv260();
        assert_eq!(map.total_bytes(), 4 << 30);
        assert_eq!(map.free_bytes(Window::Low), 0x7FF0_0000 - (1 << 20));
        assert_eq!(map.free_bytes(Window::High), 2 << 30);
        // Reserved: the compiler megabyte plus the 1 MiB window gap at the
        // top of the low window.
        assert_eq!(map.reserved_bytes(), 2 << 20);
    }

    #[test]
    fn alloc_bumps_and_aligns() {
        let mut map = MemoryMap::kv260();
        let a = map.alloc("a", 100, Window::Low).expect("fits");
        let b = map.alloc("b", 100, Window::Low).expect("fits");
        assert_eq!(a.base % 64, 0);
        assert_eq!(b.base, a.base + 128); // 100 rounded up to 128
        assert!(map.check_invariants());
    }

    #[test]
    fn windows_are_independent() {
        let mut map = MemoryMap::kv260();
        let lo = map.alloc("lo", 1 << 20, Window::Low).expect("fits");
        let hi = map.alloc("hi", 1 << 20, Window::High).expect("fits");
        assert!(lo.end() <= 0x7FF0_0000);
        assert_eq!(hi.base, 0x8000_0000);
    }

    #[test]
    fn over_allocation_errors() {
        let mut map = MemoryMap::kv260();
        let err = map
            .alloc("huge", 3 << 30, Window::High)
            .expect_err("cannot fit");
        assert_eq!(err.requested, 3 << 30);
        assert!(err.available <= 2 << 30);
        assert!(err.to_string().contains("huge"));
    }

    #[test]
    fn occupancy_and_linux_check() {
        let mut map = MemoryMap::kv260();
        assert!(map.linux_bootable());
        map.alloc("weights", 1_900 << 20, Window::High)
            .expect("fits");
        map.alloc("more", 1_700 << 20, Window::Low).expect("fits");
        assert!(map.occupancy() > 0.8);
        assert!(!map.linux_bootable());
    }

    #[test]
    fn region_lookup() {
        let mut map = MemoryMap::kv260();
        map.alloc("kv cache", 264 << 20, Window::High)
            .expect("fits");
        assert!(map.region("kv cache").is_some());
        assert!(map.region("nonexistent").is_none());
        assert_eq!(map.regions().len(), 1);
    }

    #[test]
    fn display_lists_regions() {
        let mut map = MemoryMap::kv260();
        map.alloc("embedding", 250 << 20, Window::High)
            .expect("fits");
        let s = map.to_string();
        assert!(s.contains("embedding"));
        assert!(s.contains("250.0 MiB"));
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn invariants_hold_for_arbitrary_allocations(
                sizes in proptest::collection::vec(1u64..(64 << 20), 1..40),
                windows in proptest::collection::vec(proptest::bool::ANY, 40),
            ) {
                let mut map = MemoryMap::kv260();
                for (i, &size) in sizes.iter().enumerate() {
                    let w = if windows[i] { Window::High } else { Window::Low };
                    let _ = map.alloc(&format!("r{i}"), size, w);
                }
                prop_assert!(map.check_invariants());
                prop_assert!(map.allocated_bytes() <= map.total_bytes());
            }
        }
    }
}
