//! The 512-bit bus beat: the unit of data the merged 4×128-bit AXI stream
//! delivers to the PL logic every cycle (§VI-A, Fig. 5A).

use std::fmt;

/// Bytes per 512-bit beat.
pub const BEAT_BYTES: usize = 64;

/// One 512-bit bus word.
///
/// Helper accessors pack/unpack the three element widths the accelerator
/// streams: 4-bit nibbles (weights, zero points), 16-bit halves (scales),
/// and 8-bit bytes (KV codes).
///
/// # Example
///
/// ```
/// use zllm_layout::Beat;
///
/// let mut b = Beat::zeroed();
/// b.set_nibble(5, 0xA);
/// assert_eq!(b.nibble(5), 0xA);
/// b.set_half(10, 0x3C00);
/// assert_eq!(b.half(10), 0x3C00);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Beat([u8; BEAT_BYTES]);

impl Beat {
    /// Nibbles per beat (4-bit elements).
    pub const NIBBLES: usize = BEAT_BYTES * 2;
    /// 16-bit halves per beat.
    pub const HALVES: usize = BEAT_BYTES / 2;
    /// 32-bit words per beat.
    pub const WORDS: usize = BEAT_BYTES / 4;

    /// An all-zero beat.
    pub const fn zeroed() -> Beat {
        Beat([0; BEAT_BYTES])
    }

    /// Builds a beat from raw bytes.
    pub const fn from_bytes(bytes: [u8; BEAT_BYTES]) -> Beat {
        Beat(bytes)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; BEAT_BYTES] {
        &self.0
    }

    /// Mutable raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8; BEAT_BYTES] {
        &mut self.0
    }

    /// Reads 4-bit element `i` (little-endian nibble order: even indices are
    /// low nibbles).
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::NIBBLES`.
    pub fn nibble(&self, i: usize) -> u8 {
        let byte = self.0[i / 2];
        if i.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        }
    }

    /// Writes 4-bit element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::NIBBLES` or `v > 0xF`.
    pub fn set_nibble(&mut self, i: usize, v: u8) {
        assert!(v <= 0xF, "nibble value out of range");
        let byte = &mut self.0[i / 2];
        if i.is_multiple_of(2) {
            *byte = (*byte & 0xF0) | v;
        } else {
            *byte = (*byte & 0x0F) | (v << 4);
        }
    }

    /// Reads 16-bit element `i` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::HALVES`.
    pub fn half(&self, i: usize) -> u16 {
        u16::from_le_bytes([self.0[2 * i], self.0[2 * i + 1]])
    }

    /// Writes 16-bit element `i` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::HALVES`.
    pub fn set_half(&mut self, i: usize, v: u16) {
        let [lo, hi] = v.to_le_bytes();
        self.0[2 * i] = lo;
        self.0[2 * i + 1] = hi;
    }

    /// Reads 32-bit element `i` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::WORDS`.
    pub fn word(&self, i: usize) -> u32 {
        u32::from_le_bytes([
            self.0[4 * i],
            self.0[4 * i + 1],
            self.0[4 * i + 2],
            self.0[4 * i + 3],
        ])
    }

    /// Writes 32-bit element `i` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::WORDS`.
    pub fn set_word(&mut self, i: usize, v: u32) {
        self.0[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads byte `i`.
    pub fn byte(&self, i: usize) -> u8 {
        self.0[i]
    }

    /// Writes byte `i`.
    pub fn set_byte(&mut self, i: usize, v: u8) {
        self.0[i] = v;
    }
}

impl Default for Beat {
    fn default() -> Beat {
        Beat::zeroed()
    }
}

impl fmt::Debug for Beat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Beat(")?;
        for b in self.0.iter().rev() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl From<[u8; BEAT_BYTES]> for Beat {
    fn from(bytes: [u8; BEAT_BYTES]) -> Beat {
        Beat(bytes)
    }
}

impl AsRef<[u8]> for Beat {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts() {
        assert_eq!(Beat::NIBBLES, 128);
        assert_eq!(Beat::HALVES, 32);
        assert_eq!(Beat::WORDS, 16);
    }

    #[test]
    fn nibble_packing_is_little_endian_within_byte() {
        let mut b = Beat::zeroed();
        b.set_nibble(0, 0x3);
        b.set_nibble(1, 0xC);
        assert_eq!(b.as_bytes()[0], 0xC3);
        assert_eq!(b.nibble(0), 0x3);
        assert_eq!(b.nibble(1), 0xC);
    }

    #[test]
    fn half_and_word_roundtrip() {
        let mut b = Beat::zeroed();
        b.set_half(31, 0xBEEF);
        assert_eq!(b.half(31), 0xBEEF);
        b.set_word(15, 0xDEAD_BEEF);
        assert_eq!(b.word(15), 0xDEAD_BEEF);
        assert_eq!(b.byte(62), 0xAD);
    }

    #[test]
    #[should_panic(expected = "nibble value out of range")]
    fn nibble_value_checked() {
        Beat::zeroed().set_nibble(0, 0x10);
    }

    #[test]
    fn debug_shows_hex() {
        let mut b = Beat::zeroed();
        b.set_byte(63, 0xAB);
        let s = format!("{b:?}");
        assert!(s.starts_with("Beat(ab"));
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn nibbles_are_independent(values in proptest::collection::vec(0u8..16, 128)) {
                let mut b = Beat::zeroed();
                for (i, &v) in values.iter().enumerate() {
                    b.set_nibble(i, v);
                }
                for (i, &v) in values.iter().enumerate() {
                    prop_assert_eq!(b.nibble(i), v);
                }
            }

            #[test]
            fn words_overlay_bytes(words in proptest::collection::vec(proptest::num::u32::ANY, 16)) {
                let mut b = Beat::zeroed();
                for (i, &w) in words.iter().enumerate() {
                    b.set_word(i, w);
                }
                for (i, &w) in words.iter().enumerate() {
                    prop_assert_eq!(b.word(i), w);
                    prop_assert_eq!(b.half(2 * i), (w & 0xFFFF) as u16);
                    prop_assert_eq!(b.half(2 * i + 1), (w >> 16) as u16);
                }
            }
        }
    }
}
