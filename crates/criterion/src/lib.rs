//! A minimal wall-clock benchmark harness exposing the criterion API
//! surface this workspace's benches use.
//!
//! The real criterion crate needs the network-backed registry; this
//! stand-in keeps the bench sources unchanged (`Criterion`,
//! `bench_function`, `benchmark_group`, `black_box`, `criterion_group!`,
//! `criterion_main!`) and reports a mean ns/iter over a short timed run.
//! It does no statistical analysis — the numbers are indicative, the
//! regression *gate* for this repo is `perf_gate` over the simulator's
//! own deterministic counters, not wall time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TIME: Duration = Duration::from_millis(500);
/// Warm-up time per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(100);

/// Drives closures timed by [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it repeatedly until the measurement window
    /// fills.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also gives a cost estimate for batch sizing).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TIME {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) as u64 / warm_iters.max(1);
        let batch = (10_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_TIME {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str) {
        if self.iters_done == 0 {
            println!("{name:<40} (no iterations)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters_done as f64;
        let human = if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        };
        println!(
            "{name:<40} time: [{human}/iter] ({} iters)",
            self.iters_done
        );
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks (prefixes names; `sample_size` is
/// accepted for source compatibility and ignored).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench entry function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness-less binary is executed with
            // `--test`; skip the timed run to keep test cycles fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut b = Bencher::default();
        b.iter(|| black_box(1u64 + 1));
        assert!(b.iters_done > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.finish();
    }
}
