//! A deterministic, dependency-free stand-in for the subset of the
//! [proptest](https://docs.rs/proptest) API this workspace uses.
//!
//! The workspace must build and test with no network access, so the real
//! proptest crate (and its deep dependency tree) cannot be assumed. This
//! shim keeps the property-test *sources* unchanged — `proptest!`,
//! `prop_assert!`, range/collection/`prop_map` strategies — while running
//! each property over a fixed number of deterministically seeded cases.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with its case index; rerun
//!   with the same code to reproduce (generation is seeded by test name
//!   and case number, so failures are stable across runs and machines);
//! * **regex string strategies** support only the patterns this repo
//!   uses (`".*"`-style "any string");
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use zllm_rng::StdRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The per-test random source. Seeded from the test's name and the case
/// index so every run of every machine generates the same inputs.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for one case of one property.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator. The `Value` associated type mirrors real proptest
/// so `impl Strategy<Value = T>` return types keep compiling.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Boxes the strategy for use in heterogeneous unions.
    fn boxed(self) -> Box<dyn AnyStrategy<Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe view of a [`Strategy`], used by [`Union`] (`prop_oneof!`).
pub trait AnyStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> AnyStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Boxes one `prop_oneof!` arm. A generic fn (rather than an `as` cast)
/// lets integer-literal arms unify with the union's value type.
#[doc(hidden)]
pub fn __oneof_arm<T, S>(s: S) -> Box<dyn AnyStrategy<T>>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(s)
}

/// Strategy returning a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// `prop_oneof!`: picks one of several strategies uniformly.
pub struct Union<T> {
    options: Vec<Box<dyn AnyStrategy<T>>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn AnyStrategy<T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().below(self.options.len() as u64) as usize;
        self.options[i].generate_dyn(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String strategies are written as regex literals in real proptest. This
/// shim supports the one family the workspace uses: "match anything"
/// patterns (`".*"`), generated as arbitrary short unicode strings.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        assert!(
            *self == ".*" || *self == ".+",
            "only \".*\"/\".+\" regex strategies are supported, got {self:?}"
        );
        let min = if *self == ".+" { 1 } else { 0 };
        let len = rng.rng().gen_range(min..48usize);
        let mut s = String::new();
        for _ in 0..len {
            // Mix ASCII, Latin-1, CJK and astral characters.
            let c = match rng.rng().gen_range(0u32..10) {
                0..=5 => char::from(rng.rng().gen_range(0x20u8..0x7F)),
                6 => char::from_u32(rng.rng().gen_range(0xA1u32..0x100)).unwrap(),
                7 => char::from_u32(rng.rng().gen_range(0x4E00u32..0x9FFF)).unwrap(),
                8 => char::from_u32(rng.rng().gen_range(0x1F300u32..0x1F600)).unwrap(),
                _ => '\n',
            };
            s.push(c);
        }
        s
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric "any value" strategies (`proptest::num::u16::ANY`, ...).
pub mod num {
    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            /// `ANY` strategy for one primitive width.
            pub mod $m {
                /// Uniform over the full domain.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;
                /// The strategy value.
                pub const ANY: Any = Any;
                impl crate::Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut crate::TestRng) -> $t {
                        rng.rng().next_u64() as $t
                    }
                }
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize);
}

/// Boolean strategy (`proptest::bool::ANY`).
pub mod bool {
    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;
    /// The strategy value.
    pub const ANY: Any = Any;
    impl crate::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::TestRng) -> bool {
            rng.rng().next_u64() & 1 == 1
        }
    }
}

/// Everything property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts inside a property (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::__oneof_arm($s)),+])
    };
}

/// The property-test entry point: same surface syntax as real proptest,
/// expanded to a deterministic loop over seeded cases.
#[macro_export]
macro_rules! proptest {
    // Internal muncher arms must come first: the public entry arm below is a
    // catch-all that would otherwise re-match `@fns` recursively forever.
    (@fns ($config:expr) ) => {};
    (@fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut prop_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $parm = $crate::Strategy::generate(&($strategy), &mut prop_rng);)+
                $body
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..100, 1..20usize);
        let a = Strategy::generate(&strat, &mut crate::TestRng::for_case("t", 3));
        let b = Strategy::generate(&strat, &mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
        let c = Strategy::generate(&strat, &mut crate::TestRng::for_case("t", 4));
        assert_ne!(a, c);
    }

    #[test]
    fn map_filter_and_oneof_compose() {
        let strat = prop_oneof![Just(2usize), Just(4), Just(6)]
            .prop_map(|v| v + 1)
            .prop_filter("odd", |v| v % 2 == 1);
        let mut rng = crate::TestRng::for_case("compose", 0);
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!([3, 5, 7].contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_bounds(
            xs in crate::collection::vec(1u32..10, 5),
            flag in crate::bool::ANY,
            scale in 0.5f32..2.0,
        ) {
            prop_assert_eq!(xs.len(), 5);
            prop_assert!(xs.iter().all(|&x| (1..10).contains(&x)));
            let _ = flag;
            prop_assert!((0.5..2.0).contains(&scale));
        }

        #[test]
        fn mut_bindings_work(mut v in crate::collection::vec(0u8..255, 2..10usize)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn string_strategy_roundtrips_utf8() {
        let mut rng = crate::TestRng::for_case("strings", 1);
        for _ in 0..20 {
            let s = Strategy::generate(&".*", &mut rng);
            assert!(s.chars().count() < 48);
            let _ = s.as_bytes();
        }
    }
}
