//! The unified telemetry registry every simulated component publishes
//! into.
//!
//! The paper's headline claim is a *number* — 84.5 % of the 19.2 GB/s
//! DDR4 roofline — so this repo lives or dies by whether its simulated
//! bandwidth and latency figures stay correct as the codebase grows.
//! Before this crate, the counters behind Tables II/III were scattered:
//! `DdrStats` in the DDR crate, `TokenReport` in the trace engine, ad-hoc
//! prints in the figure binaries. Nothing machine-checked them.
//!
//! [`MetricsRegistry`] centralizes them as named, hierarchical metrics
//! (`ddr.row_hits`, `pipeline.attn.bubble_cycles`,
//! `decode.bandwidth_util`, ...). Components hold cheap shared
//! [`Counter`]/[`Gauge`] handles and bump them on hot paths; the legacy
//! structs remain as thin *views* over the registry. A [`Snapshot`] can
//! be exported as deterministic JSON (hand-rolled — the build works with
//! no external dependencies) and compared against a committed baseline
//! with per-metric tolerances, which is exactly what the `perf_gate` CI
//! binary does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

mod json;

pub use json::JsonError;

/// A monotonically increasing `u64` metric. Cloning shares the underlying
/// cell, so a component and the registry observe the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Rc<Cell<u64>>,
}

impl Counter {
    /// A counter not (yet) attached to any registry.
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.set(self.cell.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.cell.set(0);
    }
}

/// A last-value-wins `f64` metric (rates, utilizations, times).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Rc<Cell<f64>>,
}

impl Gauge {
    /// A gauge not (yet) attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Stores a value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.set(v);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.cell.get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.cell.set(0.0);
    }
}

/// The registry: a flat namespace of dot-separated hierarchical metric
/// names, each owning a shared counter or gauge cell.
///
/// # Example
///
/// ```
/// use zllm_telemetry::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let hits = reg.counter("ddr.row_hits");
/// hits.add(3);
/// assert_eq!(reg.snapshot().counter("ddr.row_hits"), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it at zero
    /// on first use. The returned handle shares state with the registry.
    pub fn counter(&mut self, name: &str) -> Counter {
        self.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it at zero on
    /// first use.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        self.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(Counter::get)
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len()
    }

    /// Whether no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Zeroes every metric, keeping registrations (and outstanding
    /// handles) intact.
    pub fn reset(&mut self) {
        for c in self.counters.values() {
            c.reset();
        }
        for g in self.gauges.values() {
            g.reset();
        }
    }

    /// Folds a snapshot in: counters add, gauges take the incoming value.
    /// Metrics absent from this registry are created.
    pub fn merge(&mut self, snap: &Snapshot) {
        for (name, &v) in &snap.counters {
            self.counter(name).add(v);
        }
        for (name, &v) in &snap.gauges {
            self.gauge(name).set(v);
        }
    }

    /// A point-in-time copy of every metric value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
        }
    }
}

/// An immutable point-in-time capture of a [`MetricsRegistry`], ordered
/// by name (both maps are `BTreeMap`s), hence deterministic to serialize.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
}

impl Snapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Every metric as `(name, kind, value-as-f64)`, counters first.
    pub fn entries(&self) -> impl Iterator<Item = (&str, MetricKind, f64)> {
        self.counters
            .iter()
            .map(|(k, &v)| (k.as_str(), MetricKind::Counter, v as f64))
            .chain(
                self.gauges
                    .iter()
                    .map(|(k, &v)| (k.as_str(), MetricKind::Gauge, v)),
            )
    }

    /// Serializes as deterministic, human-diffable JSON: keys sorted,
    /// two-space indent, shortest-roundtrip float formatting.
    pub fn to_json(&self) -> String {
        json::snapshot_to_json(self)
    }

    /// Parses a snapshot produced by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed construct.
    pub fn from_json(text: &str) -> Result<Snapshot, JsonError> {
        json::snapshot_from_json(text)
    }

    /// Compares `current` against this baseline. `tolerance` maps a
    /// metric name to its allowed relative deviation (0.0 = exact).
    /// Metrics missing on either side fail the comparison.
    pub fn compare(&self, current: &Snapshot, tolerance: impl Fn(&str) -> f64) -> CompareReport {
        let mut diffs = Vec::new();
        let mut keys: Vec<(&str, MetricKind)> = self
            .entries()
            .map(|(k, kind, _)| (k, kind))
            .chain(current.entries().map(|(k, kind, _)| (k, kind)))
            .collect();
        keys.sort_unstable();
        keys.dedup();

        for (name, kind) in keys {
            let base = match kind {
                MetricKind::Counter => self.counter(name).map(|v| v as f64),
                MetricKind::Gauge => self.gauge(name),
            };
            let cur = match kind {
                MetricKind::Counter => current.counter(name).map(|v| v as f64),
                MetricKind::Gauge => current.gauge(name),
            };
            let tol = tolerance(name);
            let (status, rel) = match (base, cur) {
                (None, _) => (DiffStatus::NotInBaseline, f64::NAN),
                (_, None) => (DiffStatus::Missing, f64::NAN),
                (Some(b), Some(c)) => {
                    let rel = if b == c {
                        0.0
                    } else if b == 0.0 {
                        f64::INFINITY
                    } else {
                        (c - b).abs() / b.abs()
                    };
                    let ok = rel.is_finite() && rel <= tol + 1e-12;
                    (
                        if ok {
                            DiffStatus::Ok
                        } else {
                            DiffStatus::Regressed
                        },
                        rel,
                    )
                }
            };
            diffs.push(MetricDiff {
                name: name.to_owned(),
                kind,
                baseline: base,
                current: cur,
                rel_delta: rel,
                tolerance: tol,
                status,
            });
        }
        CompareReport { diffs }
    }
}

/// Counter or gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// Monotonic integer count.
    Counter,
    /// Instantaneous float value.
    Gauge,
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        })
    }
}

/// Per-metric outcome of a baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within tolerance.
    Ok,
    /// Deviation exceeds the tolerance.
    Regressed,
    /// Present in the baseline but not in the current run.
    Missing,
    /// Present in the current run but not in the baseline (needs a
    /// re-bless).
    NotInBaseline,
}

/// One row of a comparison.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Metric name.
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Baseline value (as f64), if present.
    pub baseline: Option<f64>,
    /// Current value (as f64), if present.
    pub current: Option<f64>,
    /// |current − baseline| / |baseline| (NaN when either side missing).
    pub rel_delta: f64,
    /// Allowed relative deviation.
    pub tolerance: f64,
    /// Outcome.
    pub status: DiffStatus,
}

impl MetricDiff {
    /// Whether this metric passes the gate.
    pub fn ok(&self) -> bool {
        self.status == DiffStatus::Ok
    }
}

/// Outcome of [`Snapshot::compare`].
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-metric rows, sorted by name.
    pub diffs: Vec<MetricDiff>,
}

impl CompareReport {
    /// Whether every metric passed.
    pub fn passed(&self) -> bool {
        self.diffs.iter().all(MetricDiff::ok)
    }

    /// The failing rows.
    pub fn failures(&self) -> impl Iterator<Item = &MetricDiff> {
        self.diffs.iter().filter(|d| !d.ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_registry() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter_value("a.b"), Some(5));
        // Second lookup returns the same cell.
        reg.counter("a.b").inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("a.rate");
        g.set(2.5);
        assert_eq!(reg.gauge_value("a.rate"), Some(2.5));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("x");
        let g = reg.gauge("y");
        c.add(10);
        g.set(1.0);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        // Handles still live.
        c.inc();
        assert_eq!(reg.counter_value("x"), Some(1));
    }

    #[test]
    fn merge_adds_counters_and_overwrites_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter("n").add(3);
        a.gauge("r").set(1.0);
        let mut b = MetricsRegistry::new();
        b.counter("n").add(4);
        b.counter("only_b").add(1);
        b.gauge("r").set(9.0);
        a.merge(&b.snapshot());
        assert_eq!(a.counter_value("n"), Some(7));
        assert_eq!(a.counter_value("only_b"), Some(1));
        assert_eq!(a.gauge_value("r"), Some(9.0));
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let mut reg = MetricsRegistry::new();
        // Insert out of order; snapshot must sort.
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("m.mid").set(0.5);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_json(), s2.to_json());
        let names: Vec<&str> = s1.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "z.last"]);
    }

    #[test]
    fn compare_flags_each_status() {
        let mut base = MetricsRegistry::new();
        base.counter("exact").add(100);
        base.counter("gone").add(1);
        base.gauge("rate").set(10.0);
        let baseline = base.snapshot();

        let mut cur = MetricsRegistry::new();
        cur.counter("exact").add(101); // 1% off an exact metric
        cur.counter("new").add(1);
        cur.gauge("rate").set(10.1); // 1% off, within 2%
        let current = cur.snapshot();

        let report = baseline.compare(&current, |name| if name == "rate" { 0.02 } else { 0.0 });
        assert!(!report.passed());
        let by_name = |n: &str| report.diffs.iter().find(|d| d.name == n).expect("diff row");
        assert_eq!(by_name("exact").status, DiffStatus::Regressed);
        assert_eq!(by_name("gone").status, DiffStatus::Missing);
        assert_eq!(by_name("new").status, DiffStatus::NotInBaseline);
        assert_eq!(by_name("rate").status, DiffStatus::Ok);
    }

    #[test]
    fn compare_passes_identical_snapshots() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a").add(42);
        reg.gauge("b").set(4.9);
        let snap = reg.snapshot();
        let report = snap.compare(&snap.clone(), |_| 0.0);
        assert!(report.passed());
        assert_eq!(report.failures().count(), 0);
    }

    #[test]
    fn zero_baseline_with_nonzero_current_regresses() {
        let mut base = MetricsRegistry::new();
        base.counter("c").add(0);
        let mut cur = MetricsRegistry::new();
        cur.counter("c").add(5);
        let report = base.snapshot().compare(&cur.snapshot(), |_| 0.02);
        assert!(!report.passed());
    }
}
