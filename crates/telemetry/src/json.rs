//! Hand-rolled JSON serializer/parser for [`Snapshot`]s.
//!
//! The build must work offline with no external crates, so no serde. The
//! format is a fixed two-level object — `{"counters": {...}, "gauges":
//! {...}}` — with sorted keys and shortest-roundtrip float formatting,
//! so re-serializing a parsed snapshot is byte-identical.

use crate::Snapshot;
use std::collections::BTreeMap;

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an f64 so that parsing it back yields the identical bits
/// (Rust's `{:?}` shortest-roundtrip repr), mapping non-finite values to
/// `null`.
fn fmt_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

pub(crate) fn snapshot_to_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"counters\": {");
    let mut first = true;
    for (k, v) in &snap.counters {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str("    ");
        escape(k, &mut out);
        out.push_str(&format!(": {v}"));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"gauges\": {");
    let mut first = true;
    for (k, v) in &snap.gauges {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str("    ");
        escape(k, &mut out);
        out.push_str(": ");
        fmt_f64(*v, &mut out);
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    s.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| JsonError {
                        message: "invalid utf-8".into(),
                        offset: self.pos,
                    })?;
                    let c = text.chars().next().expect("nonempty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return self.err("expected number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map_or_else(|| self.err("malformed number"), Ok)
    }

    /// Parses `{"name": number, ...}`.
    fn number_object(&mut self) -> Result<BTreeMap<String, f64>, JsonError> {
        let mut map = BTreeMap::new();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.number()?;
            if map.insert(key, value).is_some() {
                return self.err("duplicate key");
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

pub(crate) fn snapshot_from_json(text: &str) -> Result<Snapshot, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut counters = BTreeMap::new();
    let mut gauges = BTreeMap::new();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        let section = p.string()?;
        p.expect(b':')?;
        let values = p.number_object()?;
        match section.as_str() {
            "counters" => {
                for (k, v) in values {
                    if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
                        return p.err(format!("counter {k:?} is not a u64: {v}"));
                    }
                    counters.insert(k, v as u64);
                }
            }
            "gauges" => gauges.extend(values),
            other => return p.err(format!("unknown section {other:?}")),
        }
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                break;
            }
            _ => return p.err("expected ',' or '}'"),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content");
    }
    Ok(Snapshot { counters, gauges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample() -> Snapshot {
        let mut reg = MetricsRegistry::new();
        reg.counter("ddr.row_hits").add(123_456_789);
        reg.counter("ddr.reads").add(42);
        reg.gauge("decode.tokens_per_s").set(4.907);
        reg.gauge("decode.bandwidth_util").set(0.845);
        reg.gauge("tiny").set(1.25e-7);
        reg.snapshot()
    }

    #[test]
    fn roundtrip_is_identity() {
        let snap = sample();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).expect("parses");
        assert_eq!(back, snap);
        // Deterministic: serializing the parse is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = Snapshot::default();
        let back = Snapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn keys_with_specials_roundtrip() {
        let mut reg = MetricsRegistry::new();
        reg.counter("weird\"name\\with\nspecials").add(7);
        let snap = reg.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "{\"counters\": {\"a\": -1}, \"gauges\": {}}",
            "{\"counters\": {\"a\": 1.5}, \"gauges\": {}}",
            "{\"unknown\": {}}",
            "{\"counters\": {}, \"gauges\": {}} trailing",
            "{\"counters\": {\"a\": 1, \"a\": 2}, \"gauges\": {}}",
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_display_mentions_offset() {
        let err = Snapshot::from_json("{oops").expect_err("fails");
        let text = err.to_string();
        assert!(text.contains("byte"), "{text}");
    }
}
