//! Groupwise asymmetric integer quantization (the W4 in W4A16).
//!
//! Weights are split into contiguous groups (128 elements in the paper);
//! each group stores one FP16 scale, one integer zero point of the same
//! width as the codes, and the 4-bit codes themselves. Dequantization is
//! `(q − z) · s`, performed on-chip as weights stream in (§VI-B).

use zllm_fp16::F16;

/// Configuration of a groupwise quantizer.
///
/// # Example
///
/// ```
/// use zllm_quant::group::GroupQuantConfig;
///
/// let cfg = GroupQuantConfig::w4_g128();
/// assert_eq!(cfg.levels(), 15);
/// assert_eq!(cfg.group_size, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupQuantConfig {
    /// Elements sharing one scale/zero pair.
    pub group_size: usize,
    /// Code width in bits (≤ 8).
    pub bits: u32,
}

impl GroupQuantConfig {
    /// The paper's configuration: 4-bit codes, groups of 128.
    pub const fn w4_g128() -> GroupQuantConfig {
        GroupQuantConfig {
            group_size: 128,
            bits: 4,
        }
    }

    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or `bits` is 0 or > 8.
    pub fn new(group_size: usize, bits: u32) -> GroupQuantConfig {
        assert!(group_size > 0, "group_size must be non-zero");
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        GroupQuantConfig { group_size, bits }
    }

    /// Number of quantization steps: `2^bits − 1`.
    pub fn levels(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Largest representable code.
    pub fn max_code(&self) -> u8 {
        self.levels() as u8
    }
}

impl Default for GroupQuantConfig {
    fn default() -> GroupQuantConfig {
        GroupQuantConfig::w4_g128()
    }
}

/// A tensor quantized groupwise: codes plus per-group scale/zero metadata.
///
/// The in-memory order here is *logical*; the bus-aligned interleaved DDR
/// layout lives in `zllm-layout`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    config: GroupQuantConfig,
    len: usize,
    codes: Vec<u8>,
    scales: Vec<F16>,
    zeros: Vec<u8>,
}

impl QuantizedTensor {
    /// Assembles a tensor from raw parts — for quantizers (e.g. GPTQ)
    /// that choose codes by algorithms other than round-to-nearest.
    ///
    /// # Panics
    ///
    /// Panics if the lengths are inconsistent with the configuration or
    /// any code/zero exceeds the code range.
    pub fn from_parts(
        config: GroupQuantConfig,
        codes: Vec<u8>,
        scales: Vec<F16>,
        zeros: Vec<u8>,
    ) -> QuantizedTensor {
        let groups = codes.len().div_ceil(config.group_size);
        assert_eq!(scales.len(), groups, "one scale per group required");
        assert_eq!(zeros.len(), groups, "one zero point per group required");
        let max = config.max_code();
        assert!(codes.iter().all(|&c| c <= max), "code exceeds range");
        assert!(zeros.iter().all(|&z| z <= max), "zero point exceeds range");
        QuantizedTensor {
            config,
            len: codes.len(),
            codes,
            scales,
            zeros,
        }
    }

    /// The quantizer configuration used.
    pub fn config(&self) -> GroupQuantConfig {
        self.config
    }

    /// Number of original (f32) elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of groups (last group may be partial).
    pub fn num_groups(&self) -> usize {
        self.scales.len()
    }

    /// The quantized codes, one per element.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Per-group scales (FP16, as stored in DDR).
    pub fn scales(&self) -> &[F16] {
        &self.scales
    }

    /// Per-group zero points.
    pub fn zeros(&self) -> &[u8] {
        &self.zeros
    }

    /// Dequantizes a single element: `(q − z) · s`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn dequantize_at(&self, idx: usize) -> f32 {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        let g = idx / self.config.group_size;
        let q = self.codes[idx] as i32;
        let z = self.zeros[g] as i32;
        (q - z) as f32 * self.scales[g].to_f32()
    }

    /// Dequantizes the whole tensor.
    pub fn dequantize(&self) -> Vec<f32> {
        (0..self.len).map(|i| self.dequantize_at(i)).collect()
    }

    /// [`QuantizedTensor::dequantize`] into a caller-provided buffer
    /// (cleared first) — identical values, no allocation once the buffer
    /// has capacity. The quantization searches use this to evaluate
    /// candidates without per-candidate allocation.
    pub fn dequantize_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.len);
        out.extend((0..self.len).map(|i| self.dequantize_at(i)));
    }

    /// Dequantizes to FP16 (the datatype entering the VPU lanes).
    pub fn dequantize_f16(&self) -> Vec<F16> {
        let mut out = Vec::new();
        self.dequantize_f16_into(&mut out);
        out
    }

    /// [`QuantizedTensor::dequantize_f16`] into a caller-provided buffer
    /// (cleared first).
    pub fn dequantize_f16_into(&self, out: &mut Vec<F16>) {
        out.clear();
        out.reserve(self.len);
        out.extend((0..self.len).map(|i| F16::from_f32(self.dequantize_at(i))));
    }

    /// Storage cost in bits: codes + per-group scale (16) and zero point.
    ///
    /// Zero points are counted at code width (4-bit), as in the paper's
    /// interleaved format.
    pub fn storage_bits(&self) -> usize {
        self.len * self.config.bits as usize + self.num_groups() * (16 + self.config.bits as usize)
    }
}

/// Groupwise asymmetric quantizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupQuantizer {
    config: GroupQuantConfig,
}

impl GroupQuantizer {
    /// Creates a quantizer with the given configuration.
    pub fn new(config: GroupQuantConfig) -> GroupQuantizer {
        GroupQuantizer { config }
    }

    /// Quantizes a tensor.
    ///
    /// Groups are consecutive runs of `group_size` elements; a trailing
    /// partial group is allowed. Scales are rounded to FP16 *before* codes
    /// are computed, so the stored metadata and the codes are mutually
    /// consistent — exactly what an offline converter must do for the
    /// on-chip dequantizer to reproduce its intent.
    pub fn quantize(&self, values: &[f32]) -> QuantizedTensor {
        let gs = self.config.group_size;
        let levels = self.config.levels() as f32;
        let max_code = self.config.max_code();
        let mut codes = Vec::with_capacity(values.len());
        let mut scales = Vec::new();
        let mut zeros = Vec::new();

        for group in values.chunks(gs) {
            let (min, max) = group
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            // Extend the range to include zero: this guarantees the integer
            // zero point fits its code width for *any* input distribution
            // (the standard asymmetric-quantization convention; weights are
            // zero-centred so this is a no-op for them).
            let (min, max) = (min.min(0.0), max.max(0.0));
            let range = max - min;
            let scale_f32 = if range > 0.0 { range / levels } else { 1.0 };
            let scale = F16::from_f32(scale_f32);
            let s = scale.to_f32().max(f32::MIN_POSITIVE);
            let zero = (-min / s).round().clamp(0.0, levels) as u8;
            scales.push(scale);
            zeros.push(zero);
            for &v in group {
                let q = (v / s + zero as f32).round().clamp(0.0, levels) as u8;
                codes.push(q.min(max_code));
            }
        }

        QuantizedTensor {
            config: self.config,
            len: values.len(),
            codes,
            scales,
            zeros,
        }
    }

    /// The quantizer configuration.
    pub fn config(&self) -> GroupQuantConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets() {
        let cfg = GroupQuantConfig::w4_g128();
        assert_eq!(cfg.bits, 4);
        assert_eq!(cfg.levels(), 15);
        assert_eq!(cfg.max_code(), 15);
        assert_eq!(GroupQuantConfig::default(), cfg);
        let w8 = GroupQuantConfig::new(64, 8);
        assert_eq!(w8.levels(), 255);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=8")]
    fn rejects_wide_codes() {
        let _ = GroupQuantConfig::new(128, 9);
    }

    #[test]
    #[should_panic(expected = "group_size must be non-zero")]
    fn rejects_zero_group() {
        let _ = GroupQuantConfig::new(0, 4);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let values: Vec<f32> = (0..512)
            .map(|i| ((i * 37) % 101) as f32 / 50.0 - 1.0)
            .collect();
        let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
        assert_eq!(q.len(), 512);
        assert_eq!(q.num_groups(), 4);
        for (i, (&v, d)) in values.iter().zip(q.dequantize()).enumerate() {
            let g = i / 128;
            let step = q.scales()[g].to_f32();
            // Half-step plus slack for the FP16 rounding of the scale and
            // the edge-of-range clamp it can induce.
            assert!(
                (v - d).abs() <= 0.55 * step + 1e-3,
                "elem {i}: {v} vs {d} (step {step})"
            );
        }
    }

    #[test]
    fn constant_group_is_exact() {
        // With zero-extended ranges, a constant group maps the constant to
        // an extreme code and reconstructs it up to the FP16 scale rounding.
        for c in [0.0f32, 3.25, -7.5] {
            let values = vec![c; 128];
            let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
            for d in q.dequantize() {
                assert!(
                    (d - c).abs() <= c.abs() * 2e-3 + 1e-6,
                    "constant {c} reconstructed as {d}"
                );
            }
        }
    }

    #[test]
    fn partial_trailing_group() {
        let values: Vec<f32> = (0..150).map(|i| i as f32 / 10.0).collect();
        let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
        assert_eq!(q.num_groups(), 2);
        assert_eq!(q.codes().len(), 150);
        // Trailing group spans values 12.8..14.9; its zero-extended range is
        // [0, 14.9], so the step is ~1.0 and the error stays within it.
        let d = q.dequantize();
        let step = q.scales()[1].to_f32();
        assert!((step - 14.9 / 15.0).abs() < 0.01);
        assert!((d[149] - 14.9).abs() <= 0.55 * step + 1e-3);
    }

    #[test]
    fn offset_data_degrades_gracefully() {
        // Data far from zero costs dynamic range (the step grows to cover
        // [0, max]) but never clamps catastrophically.
        let values: Vec<f32> = (0..128).map(|i| 100.0 + i as f32 * 0.01).collect();
        let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
        let step = q.scales()[0].to_f32();
        for (&v, d) in values.iter().zip(q.dequantize()) {
            assert!((v - d).abs() <= 0.55 * step + 1e-2, "{v} vs {d}");
        }
    }

    #[test]
    fn empty_tensor() {
        let q = GroupQuantizer::default().quantize(&[]);
        assert!(q.is_empty());
        assert_eq!(q.num_groups(), 0);
        assert_eq!(q.storage_bits(), 0);
        assert!(q.dequantize().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn dequantize_at_bounds_checked() {
        let q = GroupQuantizer::default().quantize(&[1.0; 4]);
        let _ = q.dequantize_at(4);
    }

    #[test]
    fn storage_bits_match_paper_overhead() {
        // 4-bit codes + (16-bit scale + 4-bit zero)/128 elements
        // = 4.15625 bits/weight, the paper's ~3.9 % metadata overhead.
        let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&vec![0.5; 1280]);
        let bits_per_weight = q.storage_bits() as f64 / 1280.0;
        assert!((bits_per_weight - 4.15625).abs() < 1e-9);
    }

    #[test]
    fn codes_use_full_range() {
        // A ramp covering [-1, 1] must produce both code 0 and code 15.
        let values: Vec<f32> = (0..128).map(|i| i as f32 / 63.5 - 1.0).collect();
        let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
        assert_eq!(*q.codes().iter().min().expect("nonempty"), 0);
        assert_eq!(*q.codes().iter().max().expect("nonempty"), 15);
    }

    #[test]
    fn dequantize_f16_matches_f32_path_within_rounding() {
        let values: Vec<f32> = (0..128).map(|i| (i as f32).sin()).collect();
        let q = GroupQuantizer::default().quantize(&values);
        for (h, f) in q.dequantize_f16().iter().zip(q.dequantize()) {
            assert!((h.to_f32() - f).abs() <= f.abs() * 1e-3 + 1e-4);
        }
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_bounded_generic(
                values in proptest::collection::vec(-8.0f32..8.0, 1..400),
                bits in 2u32..=8,
            ) {
                let cfg = GroupQuantConfig::new(64, bits);
                let q = GroupQuantizer::new(cfg).quantize(&values);
                let d = q.dequantize();
                for (i, (&v, &r)) in values.iter().zip(&d).enumerate() {
                    let g = i / 64;
                    let step = q.scales()[g].to_f32().max(f32::MIN_POSITIVE);
                    prop_assert!(
                        (v - r).abs() <= step * 1.01 + 1e-3,
                        "elem {} of {}: orig {} deq {} step {}",
                        i, values.len(), v, r, step
                    );
                }
            }

            #[test]
            fn codes_always_in_range(
                values in proptest::collection::vec(-100.0f32..100.0, 1..300),
            ) {
                let cfg = GroupQuantConfig::w4_g128();
                let q = GroupQuantizer::new(cfg).quantize(&values);
                prop_assert!(q.codes().iter().all(|&c| c <= cfg.max_code()));
                prop_assert!(q.zeros().iter().all(|&z| z <= cfg.max_code()));
            }

            #[test]
            fn quantization_is_monotone_within_group(
                mut values in proptest::collection::vec(-4.0f32..4.0, 32),
            ) {
                // Sorting the inputs must produce non-decreasing codes: the
                // quantizer maps larger values to larger (or equal) codes.
                values.sort_by(f32::total_cmp);
                let q = GroupQuantizer::new(GroupQuantConfig::new(32, 4)).quantize(&values);
                for w in q.codes().windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
            }
        }
    }
}
