//! GPTQ-style second-order weight quantization — an extension beyond the
//! paper's AWQ choice, included so the two standard 4-bit PTQ families can
//! be compared on equal footing in this workspace.
//!
//! GPTQ quantizes a row's weights column by column, propagating each
//! element's rounding error into the not-yet-quantized columns through
//! the inverse Hessian of the layer's least-squares objective
//! (`H = X᷆ᵀX + λI` over calibration activations). The update direction
//! comes from the Cholesky factor of `H⁻¹`; this module implements the
//! dense Cholesky kernels it needs directly.

use crate::group::{GroupQuantConfig, GroupQuantizer, QuantizedTensor};

/// Dense symmetric positive-definite helper: in-place lower Cholesky
/// factorisation (`A = L·Lᵀ`, row-major, `n×n`).
///
/// # Errors
///
/// Returns the failing pivot column if the matrix is not positive
/// definite.
pub fn cholesky_in_place(a: &mut [f64], n: usize) -> Result<(), usize> {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        if d <= 0.0 {
            return Err(j);
        }
        let d = d.sqrt();
        a[j * n + j] = d;
        for i in j + 1..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / d;
        }
        for i in 0..j {
            a[i * n + j] = 0.0; // zero the upper triangle
        }
    }
    Ok(())
}

/// Inverts an SPD matrix via its Cholesky factor.
///
/// # Errors
///
/// Propagates the factorisation failure.
pub fn spd_inverse(a: &[f64], n: usize) -> Result<Vec<f64>, usize> {
    let mut l = a.to_vec();
    cholesky_in_place(&mut l, n)?;
    // Solve L·Lᵀ·X = I column by column.
    let mut inv = vec![0.0f64; n * n];
    for col in 0..n {
        // Forward solve L·y = e_col.
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut s = if i == col { 1.0 } else { 0.0 };
            for k in 0..i {
                s -= l[i * n + k] * y[k];
            }
            y[i] = s / l[i * n + i];
        }
        // Backward solve Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= l[k * n + i] * inv[k * n + col];
            }
            inv[i * n + col] = s / l[i * n + i];
        }
    }
    Ok(inv)
}

/// Upper Cholesky factor `U` with `A = Uᵀ·U` (what GPTQ reads its update
/// coefficients from).
///
/// # Errors
///
/// Propagates the factorisation failure.
pub fn cholesky_upper(a: &[f64], n: usize) -> Result<Vec<f64>, usize> {
    // A = L·Lᵀ ⇒ U = Lᵀ.
    let mut l = a.to_vec();
    cholesky_in_place(&mut l, n)?;
    let mut u = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i..n {
            u[i * n + j] = l[j * n + i];
        }
    }
    Ok(u)
}

/// Configuration of the GPTQ pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GptqConfig {
    /// Groupwise format (4-bit, groups of 128 in the deployment).
    pub quant: GroupQuantConfig,
    /// Hessian damping as a fraction of the mean diagonal (GPTQ uses 1%).
    pub damping: f64,
}

impl Default for GptqConfig {
    fn default() -> GptqConfig {
        GptqConfig {
            quant: GroupQuantConfig::w4_g128(),
            damping: 0.01,
        }
    }
}

/// A GPTQ-quantized matrix: per-row grouped tensors in the deployment
/// format, chosen with error compensation.
#[derive(Debug, Clone)]
pub struct GptqQuantizedMatrix {
    rows: usize,
    cols: usize,
    rows_q: Vec<QuantizedTensor>,
}

impl GptqQuantizedMatrix {
    /// Output rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row quantized tensors.
    pub fn rows_q(&self) -> &[QuantizedTensor] {
        &self.rows_q
    }

    /// Reconstructs the effective f32 weights, row-major.
    pub fn dequantize(&self) -> Vec<f32> {
        self.rows_q.iter().flat_map(|r| r.dequantize()).collect()
    }
}

/// Runs GPTQ over one linear layer.
///
/// * `weights` — row-major `rows × cols`.
/// * `calib` — calibration activations, row-major `n × cols`.
///
/// Group scales/zeros are frozen from the original weights (static
/// groups); codes are chosen sequentially with inverse-Hessian error
/// propagation.
///
/// # Panics
///
/// Panics on inconsistent dimensions or an empty calibration set.
pub fn quantize_gptq(
    weights: &[f32],
    rows: usize,
    cols: usize,
    calib: &[f32],
    config: GptqConfig,
) -> GptqQuantizedMatrix {
    assert_eq!(weights.len(), rows * cols, "weight dimensions inconsistent");
    assert!(
        !calib.is_empty() && calib.len().is_multiple_of(cols),
        "calibration shape mismatch"
    );

    // H = XᵀX + λ·mean(diag)·I.
    let n_samples = calib.len() / cols;
    let mut h = vec![0.0f64; cols * cols];
    for s in 0..n_samples {
        let x = &calib[s * cols..(s + 1) * cols];
        for i in 0..cols {
            let xi = x[i] as f64;
            if xi == 0.0 {
                continue;
            }
            for j in i..cols {
                h[i * cols + j] += xi * x[j] as f64;
            }
        }
    }
    for i in 0..cols {
        for j in 0..i {
            h[i * cols + j] = h[j * cols + i];
        }
    }
    let mean_diag = (0..cols).map(|i| h[i * cols + i]).sum::<f64>() / cols as f64;
    let lambda = (config.damping * mean_diag).max(1e-8);
    for i in 0..cols {
        h[i * cols + i] += lambda;
    }

    let hinv = spd_inverse(&h, cols).expect("damped Hessian is positive definite");
    let u = cholesky_upper(&hinv, cols).expect("H^-1 is positive definite");

    // Freeze group metadata from the original weights (per row). Rows are
    // fully independent given the shared Cholesky factor, so with fast
    // kernels on they fan out across worker threads, each thread reusing
    // one f64 error-propagation buffer. Every row runs the identical
    // serial column sweep and results are collected in row order, so the
    // codes are bit-identical for any thread count.
    let reference = GroupQuantizer::new(config.quant);
    let rows_q = if zllm_fp16::fast_kernels_enabled() {
        zllm_par::par_map_init((0..rows).collect(), Vec::new, |w64, r| {
            quantize_gptq_row(
                &weights[r * cols..(r + 1) * cols],
                cols,
                &u,
                &reference,
                config,
                w64,
            )
        })
    } else {
        let mut w64 = Vec::new();
        weights
            .chunks(cols)
            .map(|row| quantize_gptq_row(row, cols, &u, &reference, config, &mut w64))
            .collect()
    };

    GptqQuantizedMatrix { rows, cols, rows_q }
}

/// Quantizes one row with inverse-Hessian error propagation. `w64` is the
/// reusable error-compensated working copy of the row (cleared first).
fn quantize_gptq_row(
    row: &[f32],
    cols: usize,
    u: &[f64],
    reference: &GroupQuantizer,
    config: GptqConfig,
    w64: &mut Vec<f64>,
) -> QuantizedTensor {
    let gs = config.quant.group_size;
    let levels = config.quant.levels() as f32;
    let frozen = reference.quantize(row);
    let scales = frozen.scales().to_vec();
    let zeros = frozen.zeros().to_vec();

    w64.clear();
    w64.extend(row.iter().map(|&v| v as f64));
    let mut codes = Vec::with_capacity(cols);
    for j in 0..cols {
        let g = j / gs;
        let s = scales[g].to_f32().max(f32::MIN_POSITIVE) as f64;
        let z = zeros[g] as f64;
        let q = ((w64[j] / s + z).round()).clamp(0.0, levels as f64);
        codes.push(q as u8);
        let deq = (q - z) * s;
        let err = (w64[j] - deq) / u[j * cols + j];
        for (k, wk) in w64.iter_mut().enumerate().skip(j + 1) {
            *wk -= err * u[j * cols + k];
        }
    }
    QuantizedTensor::from_parts(config.quant, codes, scales, zeros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::mse;
    use zllm_rng::StdRng;

    fn matmul(w: &[f32], rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
        let n = x.len() / cols;
        let mut out = Vec::with_capacity(n * rows);
        for s in 0..n {
            let xs = &x[s * cols..(s + 1) * cols];
            for row in w.chunks(cols) {
                out.push(row.iter().zip(xs).map(|(a, b)| a * b).sum());
            }
        }
        out
    }

    /// Correlated calibration data: GPTQ's error propagation needs
    /// off-diagonal Hessian structure to beat RTN.
    fn correlated_case(seed: u64) -> (Vec<f32>, usize, usize, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (rows, cols) = (24, 64);
        let weights: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-0.5f32..0.5))
            .collect();
        let mut calib = Vec::with_capacity(24 * cols);
        for _ in 0..24 {
            let shared = rng.gen_range(-1.0f32..1.0);
            for j in 0..cols {
                let own = rng.gen_range(-0.4f32..0.4);
                calib.push(shared * (1.0 + j as f32 / cols as f32) + own);
            }
        }
        (weights, rows, cols, calib)
    }

    #[test]
    fn cholesky_recovers_known_factor() {
        // A = L·Lᵀ with a chosen L.
        let l = [2.0f64, 0.0, 0.0, 1.0, 3.0, 0.0, 0.5, -1.0, 1.5];
        let n = 3;
        let mut a = vec![0.0f64; 9];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i * n + j] += l[i * n + k] * l[j * n + k];
                }
            }
        }
        let mut f = a.clone();
        cholesky_in_place(&mut f, n).expect("SPD");
        for (got, want) in f.iter().zip(&l) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert_eq!(cholesky_in_place(&mut a, 2), Err(1));
    }

    #[test]
    fn spd_inverse_is_an_inverse() {
        let a = [4.0f64, 1.0, 0.5, 1.0, 3.0, -0.2, 0.5, -0.2, 2.0];
        let inv = spd_inverse(&a, 3).expect("SPD");
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += a[i * 3 + k] * inv[k * 3 + j];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s - want).abs() < 1e-10, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn cholesky_upper_reconstructs() {
        let a = [4.0f64, 1.0, 1.0, 3.0];
        let u = cholesky_upper(&a, 2).expect("SPD");
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += u[k * 2 + i] * u[k * 2 + j];
                }
                assert!((s - a[i * 2 + j]).abs() < 1e-12);
            }
        }
        // Upper triangular.
        assert_eq!(u[2], 0.0);
    }

    #[test]
    fn gptq_beats_rtn_on_correlated_data() {
        let (weights, rows, cols, calib) = correlated_case(13);
        let cfg = GptqConfig {
            quant: GroupQuantConfig::new(32, 4),
            damping: 0.01,
        };
        let gptq = quantize_gptq(&weights, rows, cols, &calib, cfg);
        let rtn = GroupQuantizer::new(cfg.quant);
        let rtn_w: Vec<f32> = weights
            .chunks(cols)
            .flat_map(|r| rtn.quantize(r).dequantize())
            .collect();

        let reference = matmul(&weights, rows, cols, &calib);
        let err_gptq = mse(&reference, &matmul(&gptq.dequantize(), rows, cols, &calib));
        let err_rtn = mse(&reference, &matmul(&rtn_w, rows, cols, &calib));
        assert!(
            err_gptq < err_rtn,
            "GPTQ {err_gptq} should beat RTN {err_rtn} on correlated activations"
        );
    }

    #[test]
    fn gptq_codes_are_deployable() {
        // The output must be a valid deployment-format tensor: in-range
        // codes, right group metadata — streamable by the layout crate.
        let (weights, rows, cols, calib) = correlated_case(5);
        let cfg = GptqConfig {
            quant: GroupQuantConfig::new(32, 4),
            damping: 0.01,
        };
        let q = quantize_gptq(&weights, rows, cols, &calib, cfg);
        assert_eq!(q.rows(), rows);
        assert_eq!(q.cols(), cols);
        for row in q.rows_q() {
            assert_eq!(row.len(), cols);
            assert!(row.codes().iter().all(|&c| c <= 15));
            assert_eq!(row.num_groups(), cols / 32);
        }
        let deq = q.dequantize();
        assert_eq!(deq.len(), rows * cols);
        assert!(deq.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn codes_are_independent_of_fast_kernels_and_threads() {
        let (weights, rows, cols, calib) = correlated_case(29);
        let cfg = GptqConfig {
            quant: GroupQuantConfig::new(32, 4),
            damping: 0.01,
        };
        zllm_fp16::set_fast_kernels(false);
        let slow = quantize_gptq(&weights, rows, cols, &calib, cfg);
        zllm_fp16::set_fast_kernels(true);
        for threads in [Some(1), Some(4), None] {
            zllm_par::set_max_threads(threads);
            let fast = quantize_gptq(&weights, rows, cols, &calib, cfg);
            for (r, (a, b)) in fast.rows_q().iter().zip(slow.rows_q()).enumerate() {
                assert_eq!(a.codes(), b.codes(), "threads {threads:?}, row {r}");
                assert_eq!(a.scales(), b.scales());
                assert_eq!(a.zeros(), b.zeros());
            }
        }
        zllm_par::set_max_threads(None);
    }

    #[test]
    #[should_panic(expected = "calibration shape mismatch")]
    fn calibration_validated() {
        let _ = quantize_gptq(&[0.0; 8], 2, 4, &[1.0; 3], GptqConfig::default());
    }
}
