//! AWQ's second component: per-group weight-clipping search.
//!
//! After per-channel scaling, AWQ additionally searches a clipping ratio
//! per quantization group: shrinking the dynamic range sacrifices the
//! few largest weights but shrinks the step for everything else, often a
//! net win. The objective is activation-weighted reconstruction error
//! (`Σ m_j²·(w_j − ŵ_j)²` with `m_j` the channel's mean activation
//! magnitude), so salient channels steer the decision.

use crate::group::{GroupQuantConfig, QuantizedTensor};
use zllm_fp16::F16;

/// Quantizes one tensor with a per-group clip search.
///
/// * `values` — the weights (one logical row; groups are consecutive).
/// * `act_mag` — per-element activation magnitudes (same length), e.g.
///   the channel magnitudes repeated per group; pass all-ones for a
///   plain (unweighted) clip search.
/// * `ratios` — candidate clip ratios; `1.0` (no clipping) should be
///   included so the search can only improve on round-to-nearest.
///
/// # Panics
///
/// Panics on length mismatch or an empty ratio list.
///
/// # Example
///
/// ```
/// use zllm_quant::clip::quantize_clipped;
/// use zllm_quant::group::GroupQuantConfig;
///
/// let w: Vec<f32> = (0..128).map(|i| if i == 7 { 3.0 } else { (i as f32 * 0.1).sin() * 0.1 }).collect();
/// let mag = vec![1.0f32; 128];
/// let q = quantize_clipped(&w, &mag, GroupQuantConfig::w4_g128(), &[1.0, 0.8, 0.6, 0.4]);
/// assert_eq!(q.len(), 128);
/// ```
pub fn quantize_clipped(
    values: &[f32],
    act_mag: &[f32],
    cfg: GroupQuantConfig,
    ratios: &[f32],
) -> QuantizedTensor {
    assert_eq!(
        values.len(),
        act_mag.len(),
        "activation magnitude length mismatch"
    );
    assert!(!ratios.is_empty(), "empty clip-ratio list");
    let gs = cfg.group_size;
    let levels = cfg.levels() as f32;
    let max_code = cfg.max_code();

    let mut codes = Vec::with_capacity(values.len());
    let mut scales = Vec::new();
    let mut zeros = Vec::new();

    for (group, mags) in values.chunks(gs).zip(act_mag.chunks(gs)) {
        let (min, max) = group
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let (min0, max0) = (min.min(0.0), max.max(0.0));

        let mut best: Option<(f64, F16, u8, Vec<u8>)> = None;
        // Two-sided search: an outlier usually sits on one side only, so
        // the two range ends clip independently.
        for &rmin in ratios {
            for &rmax in ratios {
                let (cmin, cmax) = (min0 * rmin, max0 * rmax);
                let range = cmax - cmin;
                let scale_f32 = if range > 0.0 { range / levels } else { 1.0 };
                let scale = F16::from_f32(scale_f32);
                let s = scale.to_f32().max(f32::MIN_POSITIVE);
                let zero = (-cmin / s).round().clamp(0.0, levels) as u8;
                let mut err = 0.0f64;
                let group_codes: Vec<u8> = group
                    .iter()
                    .zip(mags)
                    .map(|(&v, &m)| {
                        let q =
                            ((v / s + zero as f32).round().clamp(0.0, levels) as u8).min(max_code);
                        let deq = (q as i32 - zero as i32) as f32 * s;
                        let e = (v - deq) as f64 * m as f64;
                        err += e * e;
                        q
                    })
                    .collect();
                match &best {
                    Some((e, ..)) if *e <= err => {}
                    _ => best = Some((err, scale, zero, group_codes)),
                }
            }
        }
        let (_, scale, zero, group_codes) = best.expect("ratio list is non-empty");
        scales.push(scale);
        zeros.push(zero);
        codes.extend(group_codes);
    }

    QuantizedTensor::from_parts(cfg, codes, scales, zeros)
}

/// The default ratio grid AWQ-style clip searches use.
pub fn default_ratios() -> Vec<f32> {
    (0..=10).map(|i| 1.0 - i as f32 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupQuantizer;

    /// A group with one extreme outlier: clipping it shrinks the step for
    /// the other 127 weights.
    fn outlier_group() -> Vec<f32> {
        let mut v: Vec<f32> = (0..128)
            .map(|i| ((i * 13) % 41) as f32 / 410.0 - 0.05)
            .collect();
        v[77] = 2.0;
        v
    }

    fn weighted_mse(a: &[f32], b: &[f32], m: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .zip(m)
            .map(|((&x, &y), &w)| ((x - y) as f64 * w as f64).powi(2))
            .sum::<f64>()
            / a.len() as f64
    }

    #[test]
    fn clipping_beats_rtn_when_the_outlier_is_unimportant() {
        // The AWQ insight in miniature: if activations say the outlier
        // channel barely matters, clipping its range shrinks the step for
        // the 127 weights that do matter — a strict weighted-error win.
        // (With uniform weighting, 4-bit clipping of one extreme outlier
        // is a wash; `never_worse_than_rtn_when_ratio_one_included`
        // covers that regime.)
        let v = outlier_group();
        let mut mag = vec![1.0f32; 128];
        mag[77] = 0.01;
        let cfg = GroupQuantConfig::w4_g128();
        // The outlier is 40× the bulk range, so the search needs deep
        // ratios to find the optimum.
        let ratios = [1.0f32, 0.5, 0.2, 0.1, 0.05];
        let clipped = quantize_clipped(&v, &mag, cfg, &ratios);
        let rtn = GroupQuantizer::new(cfg).quantize(&v);
        let e_clip = weighted_mse(&v, &clipped.dequantize(), &mag);
        let e_rtn = weighted_mse(&v, &rtn.dequantize(), &mag);
        assert!(
            e_clip < e_rtn * 0.5,
            "clip search {e_clip} should decisively beat RTN {e_rtn}"
        );
    }

    #[test]
    fn ratio_one_matches_rtn_exactly() {
        let v = outlier_group();
        let mag = vec![1.0f32; 128];
        let cfg = GroupQuantConfig::w4_g128();
        let clipped = quantize_clipped(&v, &mag, cfg, &[1.0]);
        let rtn = GroupQuantizer::new(cfg).quantize(&v);
        assert_eq!(clipped.codes(), rtn.codes());
        assert_eq!(clipped.zeros(), rtn.zeros());
    }

    #[test]
    fn activation_weighting_protects_salient_channels() {
        // With huge activation magnitude on the outlier channel, the
        // search must not clip it away.
        let v = outlier_group();
        let mut mag = vec![1.0f32; 128];
        mag[77] = 1000.0;
        let cfg = GroupQuantConfig::w4_g128();
        let q = quantize_clipped(&v, &mag, cfg, &default_ratios());
        let deq = q.dequantize();
        // The outlier must survive nearly intact.
        assert!(
            (deq[77] - v[77]).abs() < 0.15,
            "salient weight clipped: {} vs {}",
            deq[77],
            v[77]
        );
    }

    #[test]
    fn never_worse_than_rtn_when_ratio_one_included() {
        for seed in 0..5u64 {
            let v: Vec<f32> = (0..256)
                .map(|i| ((i as u64 * 2654435761 + seed * 97) % 1000) as f32 / 500.0 - 1.0)
                .collect();
            let mag = vec![1.0f32; 256];
            let cfg = GroupQuantConfig::w4_g128();
            let clipped = quantize_clipped(&v, &mag, cfg, &default_ratios());
            let rtn = GroupQuantizer::new(cfg).quantize(&v);
            let e_clip = weighted_mse(&v, &clipped.dequantize(), &mag);
            let e_rtn = weighted_mse(&v, &rtn.dequantize(), &mag);
            assert!(e_clip <= e_rtn * 1.0001, "seed {seed}: {e_clip} vs {e_rtn}");
        }
    }

    #[test]
    #[should_panic(expected = "empty clip-ratio list")]
    fn empty_ratios_rejected() {
        let _ = quantize_clipped(&[1.0], &[1.0], GroupQuantConfig::w4_g128(), &[]);
    }
}
