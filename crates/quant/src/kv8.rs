//! KV8: 8-bit linear quantization of the key/value cache (§IV-B, §VI-C).
//!
//! As each key/value head vector is produced during decoding, the SPU's
//! quantization submodule makes two passes over it: the first finds the
//! dynamic range and derives the scale `s = (x_max − x_min) / 255` and the
//! zero point (the paper writes `z = ⌈x_min / s⌉`; we use the equivalent
//! unsigned convention `z = round(−x_min / s)` over a zero-extended range so
//! `z` always fits its 8-bit field); the second emits the 8-bit codes. The
//! `(scale, zero)` pair is a 32-bit *scale-zero pack* (16-bit scale, 8-bit
//! zero, 8-bit padding) that `zllm-layout` batches into bus-aligned
//! transfers. Dequantization `(q − z) · s` happens when the cache is
//! streamed back for attention.

use zllm_fp16::F16;

/// The scale-zero metadata of one quantized KV vector, as packed into the
/// 32-bit wire format of Fig. 4B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleZero {
    /// FP16 quantization step.
    pub scale: F16,
    /// Unsigned zero point `z = round(−x_min / s)`, stored in the 8-bit
    /// field of the pack.
    pub zero: u8,
}

impl ScaleZero {
    /// Encodes into the 32-bit pack: `[pad:8 | zero:8 | scale:16]`.
    pub fn to_pack(self) -> u32 {
        ((self.zero as u32) << 16) | self.scale.to_bits() as u32
    }

    /// Decodes from the 32-bit pack.
    pub fn from_pack(pack: u32) -> ScaleZero {
        ScaleZero {
            scale: F16::from_bits((pack & 0xFFFF) as u16),
            zero: ((pack >> 16) & 0xFF) as u8,
        }
    }
}

/// An 8-bit quantized vector (one K or V head vector for one token).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKv {
    meta: ScaleZero,
    codes: Vec<u8>,
}

impl QuantizedKv {
    /// The scale-zero metadata.
    pub fn meta(&self) -> ScaleZero {
        self.meta
    }

    /// The 8-bit codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dequantizes one element: `(q − z) · s`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn dequantize_at(&self, idx: usize) -> f32 {
        let q = self.codes[idx] as i32;
        let z = self.meta.zero as i32;
        (q - z) as f32 * self.meta.scale.to_f32()
    }

    /// Dequantizes the whole vector to f32.
    pub fn dequantize(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.dequantize_at(i)).collect()
    }

    /// Dequantizes to FP16 (the VPU operand type).
    pub fn dequantize_f16(&self) -> Vec<F16> {
        let mut out = Vec::new();
        self.dequantize_f16_into(&mut out);
        out
    }

    /// [`QuantizedKv::dequantize`] into a caller-provided buffer (cleared
    /// first), so attention loops can stream the cache without a fresh
    /// allocation per (token, head). Element values are identical to the
    /// allocating variant.
    pub fn dequantize_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.len());
        out.extend((0..self.len()).map(|i| self.dequantize_at(i)));
    }

    /// [`QuantizedKv::dequantize_f16`] into a caller-provided buffer
    /// (cleared first).
    pub fn dequantize_f16_into(&self, out: &mut Vec<F16>) {
        out.clear();
        out.reserve(self.len());
        out.extend((0..self.len()).map(|i| F16::from_f32(self.dequantize_at(i))));
    }
}

/// Quantizes one KV vector with the paper's two-pass scheme.
///
/// # Example
///
/// ```
/// use zllm_quant::kv8::quantize_kv;
///
/// let v: Vec<f32> = (0..64).map(|i| (i as f32 / 10.0).sin()).collect();
/// let q = quantize_kv(&v);
/// let err: f32 = v.iter().zip(q.dequantize())
///     .map(|(a, b)| (a - b).abs())
///     .fold(0.0, f32::max);
/// assert!(err <= q.meta().scale.to_f32() * 1.01 + 1e-4);
/// ```
pub fn quantize_kv(values: &[f32]) -> QuantizedKv {
    quantize_kv_bits(values, 8)
}

/// Quantizes one KV vector at an arbitrary code width (1..=8 bits).
///
/// The paper adopts 8-bit (§IV-B) after noting that 4-bit KV quantization
/// is possible but degrades small models' reasoning; this parametric form
/// supports the KV8-vs-KV4 ablation that decision rests on. Codes are
/// still stored one per byte; the *accounting* of sub-byte packing lives
/// in the layout crate.
///
/// # Panics
///
/// Panics if `bits` is 0 or > 8.
pub fn quantize_kv_bits(values: &[f32], bits: u32) -> QuantizedKv {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    let levels = ((1u32 << bits) - 1) as f32;
    // Pass 1: dynamic range, zero-extended so the zero point fits the
    // code width.
    let (min, max) = values
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let (min, max) = if values.is_empty() {
        (0.0, 0.0)
    } else {
        (min.min(0.0), max.max(0.0))
    };
    let range = max - min;
    let scale_f32 = if range > 0.0 { range / levels } else { 1.0 };
    let scale = F16::from_f32(scale_f32);
    let s = scale.to_f32().max(f32::MIN_POSITIVE);
    let zero = (-min / s).round().clamp(0.0, levels) as u8;

    // Pass 2: codes q = round(x/s) + z, clamped to the code range.
    let codes = values
        .iter()
        .map(|&v| ((v / s).round() + zero as f32).clamp(0.0, levels) as u8)
        .collect();

    QuantizedKv {
        meta: ScaleZero { scale, zero },
        codes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let m = ScaleZero {
            scale: F16::from_f32(0.0123),
            zero: 219,
        };
        let back = ScaleZero::from_pack(m.to_pack());
        assert_eq!(back, m);
        // Top byte is padding (zero).
        assert_eq!(m.to_pack() >> 24, 0);
    }

    #[test]
    fn roundtrip_error_within_one_step() {
        let v: Vec<f32> = (0..128)
            .map(|i| ((i * 7) % 31) as f32 / 3.0 - 4.0)
            .collect();
        let q = quantize_kv(&v);
        let s = q.meta().scale.to_f32();
        for (a, b) in v.iter().zip(q.dequantize()) {
            assert!((a - b).abs() <= s * 1.01 + 1e-4, "{a} vs {b} (s={s})");
        }
    }

    #[test]
    fn negative_only_vector() {
        // Range zero-extends to [-3, 0]; the zero point saturates near 255.
        let v = vec![-3.0f32, -2.0, -1.5, -1.0];
        let q = quantize_kv(&v);
        for (a, b) in v.iter().zip(q.dequantize()) {
            assert!((a - b).abs() <= q.meta().scale.to_f32() + 1e-3);
        }
        assert_eq!(q.meta().zero, 255);
    }

    #[test]
    fn constant_vector_reconstructs() {
        for c in [0.0f32, 2.5, -1.25] {
            let q = quantize_kv(&[c; 16]);
            for d in q.dequantize() {
                assert!((d - c).abs() <= c.abs() * 2e-2 + 1e-6, "constant {c} → {d}");
            }
        }
    }

    #[test]
    fn empty_vector() {
        let q = quantize_kv(&[]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.dequantize().is_empty());
    }

    #[test]
    fn extremes_map_to_code_range_ends() {
        let v: Vec<f32> = (0..=255).map(|i| i as f32 / 25.0).collect();
        let q = quantize_kv(&v);
        assert_eq!(*q.codes().iter().min().expect("nonempty"), 0);
        assert_eq!(*q.codes().iter().max().expect("nonempty"), 255);
    }

    #[test]
    fn f16_dequant_close_to_f32_dequant() {
        let v: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).cos()).collect();
        let q = quantize_kv(&v);
        for (h, f) in q.dequantize_f16().iter().zip(q.dequantize()) {
            assert!((h.to_f32() - f).abs() <= f.abs() * 1e-3 + 1e-4);
        }
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_bounded(v in proptest::collection::vec(-10.0f32..10.0, 1..256)) {
                let q = quantize_kv(&v);
                let s = q.meta().scale.to_f32();
                for (a, b) in v.iter().zip(q.dequantize()) {
                    prop_assert!((a - b).abs() <= s * 1.51 + 1e-4, "{} vs {} (s={})", a, b, s);
                }
            }

            #[test]
            fn pack_roundtrip_generic(bits in proptest::num::u16::ANY, zero in proptest::num::u8::ANY) {
                let m = ScaleZero { scale: F16::from_bits(bits), zero };
                let back = ScaleZero::from_pack(m.to_pack());
                prop_assert_eq!(back.scale.to_bits(), bits);
                prop_assert_eq!(back.zero, zero);
            }

            #[test]
            fn codes_span_is_monotone(mut v in proptest::collection::vec(-5.0f32..5.0, 2..64)) {
                v.sort_by(f32::total_cmp);
                let q = quantize_kv(&v);
                for w in q.codes().windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
            }
        }
    }

    #[test]
    fn kv4_error_is_roughly_16x_kv8() {
        let v: Vec<f32> = (0..128)
            .map(|i| ((i * 13) % 97) as f32 / 20.0 - 2.4)
            .collect();
        let q8 = quantize_kv_bits(&v, 8);
        let q4 = quantize_kv_bits(&v, 4);
        let rmse = |q: &QuantizedKv| {
            let d = q.dequantize();
            (v.iter()
                .zip(&d)
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / v.len() as f64)
                .sqrt()
        };
        let r8 = rmse(&q8);
        let r4 = rmse(&q4);
        assert!(r4 > 8.0 * r8, "KV4 rmse {r4} should dwarf KV8 rmse {r8}");
        assert!(r4 < 32.0 * r8, "KV4 rmse {r4} implausibly bad vs {r8}");
    }

    #[test]
    fn kv_bits_codes_stay_in_range() {
        let v: Vec<f32> = (0..64).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
        for bits in 1..=8u32 {
            let q = quantize_kv_bits(&v, bits);
            let max_code = ((1u32 << bits) - 1) as u8;
            assert!(q.codes().iter().all(|&c| c <= max_code), "bits {bits}");
            assert!(q.meta().zero <= max_code, "bits {bits}");
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=8")]
    fn kv_bits_validated() {
        let _ = quantize_kv_bits(&[1.0], 9);
    }
}
