//! Activation-aware weight quantization (AWQ), §IV-A.
//!
//! The paper adopts AWQ's W4A16 scheme: before groupwise 4-bit quantization,
//! each weight **column** (input channel) is multiplied by a per-channel
//! scale `s_j = m_j^α / norm`, where `m_j` is the mean activation magnitude
//! of channel `j` observed on calibration data. Scaling up salient channels
//! shrinks their relative quantization error; the activation entering the
//! layer is divided by the same scale at runtime (folded into the previous
//! layer in a real deployment, applied explicitly here). The exponent `α`
//! is chosen by grid search to minimise the output MSE of the layer.
//!
//! This module implements the search on row-major weight matrices, so the
//! quantized artifacts produced by the workspace are genuinely
//! activation-aware rather than plain round-to-nearest.

use crate::error::mse;
use crate::group::{GroupQuantConfig, GroupQuantizer, QuantizedTensor};

/// A weight matrix quantized with AWQ per-channel scaling.
#[derive(Debug, Clone)]
pub struct AwqQuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Chosen grid-search exponent.
    alpha: f32,
    /// Per-input-channel scales applied to columns before quantization.
    channel_scales: Vec<f32>,
    /// The quantized scaled weights, row-major, one tensor per row so each
    /// row starts a fresh quantization group (as the streaming hardware
    /// requires: a dot product consumes whole groups of one row).
    rows_q: Vec<QuantizedTensor>,
}

impl AwqQuantizedMatrix {
    /// Output dimension (number of rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimension (number of columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The α chosen by the grid search.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Per-channel scales (length = `cols`).
    pub fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    /// The quantized row tensors.
    pub fn rows_q(&self) -> &[QuantizedTensor] {
        &self.rows_q
    }

    /// Reconstructs the effective weight matrix
    /// `Ŵ[i][j] = dequant(W·s)[i][j] / s_j`, row-major.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        let mut row = Vec::with_capacity(self.cols);
        self.dequantize_with(&mut row, &mut out);
        out
    }

    /// [`AwqQuantizedMatrix::dequantize`] into caller-provided buffers:
    /// `row` is per-row dequantization scratch, `out` receives the matrix
    /// (cleared first). Values are identical to the allocating variant.
    pub fn dequantize_with(&self, row: &mut Vec<f32>, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.rows * self.cols);
        for r in &self.rows_q {
            r.dequantize_into(row);
            for (j, v) in row.iter().enumerate() {
                out.push(v / self.channel_scales[j]);
            }
        }
    }

    /// Applies the runtime input transform: divides an activation vector by
    /// the per-channel scales (the x/s of AWQ).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn scale_input(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "activation length mismatch");
        x.iter()
            .zip(&self.channel_scales)
            .map(|(&v, &s)| v / s)
            .collect()
    }
}

/// Configuration of the AWQ search.
#[derive(Debug, Clone)]
pub struct AwqConfig {
    /// Groupwise quantizer settings (4-bit, group 128 in the paper).
    pub quant: GroupQuantConfig,
    /// Grid of α values to try (0 disables scaling entirely).
    pub alpha_grid: Vec<f32>,
}

impl Default for AwqConfig {
    fn default() -> AwqConfig {
        AwqConfig {
            quant: GroupQuantConfig::w4_g128(),
            alpha_grid: (0..=10).map(|i| i as f32 / 10.0).collect(),
        }
    }
}

/// Runs the AWQ grid search for one linear layer.
///
/// * `weights` — row-major `rows × cols` matrix.
/// * `calib` — calibration activations, row-major `n × cols` (at least one).
///
/// Returns the quantized matrix with the α minimising the layer output MSE
/// over the calibration set.
///
/// # Panics
///
/// Panics if dimensions are inconsistent, `calib` is empty, or the α grid
/// is empty.
pub fn quantize_awq(
    weights: &[f32],
    rows: usize,
    cols: usize,
    calib: &[f32],
    config: &AwqConfig,
) -> AwqQuantizedMatrix {
    assert_eq!(weights.len(), rows * cols, "weight dimensions inconsistent");
    assert!(
        !calib.is_empty() && calib.len().is_multiple_of(cols),
        "calibration shape mismatch"
    );
    assert!(!config.alpha_grid.is_empty(), "empty alpha grid");
    let n_calib = calib.len() / cols;

    // Mean activation magnitude per channel.
    let mut mag = vec![0.0f32; cols];
    for row in calib.chunks(cols) {
        for (m, &v) in mag.iter_mut().zip(row) {
            *m += v.abs();
        }
    }
    for m in &mut mag {
        *m /= n_calib as f32;
        // Guard channels that are silent in the calibration set.
        if *m <= 0.0 {
            *m = 1e-6;
        }
    }

    // Reference outputs (exact f32 GEMM).
    let reference = matmul(weights, rows, cols, calib, n_calib);

    // Each α candidate is independent: quantize, reconstruct, evaluate.
    // With fast kernels on, candidates fan out across worker threads with
    // one reusable workspace per thread (zero per-candidate allocation
    // beyond the candidate tensor itself); errors come back in grid order
    // so the serial first-wins scan below picks the same α bit-for-bit for
    // any thread count.
    let evaluated: Vec<(f64, AwqQuantizedMatrix)> = if zllm_fp16::fast_kernels_enabled() {
        zllm_par::par_map_init(
            config.alpha_grid.clone(),
            AwqWorkspace::default,
            |ws, alpha| {
                let candidate =
                    quantize_with_alpha_ws(weights, rows, cols, &mag, alpha, config.quant, ws);
                candidate.dequantize_with(&mut ws.row, &mut ws.w_hat);
                matmul_into(&ws.w_hat, rows, cols, calib, n_calib, &mut ws.outputs);
                (mse(&reference, &ws.outputs), candidate)
            },
        )
    } else {
        config
            .alpha_grid
            .iter()
            .map(|&alpha| {
                let candidate = quantize_with_alpha(weights, rows, cols, &mag, alpha, config.quant);
                let w_hat = candidate.dequantize();
                let outputs = matmul(&w_hat, rows, cols, calib, n_calib);
                (mse(&reference, &outputs), candidate)
            })
            .collect()
    };

    let mut best: Option<(f64, AwqQuantizedMatrix)> = None;
    for (err, candidate) in evaluated {
        match &best {
            Some((e, _)) if *e <= err => {}
            _ => best = Some((err, candidate)),
        }
    }
    best.expect("alpha grid is non-empty").1
}

/// Per-thread scratch for the parallel α search: every buffer the
/// candidate evaluation needs, allocated once per worker thread.
#[derive(Debug, Default)]
struct AwqWorkspace {
    /// Per-channel scales under construction.
    scales: Vec<f32>,
    /// One scaled weight row awaiting quantization.
    scaled: Vec<f32>,
    /// Per-row dequantization scratch.
    row: Vec<f32>,
    /// Reconstructed effective weights Ŵ.
    w_hat: Vec<f32>,
    /// Candidate layer outputs over the calibration set.
    outputs: Vec<f32>,
}

/// Quantizes with a fixed α (no search) — used by tests and ablations.
pub fn quantize_with_alpha(
    weights: &[f32],
    rows: usize,
    cols: usize,
    channel_mag: &[f32],
    alpha: f32,
    quant: GroupQuantConfig,
) -> AwqQuantizedMatrix {
    let mut ws = AwqWorkspace::default();
    quantize_with_alpha_ws(weights, rows, cols, channel_mag, alpha, quant, &mut ws)
}

/// [`quantize_with_alpha`] with caller-provided scratch — the same
/// operations in the same order (results are bit-identical), but the
/// intermediate scale/scaled-row buffers come from `ws`.
fn quantize_with_alpha_ws(
    weights: &[f32],
    rows: usize,
    cols: usize,
    channel_mag: &[f32],
    alpha: f32,
    quant: GroupQuantConfig,
    ws: &mut AwqWorkspace,
) -> AwqQuantizedMatrix {
    assert_eq!(weights.len(), rows * cols, "weight dimensions inconsistent");
    assert_eq!(channel_mag.len(), cols, "channel magnitude length mismatch");

    // s_j = m_j^alpha, normalised to geometric mean 1 so the overall weight
    // magnitude (and hence the groupwise dynamic range) stays centred.
    let scales = &mut ws.scales;
    scales.clear();
    scales.extend(channel_mag.iter().map(|&m| m.powf(alpha)));
    let log_mean = scales
        .iter()
        .map(|&s| (s.max(1e-30) as f64).ln())
        .sum::<f64>()
        / cols as f64;
    let norm = log_mean.exp() as f32;
    for s in scales.iter_mut() {
        *s = (*s / norm).clamp(1e-4, 1e4);
    }

    let quantizer = GroupQuantizer::new(quant);
    let mut rows_q = Vec::with_capacity(rows);
    for row in weights.chunks(cols) {
        ws.scaled.clear();
        ws.scaled
            .extend(row.iter().zip(scales.iter()).map(|(&w, &s)| w * s));
        rows_q.push(quantizer.quantize(&ws.scaled));
    }

    AwqQuantizedMatrix {
        rows,
        cols,
        alpha,
        channel_scales: scales.clone(),
        rows_q,
    }
}

/// Row-major GEMM helper: `out[n][r] = Σ_j w[r][j] · x[n][j]`.
fn matmul(w: &[f32], rows: usize, cols: usize, x: &[f32], n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n * rows);
    matmul_into(w, rows, cols, x, n, &mut out);
    out
}

/// [`matmul`] into a caller-provided buffer (cleared first). Each output's
/// serial accumulation order is unchanged, so results are bit-identical.
fn matmul_into(w: &[f32], rows: usize, cols: usize, x: &[f32], n: usize, out: &mut Vec<f32>) {
    out.clear();
    out.resize(n * rows, 0.0);
    for (i, xrow) in x.chunks(cols).enumerate() {
        for (r, wrow) in w.chunks(cols).enumerate() {
            let mut acc = 0.0f32;
            for (a, b) in wrow.iter().zip(xrow) {
                acc += a * b;
            }
            out[i * rows + r] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zllm_rng::StdRng;

    /// Synthetic layer with one salient input channel — the scenario AWQ
    /// is designed for.
    fn salient_case(seed: u64) -> (Vec<f32>, usize, usize, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (rows, cols) = (8, 64);
        let weights: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        // Channel 3 carries activations 50× larger than the rest.
        let calib: Vec<f32> = (0..16 * cols)
            .map(|i| {
                let base = rng.gen_range(-1.0f32..1.0);
                if i % cols == 3 {
                    base * 50.0
                } else {
                    base
                }
            })
            .collect();
        (weights, rows, cols, calib)
    }

    #[test]
    fn awq_beats_plain_rtn_on_salient_channels() {
        let (weights, rows, cols, calib) = salient_case(7);
        let cfg = AwqConfig {
            quant: GroupQuantConfig::new(32, 4),
            ..AwqConfig::default()
        };
        let awq = quantize_awq(&weights, rows, cols, &calib, &cfg);
        let mag = vec![1.0f32; cols];
        let rtn = quantize_with_alpha(&weights, rows, cols, &mag, 0.0, cfg.quant);

        let n = calib.len() / cols;
        let reference = matmul(&weights, rows, cols, &calib, n);
        let awq_out = matmul(&awq.dequantize(), rows, cols, &calib, n);
        let rtn_out = matmul(&rtn.dequantize(), rows, cols, &calib, n);
        let awq_err = mse(&reference, &awq_out);
        let rtn_err = mse(&reference, &rtn_out);
        assert!(
            awq_err <= rtn_err,
            "AWQ (α={}) err {awq_err} should not exceed RTN err {rtn_err}",
            awq.alpha()
        );
        assert!(awq.alpha() > 0.0, "search should pick a non-trivial α");
    }

    #[test]
    fn alpha_zero_matches_plain_quantization() {
        let (weights, rows, cols, _) = salient_case(11);
        let mag: Vec<f32> = (1..=cols).map(|i| i as f32).collect();
        let q = quantize_with_alpha(
            &weights,
            rows,
            cols,
            &mag,
            0.0,
            GroupQuantConfig::new(32, 4),
        );
        // α = 0 ⇒ all channel scales equal 1 after normalisation.
        for &s in q.channel_scales() {
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert_eq!(q.rows(), rows);
        assert_eq!(q.cols(), cols);
    }

    #[test]
    fn scale_input_inverts_channel_scaling() {
        let (weights, rows, cols, calib) = salient_case(13);
        let cfg = AwqConfig::default();
        let q = quantize_awq(&weights, rows, cols, &calib[..cols], &cfg);
        let x: Vec<f32> = (0..cols).map(|i| i as f32 * 0.1).collect();
        let xs = q.scale_input(&x);
        for ((orig, scaled), s) in x.iter().zip(&xs).zip(q.channel_scales()) {
            assert!((scaled * s - orig).abs() < 1e-5);
        }
    }

    #[test]
    fn scaled_matvec_matches_unscaled_reconstruction() {
        // W x  ≈  dequant(W·s) · (x/s): the runtime identity AWQ relies on.
        let (weights, rows, cols, calib) = salient_case(17);
        let q = quantize_awq(&weights, rows, cols, &calib, &AwqConfig::default());
        let x = &calib[..cols];
        let via_reconstruction = matmul(&q.dequantize(), rows, cols, x, 1);
        // Manual path: scaled weights times scaled input.
        let xs = q.scale_input(x);
        let mut manual = vec![0.0f32; rows];
        for (r, row_q) in q.rows_q().iter().enumerate() {
            let w_scaled = row_q.dequantize();
            manual[r] = w_scaled.iter().zip(&xs).map(|(a, b)| a * b).sum();
        }
        for (a, b) in via_reconstruction.iter().zip(&manual) {
            assert!((a - b).abs() <= a.abs() * 1e-4 + 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn search_result_is_independent_of_fast_kernels_and_threads() {
        let (weights, rows, cols, calib) = salient_case(23);
        let cfg = AwqConfig {
            quant: GroupQuantConfig::new(32, 4),
            ..AwqConfig::default()
        };
        zllm_fp16::set_fast_kernels(false);
        let slow = quantize_awq(&weights, rows, cols, &calib, &cfg);
        zllm_fp16::set_fast_kernels(true);
        for threads in [Some(1), Some(4), None] {
            zllm_par::set_max_threads(threads);
            let fast = quantize_awq(&weights, rows, cols, &calib, &cfg);
            assert_eq!(
                fast.alpha().to_bits(),
                slow.alpha().to_bits(),
                "threads {threads:?}"
            );
            assert_eq!(fast.channel_scales(), slow.channel_scales());
            for (a, b) in fast.rows_q().iter().zip(slow.rows_q()) {
                assert_eq!(a.codes(), b.codes());
                assert_eq!(a.scales(), b.scales());
                assert_eq!(a.zeros(), b.zeros());
            }
        }
        zllm_par::set_max_threads(None);
    }

    #[test]
    #[should_panic(expected = "weight dimensions inconsistent")]
    fn dimension_check() {
        let _ = quantize_awq(&[1.0; 10], 3, 4, &[1.0; 4], &AwqConfig::default());
    }

    #[test]
    #[should_panic(expected = "calibration shape mismatch")]
    fn calibration_check() {
        let _ = quantize_awq(&[1.0; 12], 3, 4, &[1.0; 5], &AwqConfig::default());
    }
}
