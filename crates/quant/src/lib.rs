//! Quantization suite for the KV260 LLM accelerator (§IV of the paper).
//!
//! Two quantization schemes carry the entire memory-footprint story:
//!
//! * **W4A16** ([`group`], [`awq`]) — weights quantized to 4-bit integers in
//!   groups of 128 with an FP16 scale and a 4-bit zero point per group,
//!   activations kept in FP16. [`awq`] adds the activation-aware per-channel
//!   scale search of the AWQ method the paper adopts.
//! * **KV8** ([`kv8`]) — the key/value cache quantized on-chip to 8-bit as
//!   vectors are produced, with one FP16 scale and one 8-bit zero point per
//!   vector, dequantized when fetched back from DDR.
//!
//! [`error`] provides the metrics used by the accuracy experiments.
//!
//! # Example
//!
//! ```
//! use zllm_quant::group::{GroupQuantizer, GroupQuantConfig};
//!
//! let weights: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) / 64.0).collect();
//! let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&weights);
//! let back = q.dequantize();
//! let max_err = weights.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
//! assert!(max_err < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awq;
pub mod clip;
pub mod entropy;
pub mod error;
pub mod gptq;
pub mod group;
pub mod kv8;
pub mod smooth;
