//! Stream-entropy model for compression-aware burst pricing.
//!
//! "Reimagining Memory Access for LLM Inference" (PAPERS.md) puts inline
//! (de)compression in the memory controller: bursts cross the DDR bus at
//! *compressed* size and a line-rate decompressor beside the PHY restores
//! them. How much a stream shrinks is bounded by its byte entropy, so
//! this module measures the order-0 byte entropy of the exact streams the
//! accelerator moves — 4-bit group-quantized weights (packed codes +
//! FP16 scales + zero points), KV8 cache lines (8-bit codes + scale-zero
//! packs), and FP16 activation rows — and turns it into deterministic
//! per-stream-kind compression ratios.
//!
//! Two honesty mechanisms keep the ratios from being marketing numbers:
//!
//! * **Page-blocked entropy.** A hardware codec (de)compresses each
//!   compression page independently so random bursts stay addressable;
//!   it never sees a whole-tensor histogram. [`page_entropy`] averages
//!   the order-0 entropy over [`DEFAULT_PAGE_BYTES`]-sized pages, which
//!   is ≥ the global figure and is what the ratio model uses.
//! * **Achievable fraction.** An FSE/LZ-class hardware coder does not
//!   reach the entropy bound (headers, tANS table cost, page padding).
//!   The achievable ratio interpolates between 1.0 and the order-0 bound
//!   with [`DEFAULT_ACHIEVABLE_FRACTION`].
//!
//! The synthetic weight draw is Gaussian bulk plus sparse large-magnitude
//! outliers — the per-channel outlier structure of real LLM weights that
//! motivates AWQ/clipping in the first place. Under min-max RTN those
//! outliers stretch the group range, concentrating the bulk codes near
//! the zero point; that concentration is exactly the redundancy an
//! entropy coder recovers, so quantized-weight streams compress even
//! though the codes "use" all 4 bits.
//!
//! One format-aware preconditioning step stands between the raw codes
//! and the histogram: each group's codes are rebased to its zero point
//! (`(code − z) mod 2^bits`) before packing. Without it the per-group
//! concentration is invisible to an order-0 coder — every group centres
//! its bulk at a *different* zero point, so the page histogram flattens
//! back out (measured: raw-code page entropy stays ≈ 7.3 bits/byte while
//! per-group code entropy drops below 3 bits/nibble). The rebase is a
//! bijective transform the decompressor inverts from the zero point it
//! already carries in the stream, standard practice for format-aware
//! codecs (delta/dictionary filters), and it lets one page-wide
//! histogram see all groups' bulk at the same symbol.
//!
//! # Example
//!
//! ```
//! use zllm_quant::entropy::measured_stream_ratios;
//!
//! let r = measured_stream_ratios(7);
//! // Weight streams compress well past the 1.3x gate; KV8 sits close to
//! // its entropy limit.
//! assert!(r.weight.achievable_ratio > 1.3);
//! assert!(r.kv.achievable_ratio >= 1.0);
//! ```

use crate::group::{GroupQuantConfig, GroupQuantizer};
use crate::kv8::quantize_kv;
use zllm_rng::StdRng;

/// Compression page size: the unit the codec compresses independently,
/// matching the page granularity of the controller's compression map.
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// Fraction of the order-0 entropy headroom an FSE/LZ-class hardware
/// codec is modeled to recover (headers, table cost, padding eat the
/// rest).
pub const DEFAULT_ACHIEVABLE_FRACTION: f64 = 0.85;

/// Order-0 (single-byte histogram) entropy of a stream, in bits/byte.
///
/// Empty streams report the incompressible 8.0 bits/byte.
///
/// # Example
///
/// ```
/// use zllm_quant::entropy::byte_entropy;
///
/// assert_eq!(byte_entropy(&[0xAA; 64]), 0.0);
/// let all: Vec<u8> = (0..=255).collect();
/// assert!((byte_entropy(&all) - 8.0).abs() < 1e-12);
/// ```
pub fn byte_entropy(stream: &[u8]) -> f64 {
    if stream.is_empty() {
        return 8.0;
    }
    let mut hist = [0u64; 256];
    for &b in stream {
        hist[b as usize] += 1;
    }
    let n = stream.len() as f64;
    let mut h = 0.0;
    for &c in hist.iter().filter(|&&c| c > 0) {
        let p = c as f64 / n;
        h -= p * p.log2();
    }
    h
}

/// Mean order-0 entropy over independent `page_bytes` pages, weighted by
/// page length — the bound a per-page hardware codec actually sees.
///
/// Always ≥ [`byte_entropy`] up to rounding, because each page builds its
/// own histogram. A zero `page_bytes` degenerates to the global figure.
pub fn page_entropy(stream: &[u8], page_bytes: usize) -> f64 {
    if stream.is_empty() {
        return 8.0;
    }
    if page_bytes == 0 {
        return byte_entropy(stream);
    }
    let mut weighted = 0.0;
    for page in stream.chunks(page_bytes) {
        weighted += byte_entropy(page) * page.len() as f64;
    }
    weighted / stream.len() as f64
}

/// The entropy measurement of one stream kind, reduced to compression
/// ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionEstimate {
    /// Stream length the estimate was measured on.
    pub bytes: u64,
    /// Page-blocked order-0 entropy in bits/byte.
    pub entropy_bits_per_byte: f64,
    /// Entropy-bound compression ratio `8 / H` (≥ 1.0).
    pub order0_ratio: f64,
    /// Modeled hardware-codec ratio:
    /// `1 + (order0_ratio − 1) · achievable_fraction`.
    pub achievable_ratio: f64,
}

/// Measures a stream and reduces it to a [`CompressionEstimate`].
///
/// `achievable_fraction` is clamped to `[0, 1]`; entropy is measured per
/// `page_bytes` page (see [`page_entropy`]).
pub fn estimate(stream: &[u8], page_bytes: usize, achievable_fraction: f64) -> CompressionEstimate {
    let h = page_entropy(stream, page_bytes).max(f64::MIN_POSITIVE);
    let order0 = (8.0 / h).max(1.0);
    let f = achievable_fraction.clamp(0.0, 1.0);
    CompressionEstimate {
        bytes: stream.len() as u64,
        entropy_bits_per_byte: h,
        order0_ratio: order0,
        achievable_ratio: 1.0 + (order0 - 1.0) * f,
    }
}

/// Shape of the synthetic LLM-like weight draw fed to the group
/// quantizer.
#[derive(Debug, Clone, Copy)]
pub struct WeightStreamModel {
    /// Elements to draw (one tensor's worth).
    pub elements: usize,
    /// Per-element probability of being an outlier channel value.
    pub outlier_prob: f64,
    /// Outlier magnitude multiplier over the unit-variance bulk.
    pub outlier_scale: f64,
    /// Group quantizer configuration the stream is packed with.
    pub config: GroupQuantConfig,
}

impl Default for WeightStreamModel {
    /// LLaMA-like defaults: ~2 outliers per 128-element group at 12× the
    /// bulk magnitude, quantized W4 g128 as in the paper. Most groups see
    /// at least one outlier, so min-max RTN spends most of its 15 levels
    /// on range the bulk never visits.
    fn default() -> WeightStreamModel {
        WeightStreamModel {
            elements: 1 << 18,
            outlier_prob: 1.0 / 64.0,
            outlier_scale: 12.0,
            config: GroupQuantConfig::w4_g128(),
        }
    }
}

/// One standard-normal draw (Box–Muller; deterministic IEEE math).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1 = 1.0 - rng.gen_f64(); // (0, 1]: keeps ln() finite
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Packs a group-quantized tensor the way it enters the compressor: per
/// group, the zero-rebased codes (`(code − z) mod 2^bits`) two-per-byte
/// (low nibble first), the FP16 scale little endian, then the zero
/// point. The rebase is the format-aware preconditioning step described
/// in the module docs; the decompressor adds `z` back after decoding.
fn pack_group_stream(q: &crate::group::QuantizedTensor) -> Vec<u8> {
    let gs = q.config().group_size;
    let mask = ((1u32 << q.config().bits) - 1) as u8;
    let mut out = Vec::with_capacity(q.len() / 2 + q.num_groups() * 3);
    for (g, (scale, zero)) in q.scales().iter().zip(q.zeros()).enumerate() {
        let codes = &q.codes()[g * gs..((g + 1) * gs).min(q.len())];
        let rebase = |c: u8| c.wrapping_sub(*zero) & mask;
        for pair in codes.chunks(2) {
            let lo = rebase(pair[0]);
            let hi = rebase(pair.get(1).copied().unwrap_or(*zero));
            out.push(lo | (hi << 4));
        }
        out.extend_from_slice(&scale.to_bits().to_le_bytes());
        out.push(*zero);
    }
    out
}

/// Deterministic synthetic quantized-weight stream: Gaussian bulk +
/// sparse outliers, group-quantized and packed codes/scales/zeros.
pub fn synthetic_weight_stream(model: &WeightStreamModel, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f32> = (0..model.elements)
        .map(|_| {
            let x = gaussian(&mut rng);
            if rng.gen_bool(model.outlier_prob) {
                (x * model.outlier_scale) as f32
            } else {
                x as f32
            }
        })
        .collect();
    let q = GroupQuantizer::new(model.config).quantize(&values);
    pack_group_stream(&q)
}

/// Deterministic synthetic KV8 cache stream: per-head-vector Gaussian
/// activations with sparse outliers, 8-bit min-max quantized by
/// [`quantize_kv`]; each line is the codes followed by the 32-bit
/// scale-zero pack.
pub fn synthetic_kv_stream(vectors: usize, dim: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(vectors * (dim + 4));
    let mut v = Vec::with_capacity(dim);
    for _ in 0..vectors {
        v.clear();
        for _ in 0..dim {
            let x = gaussian(&mut rng);
            // Activation outliers are rarer but larger than weight ones.
            let x = if rng.gen_bool(1.0 / 512.0) {
                x * 8.0
            } else {
                x
            };
            v.push(x as f32);
        }
        let q = quantize_kv(&v);
        // Same zero-point rebase as the weight stream (mod 256 at 8 bits).
        let z = q.meta().zero;
        out.extend(q.codes().iter().map(|c| c.wrapping_sub(z)));
        out.extend_from_slice(&q.meta().to_pack().to_le_bytes());
    }
    out
}

/// Deterministic synthetic FP16 activation stream (embedding-table rows):
/// Gaussian values stored as little-endian half-precision bytes.
pub fn synthetic_activation_stream(elements: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(elements * 2);
    for _ in 0..elements {
        let h = zllm_fp16::F16::from_f32(gaussian(&mut rng) as f32);
        out.extend_from_slice(&h.to_bits().to_le_bytes());
    }
    out
}

/// Entropy-measured compression ratios for the three compressible stream
/// kinds the decode engine moves.
#[derive(Debug, Clone, Copy)]
pub struct StreamRatios {
    /// 4-bit group-quantized weight stream (codes + scales + zeros).
    pub weight: CompressionEstimate,
    /// KV8 cache lines (codes + scale-zero packs).
    pub kv: CompressionEstimate,
    /// FP16 activation (embedding row) stream.
    pub activation: CompressionEstimate,
}

/// Measures all three stream kinds with the default models, page size and
/// achievable fraction. Deterministic in `seed`.
pub fn measured_stream_ratios(seed: u64) -> StreamRatios {
    let weight = synthetic_weight_stream(&WeightStreamModel::default(), seed);
    let kv = synthetic_kv_stream(2048, 128, seed ^ 0x9E37_79B9);
    let act = synthetic_activation_stream(1 << 17, seed ^ 0x85EB_CA6B);
    StreamRatios {
        weight: estimate(&weight, DEFAULT_PAGE_BYTES, DEFAULT_ACHIEVABLE_FRACTION),
        kv: estimate(&kv, DEFAULT_PAGE_BYTES, DEFAULT_ACHIEVABLE_FRACTION),
        activation: estimate(&act, DEFAULT_PAGE_BYTES, DEFAULT_ACHIEVABLE_FRACTION),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_bounds() {
        assert_eq!(byte_entropy(&[]), 8.0);
        assert_eq!(byte_entropy(&[7; 999]), 0.0);
        let uniform: Vec<u8> = (0..4096).map(|i| (i % 256) as u8).collect();
        assert!((byte_entropy(&uniform) - 8.0).abs() < 1e-9);
        // Page-blocked entropy never beats the global histogram.
        let mixed: Vec<u8> = (0..8192).map(|i| (i / 32) as u8).collect();
        assert!(page_entropy(&mixed, 4096) <= byte_entropy(&mixed) + 1e-12);
        assert_eq!(page_entropy(&mixed, 0), byte_entropy(&mixed));
    }

    #[test]
    fn estimates_are_deterministic_and_sane() {
        let a = measured_stream_ratios(7);
        let b = measured_stream_ratios(7);
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.kv, b.kv);
        assert_eq!(a.activation, b.activation);
        for est in [a.weight, a.kv, a.activation] {
            assert!(est.order0_ratio >= 1.0);
            assert!(est.achievable_ratio >= 1.0);
            assert!(est.achievable_ratio <= est.order0_ratio);
            assert!(est.bytes > 0);
        }
    }

    #[test]
    fn weight_stream_clears_the_uplift_gate_ratio() {
        // The perf gate hard-requires >= 1.3x tok/s uplift at the
        // entropy-measured point on a bandwidth-bound engine; weight
        // traffic dominates decode, so the weight ratio must clear 1.3
        // with margin.
        let r = measured_stream_ratios(7);
        assert!(
            r.weight.achievable_ratio > 1.35,
            "weight ratio {:.3} too low for the 1.3x gate",
            r.weight.achievable_ratio
        );
    }

    #[test]
    fn outliers_concentrate_codes() {
        // Without outliers the 4-bit codes spread over the full range and
        // the stream compresses less; with them the bulk concentrates.
        let flat = WeightStreamModel {
            outlier_prob: 0.0,
            ..WeightStreamModel::default()
        };
        let spiky = WeightStreamModel::default();
        let h_flat = page_entropy(&synthetic_weight_stream(&flat, 3), DEFAULT_PAGE_BYTES);
        let h_spiky = page_entropy(&synthetic_weight_stream(&spiky, 3), DEFAULT_PAGE_BYTES);
        assert!(h_spiky < h_flat, "{h_spiky} !< {h_flat}");
    }
}
