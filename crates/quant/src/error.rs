//! Quantization error metrics used by the accuracy experiments.

/// Summary statistics comparing a reconstructed signal against a reference.
///
/// # Example
///
/// ```
/// use zllm_quant::error::ErrorStats;
///
/// let stats = ErrorStats::between(&[1.0, 2.0, 3.0], &[1.0, 2.1, 2.9]);
/// assert!(stats.max_abs <= 0.1 + 1e-6);
/// assert!(stats.sqnr_db > 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Largest absolute deviation.
    pub max_abs: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Signal-to-quantization-noise ratio in decibels
    /// (`10·log10(‖x‖² / ‖x−x̂‖²)`; infinite for an exact reconstruction).
    pub sqnr_db: f64,
    /// Cosine similarity between reference and reconstruction.
    pub cosine: f64,
}

impl ErrorStats {
    /// Computes the statistics between `reference` and `reconstructed`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn between(reference: &[f32], reconstructed: &[f32]) -> ErrorStats {
        assert_eq!(reference.len(), reconstructed.len(), "length mismatch");
        assert!(!reference.is_empty(), "empty input");
        let n = reference.len() as f64;
        let mut max_abs = 0.0f64;
        let mut sq_err = 0.0f64;
        let mut sq_sig = 0.0f64;
        let mut dot = 0.0f64;
        let mut sq_rec = 0.0f64;
        for (&a, &b) in reference.iter().zip(reconstructed) {
            let (a, b) = (a as f64, b as f64);
            let e = a - b;
            max_abs = max_abs.max(e.abs());
            sq_err += e * e;
            sq_sig += a * a;
            sq_rec += b * b;
            dot += a * b;
        }
        let rmse = (sq_err / n).sqrt();
        let sqnr_db = if sq_err == 0.0 {
            f64::INFINITY
        } else if sq_sig == 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * (sq_sig / sq_err).log10()
        };
        let cosine = if sq_sig == 0.0 || sq_rec == 0.0 {
            if sq_sig == sq_rec {
                1.0
            } else {
                0.0
            }
        } else {
            dot / (sq_sig.sqrt() * sq_rec.sqrt())
        };
        ErrorStats {
            max_abs,
            rmse,
            sqnr_db,
            cosine,
        }
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max|e|={:.4e} rmse={:.4e} sqnr={:.1} dB cos={:.6}",
            self.max_abs, self.rmse, self.sqnr_db, self.cosine
        )
    }
}

/// Mean squared error between two slices.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let e = (x - y) as f64;
            e * e
        })
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reconstruction() {
        let v = [1.0f32, -2.0, 3.5];
        let s = ErrorStats::between(&v, &v);
        assert_eq!(s.max_abs, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert!(s.sqnr_db.is_infinite() && s.sqnr_db > 0.0);
        assert!((s.cosine - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_error() {
        let a = [0.0f32, 0.0, 0.0, 0.0];
        let b = [1.0f32, 1.0, 1.0, 1.0];
        let s = ErrorStats::between(&a, &b);
        assert_eq!(s.max_abs, 1.0);
        assert_eq!(s.rmse, 1.0);
        assert!(s.sqnr_db.is_infinite() && s.sqnr_db < 0.0);
        assert_eq!(mse(&a, &b), 1.0);
    }

    #[test]
    fn cosine_of_opposite_vectors() {
        let a = [1.0f32, 2.0];
        let b = [-1.0f32, -2.0];
        let s = ErrorStats::between(&a, &b);
        assert!((s.cosine + 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s = ErrorStats::between(&[1.0], &[0.9]);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = ErrorStats::between(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sqnr_scales_with_noise() {
        let reference: Vec<f32> = (0..100).map(|i| (i as f32 * 0.1).sin()).collect();
        let noisy_small: Vec<f32> = reference.iter().map(|v| v + 0.001).collect();
        let noisy_big: Vec<f32> = reference.iter().map(|v| v + 0.1).collect();
        let s_small = ErrorStats::between(&reference, &noisy_small);
        let s_big = ErrorStats::between(&reference, &noisy_big);
        assert!(s_small.sqnr_db > s_big.sqnr_db + 30.0);
    }
}
