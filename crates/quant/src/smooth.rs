//! SmoothQuant-style W8A8 quantization — the alternative the paper
//! considered and rejected (§IV-A).
//!
//! FlightLLM quantizes both weights and activations to 8 bits with
//! SmoothQuant, which *migrates* quantization difficulty from activations
//! to weights: per input channel, activations are divided by
//! `s_j = act_max_j^α / w_max_j^(1−α)` and the weight column is multiplied
//! by it, flattening activation outliers. Weights then quantize to
//! symmetric per-row INT8 and activations to dynamic per-tensor INT8, and
//! the matmul runs in integers.
//!
//! The paper follows AWQ's observation that W4A16 moves **half the bytes**
//! of W8A8 for comparable accuracy — decoding speed is bytes-bound, so
//! this is the whole ballgame. This module exists so that trade-off can
//! be *measured* rather than cited; see the `accuracy_study` example and
//! the ablation binary.

use crate::error::mse;

/// Configuration of the SmoothQuant-style quantizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothConfig {
    /// Migration strength α ∈ [0, 1] (0.5 in the SmoothQuant paper).
    pub alpha: f32,
}

impl Default for SmoothConfig {
    fn default() -> SmoothConfig {
        SmoothConfig { alpha: 0.5 }
    }
}

/// A linear layer quantized W8A8 with smoothed channels.
#[derive(Debug, Clone)]
pub struct SmoothQuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Per-input-channel smoothing scales (activations are divided by
    /// these; they were multiplied into the weights before quantization).
    smooth: Vec<f32>,
    /// Per-row symmetric INT8 weight scales.
    w_scales: Vec<f32>,
    /// Row-major INT8 weight codes.
    w_codes: Vec<i8>,
}

impl SmoothQuantizedMatrix {
    /// Output rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-channel smoothing scales.
    pub fn smooth_scales(&self) -> &[f32] {
        &self.smooth
    }

    /// Storage bits per weight (8-bit codes + per-row scale).
    pub fn bits_per_weight(&self) -> f64 {
        (self.w_codes.len() * 8 + self.w_scales.len() * 32) as f64 / self.w_codes.len() as f64
    }

    /// W8A8 matrix–vector product: smooth + quantize the activation
    /// dynamically, integer GEMM, dequantize.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "operand length mismatch");
        // Smooth the activation: x' = x / s.
        let xs: Vec<f32> = x.iter().zip(&self.smooth).map(|(&v, &s)| v / s).collect();
        // Dynamic per-tensor symmetric INT8.
        let amax = xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let x_scale = if amax > 0.0 { amax / 127.0 } else { 1.0 };
        let xq: Vec<i8> = xs
            .iter()
            .map(|&v| (v / x_scale).round().clamp(-127.0, 127.0) as i8)
            .collect();

        (0..self.rows)
            .map(|r| {
                let row = &self.w_codes[r * self.cols..(r + 1) * self.cols];
                let acc: i64 = row
                    .iter()
                    .zip(&xq)
                    .map(|(&w, &a)| w as i64 * a as i64)
                    .sum();
                acc as f32 * self.w_scales[r] * x_scale
            })
            .collect()
    }

    /// Reconstructs the effective f32 weights (for error analysis):
    /// `Ŵ[r][j] = code · w_scale_r / s_j`.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for j in 0..self.cols {
                out.push(
                    self.w_codes[r * self.cols + j] as f32 * self.w_scales[r] / self.smooth[j],
                );
            }
        }
        out
    }
}

/// Quantizes one linear layer SmoothQuant-style.
///
/// * `weights` — row-major `rows × cols`.
/// * `calib` — calibration activations, row-major `n × cols`.
///
/// # Panics
///
/// Panics on inconsistent dimensions, empty calibration data, or α
/// outside `[0, 1]`.
pub fn quantize_smooth(
    weights: &[f32],
    rows: usize,
    cols: usize,
    calib: &[f32],
    config: SmoothConfig,
) -> SmoothQuantizedMatrix {
    assert_eq!(weights.len(), rows * cols, "weight dimensions inconsistent");
    assert!(
        !calib.is_empty() && calib.len().is_multiple_of(cols),
        "calibration shape mismatch"
    );
    assert!(
        (0.0..=1.0).contains(&config.alpha),
        "alpha must be in [0, 1]"
    );

    // Per-channel activation and weight magnitudes.
    let mut act_max = vec![1e-6f32; cols];
    for row in calib.chunks(cols) {
        for (m, &v) in act_max.iter_mut().zip(row) {
            *m = m.max(v.abs());
        }
    }
    let mut w_max = vec![1e-6f32; cols];
    for row in weights.chunks(cols) {
        for (m, &v) in w_max.iter_mut().zip(row) {
            *m = m.max(v.abs());
        }
    }
    let smooth: Vec<f32> = act_max
        .iter()
        .zip(&w_max)
        .map(|(&a, &w)| (a.powf(config.alpha) / w.powf(1.0 - config.alpha)).clamp(1e-4, 1e4))
        .collect();

    // Scale weights up by s_j, then per-row symmetric INT8.
    let mut w_scales = Vec::with_capacity(rows);
    let mut w_codes = Vec::with_capacity(rows * cols);
    for row in weights.chunks(cols) {
        let scaled: Vec<f32> = row.iter().zip(&smooth).map(|(&w, &s)| w * s).collect();
        let amax = scaled.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if amax > 0.0 { amax / 127.0 } else { 1.0 };
        w_scales.push(scale);
        w_codes.extend(
            scaled
                .iter()
                .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8),
        );
    }

    SmoothQuantizedMatrix {
        rows,
        cols,
        smooth,
        w_scales,
        w_codes,
    }
}

/// Output MSE of a quantized layer against the exact f32 layer on a
/// calibration set — the comparison metric of the §IV-A study.
pub fn output_mse<F>(weights: &[f32], rows: usize, cols: usize, calib: &[f32], matvec: F) -> f64
where
    F: Fn(&[f32]) -> Vec<f32>,
{
    assert_eq!(weights.len(), rows * cols, "weight dimensions inconsistent");
    let mut reference = Vec::new();
    let mut approx = Vec::new();
    for x in calib.chunks(cols) {
        for row in weights.chunks(cols) {
            reference.push(row.iter().zip(x).map(|(a, b)| a * b).sum::<f32>());
        }
        approx.extend(matvec(x));
    }
    mse(&reference, &approx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zllm_rng::StdRng;

    fn outlier_case(seed: u64) -> (Vec<f32>, usize, usize, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (rows, cols) = (16, 64);
        let weights: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-0.5f32..0.5))
            .collect();
        // Two activation-outlier channels, the SmoothQuant motivation.
        let calib: Vec<f32> = (0..8 * cols)
            .map(|i| {
                let base = rng.gen_range(-1.0f32..1.0);
                match i % cols {
                    7 => base * 40.0,
                    23 => base * 25.0,
                    _ => base,
                }
            })
            .collect();
        (weights, rows, cols, calib)
    }

    #[test]
    fn smoothing_beats_no_smoothing_on_outlier_activations() {
        let (weights, rows, cols, calib) = outlier_case(3);
        let smoothed = quantize_smooth(&weights, rows, cols, &calib, SmoothConfig { alpha: 0.5 });
        let unsmoothed = quantize_smooth(&weights, rows, cols, &calib, SmoothConfig { alpha: 0.0 });
        let err_s = output_mse(&weights, rows, cols, &calib, |x| smoothed.matvec(x));
        let err_u = output_mse(&weights, rows, cols, &calib, |x| unsmoothed.matvec(x));
        assert!(
            err_s < err_u,
            "smoothed err {err_s} should beat unsmoothed {err_u}"
        );
    }

    #[test]
    fn w8a8_output_is_accurate() {
        let (weights, rows, cols, calib) = outlier_case(5);
        let q = quantize_smooth(&weights, rows, cols, &calib, SmoothConfig::default());
        let err = output_mse(&weights, rows, cols, &calib, |x| q.matvec(x));
        // Output magnitude is O(1); INT8 keeps MSE small.
        assert!(err < 1e-2, "W8A8 output MSE {err}");
    }

    #[test]
    fn dequantized_weights_track_originals() {
        let (weights, rows, cols, calib) = outlier_case(7);
        let q = quantize_smooth(&weights, rows, cols, &calib, SmoothConfig::default());
        let w_hat = q.dequantize();
        let err = crate::error::ErrorStats::between(&weights, &w_hat);
        assert!(err.cosine > 0.999, "weight cosine {err}");
    }

    #[test]
    fn bits_per_weight_is_8_plus_scales() {
        let (weights, rows, cols, calib) = outlier_case(9);
        let q = quantize_smooth(&weights, rows, cols, &calib, SmoothConfig::default());
        let bits = q.bits_per_weight();
        assert!((8.0..9.0).contains(&bits), "bits {bits}");
        assert_eq!(q.rows(), rows);
        assert_eq!(q.cols(), cols);
        assert_eq!(q.smooth_scales().len(), cols);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn alpha_validated() {
        let _ = quantize_smooth(&[1.0; 4], 2, 2, &[1.0; 2], SmoothConfig { alpha: 1.5 });
    }
}
