//! Before/after microbenchmarks for the exact fast-kernel layer.
//!
//! Every pair below toggles `zllm_fp16::set_fast_kernels` around the
//! *same* call, so the comparison is scalar-reference vs fast-kernel for
//! bit-identical results (the differential tests in each crate prove the
//! equality; this file prices it). Numbers are recorded in
//! `EXPERIMENTS.md` under "Host-side kernel metrics".

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zllm_accel::converter::{convert, PtqMethod};
use zllm_accel::AccelDecoder;
use zllm_fp16::{set_fast_kernels, F16};
use zllm_model::calibration::capture;
use zllm_model::tensor::Matrix;
use zllm_model::{ModelConfig, ModelWeights};
use zllm_quant::awq::{quantize_awq, AwqConfig};
use zllm_quant::group::GroupQuantConfig;

fn noise(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn bench_f16_conversion(c: &mut Criterion) {
    let values = noise(11, 4096);
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    for (label, fast) in [("scalar", false), ("lut", true)] {
        set_fast_kernels(fast);
        c.bench_function(&format!("functional_kernels/to_f32_4096_{label}"), |b| {
            b.iter(|| {
                for &h in &halves {
                    black_box(h.to_f32());
                }
            })
        });
        c.bench_function(&format!("functional_kernels/from_f32_4096_{label}"), |b| {
            b.iter(|| {
                for &v in &values {
                    black_box(F16::from_f32(black_box(v)));
                }
            })
        });
    }
    set_fast_kernels(true);
}

fn bench_reference_matvec(c: &mut Criterion) {
    let rows = 256;
    let cols = 512;
    let m = Matrix::new(rows, cols, noise(23, rows * cols));
    let x = noise(37, cols);
    let mut out = Vec::new();
    for (label, fast) in [("scalar", false), ("blocked", true)] {
        set_fast_kernels(fast);
        c.bench_function(&format!("functional_kernels/matvec_256x512_{label}"), |b| {
            b.iter(|| {
                m.matvec_into(black_box(&x), &mut out);
                black_box(out.last().copied());
            })
        });
    }
    set_fast_kernels(true);
}

fn bench_awq_search(c: &mut Criterion) {
    let rows = 32;
    let cols = 128;
    let weights = noise(41, rows * cols);
    let calib = noise(53, 4 * cols);
    let config = AwqConfig::default();
    for (label, fast) in [("serial", false), ("fast", true)] {
        set_fast_kernels(fast);
        c.bench_function(
            &format!("functional_kernels/awq_search_32x128_{label}"),
            |b| b.iter(|| black_box(quantize_awq(&weights, rows, cols, &calib, &config))),
        );
    }
    set_fast_kernels(true);
}

/// The headline scenario: a full functional decode (AccelDecoder over the
/// small test model) with the fast kernels off vs on — same bits either
/// way, priced end to end.
fn bench_accel_decode(c: &mut Criterion) {
    let cfg = ModelConfig::test_small();
    let weights = ModelWeights::generate(&cfg, 55);
    let calib = capture(&weights, &[3, 9, 27]);
    let qmodel = convert(
        &weights,
        &calib,
        GroupQuantConfig::w4_g128(),
        PtqMethod::Rtn,
    );
    for (label, fast) in [("scalar", false), ("fast", true)] {
        set_fast_kernels(fast);
        c.bench_function(
            &format!("functional_kernels/accel_decode_8tok_{label}"),
            |b| {
                b.iter(|| {
                    let mut dec = AccelDecoder::new(&qmodel);
                    for t in 0..8 {
                        black_box(dec.forward(t % 16));
                    }
                })
            },
        );
    }
    set_fast_kernels(true);
}

criterion_group!(
    benches,
    bench_f16_conversion,
    bench_reference_matvec,
    bench_awq_search,
    bench_accel_decode
);
criterion_main!(benches);
