//! Microbenchmarks of the data-arrangement formats.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zllm_layout::kv_pack::KvPackFifo;
use zllm_layout::weight::{decode, encode, WeightFormat};
use zllm_quant::group::{GroupQuantConfig, GroupQuantizer};

fn bench_weight_format(c: &mut Criterion) {
    let values: Vec<f32> = (0..16384 * 4).map(|i| (i as f32 * 0.007).sin()).collect();
    let tensor = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
    let fmt = WeightFormat::kv260();
    c.bench_function("layout/encode_4superblocks", |b| {
        b.iter(|| black_box(encode(&fmt, black_box(&tensor))))
    });
    let enc = encode(&fmt, &tensor);
    c.bench_function("layout/decode_4superblocks", |b| {
        b.iter(|| black_box(decode(black_box(&enc))))
    });
}

fn bench_kv_fifo(c: &mut Criterion) {
    c.bench_function("layout/kv_fifo_2048streams_16tokens", |b| {
        b.iter(|| {
            let mut fifo = KvPackFifo::new(2048);
            let mut flushed = 0usize;
            for token in 0..16u32 {
                for s in 0..2048u32 {
                    if fifo.append(token << 16 | s).is_some() {
                        flushed += 1;
                    }
                }
            }
            black_box(flushed)
        })
    });
}

criterion_group!(benches, bench_weight_format, bench_kv_fifo);
criterion_main!(benches);
