//! Microbenchmarks of the quantization suite.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zllm_quant::group::{GroupQuantConfig, GroupQuantizer};
use zllm_quant::kv8::quantize_kv;

fn bench_group_quant(c: &mut Criterion) {
    let values: Vec<f32> = (0..16384).map(|i| (i as f32 * 0.013).sin()).collect();
    let quantizer = GroupQuantizer::new(GroupQuantConfig::w4_g128());
    c.bench_function("quant/w4g128_quantize_16k", |b| {
        b.iter(|| black_box(quantizer.quantize(black_box(&values))))
    });
    let q = quantizer.quantize(&values);
    c.bench_function("quant/w4g128_dequantize_16k", |b| {
        b.iter(|| black_box(q.dequantize()))
    });
}

fn bench_kv8(c: &mut Criterion) {
    let head: Vec<f32> = (0..128).map(|i| (i as f32 * 0.21).cos()).collect();
    c.bench_function("quant/kv8_head128", |b| {
        b.iter(|| black_box(quantize_kv(black_box(&head))))
    });
}

criterion_group!(benches, bench_group_quant, bench_kv8);
criterion_main!(benches);
