//! Microbenchmarks of the SPU pipelines and the bit-level FP16 operators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zllm_accel::spu::{KvQuantizer, RmsNormUnit, RopeUnit, SoftmaxUnit};
use zllm_fp16::{rtl, F16};

fn f16v(n: usize) -> Vec<F16> {
    (0..n)
        .map(|i| F16::from_f32((i as f32 * 0.37).sin()))
        .collect()
}

fn bench_spu(c: &mut Criterion) {
    let rope = RopeUnit::new(128);
    let mut head = f16v(128);
    c.bench_function("spu/rope_head128", |b| {
        b.iter(|| rope.apply(black_box(&mut head), black_box(517)))
    });

    let rms = RmsNormUnit::new(1e-5);
    let x = f16v(4096);
    let g = vec![F16::ONE; 4096];
    c.bench_function("spu/rmsnorm_4096", |b| {
        b.iter(|| black_box(rms.normalize(black_box(&x), black_box(&g))))
    });

    let softmax = SoftmaxUnit::new();
    let scores = f16v(1024);
    c.bench_function("spu/softmax_1024", |b| {
        b.iter(|| black_box(softmax.softmax(black_box(&scores))))
    });

    let mut quantizer = KvQuantizer::new(2048);
    let head = f16v(128);
    c.bench_function("spu/kv_quantize_head128", |b| {
        b.iter(|| black_box(quantizer.quantize_head(0, black_box(&head))))
    });
}

fn bench_rtl(c: &mut Criterion) {
    let a = F16::from_f32(1.375);
    let b_val = F16::from_f32(-0.6238);
    c.bench_function("rtl/add", |b| {
        b.iter(|| black_box(rtl::add(black_box(a), black_box(b_val))))
    });
    c.bench_function("rtl/mul", |b| {
        b.iter(|| black_box(rtl::mul(black_box(a), black_box(b_val))))
    });
}

criterion_group!(benches, bench_spu, bench_rtl);
criterion_main!(benches);
