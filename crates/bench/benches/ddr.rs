//! Memory-subsystem microbenchmarks: the access patterns behind Fig. 4.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zllm_ddr::{traffic, MemorySystem};
use zllm_layout::weight::{fetch_stream, LayoutScheme, WeightFormat};

fn bench_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("ddr");
    g.sample_size(20);
    g.bench_function("sequential_16MiB", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::kv260();
            black_box(mem.transfer(&traffic::sequential(0, 16 << 20)))
        })
    });
    g.bench_function("random_4096_beats", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::kv260();
            black_box(mem.transfer(&traffic::random_single(7, 4096, 1 << 30)))
        })
    });
    g.finish();
}

/// The fast-path headline: a 1 GB sequential weight stream priced in
/// closed form, against the same stream forced down the per-access path.
fn bench_fast_path(c: &mut Criterion) {
    let stream = traffic::sequential(0, 1 << 30);
    let mut g = c.benchmark_group("ddr_fast_path");
    g.sample_size(10);
    g.bench_function("sequential_1GiB_fast", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::kv260();
            black_box(mem.transfer(black_box(&stream)))
        })
    });
    g.bench_function("sequential_1GiB_per_access", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::kv260();
            mem.set_fast_path(false);
            black_box(mem.transfer(black_box(&stream)))
        })
    });
    g.finish();
}

fn bench_layout_schemes(c: &mut Criterion) {
    let fmt = WeightFormat::kv260();
    let n_weights = 4096 * 4096;
    let mut g = c.benchmark_group("ddr_layout");
    g.sample_size(15);
    for scheme in LayoutScheme::ALL {
        let stream = fetch_stream(scheme, &fmt, n_weights, 0x8000_0000);
        g.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut mem = MemorySystem::kv260();
                black_box(mem.transfer(black_box(&stream)))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_patterns,
    bench_fast_path,
    bench_layout_schemes
);
criterion_main!(benches);
