//! End-to-end decode benchmarks: the trace-driven 7B token (the Table II
//! "Ours" measurement) and the functional small-model datapath.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zllm_accel::{AccelConfig, AccelDecoder, DecodeEngine, QuantizedModel};
use zllm_model::{ModelConfig, ModelWeights};
use zllm_quant::group::GroupQuantConfig;

fn bench_trace_7b(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_trace");
    g.sample_size(10);
    for (name, accel) in [
        ("llama2_7b_fused_ctx512", AccelConfig::kv260()),
        ("llama2_7b_coarse_ctx512", AccelConfig::kv260_coarse()),
    ] {
        g.bench_function(name, |b| {
            let mut engine =
                DecodeEngine::new(accel.clone(), &ModelConfig::llama2_7b(), 1024).expect("7B fits");
            b.iter(|| black_box(engine.decode_token(black_box(512))))
        });
    }
    g.finish();
}

fn bench_functional_small(c: &mut Criterion) {
    let cfg = ModelConfig::test_small();
    let weights = ModelWeights::generate(&cfg, 7);
    let qmodel = QuantizedModel::quantize(&weights, GroupQuantConfig::w4_g128());
    let mut g = c.benchmark_group("decode_functional");
    g.sample_size(10);
    g.bench_function("test_small_token", |b| {
        b.iter(|| {
            let mut dec = AccelDecoder::new(&qmodel);
            black_box(dec.forward(black_box(42)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_trace_7b, bench_functional_small);
criterion_main!(benches);
