//! Microbenchmarks of the FP16 datapath substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zllm_fp16::lut::{RopeTable, SineRom};
use zllm_fp16::vector::{DotEngine, TreePrecision};
use zllm_fp16::F16;

fn bench_conversions(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
    c.bench_function("fp16/from_f32_4096", |b| {
        b.iter(|| {
            for &v in &values {
                black_box(F16::from_f32(black_box(v)));
            }
        })
    });
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    c.bench_function("fp16/to_f32_4096", |b| {
        b.iter(|| {
            for &h in &halves {
                black_box(h.to_f32());
            }
        })
    });
}

fn bench_dot(c: &mut Criterion) {
    let a: Vec<F16> = (0..128).map(|i| F16::from_f32(i as f32 * 0.01)).collect();
    let engine32 = DotEngine::new(128, TreePrecision::Fp32);
    let engine16 = DotEngine::new(128, TreePrecision::Fp16);
    c.bench_function("fp16/dot128_tree_fp32", |b| {
        b.iter(|| black_box(engine32.dot(black_box(&a), black_box(&a))))
    });
    c.bench_function("fp16/dot128_tree_fp16", |b| {
        b.iter(|| black_box(engine16.dot(black_box(&a), black_box(&a))))
    });
}

fn bench_rope_lut(c: &mut Criterion) {
    let rom = SineRom::new();
    let table = RopeTable::new(128);
    c.bench_function("fp16/rope_sin_cos_64pairs", |b| {
        b.iter(|| {
            for pair in 0..64 {
                black_box(table.sin_cos(&rom, black_box(517), pair));
            }
        })
    });
}

criterion_group!(benches, bench_conversions, bench_dot, bench_rope_lut);
criterion_main!(benches);
