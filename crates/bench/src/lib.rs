//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for the recorded paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Example
///
/// ```
/// zllm_bench::print_table(
///     &["name", "value"],
///     &[vec!["a".to_owned(), "1".to_owned()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let mut s = String::new();
        for w in &widths {
            s.push_str(sep);
            s.push_str(&"-".repeat(w + 2));
        }
        s.push_str(sep);
        s
    };
    println!("{}", line("+"));
    let mut header = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header.push_str(&format!("| {h:<w$} "));
    }
    println!("{header}|");
    println!("{}", line("+"));
    for row in rows {
        let mut out = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("| {cell:<w$} "));
        }
        println!("{out}|");
    }
    println!("{}", line("+"));
}

// Deterministic fan-out now lives in `zllm-par` (the bottom of the
// dependency DAG) so the quantization and model crates can use it too;
// re-exported here because the table/figure binaries address it as
// `zllm_bench::par_map`.
pub use zllm_par::par_map;

/// Formats a ratio as a percentage string.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with sensible precision, mapping NaN to "/" as the
/// paper's tables do for unpublished values.
pub fn fmt_num(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "/".to_owned()
    } else {
        format!("{x:.decimals$}")
    }
}

/// Formats bytes as MiB.
pub fn fmt_mib(bytes: f64) -> String {
    format!("{:.0} MiB", bytes / (1u64 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100u64).collect(), |i| i * i);
        assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate sizes.
        assert_eq!(par_map(Vec::<u64>::new(), |i| i), Vec::<u64>::new());
        assert_eq!(par_map(vec![7u64], |i| i + 1), vec![8]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(0.845), "84.5%");
        assert_eq!(fmt_num(4.9, 1), "4.9");
        assert_eq!(fmt_num(f64::NAN, 1), "/");
        assert_eq!(fmt_mib(264.0 * 1024.0 * 1024.0), "264 MiB");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(&["a", "b"], &[vec!["1".into(), "22".into()]]);
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_rejected() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
