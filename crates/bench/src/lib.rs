//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for the recorded paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Example
///
/// ```
/// zllm_bench::print_table(
///     &["name", "value"],
///     &[vec!["a".to_owned(), "1".to_owned()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let mut s = String::new();
        for w in &widths {
            s.push_str(sep);
            s.push_str(&"-".repeat(w + 2));
        }
        s.push_str(sep);
        s
    };
    println!("{}", line("+"));
    let mut header = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header.push_str(&format!("| {h:<w$} "));
    }
    println!("{header}|");
    println!("{}", line("+"));
    for row in rows {
        let mut out = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("| {cell:<w$} "));
        }
        println!("{out}|");
    }
    println!("{}", line("+"));
}

/// Runs `f` over every item on scoped worker threads and returns the
/// results in input order.
///
/// Each invocation owns its item and builds whatever engine state it
/// needs *inside* its thread (the simulator's telemetry handles are
/// deliberately not `Send`), so independent configurations price
/// concurrently while the output stays deterministic: results are
/// collected positionally, never in completion order.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Vec<std::sync::Mutex<Option<(usize, T)>>> = items
        .into_iter()
        .enumerate()
        .map(|it| std::sync::Mutex::new(Some(it)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(queue.len());
    slots.resize_with(queue.len(), || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(slot) = queue.get(i) else { break };
                        let (idx, item) = slot
                            .lock()
                            .expect("queue slot poisoned")
                            .take()
                            .expect("each slot is claimed once by the dispatch counter");
                        local.push((idx, f(item)));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            for (idx, result) in worker.join().expect("bench worker panicked") {
                slots[idx] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Formats a ratio as a percentage string.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with sensible precision, mapping NaN to "/" as the
/// paper's tables do for unpublished values.
pub fn fmt_num(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "/".to_owned()
    } else {
        format!("{x:.decimals$}")
    }
}

/// Formats bytes as MiB.
pub fn fmt_mib(bytes: f64) -> String {
    format!("{:.0} MiB", bytes / (1u64 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100u64).collect(), |i| i * i);
        assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate sizes.
        assert_eq!(par_map(Vec::<u64>::new(), |i| i), Vec::<u64>::new());
        assert_eq!(par_map(vec![7u64], |i| i + 1), vec![8]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(0.845), "84.5%");
        assert_eq!(fmt_num(4.9, 1), "4.9");
        assert_eq!(fmt_num(f64::NAN, 1), "/");
        assert_eq!(fmt_mib(264.0 * 1024.0 * 1024.0), "264 MiB");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(&["a", "b"], &[vec!["1".into(), "22".into()]]);
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_rejected() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
