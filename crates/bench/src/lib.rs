//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for the recorded paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Example
///
/// ```
/// zllm_bench::print_table(
///     &["name", "value"],
///     &[vec!["a".to_owned(), "1".to_owned()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let mut s = String::new();
        for w in &widths {
            s.push_str(sep);
            s.push_str(&"-".repeat(w + 2));
        }
        s.push_str(sep);
        s
    };
    println!("{}", line("+"));
    let mut header = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header.push_str(&format!("| {h:<w$} "));
    }
    println!("{header}|");
    println!("{}", line("+"));
    for row in rows {
        let mut out = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("| {cell:<w$} "));
        }
        println!("{out}|");
    }
    println!("{}", line("+"));
}

// Deterministic fan-out now lives in `zllm-par` (the bottom of the
// dependency DAG) so the quantization and model crates can use it too;
// re-exported here because the table/figure binaries address it as
// `zllm_bench::par_map`.
pub use zllm_par::par_map;

/// Formats a ratio as a percentage string.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with sensible precision, mapping NaN to "/" as the
/// paper's tables do for unpublished values.
pub fn fmt_num(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "/".to_owned()
    } else {
        format!("{x:.decimals$}")
    }
}

/// Formats bytes as MiB.
pub fn fmt_mib(bytes: f64) -> String {
    format!("{:.0} MiB", bytes / (1u64 << 20) as f64)
}

/// Parses `--<flag> <value>` from an argument list, exiting with status
/// 2 (the sim bins' usage-error convention) when the flag is present
/// without a value. Returns `None` when the flag is absent.
pub fn cli_value_arg(bin: &str, args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("{bin}: {flag} requires a value argument");
                std::process::exit(2);
            })
            .clone()
    })
}

/// Parses `--seed <n>` (falling back to `default`), exiting with status
/// 2 on a malformed value. Every sim bin takes a seed so a CI failure
/// can be replayed locally on the exact same trace.
pub fn cli_seed_arg(bin: &str, args: &[String], default: u64) -> u64 {
    match cli_value_arg(bin, args, "--seed") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("{bin}: --seed requires an unsigned integer, got {v:?}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Asserts a string needs no JSON escaping and passes it through. All
/// strings the sim bins emit are static identifiers; a quote or
/// backslash sneaking in is a bug, not data.
pub fn json_escape_free(s: &str) -> &str {
    assert!(!s.contains('"') && !s.contains('\\'));
    s
}

/// One field value in a [`json_report`] row.
///
/// The variants encode the exact formatting the sim bins have always
/// used, so jq pipelines (and the CI job summaries built on them) keep
/// parsing byte-identical output:
///
/// * [`JsonField::Str`] — quoted, asserted escape-free
///   ([`json_escape_free`]);
/// * [`JsonField::UInt`] — integers as-is;
/// * [`JsonField::Num`] — shortest-`Display` floats (offered rates:
///   `10`, `0.5`);
/// * [`JsonField::Fixed3`] — `{:.3}` (latencies in ms);
/// * [`JsonField::Fixed6`] — `{:.6}` (rates and throughputs).
#[derive(Debug, Clone)]
pub enum JsonField {
    /// A quoted string; must contain no quote or backslash.
    Str(String),
    /// An unsigned integer, printed as-is.
    UInt(u64),
    /// A float printed with shortest-roundtrip `Display`.
    Num(f64),
    /// A float printed with three decimal places.
    Fixed3(f64),
    /// A float printed with six decimal places.
    Fixed6(f64),
}

impl std::fmt::Display for JsonField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonField::Str(s) => write!(f, "\"{}\"", json_escape_free(s)),
            JsonField::UInt(v) => write!(f, "{v}"),
            JsonField::Num(v) => write!(f, "{v}"),
            JsonField::Fixed3(v) => write!(f, "{v:.3}"),
            JsonField::Fixed6(v) => write!(f, "{v:.6}"),
        }
    }
}

/// Version stamped into every row [`json_report`] emits. Bump when the
/// shared shape (not a bin's column set) changes incompatibly.
pub const JSON_SCHEMA_VERSION: u64 = 1;

/// Serializes sweep rows as the sim bins' common JSON shape: an array
/// of flat objects, one object per line, two-space indent, key order
/// exactly as given, each row led by a `schema_version` field
/// ([`JSON_SCHEMA_VERSION`]) so downstream consumers can detect shape
/// changes. Every `--json` writer (`serve_sim`, `fleet_sim`,
/// `paged_sweep`, `tier_sweep`, `spec_sweep`, `compress_sweep`) goes
/// through here so the shape can never drift between bins.
pub fn json_report(rows: &[Vec<(&str, JsonField)>]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("  {{\"schema_version\": {JSON_SCHEMA_VERSION}"));
        for (key, value) in row.iter() {
            out.push_str(&format!(", \"{}\": {}", json_escape_free(key), value));
        }
        out.push('}');
        if i + 1 != rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// The offered-load sweep traffic shared by the serving and fleet sim
/// bins: heterogeneous mixed-length requests (prompts 16–96, outputs
/// 4–48) whose spread is what separates scheduling disciplines — the
/// gang baseline pads everyone to the longest prompt and holds slots
/// until the longest generation drains.
pub fn sweep_traffic(
    requests: usize,
    seed: u64,
    arrivals: zllm_serve::ArrivalModel,
) -> zllm_serve::TrafficConfig {
    let mut cfg = zllm_serve::TrafficConfig::default_mix(requests, seed, arrivals);
    cfg.prompt_tokens = (16, 96);
    cfg.new_tokens = (4, 48);
    cfg
}

/// The lanes-widened KV260 the speculative scenarios price on. The
/// stock engine is *exactly* compute/bandwidth balanced — 128 lanes
/// consume one 128-weight beat per cycle at the fabric's pace — so a
/// verify window's `K + 1` compute fanout costs exactly the cycles it
/// saves in weight traffic and speculation gains nothing. Widening the
/// VPU to 1024 lanes (the fabric and DDR untouched) leaves the engine
/// bandwidth-bound at fanout 1, so non-speculative pricing is
/// unchanged, while verify windows up to fanout 8 stay a single cycle
/// per beat and the weight-stream amortization becomes visible.
pub fn spec_accel() -> zllm_accel::AccelConfig {
    let mut cfg = zllm_accel::AccelConfig::kv260();
    cfg.lanes = 1024;
    cfg
}

/// The PL-overclocked KV260 the compression scenarios price on. Wire
/// beats shrink on the DDR bus, but the decompressed stream still has
/// to be *consumed*: the fabric delivers (and the VPU retires) one
/// logical 64-byte beat per PL cycle, and the stock 300 MHz clock is
/// exactly balanced against DDR4-2400's beat rate — so saved wire beats
/// hide under the compute floor and compression buys ~3% there (the
/// sweep's `balanced-kv260` reference row documents that). Tripling the
/// PL clock (fabric and VPU; DDR untouched) gives the consume side the
/// headroom to absorb a decompressed stream at up to 3× the bus's
/// logical rate, so the wire savings — not the consumer — set the
/// token time.
pub fn comp_accel() -> zllm_accel::AccelConfig {
    let mut cfg = zllm_accel::AccelConfig::kv260();
    cfg.freq_mhz = 900.0;
    cfg.axi.clock_mhz = 900.0;
    cfg
}

/// Decode-heavy traffic for the paged-KV sweep: short prompts, long
/// generation *caps*, and three quarters of the requests hitting EOS
/// before their cap. Worst-case admission must reserve
/// `prompt + max_new` for a sequence's whole lifetime; the actual KV a
/// sequence ever occupies is its ramp up to the (usually much earlier)
/// EOS point. That gap is the regime where actual-growth charging
/// packs more concurrent users into the same DDR budget.
pub fn decode_heavy_traffic(
    requests: usize,
    seed: u64,
    arrivals: zllm_serve::ArrivalModel,
) -> zllm_serve::TrafficConfig {
    let mut cfg = zllm_serve::TrafficConfig::default_mix(requests, seed, arrivals);
    cfg.prompt_tokens = (8, 16);
    cfg.new_tokens = (48, 96);
    cfg.eos_early_fraction = 0.75;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100u64).collect(), |i| i * i);
        assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate sizes.
        assert_eq!(par_map(Vec::<u64>::new(), |i| i), Vec::<u64>::new());
        assert_eq!(par_map(vec![7u64], |i| i + 1), vec![8]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(0.845), "84.5%");
        assert_eq!(fmt_num(4.9, 1), "4.9");
        assert_eq!(fmt_num(f64::NAN, 1), "/");
        assert_eq!(fmt_mib(264.0 * 1024.0 * 1024.0), "264 MiB");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(&["a", "b"], &[vec!["1".into(), "22".into()]]);
    }

    #[test]
    fn json_report_stamps_schema_version_on_every_row() {
        let rows = vec![
            vec![
                ("a", JsonField::UInt(1)),
                ("b", JsonField::Str("x".to_owned())),
            ],
            vec![
                ("a", JsonField::UInt(2)),
                ("b", JsonField::Str("y".to_owned())),
            ],
        ];
        let out = json_report(&rows);
        let expected = format!(
            "[\n  {{\"schema_version\": {v}, \"a\": 1, \"b\": \"x\"}},\n  \
             {{\"schema_version\": {v}, \"a\": 2, \"b\": \"y\"}}\n]\n",
            v = JSON_SCHEMA_VERSION
        );
        assert_eq!(out, expected);
        // Empty reports stay a bare array.
        assert_eq!(json_report(&[]), "[\n]\n");
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_rejected() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
