//! Regenerates **Table II**: performance comparison with existing FPGA
//! research. The "Ours" row is *measured* by the trace-driven simulation
//! of the accelerator decoding LLaMA2-7B on the DDR4/AXI model; every
//! theoretical column is recomputed from the platform bandwidth and the
//! workload's weight footprint.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin table2
//! ```

use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_baselines::{table2_rows, OursResult};
use zllm_bench::{fmt_num, fmt_pct, print_table};
use zllm_model::ModelConfig;

fn main() {
    println!("Simulating LLaMA2-7B decoding on the KV260 (trace-driven)...");
    let mut engine = DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024)
        .expect("LLaMA2-7B fits the 4GB device");
    let run = engine.decode_run_sampled(1024, 8);

    // The run's numbers come back out of the unified metrics registry —
    // the same snapshot the perf gate diffs against its baseline.
    let snap = engine.metrics_snapshot();
    let tokens_per_s = snap.gauge("decode.run.tokens_per_s").expect("published");
    let hits = snap.counter("ddr.port0.row_hits").unwrap_or(0);
    let misses = snap.counter("ddr.port0.row_misses").unwrap_or(0);
    let conflicts = snap.counter("ddr.port0.row_conflicts").unwrap_or(0);
    let accesses = (hits + misses + conflicts).max(1);
    println!(
        "  simulated: {:.2} token/s over a 1024-token generation ({} sampled steps)",
        tokens_per_s, run.tokens
    );
    println!(
        "  DDR: {} accesses, {} row-hit rate\n",
        fmt_num(accesses as f64, 0),
        fmt_pct(hits as f64 / accesses as f64)
    );

    let rows = table2_rows(OursResult { tokens_per_s });
    println!("Table II: Performance comparison with existing FPGA research\n");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.device.to_owned(),
                if r.lut_k.is_nan() {
                    "/".to_owned()
                } else {
                    fmt_num(r.lut_k, 0) + "K"
                },
                if r.ff_k.is_nan() {
                    "/".to_owned()
                } else {
                    fmt_num(r.ff_k, 0) + "K"
                },
                fmt_num(r.bram, 1),
                fmt_num(r.dsp, 0),
                fmt_num(r.mhz, 0),
                fmt_num(r.watts, 2),
                fmt_num(r.bandwidth_gbps, 1),
                r.task.clone(),
                r.precision.to_owned(),
                fmt_num(r.theoretical, 1),
                fmt_num(r.measured, 1),
                fmt_pct(r.utilization),
            ]
        })
        .collect();
    print_table(
        &[
            "Work",
            "Device",
            "LUT",
            "FF",
            "BRAM",
            "DSP",
            "MHz",
            "W",
            "GB/s",
            "Task",
            "Opt.",
            "token/s (theo)",
            "token/s (meas)",
            "Util.",
        ],
        &printable,
    );
    println!("\nPaper reference (Ours row): 5.8 theoretical, 4.9 measured, 84.5% util.");
}
