//! Regenerates **Table II**: performance comparison with existing FPGA
//! research. The "Ours" row is *measured* by the trace-driven simulation
//! of the accelerator decoding LLaMA2-7B on the DDR4/AXI model; every
//! theoretical column is recomputed from the platform bandwidth and the
//! workload's weight footprint.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin table2
//! ```

use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_baselines::{table2_rows, OursResult};
use zllm_bench::{fmt_num, fmt_pct, par_map, print_table};
use zllm_model::ModelConfig;

fn main() {
    println!("Simulating LLaMA2-7B decoding on the KV260 (trace-driven)...");
    // Sample evenly spaced context lengths like `decode_run_sampled`, but
    // price each on its own engine so the samples run concurrently. Every
    // sample publishes into its engine's metrics registry — the same
    // counters the perf gate diffs — and the per-sample snapshots are
    // summed here.
    let (samples, ctx_end) = (8usize, 1024usize);
    let step = (ctx_end / samples).max(1);
    let sampled = par_map((0..samples).collect(), |i| {
        let mut engine = DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024)
            .expect("LLaMA2-7B fits the 4GB device");
        let report = engine.decode_token((i * step).min(ctx_end - 1));
        let snap = engine.metrics_snapshot();
        (
            report.wall_ns,
            snap.counter("ddr.port0.row_hits").unwrap_or(0),
            snap.counter("ddr.port0.row_misses").unwrap_or(0),
            snap.counter("ddr.port0.row_conflicts").unwrap_or(0),
        )
    });
    let mean_ns: f64 = sampled.iter().map(|s| s.0).sum::<f64>() / sampled.len() as f64;
    let tokens_per_s = 1e9 / mean_ns;
    let hits: u64 = sampled.iter().map(|s| s.1).sum();
    let misses: u64 = sampled.iter().map(|s| s.2).sum();
    let conflicts: u64 = sampled.iter().map(|s| s.3).sum();
    let accesses = (hits + misses + conflicts).max(1);
    println!(
        "  simulated: {tokens_per_s:.2} token/s over a 1024-token generation ({samples} sampled steps)",
    );
    println!(
        "  DDR: {} accesses, {} row-hit rate\n",
        fmt_num(accesses as f64, 0),
        fmt_pct(hits as f64 / accesses as f64)
    );

    let rows = table2_rows(OursResult { tokens_per_s });
    println!("Table II: Performance comparison with existing FPGA research\n");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.device.to_owned(),
                if r.lut_k.is_nan() {
                    "/".to_owned()
                } else {
                    fmt_num(r.lut_k, 0) + "K"
                },
                if r.ff_k.is_nan() {
                    "/".to_owned()
                } else {
                    fmt_num(r.ff_k, 0) + "K"
                },
                fmt_num(r.bram, 1),
                fmt_num(r.dsp, 0),
                fmt_num(r.mhz, 0),
                fmt_num(r.watts, 2),
                fmt_num(r.bandwidth_gbps, 1),
                r.task.clone(),
                r.precision.to_owned(),
                fmt_num(r.theoretical, 1),
                fmt_num(r.measured, 1),
                fmt_pct(r.utilization),
            ]
        })
        .collect();
    print_table(
        &[
            "Work",
            "Device",
            "LUT",
            "FF",
            "BRAM",
            "DSP",
            "MHz",
            "W",
            "GB/s",
            "Task",
            "Opt.",
            "token/s (theo)",
            "token/s (meas)",
            "Util.",
        ],
        &printable,
    );
    println!("\nPaper reference (Ours row): 5.8 theoretical, 4.9 measured, 84.5% util.");
}
