//! Regenerates **Figure 4**'s two experiments:
//!
//! * **4A** — the bus-width-aligned interleaved weight arrangement versus
//!   split-region and per-group metadata fetching, priced on the DDR4
//!   model (efficiency, mean burst length, on-chip buffer cost);
//! * **4B** — the KV scale-zero packing FIFO versus naive scattered
//!   32-bit writes.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin fig4_format
//! ```

use zllm_bench::{fmt_pct, print_table};
use zllm_ddr::MemorySystem;
use zllm_layout::kv_pack::KvPackFifo;
use zllm_layout::weight::{fetch_stream, LayoutScheme, WeightFormat};
use zllm_layout::BurstDescriptor;

fn main() {
    // One LLaMA2-7B MLP projection's worth of weights.
    let n_weights = 4096 * 11008;

    let variants = [
        ("512-bit merged stream (ours)", WeightFormat::kv260()),
        (
            "256-bit transactions (Fig. 4A's 64-weight enumeration)",
            WeightFormat::paper_fig4(),
        ),
    ];
    for (vname, fmt) in variants {
        println!(
            "Figure 4A: weight data arrangement ablation — {vname}\n\
             ({} M weights, {} weights/transaction)\n",
            n_weights / 1_000_000,
            fmt.weights_per_beat()
        );
        let mut rows = Vec::new();
        for scheme in LayoutScheme::ALL {
            let stream = fetch_stream(scheme, &fmt, n_weights, 0x8000_0000);
            let mean_burst =
                stream.iter().map(|b| b.beats as f64).sum::<f64>() / stream.len() as f64;
            // fetch_stream counts format-width transactions; the DDR model
            // prices 512-bit/64-byte beats, so rescale narrower geometries
            // before transfer (ceil keeps partial beats whole).
            let bus_stream: Vec<BurstDescriptor> = stream
                .iter()
                .map(|b| BurstDescriptor {
                    beats: ((b.beats as u64 * fmt.bus_bits as u64).div_ceil(512)) as u32,
                    ..*b
                })
                .collect();
            let mut mem = MemorySystem::kv260();
            let report = mem.transfer(&bus_stream);
            let buffer = match scheme {
                LayoutScheme::Interleaved => fmt.on_chip_metadata_bytes(),
                _ => fmt.staged_metadata_bytes(n_weights),
            };
            rows.push(vec![
                scheme.to_string(),
                format!("{}", stream.len()),
                format!("{mean_burst:.1}"),
                format!("{:.2}", report.bandwidth_gbps),
                fmt_pct(report.efficiency),
                fmt_pct(report.stats.row_hit_rate()),
                format!("{:.1} KiB", buffer as f64 / 1024.0),
            ]);
        }
        print_table(
            &[
                "scheme",
                "bursts",
                "mean txns",
                "GB/s",
                "efficiency",
                "row hits",
                "on-chip metadata",
            ],
            &rows,
        );
        println!(
            "\nInterleaving metadata with weights keeps the whole layer one burst\n\
             with a {:.1}% metadata overhead and a {} B working buffer (§V-B1).\n",
            fmt.metadata_fraction() * 100.0,
            fmt.on_chip_metadata_bytes()
        );
    }

    // --- 4B: KV scale-zero packing ---
    println!("\nFigure 4B: KV scale-zero packing (LLaMA2-7B, 1024 tokens)\n");
    let streams = 32 * 32 * 2; // layers × kv heads × {K,V}
    let tokens = 1024u64;
    let packed_beats = KvPackFifo::write_beats_for(streams, tokens);
    let naive_writes = KvPackFifo::naive_writes_for(streams, tokens);

    // Price both write patterns: packed = beat-aligned bursts; naive =
    // scattered sub-beat writes (each still occupies a full beat slot on
    // the bus — read-modify-write of a 64-byte word).
    let mut mem_packed = MemorySystem::kv260();
    let packed_bursts: Vec<BurstDescriptor> = (0..packed_beats)
        .map(|i| BurstDescriptor::write(0x4000_0000 + i * 64, 1))
        .collect();
    let packed_report = mem_packed.transfer(&packed_bursts);

    let mut mem_naive = MemorySystem::kv260();
    // Scattered: each stream writes its own 4-byte slot per token —
    // addresses stride by the stream table pitch.
    let naive_bursts: Vec<BurstDescriptor> = (0..naive_writes)
        .map(|i| {
            let token = i / streams as u64;
            let stream = i % streams as u64;
            BurstDescriptor::write(0x4000_0000 + (stream * 4096 + token) * 64, 1)
        })
        .collect();
    let naive_report = mem_naive.transfer(&naive_bursts);

    print_table(
        &[
            "discipline",
            "DDR writes",
            "bytes",
            "time (µs)",
            "bus efficiency",
        ],
        &[
            vec![
                "packed FIFO (ours)".into(),
                format!("{packed_beats}"),
                format!("{:.1} KiB", packed_report.bytes as f64 / 1024.0),
                format!("{:.1}", packed_report.wall_ns / 1e3),
                fmt_pct(packed_report.efficiency),
            ],
            vec![
                "naive scattered".into(),
                format!("{naive_writes}"),
                format!("{:.1} KiB", naive_report.bytes as f64 / 1024.0),
                format!("{:.1}", naive_report.wall_ns / 1e3),
                fmt_pct(naive_report.efficiency),
            ],
        ],
    );
    println!(
        "\nPacking 16 tokens' scale-zero pairs into one 512-bit element cuts\n\
         metadata write traffic {}x and keeps every transfer bus-aligned (§V-B2).",
        naive_writes / packed_beats
    );
}
