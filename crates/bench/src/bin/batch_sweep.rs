//! Batched multi-sequence decode sweep: prices the **exact** batched
//! schedule (one weight stream fanned out to B sequences, per-sequence KV
//! FIFOs) for B ∈ {1, 2, 4, 8, 16} across context lengths, on both the
//! KV260's DDR4-2400 and an LPDDR5-6400 embedded part.
//!
//! The analytic counterpart is ablation 7 in `ablations`; this bin runs
//! the real [`DecodeEngine::decode_token_batch`] path, so it also shows
//! the *capacity* wall: each extra sequence provisions its own KV region,
//! and past a point LLaMA2-7B plus B KV caches no longer fit the 4 GiB
//! DDR map.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin batch_sweep
//! ```

use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_bench::{fmt_pct, par_map, print_table};
use zllm_model::ModelConfig;

/// KV context provisioned per sequence (tokens).
const CTX_CAPACITY: usize = 256;
/// Decode positions sampled per engine.
const CONTEXTS: [usize; 3] = [64, 128, 240];
/// Concurrent-sequence counts swept.
const BATCHES: [usize; 5] = [1, 2, 4, 8, 16];

fn sweep(name: &str, accel: AccelConfig) {
    println!("{name} — LLaMA2-7B, {CTX_CAPACITY}-token KV provisioning per sequence\n");
    let model = ModelConfig::llama2_7b();
    let rows: Vec<Vec<Vec<String>>> = par_map(BATCHES.to_vec(), |batch| {
        match DecodeEngine::new_batched(accel.clone(), &model, CTX_CAPACITY, batch) {
            Err(e) => vec![vec![
                format!("{batch}"),
                "-".into(),
                format!("capacity wall: {e}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]],
            Ok(mut engine) => CONTEXTS
                .iter()
                .map(|&ctx| {
                    let r = engine.decode_token_batch(ctx, batch);
                    vec![
                        format!("{batch}"),
                        format!("{ctx}"),
                        format!("{:.2}", r.tokens_per_s),
                        format!("{:.2}", r.seq_tokens_per_s),
                        format!("{:.2}x", r.weight_amortization),
                        fmt_pct(r.kv_share),
                        fmt_pct(r.bandwidth_util),
                    ]
                })
                .collect(),
        }
    });
    print_table(
        &[
            "batch",
            "ctx",
            "aggregate tok/s",
            "per-seq tok/s",
            "weight amortization",
            "KV share",
            "util",
        ],
        &rows.into_iter().flatten().collect::<Vec<_>>(),
    );
    println!();
}

fn main() {
    println!("Batched decode: amortizing the weight stream across users\n");
    sweep("DDR4-2400 (KV260)", AccelConfig::kv260());

    let mut lpddr5 = AccelConfig::kv260();
    lpddr5.ddr = zllm_ddr::DdrConfig::lpddr5_6400_embedded();
    sweep("LPDDR5-6400 (embedded 64-bit)", lpddr5);

    println!("Each beat of the dense weight stream is fetched once and fanned out");
    println!("to every sequence, so batch B multiplies only the KV traffic — the");
    println!("weight-amortization column approaches B while per-sequence speed");
    println!("falls roughly as 1/B on the bandwidth-area balanced engine (no spare");
    println!("MACs, §II). The capacity rows show the other edge-box wall: each");
    println!("sequence's KV provisioning competes with the 3.5 GiB of weights for");
    println!("the 4 GiB DDR map.");
}
