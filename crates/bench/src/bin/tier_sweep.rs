//! Tiered-weight sweep: decode throughput vs DDR weight budget when the
//! model streams its layers from flash through a DDR-resident cache.
//!
//! For 7B- and 13B-shape models on both memory systems (KV260
//! DDR4-2400 and the LPDDR5-6400 swap), the budget is swept from
//! "everything resident" down to ~1.5 layers, under both prefetch
//! policies: the schedule-aware pin/stream planner and the blind
//! LRU + fixed-lookahead strawman. The 7B/DDR4 part additionally runs
//! every sub-full budget on both flash presets (eMMC HS400 and NVMe
//! Gen3 x2) so the link-speed sensitivity is visible on one part; the
//! other parts stream from NVMe. The 13B parts add the `board4g`
//! point — the budget left for layer weights after everything else
//! claims its share of a real 4 GiB board — which is the configuration
//! the `tiered.*` perf gates pin.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin tier_sweep
//! cargo run --release -p zllm-bench --bin tier_sweep -- --json out.json
//! ```

use zllm_accel::{AccelConfig, DecodeEngine, TierConfig, TierReport};
use zllm_bench::{cli_seed_arg, cli_value_arg, fmt_mib, json_report, print_table, JsonField};
use zllm_ddr::FlashConfig;
use zllm_model::ModelConfig;

/// Decode context every run prices at (tokens decoded at fixed ctx).
const CTX: usize = 512;
/// Tokens decoded per run; the cache starts warm, so the second token
/// is cyclic steady state and is the one reported.
const TOKENS: usize = 2;
/// A real KV260 carries 4 GiB of DDR.
const BOARD_BYTES: u64 = 4 << 30;

struct Run {
    part: &'static str,
    model: &'static str,
    flash: &'static str,
    budget: &'static str,
    policy: &'static str,
    tokens_per_s: f64,
    physical_bytes: u64,
    /// Tier activity across the whole run (counters are cumulative).
    report: TierReport,
    /// Stall and staging time attributable to the steady-state token.
    stall_ns: f64,
    staging_ns: f64,
}

fn flash_preset(name: &str) -> FlashConfig {
    match name {
        "emmc" => FlashConfig::emmc_hs400(),
        "nvme" => FlashConfig::nvme_gen3(),
        other => unreachable!("unknown flash preset {other}"),
    }
}

fn tier_config(policy: &str, flash: &str, budget_bytes: u64) -> TierConfig {
    match policy {
        "aware" => TierConfig::schedule_aware(flash_preset(flash), budget_bytes),
        "blind" => TierConfig::blind_lru(flash_preset(flash), budget_bytes),
        other => unreachable!("unknown policy {other}"),
    }
}

/// Budget points swept on every part, as `(label, layer-multiples)`:
/// the byte budget is `multiple × max layer bytes`. `all` holds every
/// layer, `cover` exactly one short of that (the gate's "covering"
/// budget — minimum possible streaming), `thrash` is deep into
/// capacity pressure, `floor` barely holds one layer plus headroom.
fn budget_points(n_layers: usize) -> Vec<(&'static str, f64)> {
    vec![
        ("all", n_layers as f64),
        ("cover", n_layers as f64 - 0.5),
        ("thrash", 3.4),
        ("floor", 1.5),
    ]
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    accel: &AccelConfig,
    model: &ModelConfig,
    part: &'static str,
    model_name: &'static str,
    flash: &'static str,
    budget: &'static str,
    budget_bytes: u64,
    policy: &'static str,
) -> Run {
    let tier = tier_config(policy, flash, budget_bytes);
    let mut engine = DecodeEngine::new_tiered(accel.clone(), model, CTX + TOKENS, tier)
        .expect("tiered build fits some virtual map");
    let mut warm = None;
    let mut last = None;
    for t in 0..TOKENS {
        let report = engine.decode_token(CTX);
        if t + 1 == TOKENS {
            last = Some(report);
        } else {
            warm = Some(engine.tier_report().expect("tiered engine"));
        }
    }
    let last = last.expect("at least one token");
    let report = engine.tier_report().expect("tiered engine");
    let (stall_ns, staging_ns) = match &warm {
        Some(w) => (
            report.stall_ns - w.stall_ns,
            report.staging_ddr_ns - w.staging_ddr_ns,
        ),
        None => (report.stall_ns, report.staging_ddr_ns),
    };
    Run {
        part,
        model: model_name,
        flash,
        budget,
        policy,
        tokens_per_s: last.tokens_per_s,
        physical_bytes: engine.tier_physical_bytes().expect("tiered engine"),
        report,
        stall_ns,
        staging_ns,
    }
}

fn sweep(
    part: &'static str,
    model_name: &'static str,
    model: &ModelConfig,
    accel: &AccelConfig,
    flashes: &[&'static str],
    runs: &mut Vec<Run>,
) {
    // Layer geometry comes from a throwaway all-resident build.
    let probe = DecodeEngine::new_tiered(
        accel.clone(),
        model,
        CTX + TOKENS,
        TierConfig::schedule_aware(FlashConfig::nvme_gen3(), u64::MAX / 2),
    )
    .expect("probe build");
    let n_layers = model.n_layers;
    let layer_bytes: u64 = (0..n_layers)
        .map(|l| probe.image().layer_weight_bytes(l))
        .max()
        .expect("model has layers");
    let total_layer_bytes: u64 = (0..n_layers)
        .map(|l| probe.image().layer_weight_bytes(l))
        .sum();
    let non_layer = probe.image().non_layer_resident_bytes();
    drop(probe);

    println!(
        "{part} — {n_layers} layers × {}, non-layer residency {}\n",
        fmt_mib(layer_bytes as f64),
        fmt_mib(non_layer as f64),
    );
    let mut rows = Vec::new();
    let mut points: Vec<(&'static str, u64)> = budget_points(n_layers)
        .into_iter()
        .map(|(label, mult)| (label, (mult * layer_bytes as f64) as u64))
        .collect();
    // The 13B shapes stream because the board is small: add the budget
    // a 4 GiB board actually leaves for layer weights.
    if non_layer + total_layer_bytes > BOARD_BYTES {
        points.push(("board4g", BOARD_BYTES - non_layer));
    }
    for (label, budget_bytes) in points {
        // The full budget fetches nothing, so the flash preset cannot
        // matter; sweep presets only where there is flash traffic.
        let flashes: &[&'static str] = if label == "all" {
            &flashes[..1]
        } else {
            flashes
        };
        for &flash in flashes {
            for policy in ["aware", "blind"] {
                let run = run_one(
                    accel,
                    model,
                    part,
                    model_name,
                    flash,
                    label,
                    budget_bytes,
                    policy,
                );
                let r = &run.report;
                rows.push(vec![
                    label.to_string(),
                    format!("{}", r.capacity_layers),
                    flash.to_string(),
                    policy.to_string(),
                    format!("{:.3}", run.tokens_per_s),
                    format!("{:.1}", run.stall_ns / 1e6),
                    fmt_mib(r.flash_bytes as f64),
                    format!("{}", r.demand_misses),
                    format!("{}", r.late_prefetches),
                    format!("{}", r.prefetch_wasted),
                    fmt_mib(run.physical_bytes as f64),
                ]);
                runs.push(run);
            }
        }
    }
    print_table(
        &[
            "budget", "cap", "flash", "policy", "tok/s", "stall ms", "flash io", "demand", "late",
            "wasted", "phys",
        ],
        &rows,
    );
    println!();
}

fn to_json(runs: &[Run]) -> String {
    use JsonField::{Fixed3, Fixed6, Str, UInt};
    let rows: Vec<Vec<(&str, JsonField)>> = runs
        .iter()
        .map(|run| {
            let r = &run.report;
            vec![
                ("part", Str(run.part.to_string())),
                ("model", Str(run.model.to_string())),
                ("flash", Str(run.flash.to_string())),
                ("budget", Str(run.budget.to_string())),
                ("policy", Str(run.policy.to_string())),
                ("budget_bytes", UInt(r.budget_bytes)),
                ("capacity_layers", UInt(r.capacity_layers as u64)),
                ("physical_bytes", UInt(run.physical_bytes)),
                ("tokens_per_s", Fixed6(run.tokens_per_s)),
                ("stall_ms", Fixed3(run.stall_ns / 1e6)),
                ("staging_ddr_ms", Fixed3(run.staging_ns / 1e6)),
                ("flash_bytes", UInt(r.flash_bytes)),
                ("flash_reads", UInt(r.flash_reads)),
                ("hits", UInt(r.hits)),
                ("demand_misses", UInt(r.demand_misses)),
                ("late_prefetches", UInt(r.late_prefetches)),
                ("prefetch_issued", UInt(r.prefetch_issued)),
                ("prefetch_wasted", UInt(r.prefetch_wasted)),
                ("evictions", UInt(r.evictions)),
            ]
        })
        .collect();
    json_report(&rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = cli_value_arg("tier_sweep", &args, "--json");
    // Every sim bin takes the shared `--seed` flag so harness scripts
    // can pass it uniformly; this sweep replays no stochastic trace —
    // it is fully deterministic — so the value is validated (malformed
    // input still exits 2 like everywhere else) but drives nothing.
    let _seed = cli_seed_arg("tier_sweep", &args, 0);

    let ddr4 = AccelConfig::kv260();
    let mut lpddr5 = AccelConfig::kv260();
    lpddr5.ddr = zllm_ddr::DdrConfig::lpddr5_6400_embedded();

    let mut runs = Vec::new();
    let m7 = ModelConfig::llama2_7b();
    let m13 = ModelConfig::llama2_13b();
    sweep(
        "7b-ddr4-2400",
        "llama2-7b",
        &m7,
        &ddr4,
        &["emmc", "nvme"],
        &mut runs,
    );
    sweep(
        "7b-lpddr5-6400",
        "llama2-7b",
        &m7,
        &lpddr5,
        &["nvme"],
        &mut runs,
    );
    sweep(
        "13b-ddr4-2400",
        "llama2-13b",
        &m13,
        &ddr4,
        &["nvme"],
        &mut runs,
    );
    sweep(
        "13b-lpddr5-6400",
        "llama2-13b",
        &m13,
        &lpddr5,
        &["nvme"],
        &mut runs,
    );

    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&runs)).expect("write tier_sweep JSON");
        println!("tier_sweep: report written to {path}");
    }
}
