//! Regenerates **Figure 1**'s capacity story: the 4 GB bare-metal memory
//! map with LLaMA2-7B AWQ-4bit weights and a 1024-token KV8 cache,
//! reaching ~93 % occupancy, with no room left for Linux — and shows that
//! LLaMA2-13B cannot be placed at all.
//!
//! ```text
//! cargo run -p zllm-bench --bin fig1_capacity
//! ```

use zllm_accel::image::ModelImage;
use zllm_bench::{fmt_mib, fmt_pct};
use zllm_layout::weight::WeightFormat;
use zllm_model::memory::{kv8_cache_bytes, resident_weight_bytes, WeightPrecision};
use zllm_model::ModelConfig;

fn main() {
    let cfg = ModelConfig::llama2_7b();
    let image = ModelImage::build(&cfg, WeightFormat::kv260(), 1024)
        .expect("LLaMA2-7B fits the 4GB device");

    println!("Figure 1: LLaMA2-7B on the KV260's 4 GB DDR4\n");
    println!(
        "  model weights (W4 interleaved):    {}",
        fmt_mib(image.weight_stream_bytes() as f64)
    );
    println!(
        "  embedding table (FP16):            {}",
        fmt_mib((cfg.vocab_size * cfg.d_model * 2) as f64)
    );
    println!(
        "  KV cache, 1024 tokens (KV8):       {}",
        fmt_mib(kv8_cache_bytes(&cfg, 1024))
    );
    println!(
        "  total occupancy:                   {}",
        fmt_pct(image.occupancy())
    );
    println!(
        "  largest free extent:               {}",
        fmt_mib(image.map().largest_free_extent() as f64)
    );
    println!(
        "  Linux bootable in the remainder?   {}",
        if image.linux_bootable() {
            "yes"
        } else {
            "no (hence bare-metal)"
        }
    );

    println!("\nAnalytic cross-check (first principles):");
    println!(
        "  resident weights: {}   paper: 3556 MB",
        fmt_mib(resident_weight_bytes(&cfg, WeightPrecision::W4G128))
    );
    println!(
        "  KV cache:         {}   paper: 264 MB",
        fmt_mib(kv8_cache_bytes(&cfg, 1024))
    );
    println!("  paper occupancy:  93.3%");

    // The negative control: 13B does not place.
    let mut cfg13 = ModelConfig::llama2_7b();
    cfg13.name = "LLaMA2-13B".into();
    cfg13.n_layers = 40;
    cfg13.d_model = 5120;
    cfg13.n_heads = 40;
    cfg13.n_kv_heads = 40;
    cfg13.d_ff = 13824;
    match ModelImage::build(&cfg13, WeightFormat::kv260(), 1024) {
        Ok(_) => println!("\nUNEXPECTED: 13B placed — capacity model is broken"),
        Err(e) => println!("\nLLaMA2-13B placement fails as expected: {e}"),
    }

    println!("\nFull region map:\n{}", image.map());
}
