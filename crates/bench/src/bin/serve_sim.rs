//! Serving-layer sweep: goodput vs offered load under continuous
//! batching and the lockstep gang-scheduling baseline.
//!
//! Replays deterministic Poisson and bursty request traces through the
//! [`Server`] simulator on the KV260's DDR4-2400 and an LPDDR5-6400
//! embedded part. Both disciplines run behind the same KV-capacity
//! admission controller, so the table isolates what continuous
//! batching buys on the paper's bandwidth-area balanced engine: no
//! idle slots while a gang drains, no padded-context KV traffic for
//! short prompts, and immediate joins from the queue.
//!
//! The model is TinyLlama-1.1B: pricing a step costs host time in
//! proportion to the bytes it moves, and a trace is thousands of steps,
//! so the 7B part would push this sweep to tens of minutes on the
//! single-core CI box. The scheduling effects being measured are
//! model-independent.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin serve_sim
//! cargo run --release -p zllm-bench --bin serve_sim -- --json out.json --seed 7
//! ```

use zllm_accel::AccelConfig;
use zllm_bench::{cli_seed_arg, cli_value_arg, json_report, print_table, sweep_traffic, JsonField};
use zllm_model::ModelConfig;
use zllm_serve::{generate, ArrivalModel, BatchingMode, ServeReport, Server, ServerConfig};

/// Requests per trace.
const REQUESTS: usize = 24;
/// Default trace seed; override with `--seed` to replay a different trace.
const SEED: u64 = 42;
/// Offered loads swept, requests per second.
const RATES: [f64; 3] = [0.25, 1.0, 2.0];
/// Loads at and above this must show continuous beating lockstep.
const SATURATING_RATE: f64 = 1.0;
/// Per-sequence KV provisioning (tokens).
const CTX_CAPACITY: usize = 256;
/// Concurrent KV slots.
const SLOTS: usize = 4;

struct Run {
    part: &'static str,
    arrivals: &'static str,
    rate: f64,
    report: ServeReport,
}

fn arrivals(rate: f64, bursty: bool) -> ArrivalModel {
    if bursty {
        ArrivalModel::Bursty {
            rate_per_s: rate,
            burst: 8,
        }
    } else {
        ArrivalModel::Poisson { rate_per_s: rate }
    }
}

fn run_one(
    accel: &AccelConfig,
    mode: BatchingMode,
    rate: f64,
    bursty: bool,
    seed: u64,
) -> ServeReport {
    let cfg = match mode {
        BatchingMode::Continuous => ServerConfig::continuous(CTX_CAPACITY, SLOTS),
        BatchingMode::Lockstep => ServerConfig::lockstep(CTX_CAPACITY, SLOTS),
    };
    let mut server = Server::new(accel.clone(), &ModelConfig::tiny_llama_1_1b(), cfg)
        .expect("TinyLlama-1.1B with 4 KV provisions fits the 4GB device");
    server.run(&generate(&sweep_traffic(
        REQUESTS,
        seed,
        arrivals(rate, bursty),
    )))
}

fn sweep(part: &'static str, accel: &AccelConfig, seed: u64, runs: &mut Vec<Run>) {
    for (arrivals, bursty) in [("poisson", false), ("bursty", true)] {
        println!("{part} — {arrivals} arrivals, {REQUESTS} requests, {SLOTS} slots\n");
        let mut rows = Vec::new();
        for rate in RATES {
            let mut pair = Vec::new();
            for mode in [BatchingMode::Continuous, BatchingMode::Lockstep] {
                let report = run_one(accel, mode, rate, bursty, seed);
                rows.push(vec![
                    format!("{rate:.2}"),
                    report.mode.name().to_owned(),
                    format!("{:.2}", report.tokens_per_s),
                    format!("{:.2}", report.goodput_tokens_per_s),
                    format!("{:.1}", report.ttft_p95_ms / 1e3),
                    format!("{:.2}", report.token_p95_ms / 1e3),
                    format!(
                        "{}",
                        report.rejected_queue_full + report.rejected_infeasible
                    ),
                    format!("{}/{}", report.deadline_met, report.offered),
                    format!("{:.0}", report.sim_seconds),
                ]);
                pair.push(report);
            }
            // The whole point of the serving layer: once load is high
            // enough that a queue forms, continuous batching must beat
            // gang scheduling at equal offered load. (At very light
            // load both disciplines degenerate to batch-of-one and the
            // comparison is noise-level.) At saturation both disciplines
            // run the machine flat out, so the aggregate tok/s margin is
            // a fraction of a percent — too thin to gate on strictly.
            // The queueing win shows up robustly in TTFT p95 (the gang
            // holds arrivals until the whole batch drains), so that is
            // the hard comparison; tok/s must merely not regress beyond
            // rounding.
            if rate >= SATURATING_RATE {
                assert!(
                    pair[0].ttft_p95_ms < pair[1].ttft_p95_ms,
                    "continuous (TTFT p95 {:.1} ms) lost to lockstep ({:.1} ms) \
                     at {rate} req/s on {part}",
                    pair[0].ttft_p95_ms,
                    pair[1].ttft_p95_ms
                );
                assert!(
                    pair[0].tokens_per_s >= 0.999 * pair[1].tokens_per_s,
                    "continuous ({:.3} tok/s) regressed below lockstep \
                     ({:.3} tok/s) at {rate} req/s on {part}",
                    pair[0].tokens_per_s,
                    pair[1].tokens_per_s
                );
            }
            for report in pair {
                runs.push(Run {
                    part,
                    arrivals,
                    rate,
                    report,
                });
            }
        }
        print_table(
            &[
                "req/s",
                "mode",
                "tok/s",
                "goodput tok/s",
                "TTFT p95 (s)",
                "token p95 (s)",
                "rejected",
                "met/offered",
                "sim s",
            ],
            &rows,
        );
        println!();
    }
}

fn to_json(runs: &[Run]) -> String {
    use JsonField::{Fixed3, Fixed6, Num, Str, UInt};
    let rows: Vec<Vec<(&str, JsonField)>> = runs
        .iter()
        .map(|run| {
            let r = &run.report;
            vec![
                ("part", Str(run.part.to_string())),
                ("arrivals", Str(run.arrivals.to_string())),
                ("offered_req_per_s", Num(run.rate)),
                ("mode", Str(r.mode.name().to_string())),
                ("tokens_per_s", Fixed6(r.tokens_per_s)),
                ("goodput_tokens_per_s", Fixed6(r.goodput_tokens_per_s)),
                ("ttft_p50_ms", Fixed3(r.ttft_p50_ms)),
                ("ttft_p95_ms", Fixed3(r.ttft_p95_ms)),
                ("ttft_p99_ms", Fixed3(r.ttft_p99_ms)),
                ("token_p50_ms", Fixed3(r.token_p50_ms)),
                ("token_p95_ms", Fixed3(r.token_p95_ms)),
                ("token_p99_ms", Fixed3(r.token_p99_ms)),
                ("offered", UInt(r.offered)),
                ("completed", UInt(r.completed)),
                ("rejected_queue_full", UInt(r.rejected_queue_full)),
                ("rejected_infeasible", UInt(r.rejected_infeasible)),
                ("deadline_met", UInt(r.deadline_met)),
                ("kv_peak_bytes", UInt(r.kv_peak_bytes)),
                ("kv_budget_bytes", UInt(r.kv_budget_bytes)),
                ("queue_peak", UInt(r.queue_peak as u64)),
                ("decode_steps", UInt(r.decode_steps)),
                ("prefill_steps", UInt(r.prefill_steps)),
                ("sim_seconds", Fixed6(r.sim_seconds)),
            ]
        })
        .collect();
    json_report(&rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = cli_value_arg("serve_sim", &args, "--json");
    let seed = cli_seed_arg("serve_sim", &args, SEED);

    println!("Serving TinyLlama-1.1B: continuous batching vs lockstep gang scheduling\n");
    let mut runs = Vec::new();
    sweep("DDR4-2400 (KV260)", &AccelConfig::kv260(), seed, &mut runs);

    let mut lpddr5 = AccelConfig::kv260();
    lpddr5.ddr = zllm_ddr::DdrConfig::lpddr5_6400_embedded();
    sweep("LPDDR5-6400 (embedded 64-bit)", &lpddr5, seed, &mut runs);

    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&runs)).expect("write serve_sim JSON");
        eprintln!("serve_sim: report written to {path}");
    }

    println!("Both disciplines share the KV-capacity admission controller, so the");
    println!("difference is pure scheduling: the gang baseline pads every member to");
    println!("the longest prompt and leaves slots idle while the gang drains, while");
    println!("continuous batching prices each sequence at its own context and");
    println!("backfills freed slots from the queue between steps. Goodput counts");
    println!("only tokens of requests that met their class deadline.");
}
