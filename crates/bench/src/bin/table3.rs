//! Regenerates **Table III**: comparison with embedded CPUs and GPUs on
//! 4-bit LLaMA2-7B decoding. The "Ours" row is simulated; the CPU/GPU
//! rows use the published measurements the paper cites, with their
//! theoretical peaks recomputed from each device's bandwidth.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin table3
//! ```

use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_baselines::{table3_rows, OursResult};
use zllm_bench::{fmt_num, fmt_pct, par_map, print_table};
use zllm_model::ModelConfig;

fn main() {
    println!("Simulating LLaMA2-7B decoding on the KV260 (trace-driven)...");
    // Same sampling grid as `decode_run_sampled(1024, 8)`, one engine per
    // sample so the contexts are priced concurrently.
    let (samples, ctx_end) = (8usize, 1024usize);
    let step = (ctx_end / samples).max(1);
    let wall_ns = par_map((0..samples).collect(), |i| {
        let mut engine = DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024)
            .expect("LLaMA2-7B fits the 4GB device");
        engine.decode_token((i * step).min(ctx_end - 1)).wall_ns
    });
    let mean_ns: f64 = wall_ns.iter().sum::<f64>() / wall_ns.len() as f64;
    let tokens_per_s = 1e9 / mean_ns;
    println!("  simulated: {tokens_per_s:.2} token/s\n");

    let rows = table3_rows(OursResult { tokens_per_s });
    println!("Table III: Comparison with embedded CPUs/GPUs, 4-bit LLaMA2-7B\n");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.to_owned(),
                fmt_num(r.bandwidth_gbps, 1),
                r.framework.clone(),
                fmt_num(r.theoretical, 1),
                fmt_num(r.measured, 2),
                fmt_pct(r.utilization),
            ]
        })
        .collect();
    print_table(
        &[
            "Device",
            "GB/s",
            "Framework",
            "token/s (theo)",
            "token/s (meas)",
            "Util.",
        ],
        &printable,
    );
    println!("\nPaper reference (Ours row): 5.8 theoretical, 4.9 measured, 84.5% util;");
    println!("Orin Nano NanoLLM 79.2% is the closest competitor.");
}
