//! Paged-KV sweep: concurrent users per board and goodput under
//! actual-growth admission vs worst-case reservation, at the same DDR
//! budget.
//!
//! Both runs share one engine geometry (TinyLlama-1.1B on the KV260's
//! DDR4-2400), one decode-heavy trace (short prompts, long generation
//! caps, three quarters of the requests hitting EOS before the cap),
//! a short admission queue, and one deliberately tightened KV budget
//! sized for four worst-case sequences. The baseline prices every
//! admission at `prompt + max_new` up front, so the budget pins it at
//! a handful of residents and the queue overflows — most of the trace
//! is turned away. The paged server charges only the pages a sequence
//! actually occupies — one prompt's worth at admission, then one page
//! per `page_tokens` generated — so the same DDR holds 2–3× the
//! users, the queue drains, and far more requests are served to their
//! deadline. Reclaim keeps the optimism safe: pages return on finish,
//! and a high-class arrival that would starve preempts the
//! newest-admitted lower-class sequence (preempt-and-recompute).
//!
//! The engine is VPU-bound past small batches in this pricing model,
//! so tokens *per second* barely move with concurrency; what paging
//! buys at a fixed budget is admission capacity. The sweep therefore
//! reports and gates **work served off one trace** — deadline-met
//! requests and total goodput tokens — alongside the concurrent-users
//! headline. `perf_gate` pins the exact numbers under the `paged.*`
//! keys in `bench/baseline.json`.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin paged_sweep
//! cargo run --release -p zllm-bench --bin paged_sweep -- --json out.json --seed 7
//! ```

use zllm_accel::AccelConfig;
use zllm_bench::{
    cli_seed_arg, cli_value_arg, decode_heavy_traffic, fmt_mib, json_report, print_table, JsonField,
};
use zllm_model::ModelConfig;
use zllm_serve::{generate, ArrivalModel, PagedConfig, Request, ServeReport, Server, ServerConfig};

/// Requests per trace.
const REQUESTS: usize = 48;
/// Default trace seed; override with `--seed` to replay a different trace.
const SEED: u64 = 42;
/// Offered loads swept, requests per second. The engine drains about
/// half a request per second, so 0.25 is the unpressured ramp (paging
/// must cost nothing there) and 8.0 — bursty — is the saturating
/// regime the uplift gates are measured in.
const RATES: [f64; 2] = [0.25, 8.0];
/// Loads at and above this must show the uplift.
const SATURATING_RATE: f64 = 1.0;
/// Per-sequence KV provisioning (tokens); the decode-heavy mix tops
/// out at 112 tokens so 128 keeps the contiguous quote honest.
const CTX_CAPACITY: usize = 128;
/// KV page granularity (tokens); a multiple of the pack quantum.
const PAGE_TOKENS: usize = 16;
/// KV slots: generous on purpose, so the byte budget — not the slot
/// count — is what binds in both runs.
const SLOTS: usize = 16;
/// Admission wait-queue capacity. Short, as a real serving front end's
/// is: a request that cannot start soon is better bounced to the
/// client than parked — which makes admission capacity, not queue
/// depth, what decides how much of the trace gets served.
const QUEUE_CAP: usize = 6;
/// The tightened budget holds this many worst-case sequences.
const WORST_CASE_SEQS: u64 = 4;
/// Uplift the saturating rate must sustain, on concurrent users and on
/// total goodput tokens served off the trace.
const MIN_UPLIFT: f64 = 1.5;

struct Run {
    mode: &'static str,
    rate: f64,
    report: ServeReport,
}

/// Total deadline-met tokens served off the trace. The per-second rate
/// is the wrong comparison here: the worst-case run rejects most of
/// the trace and idles out early, so its *rate* looks healthy while
/// its *work* is a fraction of the paged run's.
fn goodput_tokens(r: &ServeReport) -> f64 {
    r.goodput_tokens_per_s * r.sim_seconds
}

fn trace(rate: f64, seed: u64) -> Vec<Request> {
    let arrivals = if rate >= SATURATING_RATE {
        ArrivalModel::Bursty {
            rate_per_s: rate,
            burst: 8,
        }
    } else {
        ArrivalModel::Poisson { rate_per_s: rate }
    };
    generate(&decode_heavy_traffic(REQUESTS, seed, arrivals))
}

/// The budget both admission disciplines are priced against: room for
/// [`WORST_CASE_SEQS`] page-rounded worst-case sequences, derived from
/// the engine's own KV pricing so it tracks the model geometry.
fn tight_budget(accel: &AccelConfig, model: &ModelConfig) -> u64 {
    let cfg = decode_heavy_traffic(1, 0, ArrivalModel::Poisson { rate_per_s: 1.0 });
    let worst_tokens = cfg.prompt_tokens.1 + cfg.new_tokens.1;
    let probe = Server::new(
        accel.clone(),
        model,
        ServerConfig::continuous(CTX_CAPACITY, SLOTS),
    )
    .expect("TinyLlama-1.1B fits the 4GB device");
    WORST_CASE_SEQS
        * probe
            .engine()
            .image()
            .page_rounded_request_bytes(worst_tokens, PAGE_TOKENS)
}

fn run_one(
    accel: &AccelConfig,
    model: &ModelConfig,
    paged: bool,
    budget: u64,
    t: &[Request],
) -> ServeReport {
    let mut cfg = ServerConfig::continuous(CTX_CAPACITY, SLOTS);
    if paged {
        cfg = cfg.paged(PagedConfig {
            page_tokens: PAGE_TOKENS,
            ..PagedConfig::default()
        });
    }
    cfg.kv_budget_bytes = Some(budget);
    cfg.queue_cap = QUEUE_CAP;
    let mut server = Server::new(accel.clone(), model, cfg).expect("image fits");
    server.run(t)
}

fn to_json(runs: &[Run]) -> String {
    use JsonField::{Fixed3, Fixed6, Num, Str, UInt};
    let rows: Vec<Vec<(&str, JsonField)>> = runs
        .iter()
        .map(|run| {
            let r = &run.report;
            vec![
                ("mode", Str(run.mode.to_string())),
                ("offered_req_per_s", Num(run.rate)),
                ("concurrent_peak", UInt(r.concurrent_peak as u64)),
                ("preempted", UInt(r.preempted)),
                ("tokens_per_s", Fixed6(r.tokens_per_s)),
                ("goodput_tokens_per_s", Fixed6(r.goodput_tokens_per_s)),
                ("goodput_tokens", Fixed3(goodput_tokens(r))),
                ("ttft_p95_ms", Fixed3(r.ttft_p95_ms)),
                ("token_p95_ms", Fixed3(r.token_p95_ms)),
                ("offered", UInt(r.offered)),
                ("completed", UInt(r.completed)),
                ("rejected_queue_full", UInt(r.rejected_queue_full)),
                ("rejected_infeasible", UInt(r.rejected_infeasible)),
                ("deadline_met", UInt(r.deadline_met)),
                ("kv_peak_bytes", UInt(r.kv_peak_bytes)),
                ("kv_budget_bytes", UInt(r.kv_budget_bytes)),
                ("queue_peak", UInt(r.queue_peak as u64)),
                ("decode_steps", UInt(r.decode_steps)),
                ("prefill_steps", UInt(r.prefill_steps)),
                ("sim_seconds", Fixed6(r.sim_seconds)),
            ]
        })
        .collect();
    json_report(&rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = cli_value_arg("paged_sweep", &args, "--json");
    let seed = cli_seed_arg("paged_sweep", &args, SEED);

    let accel = AccelConfig::kv260();
    let model = ModelConfig::tiny_llama_1_1b();
    let budget = tight_budget(&accel, &model);
    println!(
        "Paged KV on the KV260: actual-growth charging vs worst-case reservation\n\
         TinyLlama-1.1B, {REQUESTS} decode-heavy requests, {SLOTS} slots, queue cap \
         {QUEUE_CAP}, KV budget {} ({WORST_CASE_SEQS} worst-case sequences)\n",
        fmt_mib(budget as f64)
    );

    let mut runs = Vec::new();
    let mut rows = Vec::new();
    let mut gates: Vec<(f64, Vec<ServeReport>)> = Vec::new();
    for rate in RATES {
        let t = trace(rate, seed);
        let mut pair = Vec::new();
        for (mode, paged) in [("worst-case", false), ("paged", true)] {
            let report = run_one(&accel, &model, paged, budget, &t);
            assert!(
                report.kv_peak_bytes <= report.kv_budget_bytes,
                "{mode} burst the KV budget at {rate} req/s"
            );
            rows.push(vec![
                format!("{rate:.2}"),
                mode.to_owned(),
                format!("{}", report.concurrent_peak),
                format!("{}/{}", report.deadline_met, report.offered),
                format!("{:.0}", goodput_tokens(&report)),
                format!("{:.2}", report.tokens_per_s),
                format!("{}", report.rejected_queue_full),
                format!("{}", report.preempted),
                fmt_mib(report.kv_peak_bytes as f64),
                format!("{:.0}", report.sim_seconds),
            ]);
            pair.push(report.clone());
            runs.push(Run { mode, rate, report });
        }
        gates.push((rate, pair));
    }
    print_table(
        &[
            "req/s",
            "admission",
            "users peak",
            "served/offered",
            "goodput tok",
            "tok/s",
            "rejected",
            "preempted",
            "kv peak",
            "sim s",
        ],
        &rows,
    );
    println!();

    for (rate, pair) in &gates {
        let (wc, paged) = (&pair[0], &pair[1]);
        if *rate < SATURATING_RATE {
            // Unpressured ramp: paging must cost nothing. Everyone is
            // served either way; the paged run's only overhead is the
            // page-table metadata traffic, bounded to a few percent.
            assert_eq!(wc.completed, REQUESTS as u64, "ramp must serve everyone");
            assert_eq!(paged.completed, REQUESTS as u64, "ramp must serve everyone");
            assert!(
                paged.tokens_per_s >= 0.95 * wc.tokens_per_s,
                "page-table overhead ate {:.2} -> {:.2} tok/s on the ramp",
                wc.tokens_per_s,
                paged.tokens_per_s
            );
            continue;
        }
        // The headline gates: under saturating load the budget is the
        // binding constraint, and charging actual growth instead of
        // the worst-case quote must lift how many users the board
        // holds at once — and that concurrency must convert into
        // served work (deadline-met tokens off the same trace), not
        // just resident sequences.
        let users = paged.concurrent_peak as f64 / wc.concurrent_peak as f64;
        assert!(
            users >= MIN_UPLIFT,
            "paged admission sustained {users:.2}x the worst-case concurrency \
             ({} vs {}) at {rate} req/s; the tentpole claims >= {MIN_UPLIFT}x",
            paged.concurrent_peak,
            wc.concurrent_peak
        );
        let work = goodput_tokens(paged) / goodput_tokens(wc);
        assert!(
            work >= MIN_UPLIFT,
            "paged served only {work:.2}x the worst-case goodput tokens \
             ({:.0} vs {:.0}) at {rate} req/s; need >= {MIN_UPLIFT}x",
            goodput_tokens(paged),
            goodput_tokens(wc)
        );
    }

    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&runs)).expect("write paged_sweep JSON");
        eprintln!("paged_sweep: report written to {path}");
    }

    println!("Both runs share the engine, trace, queue and DDR budget; only the");
    println!("admission pricing differs. Worst-case reservation charges prompt +");
    println!("max_new at admission, pinning the board at {WORST_CASE_SEQS}-ish residents and");
    println!("bouncing most of the burst off the short queue. The paged server");
    println!("charges pages as they fill, packs the freed headroom with more users,");
    println!("and reclaims by evict-on-finish plus deadline-aware preemption of the");
    println!("newest lower-class sequence under pressure.");
}
