//! Regenerates **Table I**: resource consumption breakdown of the
//! accelerator, plus the power and clock figures quoted in §VII-B.
//!
//! ```text
//! cargo run -p zllm-bench --bin table1
//! ```

use zllm_accel::power::estimate_power;
use zllm_accel::resources::{estimate, kv260_device, ResourceVector};
use zllm_accel::AccelConfig;
use zllm_bench::{fmt_pct, print_table};

fn row(name: &str, res: &ResourceVector, device: &ResourceVector) -> Vec<String> {
    let util = res.utilization(device);
    vec![
        name.to_owned(),
        format!("{:.1}K / {}", res.lut / 1e3, fmt_pct(util.lut)),
        format!("{:.1}K / {}", res.ff / 1e3, fmt_pct(util.ff)),
        format!("{:.1}K / {}", res.carry / 1e3, fmt_pct(util.carry)),
        format!("{:.0} / {}", res.dsp, fmt_pct(util.dsp)),
        format!("{:.0} / {}", res.uram, fmt_pct(util.uram)),
        format!("{:.1} / {}", res.bram, fmt_pct(util.bram)),
    ]
}

fn main() {
    let cfg = AccelConfig::kv260();
    let est = estimate(&cfg);
    let device = kv260_device();

    println!("Table I: Resource consumption breakdown (estimated)\n");
    print_table(
        &["Unit", "LUTs", "FFs", "CARRY", "DSP", "URAM", "BRAM"],
        &[
            row("Total", &est.total, &device),
            row("MemCtrl", &est.mcu, &device),
            row("VPU", &est.vpu, &device),
            row("SPU", &est.spu, &device),
        ],
    );

    let power = estimate_power(&cfg);
    println!("\nClock: {:.0} MHz   Power: {power}", cfg.freq_mhz);
    println!("Paper reference: 78K/67% LUT, 105K/45% FF, 3.8K/26% CARRY,");
    println!("                 291/24% DSP, 10/16% URAM, 36.5/25% BRAM, 6.57 W @ 300 MHz");
}
