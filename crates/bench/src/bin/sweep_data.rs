//! Emits plot-ready CSV series for the paper's figure-style sweeps:
//! decode speed vs. context (fused/coarse), DDR efficiency vs. burst
//! length, and quantization SQNR vs. group size.
//!
//! Each sweep point is independent (it owns its engine or memory system),
//! so the points are priced concurrently with [`par_map`]; lines are
//! buffered per point and printed in input order, keeping the CSV
//! deterministic.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin sweep_data > sweeps.csv
//! ```

use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_bench::par_map;
use zllm_ddr::{traffic, MemorySystem};
use zllm_model::ModelConfig;
use zllm_quant::error::ErrorStats;
use zllm_quant::group::{GroupQuantConfig, GroupQuantizer};

fn main() {
    // Series 1: decode speed vs context length.
    println!("series,ctx,tokens_per_s,bandwidth_util");
    let contexts: Vec<usize> = (0..=1023).step_by(128).chain([1023]).collect();
    let lines = par_map(contexts, |ctx| {
        let model = ModelConfig::llama2_7b();
        let mut fused = DecodeEngine::new(AccelConfig::kv260(), &model, 1024).expect("7B fits");
        let mut coarse =
            DecodeEngine::new(AccelConfig::kv260_coarse(), &model, 1024).expect("7B fits");
        let rf = fused.decode_token(ctx);
        let rc = coarse.decode_token(ctx);
        format!(
            "decode_fused,{ctx},{:.4},{:.4}\ndecode_coarse,{ctx},{:.4},{:.4}",
            rf.tokens_per_s, rf.bandwidth_util, rc.tokens_per_s, rc.bandwidth_util
        )
    });
    for line in lines {
        println!("{line}");
    }

    // Series 2: DDR efficiency vs burst length.
    println!("series,burst_beats,bandwidth_gbps,efficiency");
    let lines = par_map(vec![1u32, 2, 4, 8, 16, 32, 64, 128, 256], |beats| {
        let mut mem = MemorySystem::kv260();
        let report = mem.transfer(&traffic::strided(0, 512, beats, 1 << 20));
        format!(
            "ddr_burst,{beats},{:.4},{:.4}",
            report.bandwidth_gbps, report.efficiency
        )
    });
    for line in lines {
        println!("{line}");
    }

    // Series 3: quantization SQNR vs group size.
    println!("series,group_size,sqnr_db,bits_per_weight");
    let values: Vec<f32> = (0..65536)
        .map(|i| ((i as f32 * 0.11).sin() + (i as f32 * 0.013).cos() * 0.4) * 0.04)
        .collect();
    let lines = par_map(vec![32usize, 64, 128, 256, 512, 1024], |group| {
        let q = GroupQuantizer::new(GroupQuantConfig::new(group, 4)).quantize(&values);
        let stats = ErrorStats::between(&values, &q.dequantize());
        let bits = q.storage_bits() as f64 / values.len() as f64;
        format!("quant_group,{group},{:.3},{:.5}", stats.sqnr_db, bits)
    });
    for line in lines {
        println!("{line}");
    }
}
