//! Regenerates **Figure 3**: the fine-grained head-wise fused pipeline.
//! Prints the stage timeline of one attention head (fused vs coarse),
//! verifies the softmax-hiding inequality, and sweeps context length to
//! show the fused pipeline's advantage at the token level.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin fig3_pipeline
//! ```

use zllm_accel::config::PipelineMode;
use zllm_accel::pipeline::{head_cycles, head_timeline, softmax_hides};
use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_bench::{fmt_pct, print_table};
use zllm_model::ModelConfig;

fn print_timeline(cfg: &ModelConfig, ctx: usize, mode: PipelineMode) {
    println!("\n{mode} pipeline, one head, ctx = {ctx}:");
    let stages = head_timeline(cfg, ctx, 128, mode);
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|s| {
            vec![
                s.name.to_owned(),
                format!("{}", s.start),
                format!("{}", s.end),
                format!("{}", s.cycles()),
                if s.dense {
                    "dense (VPU/memory)"
                } else {
                    "misc (SPU)"
                }
                .to_owned(),
            ]
        })
        .collect();
    print_table(&["stage", "start", "end", "cycles", "kind"], &rows);
    println!("head total: {} cycles", head_cycles(cfg, ctx, 128, mode));
}

fn main() {
    let cfg = ModelConfig::llama2_7b();
    let ctx = 1023;

    println!("Figure 3: operator-fusion pipeline in the attention layer");
    print_timeline(&cfg, ctx, PipelineMode::Fused);
    print_timeline(&cfg, ctx, PipelineMode::Coarse);

    println!(
        "\nSoftmax-hiding condition (3·(ctx+1) ≤ head proj cycles): {}",
        if softmax_hides(&cfg, ctx, 128) {
            "HOLDS at ctx 1023"
        } else {
            "VIOLATED"
        }
    );
    let mut breaking = ctx;
    while softmax_hides(&cfg, breaking, 128) {
        breaking += 1;
    }
    println!("condition first breaks at ctx = {breaking} (design supports 1024)");

    // Token-level sweep: fused vs coarse decoding speed.
    println!("\nToken-level fused vs coarse (trace-driven LLaMA2-7B):\n");
    let mut fused = DecodeEngine::new(AccelConfig::kv260(), &cfg, 1024).expect("7B fits");
    let mut coarse = DecodeEngine::new(AccelConfig::kv260_coarse(), &cfg, 1024).expect("7B fits");
    let mut rows = Vec::new();
    for ctx in [0usize, 256, 512, 1023] {
        let rf = fused.decode_token(ctx);
        let rc = coarse.decode_token(ctx);
        rows.push(vec![
            format!("{ctx}"),
            format!("{:.2}", rf.tokens_per_s),
            format!("{:.2}", rc.tokens_per_s),
            fmt_pct(rf.bandwidth_util),
            fmt_pct(rc.bandwidth_util),
            fmt_pct(rf.tokens_per_s / rc.tokens_per_s - 1.0),
        ]);
    }
    print_table(
        &[
            "ctx",
            "fused tok/s",
            "coarse tok/s",
            "fused util",
            "coarse util",
            "speedup",
        ],
        &rows,
    );

    // The registry totals show where the coarse pipeline loses its time:
    // exposed SPU cycles that the fused pipeline hides entirely.
    let fsnap = fused.metrics_snapshot();
    let csnap = coarse.metrics_snapshot();
    println!(
        "\npipeline.exposed_misc_cycles over the sweep: fused {}, coarse {}",
        fsnap.counter("pipeline.exposed_misc_cycles").unwrap_or(0),
        csnap.counter("pipeline.exposed_misc_cycles").unwrap_or(0),
    );
    println!("\nAll miscellaneous operations hide inside the dense stream in fused");
    println!("mode — the paper's 'no cycle penalties' claim (§V-A).");
}
