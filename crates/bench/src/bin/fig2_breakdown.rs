//! Regenerates **Figure 2**'s content quantitatively: the prefill phase is
//! compute-bound while the decode phase is bandwidth-bound, and the
//! per-layer breakdown of a decode step shows where the bytes go.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin fig2_breakdown
//! ```

use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_bench::{fmt_mib, fmt_pct, print_table};
use zllm_model::memory::{streamed_weight_bytes, WeightPrecision};
use zllm_model::ModelConfig;

fn main() {
    let cfg = ModelConfig::llama2_7b();

    // --- A/B: prefill vs decode on the roofline ---
    // VPU peak: 128 FP16 MACs per cycle at 300 MHz.
    let compute_peak_flops = 128.0 * 2.0 * 300e6;
    let bw = 19.2e9;
    let ridge = compute_peak_flops / bw;
    let weight_bytes = streamed_weight_bytes(&cfg, WeightPrecision::W4G128);
    let flops_per_token = 2.0 * (cfg.param_count() as f64 - (cfg.vocab_size * cfg.d_model) as f64);
    println!("Figure 2: prefill vs decode arithmetic intensity (KV260 roofline)\n");
    println!(
        "  VPU peak: {:.1} GFLOP/s, bandwidth: 19.2 GB/s, ridge: {ridge:.2} FLOP/byte\n",
        compute_peak_flops / 1e9
    );
    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 8, 16, 64] {
        // `batch` prompt tokens share one weight fetch in prefill.
        let ai = flops_per_token * batch as f64 / weight_bytes;
        let bound = if ai < ridge {
            "memory-bound"
        } else {
            "compute-bound"
        };
        let phase = if batch == 1 { "decode" } else { "prefill" };
        rows.push(vec![
            format!("{batch}"),
            phase.to_owned(),
            format!("{ai:.2}"),
            bound.to_owned(),
        ]);
    }
    print_table(&["tokens/fetch", "phase", "FLOP/byte", "regime"], &rows);

    // --- C: per-layer decode-step breakdown ---
    // Price one decode step and read the per-category byte counters back
    // out of the engine's metrics registry (`decode.bytes.<category>`).
    let mut engine = DecodeEngine::new(AccelConfig::kv260(), &cfg, 1024).expect("7B fits");
    let report = engine.decode_token(512);
    let snap = engine.metrics_snapshot();
    let total = report.bytes as f64;
    let category = |needle: &str| -> f64 {
        snap.entries()
            .filter(|(name, _, _)| {
                name.strip_prefix("decode.bytes.")
                    .is_some_and(|c| c.contains(needle))
            })
            .map(|(_, _, v)| v)
            .sum()
    };
    let qkv = category("qkv");
    let wo = category("wo");
    let mlp = category("mlp");
    let kv_read = category("kv_read");
    let kv_write = category("kv_write");
    let head = category("lm_head");
    println!("\nPer-token byte breakdown at context 512 (decode step):\n");
    print_table(
        &["component", "bytes", "share"],
        &[
            vec!["QKV projections".into(), fmt_mib(qkv), fmt_pct(qkv / total)],
            vec!["output projection".into(), fmt_mib(wo), fmt_pct(wo / total)],
            vec!["MLP projections".into(), fmt_mib(mlp), fmt_pct(mlp / total)],
            vec![
                "KV cache reads".into(),
                fmt_mib(kv_read),
                fmt_pct(kv_read / total),
            ],
            vec![
                "KV cache writes".into(),
                fmt_mib(kv_write),
                fmt_pct(kv_write / total),
            ],
            vec!["LM head".into(), fmt_mib(head), fmt_pct(head / total)],
            vec!["total".into(), fmt_mib(total), fmt_pct(1.0)],
        ],
    );
    println!("\nDecode reads every weight once per token (AI < ridge): bandwidth-bound,");
    println!("which is the regime §III targets and the whole design optimizes.");
}
