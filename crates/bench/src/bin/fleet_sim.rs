//! Fleet sweep: goodput and TTFT vs board count under pipeline-parallel
//! sharding, at 10–100× the single-board saturating load.
//!
//! One board serves ~5 tok/s on the 7B model (and ~13 tok/s on the
//! TinyLlama-1.1B used here — see `serve_sim` for why the small model
//! prices the sweep in CI time). A fleet shards the image by layer
//! range across N boards behind an explicit interconnect
//! (`InterconnectConfig::ethernet_10g`): per-board weight residency
//! shrinks, the decode cadence drops with the per-stage layer count,
//! and freed DDR lets admission provision more concurrent KV slots —
//! so both throughput and admission capacity rise with N. Hidden-state
//! hops are priced like DDR bursts and itemized under
//! `cluster.bytes.*`; nothing crosses a board boundary for free.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin fleet_sim
//! cargo run --release -p zllm-bench --bin fleet_sim -- --json out.json --seed 7
//! ```

use zllm_accel::AccelConfig;
use zllm_bench::{
    cli_seed_arg, cli_value_arg, fmt_mib, json_report, print_table, sweep_traffic, JsonField,
};
use zllm_model::ModelConfig;
use zllm_serve::cluster::{ClusterConfig, ClusterReport, ClusterServer};
use zllm_serve::{generate, ArrivalModel};

/// Requests per trace (enough that queues actually form at every rate).
const REQUESTS: usize = 48;
/// Default trace seed; override with `--seed` to replay a different trace.
const SEED: u64 = 42;
/// Offered loads swept, requests per second — 10×, 25× and 100× the
/// ~1 req/s that saturates a single board in `serve_sim`.
const RATES: [f64; 3] = [10.0, 25.0, 100.0];
/// Board counts swept (pipeline-parallel depth of one pipeline).
const BOARDS: [usize; 4] = [1, 2, 4, 8];
/// Per-sequence KV provisioning (tokens).
const CTX_CAPACITY: usize = 256;
/// KV slots on a single board; deeper pipelines provision
/// `BASE_SLOTS × depth` because each board holds fewer layers' weights
/// and KV, so the freed DDR converts into admission capacity.
const BASE_SLOTS: usize = 4;

struct Run {
    part: &'static str,
    rate: f64,
    report: ClusterReport,
}

fn run_one(accel: &AccelConfig, boards: usize, rate: f64, seed: u64) -> ClusterReport {
    let cfg = ClusterConfig::new(1, boards, CTX_CAPACITY, BASE_SLOTS * boards);
    let mut cluster = ClusterServer::new(accel, &ModelConfig::tiny_llama_1_1b(), cfg)
        .expect("every shard of TinyLlama-1.1B fits a 4GB board");
    cluster.run(&generate(&sweep_traffic(
        REQUESTS,
        seed,
        ArrivalModel::Poisson { rate_per_s: rate },
    )))
}

fn sweep(part: &'static str, accel: &AccelConfig, seed: u64, runs: &mut Vec<Run>) {
    println!("{part} — poisson arrivals, {REQUESTS} requests, {BASE_SLOTS} slots/board\n");
    for rate in RATES {
        let mut rows = Vec::new();
        let mut by_boards = Vec::new();
        for boards in BOARDS {
            let report = run_one(accel, boards, rate, seed);
            assert_eq!(
                report.activation_bytes > 0,
                boards > 1,
                "interconnect traffic must be itemized exactly when stages exist"
            );
            rows.push(vec![
                format!("{boards}"),
                format!("{}", report.boards * BASE_SLOTS),
                format!("{:.2}", report.tokens_per_s),
                format!("{:.2}", report.goodput_tokens_per_s),
                format!("{:.1}", report.ttft_p50_ms / 1e3),
                format!("{:.1}", report.ttft_p95_ms / 1e3),
                format!("{}/{}", report.deadline_met, report.offered),
                fmt_mib(report.activation_bytes as f64),
                format!("{:.0}", report.sim_seconds),
            ]);
            by_boards.push(report.clone());
            runs.push(Run { part, rate, report });
        }
        // The fleet claim this bin gates: at saturating load, four
        // boards must deliver at least 3× the single board's goodput —
        // the cadence drops with the per-stage layer count and the
        // widened slot provisioning keeps the deeper pipeline fed, and
        // the interconnect hops must not eat the gain.
        let one = &by_boards[0];
        let four = &by_boards[2];
        assert!(
            four.goodput_tokens_per_s > 0.0,
            "4 boards must produce deadline-meeting tokens at {rate} req/s on {part}"
        );
        assert!(
            four.goodput_tokens_per_s >= 3.0 * one.goodput_tokens_per_s,
            "4 boards ({:.2} goodput tok/s) < 3x single board ({:.2}) \
             at {rate} req/s on {part}",
            four.goodput_tokens_per_s,
            one.goodput_tokens_per_s
        );
        println!("offered load {rate:.0} req/s:");
        print_table(
            &[
                "boards",
                "slots",
                "tok/s",
                "goodput tok/s",
                "TTFT p50 (s)",
                "TTFT p95 (s)",
                "met/offered",
                "link traffic",
                "sim s",
            ],
            &rows,
        );
        println!();
    }
}

fn to_json(runs: &[Run]) -> String {
    use JsonField::{Fixed3, Fixed6, Num, Str, UInt};
    let rows: Vec<Vec<(&str, JsonField)>> = runs
        .iter()
        .map(|run| {
            let r = &run.report;
            vec![
                ("part", Str(run.part.to_string())),
                ("offered_req_per_s", Num(run.rate)),
                ("boards", UInt(r.boards as u64)),
                ("pipelines", UInt(r.pipelines as u64)),
                ("depth", UInt(r.depth as u64)),
                ("policy", Str(r.policy.to_string())),
                ("tokens_per_s", Fixed6(r.tokens_per_s)),
                ("goodput_tokens_per_s", Fixed6(r.goodput_tokens_per_s)),
                ("ttft_p50_ms", Fixed3(r.ttft_p50_ms)),
                ("ttft_p95_ms", Fixed3(r.ttft_p95_ms)),
                ("ttft_p99_ms", Fixed3(r.ttft_p99_ms)),
                ("token_p50_ms", Fixed3(r.token_p50_ms)),
                ("token_p95_ms", Fixed3(r.token_p95_ms)),
                ("offered", UInt(r.offered)),
                ("completed", UInt(r.completed)),
                ("rejected_queue_full", UInt(r.rejected_queue_full)),
                ("rejected_infeasible", UInt(r.rejected_infeasible)),
                ("deadline_met", UInt(r.deadline_met)),
                ("activation_bytes", UInt(r.activation_bytes)),
                ("token_id_bytes", UInt(r.token_id_bytes)),
                ("kv_peak_bytes", UInt(r.kv_peak_bytes)),
                ("kv_budget_bytes", UInt(r.kv_budget_bytes)),
                ("queue_peak", UInt(r.queue_peak as u64)),
                ("decode_steps", UInt(r.decode_steps)),
                ("prefill_steps", UInt(r.prefill_steps)),
                ("sim_seconds", Fixed6(r.sim_seconds)),
            ]
        })
        .collect();
    json_report(&rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = cli_value_arg("fleet_sim", &args, "--json");
    let seed = cli_seed_arg("fleet_sim", &args, SEED);

    println!("Fleet sweep: TinyLlama-1.1B pipeline-parallel across 1/2/4/8 boards\n");
    let mut runs = Vec::new();
    sweep("DDR4-2400 (KV260)", &AccelConfig::kv260(), seed, &mut runs);

    let mut lpddr5 = AccelConfig::kv260();
    lpddr5.ddr = zllm_ddr::DdrConfig::lpddr5_6400_embedded();
    sweep("LPDDR5-6400 (embedded 64-bit)", &lpddr5, seed, &mut runs);

    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&runs)).expect("write fleet_sim JSON");
        eprintln!("fleet_sim: report written to {path}");
    }

    println!("Each fleet is one pipeline of N boards sharing the layer range, behind");
    println!("a 10 GbE interconnect priced per hop like DDR bursts (whole 64-byte");
    println!("beats). Deeper pipelines shrink the per-board weight and KV footprint,");
    println!("so slots scale with depth and the admission controller can hold more");
    println!("concurrent sequences — goodput counts only tokens of requests that met");
    println!("their class deadline, so the sweep shows real fleet capacity, not just");
    println!("aggregate token rate.");
}
