//! Regenerates **Figure 5**'s content as a parameter/inventory report:
//! the three units of the architecture, their configurations, per-unit
//! resource estimates and the dataflow connections between them.
//!
//! ```text
//! cargo run -p zllm-bench --bin fig5_architecture
//! ```

use zllm_accel::resources::{estimate, kv260_device};
use zllm_accel::spu::{RmsNormUnit, RopeUnit, SiluUnit, SoftmaxUnit};
use zllm_accel::vpu::Vpu;
use zllm_accel::AccelConfig;
use zllm_bench::{fmt_pct, print_table};
use zllm_fp16::lut::{SineRom, SINE_ROM_DEPTH};
use zllm_layout::weight::WeightFormat;

fn main() {
    let cfg = AccelConfig::kv260();
    let est = estimate(&cfg);
    let device = kv260_device();
    let fmt = WeightFormat::kv260();
    let vpu = Vpu::kv260();

    println!("Figure 5: hardware architecture of the accelerator\n");

    println!("A) Memory Control Unit");
    println!(
        "   {} × {}-bit AXI HP ports @ {:.0} MHz → merged {}-bit stream",
        cfg.axi.ports,
        cfg.axi.port_bits,
        cfg.axi.clock_mhz,
        cfg.axi.ports * cfg.axi.port_bits
    );
    println!(
        "   fabric bandwidth {:.1} GB/s = DDR4-2400 peak {:.1} GB/s (balanced)",
        cfg.axi.bandwidth_gbps(),
        cfg.ddr.peak_bandwidth_gbps()
    );
    println!(
        "   demux FSM: superblock = 1 zero beat + {} scale beats + {} weight beats",
        fmt.scale_beats_per_superblock(),
        fmt.groups_per_superblock()
    );
    println!("   command generator: AXI-Lite token index → per-token burst schedule\n");

    println!("B) Vector Processing Unit");
    println!(
        "   {} FP16 multipliers (one dequantized {}-bit beat per cycle)",
        vpu.lanes(),
        fmt.bus_bits
    );
    println!(
        "   adder tree depth {}, FP32 accumulation, pipeline latency {} cycles",
        128u32.trailing_zeros(),
        vpu.pipeline_latency()
    );
    println!("   dequantizer: (q − z)·s per lane from the interleaved metadata\n");

    println!("C) Scalar Processing Unit submodules");
    let rope = RopeUnit::new(128);
    let rms = RmsNormUnit::new(1e-5);
    let soft = SoftmaxUnit::new();
    let silu = SiluUnit::new();
    let rom = SineRom::new();
    print_table(
        &["submodule", "implementation", "latency model"],
        &[
            vec![
                "RoPE".into(),
                format!(
                    "{}-pt quarter-wave sine ROM ({} words) + inv-freq LUT",
                    SINE_ROM_DEPTH,
                    rom.depth()
                ),
                format!("{} cycles / head", rope.cycles()),
            ],
            vec![
                "RMSNorm".into(),
                "2-pass (square-sum pass skippable via DOT engine)".into(),
                format!(
                    "{} cycles @ d=4096 (or {} bypassed)",
                    rms.cycles(4096),
                    rms.cycles_sum_bypassed(4096)
                ),
            ],
            vec![
                "Softmax".into(),
                "3-pass numerically stable (max, denom, normalize)".into(),
                format!("{} cycles @ ctx=1024", soft.cycles(1024)),
            ],
            vec![
                "SiLU".into(),
                "x/(1+e^-x) gate pipeline, fused with up-projection".into(),
                format!("{} cycles @ d_ff=11008", silu.cycles(11008)),
            ],
            vec![
                "Quantizer".into(),
                "2-pass KV8 + scale-zero pack FIFO + serial-to-parallel".into(),
                "256 cycles / head vector".into(),
            ],
        ],
    );

    println!("\nPer-unit resource estimates (Table I view):\n");
    let row = |name: &str, r: &zllm_accel::resources::ResourceVector| {
        vec![
            name.to_owned(),
            format!("{:.1}K", r.lut / 1e3),
            format!("{:.1}K", r.ff / 1e3),
            format!("{:.0}", r.dsp),
            format!("{:.1}", r.bram),
            format!("{:.0}", r.uram),
        ]
    };
    print_table(
        &["unit", "LUT", "FF", "DSP", "BRAM", "URAM"],
        &[
            row("MCU", &est.mcu),
            row("VPU", &est.vpu),
            row("SPU", &est.spu),
            row("total", &est.total),
        ],
    );
    println!(
        "\nBinding constraint: LUTs at {} of the K26 budget (paper: 'up to 70%').",
        fmt_pct(est.total.utilization(&device).lut)
    );
}
