//! Extension experiment (beyond the paper's tables): energy per decoded
//! token across every platform in Tables II/III. The paper reports power
//! for each FPGA work and the discussion emphasises edge efficiency; this
//! binary derives the joules-per-token column those numbers imply.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin energy
//! ```

use zllm_accel::power::{energy_per_token, estimate_power};
use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_baselines::published::fpga_works;
use zllm_bench::{fmt_num, print_table};
use zllm_model::ModelConfig;

/// Published board power for the Table III devices (module-level, typical
/// sustained inference draw; sources: vendor power modes and the cited
/// benchmark reports).
const EDGE_DEVICE_POWER: [(&str, &str, f64, f64); 5] = [
    ("Pi-4B 8GB", "llama.cpp", 7.0, 0.11),
    ("JetsonAGXOrin", "llama.cpp", 40.0, 4.49),
    ("JetsonAGXOrin", "TinyChat", 40.0, 33.0),
    ("JetsonAGXOrin", "NanoLLM", 40.0, 47.1),
    ("JetsonOrinNano", "NanoLLM", 14.0, 16.4),
];

fn main() {
    println!("Energy per decoded token (extension to Tables II/III)\n");

    let mut engine =
        DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024).expect("7B fits");
    let ours_tps = engine.decode_run_sampled(1024, 4).tokens_per_s;
    let ours_w = estimate_power(&AccelConfig::kv260()).total();

    let mut rows = Vec::new();
    for w in fpga_works() {
        if w.resources.watts.is_nan() {
            continue;
        }
        rows.push(vec![
            w.name.to_owned(),
            w.platform.name.to_owned(),
            w.workload.config().name,
            fmt_num(w.resources.watts, 1),
            fmt_num(w.reported_tokens_per_s, 1),
            fmt_num(
                energy_per_token(w.resources.watts, w.reported_tokens_per_s),
                2,
            ),
        ]);
    }
    for (device, framework, watts, tps) in EDGE_DEVICE_POWER {
        rows.push(vec![
            framework.to_owned(),
            device.to_owned(),
            "LLaMA2-7B".to_owned(),
            fmt_num(watts, 1),
            fmt_num(tps, 1),
            fmt_num(energy_per_token(watts, tps), 2),
        ]);
    }
    rows.push(vec![
        "Ours".to_owned(),
        "KV260".to_owned(),
        "LLaMA2-7B".to_owned(),
        fmt_num(ours_w, 2),
        fmt_num(ours_tps, 1),
        fmt_num(energy_per_token(ours_w, ours_tps), 2),
    ]);

    print_table(
        &[
            "work/framework",
            "device",
            "model",
            "W",
            "token/s",
            "J/token",
        ],
        &rows,
    );

    println!("\nCaveats: FPGA watts are Vivado/report values, GPU watts are typical");
    println!("sustained module power (not measured at the wall), and the models");
    println!("differ per row — read the column as an order-of-magnitude picture.");
    println!("The KV260 lands near the NanoLLM Jetsons per token on a 7B model");
    println!("while drawing a sixth of the AGX Orin's power.");
}
