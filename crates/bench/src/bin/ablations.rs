//! Design-point ablations behind §VI-B's "bandwidth-area balanced"
//! argument: sweeps of PL frequency, VPU lanes, AXI ports and datamover
//! depth around the paper's chosen operating point, plus the
//! prefill-engine trade-off.
//!
//! Every sweep point owns its engine, so the points of each ablation are
//! priced concurrently with [`par_map`]; rows are collected in input
//! order and the output is byte-for-byte deterministic.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin ablations
//! ```

use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_bench::{fmt_pct, par_map, print_table};
use zllm_model::ModelConfig;

fn measure(accel: AccelConfig) -> (f64, f64) {
    let mut engine = DecodeEngine::new(accel, &ModelConfig::llama2_7b(), 1024).expect("7B fits");
    let r = engine.decode_token(512);
    (r.tokens_per_s, r.bandwidth_util)
}

fn main() {
    println!("Ablation 1: PL clock frequency (the 300 MHz design point)\n");
    let rows = par_map(vec![150.0, 200.0, 250.0, 300.0, 400.0], |mhz| {
        let mut cfg = AccelConfig::kv260();
        cfg.freq_mhz = mhz;
        cfg.axi.clock_mhz = mhz;
        let (tps, util) = measure(cfg);
        let absorb = 64.0 * mhz * 1e6 / 1e9;
        vec![
            format!("{mhz:.0}"),
            format!("{absorb:.1}"),
            format!("{tps:.2}"),
            fmt_pct(util),
            if absorb >= 19.2 {
                "DDR-bound (good)"
            } else {
                "PL-bound (starved)"
            }
            .to_owned(),
        ]
    });
    print_table(
        &["MHz", "PL absorb GB/s", "token/s", "util", "regime"],
        &rows,
    );
    println!("Below 300 MHz the 512-bit stream cannot absorb 19.2 GB/s; above it,");
    println!("nothing improves — 300 MHz is the knee (and the timing-closure limit).\n");

    println!("Ablation 2: VPU lane count (the 128-lane design point)\n");
    let rows = par_map(vec![32usize, 64, 128, 256], |lanes| {
        let mut cfg = AccelConfig::kv260();
        cfg.lanes = lanes;
        let est = zllm_accel::resources::estimate(&cfg);
        let (tps, util) = measure(cfg);
        let lut_util = est
            .total
            .utilization(&zllm_accel::resources::kv260_device())
            .lut;
        vec![
            format!("{lanes}"),
            format!("{tps:.2}"),
            fmt_pct(util),
            format!("{:.0}", est.total.dsp),
            fmt_pct(lut_util),
        ]
    });
    print_table(&["lanes", "token/s", "util", "DSPs", "LUT util"], &rows);
    println!("64 lanes halve throughput (dequantizer starves the bus); 256 lanes");
    println!("add nothing but blow the LUT budget — 128 is bandwidth-area balanced.\n");

    println!("Ablation 3: AXI HP ports (the 4-port design point)\n");
    let rows = par_map(vec![1u32, 2, 4], |ports| {
        let mut cfg = AccelConfig::kv260();
        cfg.axi.ports = ports;
        let fabric_gbps = cfg.axi.bandwidth_gbps();
        let (tps, util) = measure(cfg);
        vec![
            format!("{ports}"),
            format!("{fabric_gbps:.1}"),
            format!("{tps:.2}"),
            fmt_pct(util),
        ]
    });
    print_table(&["ports", "fabric GB/s", "token/s", "util"], &rows);

    println!("\nAblation 4: datamover outstanding-transaction depth\n");
    let rows = par_map(vec![1usize, 2, 4, 8, 16], |depth| {
        let mut cfg = AccelConfig::kv260();
        cfg.mem_lookahead = depth;
        let (tps, util) = measure(cfg);
        vec![format!("{depth}"), format!("{tps:.2}"), fmt_pct(util)]
    });
    print_table(&["depth", "token/s", "util"], &rows);

    println!("\nAblation 5: prefill — vector engine vs hypothetical matrix engine\n");
    let rows = par_map(vec![32usize, 128, 512], |prompt| {
        let mut engine =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024).expect("fits");
        let vector_s = engine.prefill_vector_ns(prompt) / 1e9;
        let matrix_s = engine.prefill_matrix_engine_ns(prompt, 128) / 1e9;
        let matrix8x_s = engine.prefill_matrix_engine_ns(prompt, 1024) / 1e9;
        vec![
            format!("{prompt}"),
            format!("{vector_s:.1} s"),
            format!("{matrix_s:.1} s"),
            format!("{matrix8x_s:.1} s"),
        ]
    });
    print_table(
        &[
            "prompt tokens",
            "vector engine (ours)",
            "matrix engine, 128 MACs",
            "matrix engine, 1024 MACs",
        ],
        &rows,
    );
    println!("\nWith the KV260's DSP budget a matrix engine barely improves prefill");
    println!("(both are compute-starved), and its extra area is dead weight during");
    println!("decode — the paper's rationale for the simple DOT engine (§VI-B).");

    println!("\nAblation 6: what-if memory technologies (§VIII, 'Memory Resources");
    println!("is Essential') — the same architecture on faster memory\n");
    let memories: Vec<(&str, zllm_ddr::DdrConfig)> = vec![
        ("DDR4-2400 (KV260)", zllm_ddr::DdrConfig::ddr4_2400_kv260()),
        (
            "DDR4-2666 (ZCU102-class)",
            zllm_ddr::DdrConfig::ddr4_2666_zcu102(),
        ),
        (
            "LPDDR5 (Orin-Nano-class)",
            zllm_ddr::DdrConfig::lpddr5_orin_nano(),
        ),
    ];
    let rows = par_map(memories, |(name, ddr)| {
        let peak = ddr.peak_bandwidth_gbps();
        // As-is: the KV260 PL can only absorb 19.2 GB/s.
        let mut as_is = AccelConfig::kv260();
        as_is.ddr = ddr.clone();
        let (tps_as_is, _) = measure(as_is);
        // Scaled PL: datapath throughput grown to match the new memory
        // (timing modelled as a clock scale; area reported for the
        // equivalent width scale at 300 MHz — the realistic option).
        let scale = (peak / 19.2).max(1.0);
        let mut scaled = AccelConfig::kv260();
        scaled.ddr = ddr;
        scaled.freq_mhz = 300.0 * scale;
        scaled.axi.clock_mhz = 300.0 * scale;
        let (tps_scaled, _) = measure(scaled);
        let mut wide = AccelConfig::kv260();
        wide.lanes = ((128.0 * scale).ceil() as usize).next_power_of_two();
        wide.axi.ports = (4.0 * scale).ceil() as u32;
        let est = zllm_accel::resources::estimate(&wide);
        let lut_util = est
            .total
            .utilization(&zllm_accel::resources::kv260_device())
            .lut;
        vec![
            name.to_owned(),
            format!("{peak:.1}"),
            format!("{tps_as_is:.2}"),
            format!("{tps_scaled:.2}"),
            fmt_pct(lut_util),
        ]
    });
    print_table(
        &[
            "memory",
            "GB/s",
            "token/s (KV260 PL)",
            "token/s (scaled PL)",
            "scaled-PL LUTs vs K26",
        ],
        &rows,
    );
    println!("\nFaster memory alone buys nothing — the PL must scale with it, and the");
    println!("scaled design no longer fits a K26. Hence the paper's call for embedded");
    println!("FPGAs with both more bandwidth *and* more fabric (§VIII).");

    println!("\nAblation 7: batch size (why server FPGAs batch and edge boxes don't, §II)\n");
    let rows = par_map(vec![1usize, 2, 4, 8, 16], |batch| {
        let mut balanced =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024).expect("fits");
        let mut rich_cfg = AccelConfig::kv260();
        rich_cfg.lanes = 2048; // a server-class MAC budget (would not fit a K26)
        let mut rich = DecodeEngine::new(rich_cfg, &ModelConfig::llama2_7b(), 1024).expect("fits");
        let ours = balanced.decode_batch_estimate(512, batch);
        let server = rich.decode_batch_estimate(512, batch);
        vec![
            format!("{batch}"),
            format!("{ours:.2}"),
            format!("{:.2}", ours / batch as f64),
            format!("{server:.2}"),
        ]
    });
    print_table(
        &[
            "batch",
            "ours total tok/s",
            "ours per-user tok/s",
            "2048-lane engine total tok/s",
        ],
        &rows,
    );
    println!("\nThe bandwidth-area balanced engine has *no* batching headroom — its");
    println!("compute exactly matches the bus, so batch b just divides each user's");
    println!("speed by b. Server FPGAs batch because they carry spare MACs; with one");
    println!("user per edge box, single-batch is the workload that matters (§II).");
}
