//! Design-point ablations behind §VI-B's "bandwidth-area balanced"
//! argument: sweeps of PL frequency, VPU lanes, AXI ports and datamover
//! depth around the paper's chosen operating point, plus the
//! prefill-engine trade-off.
//!
//! Every sweep point owns its engine, so the points of each ablation are
//! priced concurrently with [`par_map`]; rows are collected in input
//! order and the output is byte-for-byte deterministic.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin ablations
//! ```

use zllm_accel::{AccelConfig, AccelDecoder, DecodeEngine, QuantizedModel};
use zllm_bench::{fmt_pct, par_map, print_table};
use zllm_layout::weight::WeightFormat;
use zllm_model::kv_cache::KvCacheF32;
use zllm_model::reference::Decoder;
use zllm_model::{ModelConfig, ModelWeights};
use zllm_quant::error::ErrorStats;
use zllm_quant::group::GroupQuantConfig;

fn measure(accel: AccelConfig) -> (f64, f64) {
    let mut engine = DecodeEngine::new(accel, &ModelConfig::llama2_7b(), 1024).expect("7B fits");
    let r = engine.decode_token(512);
    (r.tokens_per_s, r.bandwidth_util)
}

fn main() {
    println!("Ablation 1: PL clock frequency (the 300 MHz design point)\n");
    let freqs = vec![
        100.0, 150.0, 200.0, 250.0, 275.0, 300.0, 350.0, 400.0, 500.0,
    ];
    let rows = par_map(freqs, |mhz| {
        let mut cfg = AccelConfig::kv260();
        cfg.freq_mhz = mhz;
        cfg.axi.clock_mhz = mhz;
        let (tps, util) = measure(cfg);
        let absorb = 64.0 * mhz * 1e6 / 1e9;
        vec![
            format!("{mhz:.0}"),
            format!("{absorb:.1}"),
            format!("{tps:.2}"),
            fmt_pct(util),
            if absorb >= 19.2 {
                "DDR-bound (good)"
            } else {
                "PL-bound (starved)"
            }
            .to_owned(),
        ]
    });
    print_table(
        &["MHz", "PL absorb GB/s", "token/s", "util", "regime"],
        &rows,
    );
    println!("Below 300 MHz the 512-bit stream cannot absorb 19.2 GB/s; above it,");
    println!("nothing improves — 300 MHz is the knee (and the timing-closure limit).\n");

    println!("Ablation 2: VPU lane count (the 128-lane design point)\n");
    // The dot tree dictates power-of-two lane counts.
    let lanes_grid = vec![8usize, 16, 32, 64, 128, 256, 512, 1024];
    let rows = par_map(lanes_grid, |lanes| {
        let mut cfg = AccelConfig::kv260();
        cfg.lanes = lanes;
        let est = zllm_accel::resources::estimate(&cfg);
        let (tps, util) = measure(cfg);
        let lut_util = est
            .total
            .utilization(&zllm_accel::resources::kv260_device())
            .lut;
        vec![
            format!("{lanes}"),
            format!("{tps:.2}"),
            fmt_pct(util),
            format!("{:.0}", est.total.dsp),
            fmt_pct(lut_util),
        ]
    });
    print_table(&["lanes", "token/s", "util", "DSPs", "LUT util"], &rows);
    println!("64 lanes halve throughput (dequantizer starves the bus); 256 lanes");
    println!("add nothing but blow the LUT budget — 128 is bandwidth-area balanced.\n");

    println!("Ablation 3: AXI HP ports (the 4-port design point)\n");
    let rows = par_map(vec![1u32, 2, 3, 4], |ports| {
        let mut cfg = AccelConfig::kv260();
        cfg.axi.ports = ports;
        let fabric_gbps = cfg.axi.bandwidth_gbps();
        let (tps, util) = measure(cfg);
        vec![
            format!("{ports}"),
            format!("{fabric_gbps:.1}"),
            format!("{tps:.2}"),
            fmt_pct(util),
        ]
    });
    print_table(&["ports", "fabric GB/s", "token/s", "util"], &rows);

    println!("\nAblation 4: datamover outstanding-transaction depth\n");
    let rows = par_map(vec![1usize, 2, 4, 8, 16, 32, 64], |depth| {
        let mut cfg = AccelConfig::kv260();
        cfg.mem_lookahead = depth;
        let (tps, util) = measure(cfg);
        vec![format!("{depth}"), format!("{tps:.2}"), fmt_pct(util)]
    });
    print_table(&["depth", "token/s", "util"], &rows);

    println!("\nAblation 5: prefill — vector engine vs hypothetical matrix engine\n");
    let rows = par_map(vec![32usize, 128, 512], |prompt| {
        let mut engine =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024).expect("fits");
        let vector_s = engine.prefill_vector_ns(prompt) / 1e9;
        let matrix_s = engine.prefill_matrix_engine_ns(prompt, 128) / 1e9;
        let matrix8x_s = engine.prefill_matrix_engine_ns(prompt, 1024) / 1e9;
        vec![
            format!("{prompt}"),
            format!("{vector_s:.1} s"),
            format!("{matrix_s:.1} s"),
            format!("{matrix8x_s:.1} s"),
        ]
    });
    print_table(
        &[
            "prompt tokens",
            "vector engine (ours)",
            "matrix engine, 128 MACs",
            "matrix engine, 1024 MACs",
        ],
        &rows,
    );
    println!("\nWith the KV260's DSP budget a matrix engine barely improves prefill");
    println!("(both are compute-starved), and its extra area is dead weight during");
    println!("decode — the paper's rationale for the simple DOT engine (§VI-B).");

    println!("\nAblation 6: what-if memory technologies (§VIII, 'Memory Resources");
    println!("is Essential') — the same architecture on faster memory\n");
    let memories: Vec<(&str, zllm_ddr::DdrConfig)> = vec![
        ("DDR4-2400 (KV260)", zllm_ddr::DdrConfig::ddr4_2400_kv260()),
        (
            "DDR4-2666 (ZCU102-class)",
            zllm_ddr::DdrConfig::ddr4_2666_zcu102(),
        ),
        (
            "LPDDR5-6400 (embedded 64-bit)",
            zllm_ddr::DdrConfig::lpddr5_6400_embedded(),
        ),
        (
            "LPDDR5 (Orin-Nano-class)",
            zllm_ddr::DdrConfig::lpddr5_orin_nano(),
        ),
    ];
    let rows = par_map(memories, |(name, ddr)| {
        let peak = ddr.peak_bandwidth_gbps();
        // As-is: the KV260 PL can only absorb 19.2 GB/s.
        let mut as_is = AccelConfig::kv260();
        as_is.ddr = ddr.clone();
        let (tps_as_is, _) = measure(as_is);
        // Scaled PL: datapath throughput grown to match the new memory
        // (timing modelled as a clock scale; area reported for the
        // equivalent width scale at 300 MHz — the realistic option).
        let scale = (peak / 19.2).max(1.0);
        let mut scaled = AccelConfig::kv260();
        scaled.ddr = ddr;
        scaled.freq_mhz = 300.0 * scale;
        scaled.axi.clock_mhz = 300.0 * scale;
        let (tps_scaled, _) = measure(scaled);
        let mut wide = AccelConfig::kv260();
        wide.lanes = ((128.0 * scale).ceil() as usize).next_power_of_two();
        wide.axi.ports = (4.0 * scale).ceil() as u32;
        let est = zllm_accel::resources::estimate(&wide);
        let lut_util = est
            .total
            .utilization(&zllm_accel::resources::kv260_device())
            .lut;
        vec![
            name.to_owned(),
            format!("{peak:.1}"),
            format!("{tps_as_is:.2}"),
            format!("{tps_scaled:.2}"),
            fmt_pct(lut_util),
        ]
    });
    print_table(
        &[
            "memory",
            "GB/s",
            "token/s (KV260 PL)",
            "token/s (scaled PL)",
            "scaled-PL LUTs vs K26",
        ],
        &rows,
    );
    println!("\nFaster memory alone buys nothing — the PL must scale with it, and the");
    println!("scaled design no longer fits a K26. Hence the paper's call for embedded");
    println!("FPGAs with both more bandwidth *and* more fabric (§VIII).");

    println!("\nAblation 7: batch size (why server FPGAs batch and edge boxes don't, §II)\n");
    let rows = par_map(vec![1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32], |batch| {
        let mut balanced =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024).expect("fits");
        let mut rich_cfg = AccelConfig::kv260();
        rich_cfg.lanes = 2048; // a server-class MAC budget (would not fit a K26)
        let mut rich = DecodeEngine::new(rich_cfg, &ModelConfig::llama2_7b(), 1024).expect("fits");
        let ours = balanced.decode_batch_estimate(512, batch);
        let server = rich.decode_batch_estimate(512, batch);
        vec![
            format!("{batch}"),
            format!("{ours:.2}"),
            format!("{:.2}", ours / batch as f64),
            format!("{server:.2}"),
        ]
    });
    print_table(
        &[
            "batch",
            "ours total tok/s",
            "ours per-user tok/s",
            "2048-lane engine total tok/s",
        ],
        &rows,
    );
    println!("\nThe bandwidth-area balanced engine has *no* batching headroom — its");
    println!("compute exactly matches the bus, so batch b just divides each user's");
    println!("speed by b. Server FPGAs batch because they carry spare MACs; with one");
    println!("user per edge box, single-batch is the workload that matters (§II).");
    println!("(`batch_sweep` prices the same question with the exact batched");
    println!("schedule instead of this analytic estimate.)");

    println!("\nAblation 8: quantization group size — metadata overhead vs accuracy\n");
    let rows = par_map(vec![32usize, 64, 128, 256, 512], |gs| {
        // Widest bus whose beats a group still fills exactly; below 128
        // weights per group this drops under the 512-bit merged stream
        // (the Fig. 4A 64-weight enumeration uses 256-bit transactions).
        let bus = (gs * 4).min(512);
        let fmt = WeightFormat::new(bus, 4, gs);
        // Accuracy of the functional datapath against the f32 reference,
        // on a shape wide enough (d_model 512) that even the coarsest
        // group spans a genuine weight-distribution slice.
        let cfg = ModelConfig {
            name: "ablation-gs".to_owned(),
            n_layers: 2,
            d_model: 512,
            n_heads: 8,
            n_kv_heads: 8,
            d_ff: 1024,
            vocab_size: 512,
            max_seq_len: 64,
            norm_eps: 1e-5,
            rope_base: 10000.0,
        };
        let weights = ModelWeights::generate(&cfg, 7);
        let qmodel = QuantizedModel::quantize(&weights, GroupQuantConfig::new(gs, 4));
        let mut accel = AccelDecoder::new(&qmodel);
        let mut reference = Decoder::new(&weights, KvCacheF32::new(&cfg));
        let prompt = [3usize, 11, 7, 100, 42];
        let ref_logits = reference.prefill(&prompt);
        let acc_logits = accel.prefill(&prompt);
        let cosine = ErrorStats::between(&ref_logits, &acc_logits).cosine;
        // Streaming throughput on the merged 512-bit bus (narrower
        // geometries are enumerated analytically, as in Fig. 4A's prose).
        let tps = if bus == 512 {
            let mut c = AccelConfig::kv260();
            c.format = fmt;
            format!("{:.2}", measure(c).0)
        } else {
            format!("n/a ({bus}-bit bus)")
        };
        vec![
            format!("{gs}"),
            format!("{bus}"),
            fmt_pct(fmt.metadata_fraction()),
            format!("{} B", fmt.on_chip_metadata_bytes()),
            format!("{cosine:.4}"),
            tps,
        ]
    });
    print_table(
        &[
            "group size",
            "bus bits",
            "metadata",
            "on-chip buffer",
            "logit cosine",
            "7B token/s",
        ],
        &rows,
    );
    println!("\nSmaller groups buy accuracy at the cost of metadata overhead (and,");
    println!("under 128 weights, of the 512-bit merged stream itself); groups of 128");
    println!("sit at the knee — ~3.8% overhead with near-best fidelity (§V-B1).");
}
