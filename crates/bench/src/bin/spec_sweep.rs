//! Speculative-decoding sweep: tok/s uplift and bytes per committed
//! token vs the non-speculative baseline, across accept rate and draft
//! window size.
//!
//! Embedded decode is bandwidth-bound — one full weight stream prices
//! one token — so the remaining lever is spending the same bytes on
//! more tokens. A verify window drafts `K` cheap tokens and verifies
//! all `K + 1` positions in one weight stream; at accept rate α it
//! commits `E[committed] = (1 − α^(K+1)) / (1 − α)` tokens for roughly
//! one token's weight traffic plus the per-position KV streams and a
//! flat draft cost.
//!
//! The sweep prices TinyLlama-1.1B generations (a fixed committed-token
//! budget from a fixed starting context) over α ∈ {0.5, 0.65, 0.8,
//! 0.95} × K ∈ {2, 4, 8} on two memory systems — the KV260's DDR4-2400
//! and the LPDDR5-6400 swap — using the lanes-widened engine
//! ([`zllm_bench::spec_accel`]): the stock KV260 is exactly
//! compute/bandwidth balanced, so verify fanout there costs exactly the
//! cycles it saves. One stock-engine reference row at the
//! representative (α = 0.8, K = 4) point documents that loss: its
//! uplift must stay below 1, which is why speculation is pointless
//! without compute headroom. Acceptance draws are seeded (`--seed`
//! replays a different acceptance path); everything else is
//! deterministic.
//!
//! `perf_gate` pins the representative point under the `spec.*` keys in
//! `bench/baseline.json` and hard-gates its uplift.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin spec_sweep
//! cargo run --release -p zllm-bench --bin spec_sweep -- --json out.json --seed 7
//! ```

use zllm_accel::{AccelConfig, DecodeEngine, DraftCost, SpecWindow};
use zllm_bench::{cli_seed_arg, cli_value_arg, json_report, print_table, spec_accel, JsonField};
use zllm_model::ModelConfig;
use zllm_rng::StdRng;

/// Per-sequence KV provisioning (tokens).
const CTX_CAPACITY: usize = 256;
/// Context the generation starts from (the prompt is already prefilled).
const START_CTX: usize = 64;
/// Committed tokens per run; window boundaries clamp to this budget so
/// every run — speculative or not — prices exactly the same positions.
const TOKENS: usize = 48;
/// Default acceptance-draw seed; override with `--seed`.
const SEED: u64 = 9;
/// Flat draft cost per drafted token, nanoseconds — a small draft model
/// at roughly 7% of the target's DDR4 step time.
const DRAFT_NS_PER_TOKEN: f64 = 2_000_000.0;
/// Accept rates swept.
const ALPHAS: [f64; 4] = [0.5, 0.65, 0.8, 0.95];
/// Draft window sizes swept.
const KS: [usize; 3] = [2, 4, 8];
/// The representative point the hard gates (and `perf_gate`) pin.
const GATE_ALPHA: f64 = 0.8;
const GATE_K: usize = 4;
/// Tok/s uplift the representative point must sustain on DDR4-2400.
const MIN_UPLIFT: f64 = 1.5;

struct Run {
    part: &'static str,
    alpha: f64,
    k: usize,
    windows: u64,
    drafted: u64,
    accepted: u64,
    spec_wall_ns: f64,
    spec_bytes: u64,
    base_wall_ns: f64,
    base_bytes: u64,
}

impl Run {
    fn uplift(&self) -> f64 {
        self.base_wall_ns / self.spec_wall_ns
    }
    fn bytes_per_token(&self) -> f64 {
        self.spec_bytes as f64 / TOKENS as f64
    }
    fn base_bytes_per_token(&self) -> f64 {
        self.base_bytes as f64 / TOKENS as f64
    }
}

fn engine(accel: &AccelConfig) -> DecodeEngine {
    DecodeEngine::new_batched(
        accel.clone(),
        &ModelConfig::tiny_llama_1_1b(),
        CTX_CAPACITY,
        1,
    )
    .expect("TinyLlama-1.1B fits the 4GB device")
}

/// Prices one speculative generation: verify windows from `START_CTX`
/// until `TOKENS` tokens are committed, acceptance drawn i.i.d. at
/// `alpha` from the seeded generator. Window size clamps to the
/// remaining budget so the run commits exactly `TOKENS` tokens.
fn run_spec(part: &'static str, accel: &AccelConfig, alpha: f64, k: usize, seed: u64) -> Run {
    let mut eng = engine(accel);
    let mut rng = StdRng::seed_from_u64(seed);
    let draft = DraftCost::FlatNs {
        ns_per_token: DRAFT_NS_PER_TOKEN,
    };
    let (mut ctx, mut committed) = (START_CTX, 0usize);
    let (mut windows, mut drafted, mut accepted) = (0u64, 0u64, 0u64);
    let (mut wall_ns, mut bytes) = (0.0f64, 0u64);
    while committed < TOKENS {
        let remaining = TOKENS - committed;
        let k_eff = k.min(remaining - 1).min(CTX_CAPACITY - 1 - ctx);
        let mut acc = 0;
        for _ in 0..k_eff {
            if rng.gen_bool(alpha) {
                acc += 1;
            } else {
                break;
            }
        }
        let w = SpecWindow {
            slot: 0,
            ctx,
            drafted: k_eff,
            accepted: acc,
        };
        let r = eng.decode_speculative(&[w], &draft);
        wall_ns += r.wall_ns;
        bytes += r.bytes;
        windows += 1;
        drafted += k_eff as u64;
        accepted += acc as u64;
        committed += acc + 1;
        ctx += acc + 1;
    }
    // The non-speculative twin: the same `TOKENS` positions decoded one
    // weight stream each, on a fresh engine so the DDR phase matches.
    let mut base = engine(accel);
    let (mut base_wall_ns, mut base_bytes) = (0.0f64, 0u64);
    for c in START_CTX..START_CTX + TOKENS {
        let r = base.decode_token(c);
        base_wall_ns += r.wall_ns;
        base_bytes += r.bytes;
    }
    Run {
        part,
        alpha,
        k,
        windows,
        drafted,
        accepted,
        spec_wall_ns: wall_ns,
        spec_bytes: bytes,
        base_wall_ns,
        base_bytes,
    }
}

fn to_json(runs: &[Run]) -> String {
    use JsonField::{Fixed3, Fixed6, Num, Str, UInt};
    let rows: Vec<Vec<(&str, JsonField)>> = runs
        .iter()
        .map(|r| {
            vec![
                ("part", Str(r.part.to_string())),
                ("alpha", Num(r.alpha)),
                ("k", UInt(r.k as u64)),
                ("windows", UInt(r.windows)),
                ("drafted", UInt(r.drafted)),
                ("accepted", UInt(r.accepted)),
                ("committed", UInt(TOKENS as u64)),
                ("spec_wall_ms", Fixed3(r.spec_wall_ns / 1e6)),
                ("base_wall_ms", Fixed3(r.base_wall_ns / 1e6)),
                ("uplift", Fixed6(r.uplift())),
                ("bytes_per_committed_token", Fixed3(r.bytes_per_token())),
                ("base_bytes_per_token", Fixed3(r.base_bytes_per_token())),
                (
                    "spec_tokens_per_s",
                    Fixed6(TOKENS as f64 * 1e9 / r.spec_wall_ns),
                ),
                (
                    "base_tokens_per_s",
                    Fixed6(TOKENS as f64 * 1e9 / r.base_wall_ns),
                ),
            ]
        })
        .collect();
    json_report(&rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = cli_value_arg("spec_sweep", &args, "--json");
    let seed = cli_seed_arg("spec_sweep", &args, SEED);

    let ddr4 = spec_accel();
    let mut lpddr5 = spec_accel();
    lpddr5.ddr = zllm_ddr::DdrConfig::lpddr5_6400_embedded();
    let parts: [(&'static str, &AccelConfig); 2] =
        [("spec-ddr4-2400", &ddr4), ("spec-lpddr5-6400", &lpddr5)];

    println!(
        "Speculative decoding on the lanes-widened KV260: {TOKENS} committed tokens\n\
         from ctx {START_CTX}, TinyLlama-1.1B, flat draft {:.1} ms/token, seed {seed}\n",
        DRAFT_NS_PER_TOKEN / 1e6
    );

    let mut runs = Vec::new();
    for (part, accel) in parts {
        for alpha in ALPHAS {
            for k in KS {
                runs.push(run_spec(part, accel, alpha, k, seed));
            }
        }
    }
    // The reference row: the stock, exactly balanced KV260 at the
    // representative point — where speculation loses.
    let balanced = run_spec(
        "balanced-kv260",
        &AccelConfig::kv260(),
        GATE_ALPHA,
        GATE_K,
        seed,
    );
    runs.push(balanced);

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.part.to_owned(),
                format!("{:.2}", r.alpha),
                format!("{}", r.k),
                format!("{}", r.windows),
                format!("{}/{}", r.accepted, r.drafted),
                format!("{:.2}x", r.uplift()),
                format!("{:.1}", r.bytes_per_token() / 1e6),
                format!("{:.1}", r.base_bytes_per_token() / 1e6),
                format!("{:.2}", TOKENS as f64 * 1e9 / r.spec_wall_ns),
                format!("{:.2}", TOKENS as f64 * 1e9 / r.base_wall_ns),
            ]
        })
        .collect();
    print_table(
        &[
            "part",
            "alpha",
            "K",
            "windows",
            "acc/drafted",
            "uplift",
            "MB/tok",
            "base MB/tok",
            "tok/s",
            "base tok/s",
        ],
        &rows,
    );
    println!();

    let find = |part: &str, alpha: f64, k: usize| {
        runs.iter()
            .find(|r| r.part == part && r.alpha == alpha && r.k == k)
            .expect("swept point")
    };
    // The headline gate: the representative point on DDR4-2400 must
    // clear the tentpole's uplift. A weight stream amortized across the
    // accepted prefix buys more tokens per byte, and that must survive
    // the per-position KV streams and the draft cost.
    let gate = find("spec-ddr4-2400", GATE_ALPHA, GATE_K);
    let uplift = gate.uplift();
    assert!(
        uplift >= MIN_UPLIFT,
        "speculation sustained {uplift:.2}x at alpha={GATE_ALPHA}, K={GATE_K} on DDR4-2400; \
         the tentpole claims >= {MIN_UPLIFT}x"
    );
    // Speculation spends fewer bytes per committed token than the
    // sequential baseline at the representative point.
    assert!(
        gate.bytes_per_token() < gate.base_bytes_per_token(),
        "verify windows must amortize the weight stream: {:.1} vs {:.1} MB/token",
        gate.bytes_per_token() / 1e6,
        gate.base_bytes_per_token() / 1e6
    );
    // More acceptance means more uplift: the sweep's α axis is the
    // accept-rate sensitivity the docs tabulate.
    for (part, _) in parts {
        let low = find(part, ALPHAS[0], GATE_K).uplift();
        let high = find(part, *ALPHAS.last().expect("nonempty"), GATE_K).uplift();
        assert!(
            high > low,
            "{part}: uplift must grow with accept rate ({low:.2}x at {} vs {high:.2}x at {})",
            ALPHAS[0],
            ALPHAS.last().expect("nonempty")
        );
    }
    // Where speculation loses: the stock KV260 is exactly balanced, so
    // the verify fanout costs as many cycles as the amortization saves
    // and the draft cost makes it a strict loss.
    let balanced = runs.last().expect("reference row");
    assert!(
        balanced.uplift() < 1.0,
        "the balanced engine cannot profit from speculation, got {:.2}x",
        balanced.uplift()
    );
    println!(
        "gate point (alpha={GATE_ALPHA}, K={GATE_K}, DDR4-2400): {uplift:.2}x uplift, \
         {:.1} vs {:.1} MB per committed token; balanced reference {:.2}x",
        gate.bytes_per_token() / 1e6,
        gate.base_bytes_per_token() / 1e6,
        balanced.uplift()
    );

    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&runs)).expect("write spec_sweep JSON");
        eprintln!("spec_sweep: report written to {path}");
    }
}
