//! Compression-aware memory controller sweep: tok/s uplift from inline
//! (de)compression in the DDR pipeline, across compression ratio ×
//! stream kind × memory part.
//!
//! Decode is bandwidth-bound, so a burst that crosses the bus at its
//! compressed size is a direct effective-bandwidth multiplier: the
//! controller moves `ceil(logical / ratio)` beats, decompresses at line
//! rate beside the PHY (fixed pipe latency + throughput cap), and
//! charges page-map metadata beats for the compressed page table. The
//! sweep prices TinyLlama-1.1B generations twice — through
//! [`zllm_accel::DecodeEngine::new_compressed`] and through a plain
//! twin — on two memory systems (the KV260's DDR4-2400 and the
//! LPDDR5-6400 swap), using the PL-overclocked engine
//! ([`zllm_bench::comp_accel`]): the stock KV260 consumes exactly one
//! logical beat per 300 MHz cycle — balanced against DDR4-2400 — so
//! saved wire beats there only lower a memory time the consumer already
//! floors. One stock-engine reference row documents that, and on
//! LPDDR5-6400 even the overclocked consumer saturates, which is why
//! the faster part shows smaller (ratio-independent) uplifts.
//!
//! Two kinds of points are swept:
//!
//! * an **idealized grid** — each stream kind (weight / KV / activation
//!   / all) alone at ratios 1.25 / 1.5 / 2.0, plus a ratio-1.0 row that
//!   must price bit-identically to the plain twin;
//! * the **entropy-measured point** — the honest ratios
//!   [`zllm_quant::entropy::measured_stream_ratios`] reports for the
//!   4-bit group-quantized weight stream, KV8 cache lines and FP16
//!   activations (order-0 page entropy scaled by the achievable
//!   fraction of an FSE/LZ-class hardware codec).
//!
//! `perf_gate` pins the measured point under the `comp.*` keys in
//! `bench/baseline.json` and hard-gates its uplift.
//!
//! ```text
//! cargo run --release -p zllm-bench --bin compress_sweep
//! cargo run --release -p zllm-bench --bin compress_sweep -- --json out.json --seed 7
//! ```

use zllm_accel::{AccelConfig, DecodeEngine};
use zllm_bench::{cli_seed_arg, cli_value_arg, comp_accel, json_report, print_table, JsonField};
use zllm_ddr::{CompressionConfig, StreamRatio};
use zllm_model::ModelConfig;
use zllm_quant::entropy::measured_stream_ratios;

/// Per-sequence KV provisioning (tokens).
const CTX_CAPACITY: usize = 256;
/// Context the generation starts from.
const START_CTX: usize = 64;
/// Tokens per run; both twins price exactly the same positions.
const TOKENS: usize = 48;
/// Default entropy-measurement seed; override with `--seed`.
const SEED: u64 = 7;
/// Idealized compression ratios swept per stream kind.
const GRID: [f64; 3] = [1.25, 1.5, 2.0];
/// Tok/s uplift the entropy-measured point must sustain on DDR4-2400.
const MIN_UPLIFT: f64 = 1.3;

struct Run {
    part: &'static str,
    /// Which stream kinds carry the ratio: `weight`, `kv`,
    /// `activation`, `all`, `identity` or `measured`.
    kind: &'static str,
    ratio_weight: f64,
    ratio_kv: f64,
    ratio_activation: f64,
    wall_ns: f64,
    bytes_logical: u64,
    bytes_wire: u64,
    bytes_meta: u64,
    base_wall_ns: f64,
    base_bytes: u64,
}

impl Run {
    fn uplift(&self) -> f64 {
        self.base_wall_ns / self.wall_ns
    }
    fn wire_reduction(&self) -> f64 {
        self.bytes_logical as f64 / (self.bytes_wire + self.bytes_meta) as f64
    }
}

/// Prices the fixed generation on a plain engine: total wall ns and
/// bytes moved.
fn base_run(accel: &AccelConfig) -> (f64, u64) {
    let mut eng = DecodeEngine::new(accel.clone(), &ModelConfig::tiny_llama_1_1b(), CTX_CAPACITY)
        .expect("TinyLlama-1.1B fits the 4GB device");
    let (mut wall_ns, mut bytes) = (0.0f64, 0u64);
    for c in START_CTX..START_CTX + TOKENS {
        let r = eng.decode_token(c);
        wall_ns += r.wall_ns;
        bytes += r.bytes;
    }
    (wall_ns, bytes)
}

/// Prices the same generation through the compression stage.
fn comp_run(
    part: &'static str,
    kind: &'static str,
    accel: &AccelConfig,
    ratios: (f64, f64, f64),
    base: (f64, u64),
) -> Run {
    let (w, kv, act) = ratios;
    let cfg = CompressionConfig::with_ratios(
        StreamRatio::from_ratio(w),
        StreamRatio::from_ratio(kv),
        StreamRatio::from_ratio(act),
    );
    let mut eng = DecodeEngine::new_compressed(
        accel.clone(),
        &ModelConfig::tiny_llama_1_1b(),
        CTX_CAPACITY,
        cfg,
    )
    .expect("TinyLlama-1.1B fits the 4GB device");
    let mut wall_ns = 0.0f64;
    for c in START_CTX..START_CTX + TOKENS {
        wall_ns += eng.decode_token(c).wall_ns;
    }
    let (logical, wire, meta) = eng.compression_bytes().expect("compressed engine");
    Run {
        part,
        kind,
        ratio_weight: w,
        ratio_kv: kv,
        ratio_activation: act,
        wall_ns,
        bytes_logical: logical,
        bytes_wire: wire,
        bytes_meta: meta,
        base_wall_ns: base.0,
        base_bytes: base.1,
    }
}

fn to_json(runs: &[Run]) -> String {
    use JsonField::{Fixed3, Fixed6, Str, UInt};
    let rows: Vec<Vec<(&str, JsonField)>> = runs
        .iter()
        .map(|r| {
            vec![
                ("part", Str(r.part.to_owned())),
                ("kind", Str(r.kind.to_owned())),
                ("ratio_weight", Fixed6(r.ratio_weight)),
                ("ratio_kv", Fixed6(r.ratio_kv)),
                ("ratio_activation", Fixed6(r.ratio_activation)),
                ("tokens", UInt(TOKENS as u64)),
                ("wall_ms", Fixed3(r.wall_ns / 1e6)),
                ("base_wall_ms", Fixed3(r.base_wall_ns / 1e6)),
                ("uplift", Fixed6(r.uplift())),
                ("bytes_logical", UInt(r.bytes_logical)),
                ("bytes_wire", UInt(r.bytes_wire)),
                ("bytes_meta", UInt(r.bytes_meta)),
                ("wire_reduction", Fixed6(r.wire_reduction())),
                ("tokens_per_s", Fixed6(TOKENS as f64 * 1e9 / r.wall_ns)),
                (
                    "base_tokens_per_s",
                    Fixed6(TOKENS as f64 * 1e9 / r.base_wall_ns),
                ),
            ]
        })
        .collect();
    json_report(&rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = cli_value_arg("compress_sweep", &args, "--json");
    let seed = cli_seed_arg("compress_sweep", &args, SEED);

    let measured = measured_stream_ratios(seed);
    let m = (
        measured.weight.achievable_ratio,
        measured.kv.achievable_ratio,
        measured.activation.achievable_ratio,
    );
    println!(
        "Inline DDR (de)compression on the PL-overclocked KV260: {TOKENS} tokens from ctx \
         {START_CTX},\nTinyLlama-1.1B, seed {seed}. Entropy-measured ratios (page order-0 x \
         achievable fraction):\n  weight {:.3}x (H = {:.3} b/B), kv {:.3}x (H = {:.3} b/B), \
         activation {:.3}x (H = {:.3} b/B)\n",
        m.0,
        measured.weight.entropy_bits_per_byte,
        m.1,
        measured.kv.entropy_bits_per_byte,
        m.2,
        measured.activation.entropy_bits_per_byte,
    );

    let ddr4 = comp_accel();
    let mut lpddr5 = comp_accel();
    lpddr5.ddr = zllm_ddr::DdrConfig::lpddr5_6400_embedded();
    let parts: [(&'static str, &AccelConfig); 2] =
        [("comp-ddr4-2400", &ddr4), ("comp-lpddr5-6400", &lpddr5)];

    let mut runs = Vec::new();
    for (part, accel) in parts {
        let base = base_run(accel);
        // The ratio-1.0 row: the compression stage must vanish.
        runs.push(comp_run(part, "identity", accel, (1.0, 1.0, 1.0), base));
        for r in GRID {
            runs.push(comp_run(part, "weight", accel, (r, 1.0, 1.0), base));
            runs.push(comp_run(part, "kv", accel, (1.0, r, 1.0), base));
            runs.push(comp_run(part, "activation", accel, (1.0, 1.0, r), base));
            runs.push(comp_run(part, "all", accel, (r, r, r), base));
        }
        // The honest point: what the measured stream entropy buys.
        runs.push(comp_run(part, "measured", accel, m, base));
    }
    // The reference row: the stock, exactly balanced KV260 at the
    // measured point — where saved wire beats buy nothing because
    // compute already floors the step.
    let balanced_accel = AccelConfig::kv260();
    let balanced_base = base_run(&balanced_accel);
    runs.push(comp_run(
        "balanced-kv260",
        "measured",
        &balanced_accel,
        m,
        balanced_base,
    ));

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.part.to_owned(),
                r.kind.to_owned(),
                format!(
                    "{:.2}/{:.2}/{:.2}",
                    r.ratio_weight, r.ratio_kv, r.ratio_activation
                ),
                format!("{:.3}x", r.uplift()),
                format!("{:.3}x", r.wire_reduction()),
                format!(
                    "{:.1}",
                    (r.bytes_wire + r.bytes_meta) as f64 / TOKENS as f64 / 1e6
                ),
                format!("{:.2}", TOKENS as f64 * 1e9 / r.wall_ns),
                format!("{:.2}", TOKENS as f64 * 1e9 / r.base_wall_ns),
            ]
        })
        .collect();
    print_table(
        &[
            "part",
            "kind",
            "w/kv/act",
            "uplift",
            "wire shrink",
            "MB/tok",
            "tok/s",
            "base tok/s",
        ],
        &rows,
    );
    println!();

    let find = |part: &str, kind: &str, w: f64| {
        runs.iter()
            .find(|r| r.part == part && r.kind == kind && r.ratio_weight == w)
            .expect("swept point")
    };
    // The headline gate: the entropy-measured point on DDR4-2400 must
    // clear the tentpole's effective-bandwidth uplift.
    let gate = find("comp-ddr4-2400", "measured", m.0);
    let uplift = gate.uplift();
    assert!(
        uplift >= MIN_UPLIFT,
        "measured-ratio compression sustained {uplift:.3}x on DDR4-2400; \
         the tentpole claims >= {MIN_UPLIFT}x"
    );
    assert!(
        gate.bytes_wire + gate.bytes_meta < gate.bytes_logical,
        "compressed traffic (wire + metadata) must undercut logical bytes"
    );
    assert!(
        gate.bytes_meta > 0,
        "compressed weight traffic must charge page-map metadata beats"
    );
    for r in &runs {
        // Identity rows are the compression-off twin, bit for bit: the
        // stage must add no beats, no metadata and no stall.
        if r.kind == "identity" {
            assert!(
                r.uplift() == 1.0 && r.bytes_wire == r.bytes_logical && r.bytes_meta == 0,
                "{}: ratio-1.0 must price bit-identically to the plain engine \
                 (uplift {:.6}, wire {} vs logical {}, meta {})",
                r.part,
                r.uplift(),
                r.bytes_wire,
                r.bytes_logical,
                r.bytes_meta
            );
            assert!(
                r.bytes_logical == r.base_bytes,
                "{}: the stage's logical bytes must equal the plain engine's traffic",
                r.part
            );
        }
        // No point may lose tok/s beyond decompressor-latency noise:
        // the stage is pricing-only and its stall is bounded by the
        // fixed pipe latency per step.
        assert!(
            r.uplift() >= 0.999,
            "{} {}: compression must never cost tok/s, got {:.6}x",
            r.part,
            r.kind,
            r.uplift()
        );
    }
    // More ratio, more uplift: weights dominate decode traffic, so the
    // weight axis (and the all-kinds axis) must be strictly monotone on
    // the bandwidth-bound DDR4 part. On LPDDR5-6400 the overclocked
    // consumer saturates below the grid's ratios, so the axis is only
    // non-decreasing there — and must visibly cap below the DDR4 gain.
    for kind in ["weight", "all"] {
        for pair in GRID.windows(2) {
            let (lo, hi) = (
                find("comp-ddr4-2400", kind, pair[0]),
                find("comp-ddr4-2400", kind, pair[1]),
            );
            assert!(
                hi.uplift() > lo.uplift(),
                "comp-ddr4-2400 {kind}: uplift must grow with ratio \
                 ({:.3}x at {} vs {:.3}x at {})",
                lo.uplift(),
                pair[0],
                hi.uplift(),
                pair[1]
            );
            let (lo, hi) = (
                find("comp-lpddr5-6400", kind, pair[0]),
                find("comp-lpddr5-6400", kind, pair[1]),
            );
            assert!(
                hi.uplift() >= lo.uplift(),
                "comp-lpddr5-6400 {kind}: uplift must not shrink with ratio \
                 ({:.3}x at {} vs {:.3}x at {})",
                lo.uplift(),
                pair[0],
                hi.uplift(),
                pair[1]
            );
        }
    }
    let lp_gate = find("comp-lpddr5-6400", "measured", m.0);
    assert!(
        lp_gate.uplift() < uplift,
        "the faster part must saturate on the consume side: LPDDR5 {:.3}x vs DDR4 {uplift:.3}x",
        lp_gate.uplift()
    );
    // Where compression loses: the stock KV260's consumer is exactly
    // balanced against DDR4, so the shrunk memory time hides under the
    // compute floor and only the few-percent bandwidth headroom shows.
    let balanced = runs.last().expect("reference row");
    assert!(
        balanced.uplift() < MIN_UPLIFT && balanced.uplift() <= 1.05,
        "the balanced engine's compute floor must cap the gain near 1x, got {:.3}x",
        balanced.uplift()
    );
    println!(
        "gate point (measured ratios, DDR4-2400): {uplift:.3}x uplift, {:.3}x wire shrink \
         ({} -> {} + {} meta bytes); balanced reference {:.3}x",
        gate.wire_reduction(),
        gate.bytes_logical,
        gate.bytes_wire,
        gate.bytes_meta,
        balanced.uplift()
    );

    if let Some(path) = &json_path {
        std::fs::write(path, to_json(&runs)).expect("write compress_sweep JSON");
        eprintln!("compress_sweep: report written to {path}");
    }
}
