//! The performance-regression gate run by CI.
//!
//! Prices two fixed decode scenarios through the trace-driven engine and
//! diffs the unified metrics registry against the committed baseline
//! (`bench/baseline.json`):
//!
//! * **single-sequence** — LLaMA2-7B, one token at each context in
//!   64→512 (keys exactly as in pre-batching baselines; a batched engine
//!   at B = 1 must reproduce them byte-for-byte);
//! * **batch-of-4** — LLaMA2-7B with four 256-token KV provisions, one
//!   batched token at each context in 64→192 (keys prefixed `batch4.`).
//!   The scenario also hard-fails if weight-stream amortization at B = 4
//!   drops to ≤ 3× — the whole point of batching is paying the dense
//!   stream once, and that property must not silently regress;
//! * **serving** — a fixed 64-request bursty trace served by the
//!   continuous-batching server (TinyLlama-1.1B, four slots, DDR4-2400,
//!   keys prefixed `serve.`). Pins aggregate tokens/s, the latency
//!   percentiles, the rejection counters and every underlying byte
//!   count of the trace replay;
//! * **paged serving** — the `paged_sweep` saturating scenario: a
//!   48-request decode-heavy bursty trace against a KV budget of four
//!   worst-case sequences, served once with paged actual-growth
//!   admission and once with worst-case reservation (keys prefixed
//!   `paged.`). The scenario hard-fails if paged admission stops
//!   sustaining ≥ 1.5× the worst-case concurrent users at the same
//!   budget — the tentpole claim of the paged KV cache;
//! * **tiered** — flash-backed weight streaming (keys prefixed
//!   `tiered.`): a 13B-shape model at a covering budget (one layer
//!   short of all-resident, NVMe) must lose ≤ 5% tok/s vs all-resident;
//!   at a 3-layer thrash budget (LLaMA2-7B, eMMC) the schedule-aware
//!   prefetcher must sustain ≥ 2× the blind-LRU strawman's tok/s; and
//!   the 13B shape must decode with a physical DDR footprint within a
//!   real 4 GiB board. All three are hard gates, not just baseline
//!   diffs;
//! * **speculative** — the `spec_sweep` representative point (keys
//!   prefixed `spec.`): a TinyLlama-1.1B generation of 48 committed
//!   tokens through verify windows at α = 0.8, K = 4 on the
//!   lanes-widened KV260 (DDR4-2400), against the same generation
//!   decoded sequentially. The scenario hard-fails if the tok/s uplift
//!   drops below 1.5× — the tentpole claim of speculative decoding;
//! * **compression** — the `compress_sweep` entropy-measured point
//!   (keys prefixed `comp.`): a TinyLlama-1.1B generation priced
//!   through the inline DDR (de)compression stage at the measured
//!   stream ratios on the PL-overclocked KV260 (DDR4-2400), against a
//!   plain twin. The scenario hard-fails if the effective-bandwidth
//!   (tok/s) uplift drops below 1.3×, or if an all-identity compression
//!   stage is not byte-invisible (identical wall and identical metrics
//!   snapshot to the plain engine) — the tentpole claims of the
//!   compression-aware controller.
//!
//! Byte and cycle counters must match exactly (the simulation is
//! deterministic); derived rates (gauges) get ±2% to absorb intentional
//! re-tuning of unrelated constants.
//!
//! ```text
//! cargo run -p zllm-bench --bin perf_gate            # gate (exit 1 on drift)
//! cargo run -p zllm-bench --bin perf_gate -- --bless # re-record the baseline
//! cargo run -p zllm-bench --bin perf_gate -- --print # dump the snapshot JSON
//! cargo run -p zllm-bench --bin perf_gate -- --list  # print scenario names
//! cargo run -p zllm-bench --bin perf_gate -- --only tiered
//!                                            # gate one scenario's keys only
//! cargo run -p zllm-bench --bin perf_gate -- --host-metrics-json out.json
//!                                            # also write host wall/throughput
//! ```
//!
//! Exit codes: 0 = within tolerance, 1 = regression (table printed),
//! 2 = missing/unreadable baseline or bad usage.

use std::path::PathBuf;
use zllm_accel::telemetry::{DiffStatus, MetricKind, Snapshot};
use zllm_accel::{AccelConfig, DecodeEngine, DraftCost, ModelImage, SpecWindow, TierConfig};
use zllm_bench::{cli_value_arg, comp_accel, decode_heavy_traffic, print_table, spec_accel};
use zllm_ddr::{CompressionConfig, FlashConfig, StreamRatio};
use zllm_model::ModelConfig;
use zllm_quant::entropy::measured_stream_ratios;
use zllm_rng::StdRng;
use zllm_serve::{
    generate, ArrivalModel, PagedConfig, ServeReport, Server, ServerConfig, TrafficConfig,
};

/// Context lengths priced by the single-sequence scenario.
const CONTEXTS: [usize; 4] = [64, 128, 256, 512];

/// Concurrent sequences in the batched scenario.
const BATCH: usize = 4;
/// Per-sequence KV provisioning of the batched scenario (tokens).
const BATCH_CTX_CAPACITY: usize = 256;
/// Context lengths priced by the batched scenario.
const BATCH_CONTEXTS: [usize; 3] = [64, 128, 192];
/// Weight-stream amortization the B = 4 scenario must exceed.
const MIN_AMORTIZATION: f64 = 3.0;

/// Requests in the serving-scenario trace.
const SERVE_REQUESTS: usize = 64;
/// Serving trace seed.
const SERVE_SEED: u64 = 1187;
/// Serving offered load (requests per second, in bursts of 8).
const SERVE_RATE: f64 = 1.0;
/// Serving KV slots.
const SERVE_SLOTS: usize = 4;
/// Serving per-sequence context provisioning (tokens).
const SERVE_CTX_CAPACITY: usize = 256;

/// Requests in the paged-scenario trace.
const PAGED_REQUESTS: usize = 48;
/// Paged trace seed (same trace as `paged_sweep`'s default).
const PAGED_SEED: u64 = 42;
/// Paged offered load (requests per second, in bursts of 8) —
/// saturating for the tightened budget.
const PAGED_RATE: f64 = 8.0;
/// Paged KV slots (generous; the byte budget is what binds).
const PAGED_SLOTS: usize = 16;
/// Paged per-sequence context provisioning (tokens).
const PAGED_CTX_CAPACITY: usize = 128;
/// Paged KV page granularity (tokens).
const PAGED_PAGE_TOKENS: usize = 16;
/// Paged admission wait-queue capacity.
const PAGED_QUEUE_CAP: usize = 6;
/// The tightened paged-scenario budget holds this many worst-case
/// sequences.
const PAGED_WORST_CASE_SEQS: u64 = 4;
/// Concurrent-user uplift the paged scenario must sustain over
/// worst-case reservation.
const MIN_PAGED_UPLIFT: f64 = 1.5;

/// Tiered-scenario decode context.
const TIER_CTX: usize = 512;
/// Tokens per tiered run; the cache starts warm, so the second token is
/// cyclic steady state and its rate is what the gauges pin.
const TIER_TOKENS: usize = 2;
/// Thrash budget, in multiples of the largest 7B layer (capacity 3 of
/// 32 layers — deep capacity pressure, where eviction policy decides
/// how many flash bytes each token pays).
const TIER_THRASH_LAYERS: f64 = 3.4;
/// DDR a real KV260 carries.
const BOARD_BYTES: u64 = 4 << 30;
/// Schedule-aware tok/s over blind-LRU tok/s required at the thrash
/// budget.
const MIN_TIERED_UPLIFT: f64 = 2.0;
/// Largest tok/s loss vs all-resident tolerated at the covering budget
/// (one layer short of everything resident, NVMe link).
const MAX_COVER_LOSS: f64 = 0.05;

/// Speculative-scenario per-sequence KV provisioning (tokens).
const SPEC_CTX_CAPACITY: usize = 256;
/// Context the speculative generation starts from.
const SPEC_START_CTX: usize = 64;
/// Committed tokens per speculative run (both twins price exactly
/// these positions).
const SPEC_TOKENS: usize = 48;
/// Representative accept rate (matches `spec_sweep`'s gate point).
const SPEC_ALPHA: f64 = 0.8;
/// Representative draft window size.
const SPEC_K: usize = 4;
/// Acceptance-draw seed (same acceptance path as `spec_sweep`'s
/// default).
const SPEC_SEED: u64 = 9;
/// Flat draft cost per drafted token, nanoseconds.
const SPEC_DRAFT_NS: f64 = 2_000_000.0;
/// Tok/s uplift the speculative scenario must sustain over sequential
/// decode.
const MIN_SPEC_UPLIFT: f64 = 1.5;

/// Compression-scenario per-sequence KV provisioning (tokens).
const COMP_CTX_CAPACITY: usize = 256;
/// Context the compression generation starts from.
const COMP_START_CTX: usize = 64;
/// Tokens per compression run (all three twins price the same
/// positions).
const COMP_TOKENS: usize = 48;
/// Entropy-measurement seed (same streams as `compress_sweep`'s
/// default).
const COMP_SEED: u64 = 7;
/// Tok/s uplift the entropy-measured ratio point must sustain on
/// DDR4-2400.
const MIN_COMP_UPLIFT: f64 = 1.3;

/// Relative tolerance for derived rates (gauges).
const GAUGE_TOLERANCE: f64 = 0.02;

/// Scenario names accepted by `--only`, in run order.
const SCENARIOS: [&str; 7] = [
    "single", "batch4", "serve", "paged", "tiered", "spec", "comp",
];

/// The scenario a metric key belongs to, by prefix. Single-sequence
/// keys are the unprefixed remainder.
fn scenario_of(key: &str) -> &'static str {
    match key {
        k if k.starts_with("batch4.") => "batch4",
        k if k.starts_with("serve.") => "serve",
        k if k.starts_with("paged.") => "paged",
        k if k.starts_with("tiered.") => "tiered",
        k if k.starts_with("spec.") => "spec",
        k if k.starts_with("comp.") => "comp",
        _ => "single",
    }
}

fn baseline_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench/baseline.json"
    ))
}

/// Runs the single-sequence scenario and returns the registry snapshot.
fn scenario_snapshot() -> Snapshot {
    let mut engine = DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::llama2_7b(), 1024)
        .expect("LLaMA2-7B fits the 4GB device");
    for ctx in CONTEXTS {
        engine.decode_token(ctx);
    }
    engine.metrics_snapshot()
}

/// Runs the batch-of-4 scenario; returns its snapshot and the minimum
/// weight-stream amortization observed across the contexts.
fn batched_scenario_snapshot() -> (Snapshot, f64) {
    let mut engine = DecodeEngine::new_batched(
        AccelConfig::kv260(),
        &ModelConfig::llama2_7b(),
        BATCH_CTX_CAPACITY,
        BATCH,
    )
    .expect("LLaMA2-7B with 4 KV provisions fits the 4GB device");
    let mut min_amortization = f64::INFINITY;
    for ctx in BATCH_CONTEXTS {
        let r = engine.decode_token_batch(ctx, BATCH);
        min_amortization = min_amortization.min(r.weight_amortization);
    }
    (engine.metrics_snapshot(), min_amortization)
}

/// Replays the fixed serving trace through the continuous-batching
/// server; returns the engine snapshot (which includes the `serve.*`
/// registry namespace) and the report.
///
/// TinyLlama-1.1B keeps the replay a few seconds of host time: pricing
/// cost scales with bytes moved, and a trace is hundreds of steps where
/// the other scenarios price a handful.
fn serve_scenario_snapshot() -> (Snapshot, ServeReport) {
    let mut cfg = ServerConfig::continuous(SERVE_CTX_CAPACITY, SERVE_SLOTS);
    // Tight queue so the burst tail exercises the rejection path — the
    // gate pins the rejection counters, not just the happy path.
    cfg.queue_cap = 8;
    let mut server = Server::new(AccelConfig::kv260(), &ModelConfig::tiny_llama_1_1b(), cfg)
        .expect("TinyLlama-1.1B with 4 KV provisions fits the 4GB device");
    let trace = generate(&TrafficConfig {
        requests: SERVE_REQUESTS,
        seed: SERVE_SEED,
        arrivals: ArrivalModel::Bursty {
            rate_per_s: SERVE_RATE,
            burst: 8,
        },
        prompt_tokens: (16, 64),
        new_tokens: (4, 12),
        class_mix: [0.5, 0.3, 0.2],
        eos_early_fraction: 0.0,
    });
    let report = server.run(&trace);
    (server.engine().metrics_snapshot(), report)
}

/// Replays the paged saturating scenario twice — paged actual-growth
/// admission, then worst-case reservation — against the same
/// decode-heavy trace and tightened budget. Returns the paged engine
/// snapshot plus both reports.
fn paged_scenario_snapshot() -> (Snapshot, ServeReport, ServeReport) {
    let accel = AccelConfig::kv260();
    let model = ModelConfig::tiny_llama_1_1b();
    let trace = generate(&decode_heavy_traffic(
        PAGED_REQUESTS,
        PAGED_SEED,
        ArrivalModel::Bursty {
            rate_per_s: PAGED_RATE,
            burst: 8,
        },
    ));
    let cfg = decode_heavy_traffic(1, 0, ArrivalModel::Poisson { rate_per_s: 1.0 });
    let worst_tokens = cfg.prompt_tokens.1 + cfg.new_tokens.1;
    let base = || {
        let mut cfg = ServerConfig::continuous(PAGED_CTX_CAPACITY, PAGED_SLOTS);
        cfg.queue_cap = PAGED_QUEUE_CAP;
        cfg
    };
    let probe = Server::new(accel.clone(), &model, base())
        .expect("TinyLlama-1.1B with 16 KV provisions fits the 4GB device");
    let budget = PAGED_WORST_CASE_SEQS
        * probe
            .engine()
            .image()
            .page_rounded_request_bytes(worst_tokens, PAGED_PAGE_TOKENS);

    let mut cfg = base().paged(PagedConfig {
        page_tokens: PAGED_PAGE_TOKENS,
        ..PagedConfig::default()
    });
    cfg.kv_budget_bytes = Some(budget);
    let mut paged = Server::new(accel.clone(), &model, cfg).expect("image fits");
    let paged_report = paged.run(&trace);

    let mut wc_cfg = base();
    wc_cfg.kv_budget_bytes = Some(budget);
    let mut wc = Server::new(accel, &model, wc_cfg).expect("image fits");
    let wc_report = wc.run(&trace);

    (paged.engine().metrics_snapshot(), paged_report, wc_report)
}

/// What the tiered scenario measured, for the gates and the snapshot.
struct TieredOutcome {
    /// Engine snapshot of the thrash-budget schedule-aware run (the
    /// richest tier/flash counter set), merged under `tiered.`.
    snap: Snapshot,
    allres_tps: f64,
    cover_tps: f64,
    cover_loss: f64,
    cover_stall_ns: f64,
    aware_tps: f64,
    blind_tps: f64,
    uplift: f64,
    board_tps: f64,
    board_physical_bytes: u64,
}

/// Layer geometry of a model under the gate's accel format:
/// (largest single-layer bytes, total layer bytes, non-layer bytes).
fn layer_geometry(model: &ModelConfig) -> (u64, u64, u64) {
    let image =
        ModelImage::build_tiered(model, AccelConfig::kv260().format, TIER_CTX + TIER_TOKENS)
            .expect("13B-shape image fits a virtual map");
    let max = (0..model.n_layers)
        .map(|l| image.layer_weight_bytes(l))
        .max()
        .expect("model has layers");
    let total = (0..model.n_layers)
        .map(|l| image.layer_weight_bytes(l))
        .sum();
    (max, total, image.non_layer_resident_bytes())
}

/// One tiered decode run (`TIER_TOKENS` tokens at `TIER_CTX`); returns
/// the engine snapshot, steady-state tok/s, total tier stall and the
/// physical DDR footprint.
fn tiered_run(model: &ModelConfig, tier: TierConfig) -> (Snapshot, f64, f64, u64) {
    let mut engine =
        DecodeEngine::new_tiered(AccelConfig::kv260(), model, TIER_CTX + TIER_TOKENS, tier)
            .expect("tiered build fits a virtual map");
    let mut tps = 0.0;
    for _ in 0..TIER_TOKENS {
        tps = engine.decode_token(TIER_CTX).tokens_per_s;
    }
    let stall_ns = engine.tier_report().expect("tiered engine").stall_ns;
    let physical = engine.tier_physical_bytes().expect("tiered engine");
    (engine.metrics_snapshot(), tps, stall_ns, physical)
}

/// Runs the five tiered configurations: 13B all-resident reference, 13B
/// covering budget, 7B thrash budget under both policies, and 13B on
/// the layer budget a 4 GiB board leaves.
fn tiered_scenario() -> TieredOutcome {
    let m7 = ModelConfig::llama2_7b();
    let m13 = ModelConfig::llama2_13b();
    let (max13, total13, non_layer13) = layer_geometry(&m13);
    let (max7, _, _) = layer_geometry(&m7);

    let (_, allres_tps, _, _) = tiered_run(
        &m13,
        TierConfig::schedule_aware(FlashConfig::nvme_gen3(), total13),
    );
    // One layer short of all-resident: the minimum possible streaming
    // (two layers per token under the pin/stream plan), which the NVMe
    // link must fully hide behind decode.
    let (_, cover_tps, cover_stall_ns, _) = tiered_run(
        &m13,
        TierConfig::schedule_aware(FlashConfig::nvme_gen3(), total13 - max13 / 2),
    );
    let thrash_budget = (TIER_THRASH_LAYERS * max7 as f64) as u64;
    let (snap, aware_tps, _, _) = tiered_run(
        &m7,
        TierConfig::schedule_aware(FlashConfig::emmc_hs400(), thrash_budget),
    );
    let (_, blind_tps, _, _) = tiered_run(
        &m7,
        TierConfig::blind_lru(FlashConfig::emmc_hs400(), thrash_budget),
    );
    let (_, board_tps, _, board_physical_bytes) = tiered_run(
        &m13,
        TierConfig::schedule_aware(FlashConfig::nvme_gen3(), BOARD_BYTES - non_layer13),
    );

    TieredOutcome {
        snap,
        allres_tps,
        cover_tps,
        cover_loss: 1.0 - cover_tps / allres_tps,
        cover_stall_ns,
        aware_tps,
        blind_tps,
        uplift: aware_tps / blind_tps,
        board_tps,
        board_physical_bytes,
    }
}

/// Prices the speculative representative point twice — a TinyLlama-1.1B
/// generation of [`SPEC_TOKENS`] committed tokens through verify
/// windows at (α, K), then the same positions decoded sequentially on a
/// fresh twin engine. Returns the speculative engine's snapshot (which
/// includes the engine's own `spec.*` counters) and the tok/s uplift.
fn spec_scenario_snapshot() -> (Snapshot, f64) {
    let accel = spec_accel();
    let model = ModelConfig::tiny_llama_1_1b();
    let mut engine = DecodeEngine::new_batched(accel.clone(), &model, SPEC_CTX_CAPACITY, 1)
        .expect("TinyLlama-1.1B fits the 4GB device");
    let mut rng = StdRng::seed_from_u64(SPEC_SEED);
    let draft = DraftCost::FlatNs {
        ns_per_token: SPEC_DRAFT_NS,
    };
    let (mut ctx, mut committed) = (SPEC_START_CTX, 0usize);
    let mut spec_wall_ns = 0.0f64;
    while committed < SPEC_TOKENS {
        let remaining = SPEC_TOKENS - committed;
        let k_eff = SPEC_K.min(remaining - 1).min(SPEC_CTX_CAPACITY - 1 - ctx);
        let mut accepted = 0;
        for _ in 0..k_eff {
            if rng.gen_bool(SPEC_ALPHA) {
                accepted += 1;
            } else {
                break;
            }
        }
        let w = SpecWindow {
            slot: 0,
            ctx,
            drafted: k_eff,
            accepted,
        };
        spec_wall_ns += engine.decode_speculative(&[w], &draft).wall_ns;
        committed += accepted + 1;
        ctx += accepted + 1;
    }
    let mut base = DecodeEngine::new_batched(accel, &model, SPEC_CTX_CAPACITY, 1)
        .expect("TinyLlama-1.1B fits the 4GB device");
    let mut base_wall_ns = 0.0f64;
    for c in SPEC_START_CTX..SPEC_START_CTX + SPEC_TOKENS {
        base_wall_ns += base.decode_token(c).wall_ns;
    }
    (engine.metrics_snapshot(), base_wall_ns / spec_wall_ns)
}

/// Prices the compression representative point three ways on the
/// PL-overclocked KV260 (DDR4-2400): a plain engine, an engine with the
/// all-identity compression stage — whose wall and metrics snapshot
/// must match the plain engine byte for byte (the compression-off
/// gate) — and an engine at the entropy-measured stream ratios. Returns
/// the measured engine's snapshot (which includes its own `comp.*`
/// counters) and the tok/s uplift.
fn comp_scenario_snapshot() -> (Snapshot, f64) {
    let accel = comp_accel();
    let model = ModelConfig::tiny_llama_1_1b();
    let run = |mut eng: DecodeEngine| {
        let mut wall_ns = 0.0f64;
        for c in COMP_START_CTX..COMP_START_CTX + COMP_TOKENS {
            wall_ns += eng.decode_token(c).wall_ns;
        }
        (eng.metrics_snapshot(), wall_ns)
    };
    let (plain_snap, plain_wall) = run(DecodeEngine::new(accel.clone(), &model, COMP_CTX_CAPACITY)
        .expect("TinyLlama-1.1B fits the 4GB device"));
    let (identity_snap, identity_wall) = run(DecodeEngine::new_compressed(
        accel.clone(),
        &model,
        COMP_CTX_CAPACITY,
        CompressionConfig::identity(),
    )
    .expect("TinyLlama-1.1B fits the 4GB device"));
    // The compression-off gate: an all-identity stage must be invisible
    // — same wall time, same counters, same key set, byte for byte.
    if identity_wall.to_bits() != plain_wall.to_bits()
        || identity_snap.to_json() != plain_snap.to_json()
    {
        eprintln!(
            "perf gate FAILED: the all-identity compression stage is not byte-invisible \
             (wall {identity_wall} vs {plain_wall})"
        );
        std::process::exit(1);
    }
    let m = measured_stream_ratios(COMP_SEED);
    let cfg = CompressionConfig::with_ratios(
        StreamRatio::from_ratio(m.weight.achievable_ratio),
        StreamRatio::from_ratio(m.kv.achievable_ratio),
        StreamRatio::from_ratio(m.activation.achievable_ratio),
    );
    let (comp_snap, comp_wall) =
        run(
            DecodeEngine::new_compressed(accel, &model, COMP_CTX_CAPACITY, cfg)
                .expect("TinyLlama-1.1B fits the 4GB device"),
        );
    (comp_snap, plain_wall / comp_wall)
}

fn fmt_value(kind: MetricKind, v: Option<f64>) -> String {
    match (kind, v) {
        (_, None) => "—".to_owned(),
        (MetricKind::Counter, Some(v)) => format!("{}", v as u64),
        (MetricKind::Gauge, Some(v)) => format!("{v:.6}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    let print = args.iter().any(|a| a == "--print");
    if args.iter().any(|a| a == "--list") {
        for s in SCENARIOS {
            println!("{s}");
        }
        return;
    }
    let only = cli_value_arg("perf_gate", &args, "--only");
    if let Some(o) = &only {
        if !SCENARIOS.contains(&o.as_str()) {
            eprintln!("perf gate: unknown scenario {o:?}; --list prints the choices");
            std::process::exit(2);
        }
        if bless {
            eprintln!("perf gate: --bless records every scenario; drop --only");
            std::process::exit(2);
        }
    }
    let selected = |name: &str| only.as_deref().is_none_or(|o| o == name);
    let host_metrics_path = cli_value_arg("perf gate", &args, "--host-metrics-json");
    if host_metrics_path.is_some() && only.is_some() {
        eprintln!("perf gate: --host-metrics-json needs the full run; drop --only");
        std::process::exit(2);
    }

    let mut current = Snapshot::default();

    let mut single_host: Option<(f64, f64)> = None;
    if selected("single") {
        eprintln!("perf gate: pricing LLaMA2-7B decode at ctx {CONTEXTS:?} (deterministic)...");
        let host_start = std::time::Instant::now();
        current = scenario_snapshot();
        let host_seconds = host_start.elapsed().as_secs_f64();
        let simulated_gb = current.counter("decode.bytes").unwrap_or(0) as f64 / 1e9;
        let gb_per_host_s = simulated_gb / host_seconds.max(1e-9);
        // Host-side throughput: how fast the simulator itself ran.
        // Reported on stderr (the gated snapshot stays deterministic
        // and `--print` stdout stays pure JSON) so CI logs track the
        // speedup PR-over-PR.
        eprintln!(
            "perf gate host: {host_seconds:.3} s wall, {simulated_gb:.2} GB simulated, \
             {gb_per_host_s:.2} simulated-GB/host-s"
        );
        single_host = Some((host_seconds, simulated_gb));
    }

    let mut batch_stats: Option<(f64, f64, f64)> = None;
    if selected("batch4") {
        eprintln!(
            "perf gate: pricing LLaMA2-7B batch-of-{BATCH} decode at ctx {BATCH_CONTEXTS:?} \
             (deterministic)..."
        );
        let batch_start = std::time::Instant::now();
        let (batched, min_amortization) = batched_scenario_snapshot();
        let batch_host_seconds = batch_start.elapsed().as_secs_f64();
        let batch_simulated_gb = batched.counter("decode.bytes").unwrap_or(0) as f64 / 1e9;

        // The amortization property is gated directly, not just as a baseline
        // diff: > MIN_AMORTIZATION or the batched path has lost its purpose.
        if min_amortization <= MIN_AMORTIZATION {
            eprintln!(
                "perf gate FAILED: B = {BATCH} weight-stream amortization {min_amortization:.3}x \
                 is not above {MIN_AMORTIZATION:.1}x"
            );
            std::process::exit(1);
        }
        eprintln!(
            "perf gate: B = {BATCH} weight-stream amortization {min_amortization:.3}x (> \
             {MIN_AMORTIZATION:.1}x required)"
        );
        eprintln!(
            "perf gate host (batch): {batch_host_seconds:.3} s wall, {batch_simulated_gb:.2} GB \
             simulated"
        );

        // Merge the batched scenario under a `batch4.` prefix: the
        // single-sequence key set stays byte-identical to pre-batching
        // baselines, so any change to B = 1 pricing still diffs exactly.
        for (k, v) in &batched.counters {
            current.counters.insert(format!("batch{BATCH}.{k}"), *v);
        }
        for (k, v) in &batched.gauges {
            current.gauges.insert(format!("batch{BATCH}.{k}"), *v);
        }
        batch_stats = Some((batch_host_seconds, batch_simulated_gb, min_amortization));
    }

    let mut serve_stats: Option<(f64, f64, ServeReport)> = None;
    if selected("serve") {
        eprintln!(
            "perf gate: serving a {SERVE_REQUESTS}-request bursty trace at {SERVE_RATE} req/s \
             (TinyLlama-1.1B, continuous batching, deterministic)..."
        );
        let serve_start = std::time::Instant::now();
        let (serve_snap, serve_report) = serve_scenario_snapshot();
        let serve_host_seconds = serve_start.elapsed().as_secs_f64();
        let serve_simulated_gb = serve_snap.counter("decode.bytes").unwrap_or(0) as f64 / 1e9;
        eprintln!(
            "perf gate: serve scenario {:.2} tok/s aggregate, {} completed / {} offered, \
             {} rejected, p95 token latency {:.1} ms",
            serve_report.tokens_per_s,
            serve_report.completed,
            serve_report.offered,
            serve_report.rejected_queue_full + serve_report.rejected_infeasible,
            serve_report.token_p95_ms
        );

        // Merge the serving scenario under `serve.`. Its registry already
        // namespaces the server's own metrics as `serve.*`, so those keep
        // their names while the underlying engine metrics become
        // `serve.decode.*`, `serve.ddr.*`, ... — every byte of the trace
        // replay is pinned alongside the request-level rates.
        let serve_key = |k: &str| {
            if k.starts_with("serve.") {
                k.to_owned()
            } else {
                format!("serve.{k}")
            }
        };
        for (k, v) in &serve_snap.counters {
            current.counters.insert(serve_key(k), *v);
        }
        for (k, v) in &serve_snap.gauges {
            current.gauges.insert(serve_key(k), *v);
        }
        serve_stats = Some((serve_host_seconds, serve_simulated_gb, serve_report));
    }

    let mut paged_stats: Option<(f64, f64, ServeReport, ServeReport)> = None;
    if selected("paged") {
        eprintln!(
            "perf gate: paged-KV scenario — {PAGED_REQUESTS} decode-heavy requests at \
             {PAGED_RATE} req/s against a {PAGED_WORST_CASE_SEQS}-worst-case-sequence budget, \
             paged vs worst-case admission (deterministic)..."
        );
        let paged_start = std::time::Instant::now();
        let (paged_snap, paged_report, paged_wc_report) = paged_scenario_snapshot();
        let paged_host_seconds = paged_start.elapsed().as_secs_f64();
        let paged_uplift =
            paged_report.concurrent_peak as f64 / (paged_wc_report.concurrent_peak.max(1)) as f64;
        // The tentpole property is gated directly, not just as a baseline
        // diff: actual-growth charging must keep lifting concurrent users
        // per board at the same DDR budget.
        if paged_uplift < MIN_PAGED_UPLIFT {
            eprintln!(
                "perf gate FAILED: paged admission sustained {paged_uplift:.3}x the worst-case \
                 concurrent users ({} vs {}), below the required {MIN_PAGED_UPLIFT:.1}x",
                paged_report.concurrent_peak, paged_wc_report.concurrent_peak
            );
            std::process::exit(1);
        }
        eprintln!(
            "perf gate: paged admission {paged_uplift:.3}x concurrent users \
             ({} vs {}, >= {MIN_PAGED_UPLIFT:.1}x required), {} vs {} requests served",
            paged_report.concurrent_peak,
            paged_wc_report.concurrent_peak,
            paged_report.deadline_met,
            paged_wc_report.deadline_met
        );

        // Merge the paged scenario under `paged.`. The paged server's own
        // `serve.paged.*` keys (preemptions, concurrency) flatten to
        // `paged.*`, its request-level `serve.*` keys become
        // `paged.serve.*`, and the engine metrics become `paged.decode.*`,
        // `paged.ddr.*`, ... — including the page-table metadata bursts
        // that only exist in paged mode.
        let paged_key = |k: &str| {
            if let Some(rest) = k.strip_prefix("serve.paged.") {
                format!("paged.{rest}")
            } else {
                format!("paged.{k}")
            }
        };
        for (k, v) in &paged_snap.counters {
            current.counters.insert(paged_key(k), *v);
        }
        for (k, v) in &paged_snap.gauges {
            current.gauges.insert(paged_key(k), *v);
        }
        // The cross-run admission comparison, pinned explicitly: the
        // worst-case twin's concurrency and served work next to the paged
        // run's, plus the uplift the gate above enforces.
        current.counters.insert(
            "paged.admission.worstcase_concurrent_peak".to_owned(),
            paged_wc_report.concurrent_peak as u64,
        );
        current.counters.insert(
            "paged.admission.worstcase_deadline_met".to_owned(),
            paged_wc_report.deadline_met,
        );
        current
            .gauges
            .insert("paged.admission.uplift".to_owned(), paged_uplift);
        paged_stats = Some((
            paged_host_seconds,
            paged_uplift,
            paged_report,
            paged_wc_report,
        ));
    }

    let mut tiered_stats: Option<(f64, TieredOutcome)> = None;
    if selected("tiered") {
        eprintln!(
            "perf gate: tiered-weight scenario — 13B-shape covering + 4 GiB-board budgets \
             (NVMe) and 7B thrash budget (eMMC), schedule-aware vs blind LRU \
             (deterministic)..."
        );
        let tiered_start = std::time::Instant::now();
        let outcome = tiered_scenario();
        let tiered_host_seconds = tiered_start.elapsed().as_secs_f64();

        // The tentpole properties are gated directly, not just as
        // baseline diffs. First: at a covering budget the prefetcher
        // must hide the (minimum possible) streaming behind decode.
        if outcome.cover_loss > MAX_COVER_LOSS {
            eprintln!(
                "perf gate FAILED: covering-budget 13B decode lost {:.2}% tok/s vs \
                 all-resident ({:.3} vs {:.3}), above the allowed {:.0}%",
                outcome.cover_loss * 100.0,
                outcome.cover_tps,
                outcome.allres_tps,
                MAX_COVER_LOSS * 100.0
            );
            std::process::exit(1);
        }
        // Second: at the thrash budget the schedule-aware plan must
        // beat the blind strawman by the claimed factor.
        if outcome.uplift < MIN_TIERED_UPLIFT {
            eprintln!(
                "perf gate FAILED: schedule-aware prefetch sustained {:.3}x blind LRU at the \
                 thrash budget ({:.3} vs {:.3} tok/s), below the required {MIN_TIERED_UPLIFT:.1}x",
                outcome.uplift, outcome.aware_tps, outcome.blind_tps
            );
            std::process::exit(1);
        }
        // Third: the 13B shape must actually decode within a real
        // 4 GiB board's DDR.
        if outcome.board_physical_bytes > BOARD_BYTES || outcome.board_tps <= 0.0 {
            eprintln!(
                "perf gate FAILED: 13B-shape tiered decode needs {} physical bytes \
                 (board has {BOARD_BYTES}) at {:.3} tok/s",
                outcome.board_physical_bytes, outcome.board_tps
            );
            std::process::exit(1);
        }
        eprintln!(
            "perf gate: tiered covering loss {:.2}% (≤ {:.0}% required, stall {:.1} ms), \
             thrash uplift {:.2}x ({:.3} vs {:.3} tok/s, ≥ {MIN_TIERED_UPLIFT:.1}x required), \
             13B on 4 GiB board at {:.3} tok/s",
            outcome.cover_loss * 100.0,
            MAX_COVER_LOSS * 100.0,
            outcome.cover_stall_ns / 1e6,
            outcome.uplift,
            outcome.aware_tps,
            outcome.blind_tps,
            outcome.board_tps
        );

        // Merge the thrash-budget schedule-aware engine under `tiered.`
        // — the run with the richest tier/flash counter set — plus the
        // cross-run rates the gates above enforce.
        for (k, v) in &outcome.snap.counters {
            current.counters.insert(format!("tiered.{k}"), *v);
        }
        for (k, v) in &outcome.snap.gauges {
            current.gauges.insert(format!("tiered.{k}"), *v);
        }
        current.counters.insert(
            "tiered.board4g.physical_bytes".to_owned(),
            outcome.board_physical_bytes,
        );
        current
            .gauges
            .insert("tiered.allres.tokens_per_s".to_owned(), outcome.allres_tps);
        current
            .gauges
            .insert("tiered.cover.tokens_per_s".to_owned(), outcome.cover_tps);
        current
            .gauges
            .insert("tiered.cover.loss".to_owned(), outcome.cover_loss);
        current.gauges.insert(
            "tiered.thrash.aware.tokens_per_s".to_owned(),
            outcome.aware_tps,
        );
        current.gauges.insert(
            "tiered.thrash.blind.tokens_per_s".to_owned(),
            outcome.blind_tps,
        );
        current
            .gauges
            .insert("tiered.thrash.uplift".to_owned(), outcome.uplift);
        current
            .gauges
            .insert("tiered.board4g.tokens_per_s".to_owned(), outcome.board_tps);
        tiered_stats = Some((tiered_host_seconds, outcome));
    }

    let mut spec_stats: Option<(f64, f64)> = None;
    if selected("spec") {
        eprintln!(
            "perf gate: speculative scenario — {SPEC_TOKENS} committed tokens through verify \
             windows at alpha = {SPEC_ALPHA}, K = {SPEC_K} on the lanes-widened KV260, vs the \
             same positions decoded sequentially (deterministic)..."
        );
        let spec_start = std::time::Instant::now();
        let (spec_snap, spec_uplift) = spec_scenario_snapshot();
        let spec_host_seconds = spec_start.elapsed().as_secs_f64();
        // The tentpole property is gated directly, not just as a
        // baseline diff: one weight stream amortized across the
        // accepted prefix must keep multiplying bandwidth-bound tok/s.
        if spec_uplift < MIN_SPEC_UPLIFT {
            eprintln!(
                "perf gate FAILED: speculation sustained {spec_uplift:.3}x sequential decode at \
                 alpha = {SPEC_ALPHA}, K = {SPEC_K}, below the required {MIN_SPEC_UPLIFT:.1}x"
            );
            std::process::exit(1);
        }
        eprintln!(
            "perf gate: speculative decode {spec_uplift:.3}x sequential tok/s \
             (>= {MIN_SPEC_UPLIFT:.1}x required)"
        );

        // Merge the speculative scenario under `spec.`. The engine's own
        // speculation counters are already namespaced `spec.*` and keep
        // their names; the underlying engine metrics become
        // `spec.decode.*`, `spec.ddr.*`, ... — including the rollback
        // metadata bursts that only exist on speculative steps.
        let spec_key = |k: &str| {
            if k.starts_with("spec.") {
                k.to_owned()
            } else {
                format!("spec.{k}")
            }
        };
        for (k, v) in &spec_snap.counters {
            current.counters.insert(spec_key(k), *v);
        }
        for (k, v) in &spec_snap.gauges {
            current.gauges.insert(spec_key(k), *v);
        }
        // The cross-run uplift the gate above enforces, pinned
        // explicitly.
        current.gauges.insert("spec.uplift".to_owned(), spec_uplift);
        spec_stats = Some((spec_host_seconds, spec_uplift));
    }

    let mut comp_stats: Option<(f64, f64)> = None;
    if selected("comp") {
        eprintln!(
            "perf gate: compression scenario — {COMP_TOKENS} tokens through the inline DDR \
             (de)compression stage at entropy-measured ratios on the PL-overclocked KV260, vs \
             the plain twin, plus the all-identity byte-invisibility check (deterministic)..."
        );
        let comp_start = std::time::Instant::now();
        let (comp_snap, comp_uplift) = comp_scenario_snapshot();
        let comp_host_seconds = comp_start.elapsed().as_secs_f64();
        // The tentpole property is gated directly, not just as a
        // baseline diff: bursts crossing the bus at compressed size
        // must keep multiplying bandwidth-bound tok/s.
        if comp_uplift < MIN_COMP_UPLIFT {
            eprintln!(
                "perf gate FAILED: measured-ratio compression sustained {comp_uplift:.3}x the \
                 plain engine's tok/s, below the required {MIN_COMP_UPLIFT:.1}x"
            );
            std::process::exit(1);
        }
        eprintln!(
            "perf gate: compressed decode {comp_uplift:.3}x plain tok/s \
             (>= {MIN_COMP_UPLIFT:.1}x required)"
        );

        // Merge the compression scenario under `comp.`. The engine's
        // own compression counters are already namespaced `comp.*` and
        // keep their names; the underlying engine metrics become
        // `comp.decode.*`, `comp.ddr.*`, ... — including the page-map
        // metadata bursts that only exist with compression on.
        let comp_key = |k: &str| {
            if k.starts_with("comp.") {
                k.to_owned()
            } else {
                format!("comp.{k}")
            }
        };
        for (k, v) in &comp_snap.counters {
            current.counters.insert(comp_key(k), *v);
        }
        for (k, v) in &comp_snap.gauges {
            current.gauges.insert(comp_key(k), *v);
        }
        // The cross-run uplift the gate above enforces, pinned
        // explicitly.
        current.gauges.insert("comp.uplift".to_owned(), comp_uplift);
        comp_stats = Some((comp_host_seconds, comp_uplift));
    }

    // Machine-readable host metrics for CI artifacts. These are wall-clock
    // figures of the *host*, not part of the gated (deterministic) snapshot.
    // `--only` is refused above, so every scenario ran on this path.
    if let Some(path) = &host_metrics_path {
        let (host_seconds, simulated_gb) = single_host.expect("single ran");
        let gb_per_host_s = simulated_gb / host_seconds.max(1e-9);
        let (batch_host_seconds, batch_simulated_gb, min_amortization) =
            batch_stats.expect("batch4 ran");
        let (serve_host_seconds, serve_simulated_gb, serve_report) =
            serve_stats.as_ref().expect("serve ran");
        let (paged_host_seconds, paged_uplift, paged_report, paged_wc_report) =
            paged_stats.as_ref().expect("paged ran");
        let (tiered_host_seconds, tiered) = tiered_stats.as_ref().expect("tiered ran");
        let (spec_host_seconds, spec_uplift) = spec_stats.expect("spec ran");
        let (comp_host_seconds, comp_uplift) = comp_stats.expect("comp ran");
        let json = format!(
            "{{\n  \"wall_seconds\": {host_seconds:.6},\n  \
             \"simulated_gb\": {simulated_gb:.6},\n  \
             \"simulated_gb_per_host_s\": {gb_per_host_s:.6},\n  \
             \"batch_wall_seconds\": {batch_host_seconds:.6},\n  \
             \"batch_simulated_gb\": {batch_simulated_gb:.6},\n  \
             \"batch_weight_amortization\": {min_amortization:.6},\n  \
             \"serve_wall_seconds\": {serve_host_seconds:.6},\n  \
             \"serve_simulated_gb\": {serve_simulated_gb:.6},\n  \
             \"serve_tokens_per_s\": {:.6},\n  \
             \"serve_completed\": {},\n  \
             \"serve_rejected\": {},\n  \
             \"paged_wall_seconds\": {paged_host_seconds:.6},\n  \
             \"paged_concurrent_peak\": {},\n  \
             \"paged_worstcase_concurrent_peak\": {},\n  \
             \"paged_uplift\": {paged_uplift:.6},\n  \
             \"tiered_wall_seconds\": {tiered_host_seconds:.6},\n  \
             \"tiered_cover_loss\": {:.6},\n  \
             \"tiered_thrash_uplift\": {:.6},\n  \
             \"tiered_board4g_tokens_per_s\": {:.6},\n  \
             \"spec_wall_seconds\": {spec_host_seconds:.6},\n  \
             \"spec_uplift\": {spec_uplift:.6},\n  \
             \"comp_wall_seconds\": {comp_host_seconds:.6},\n  \
             \"comp_uplift\": {comp_uplift:.6}\n}}\n",
            serve_report.tokens_per_s,
            serve_report.completed,
            serve_report.rejected_queue_full + serve_report.rejected_infeasible,
            paged_report.concurrent_peak,
            paged_wc_report.concurrent_peak,
            tiered.cover_loss,
            tiered.uplift,
            tiered.board_tps,
        );
        std::fs::write(path, json).expect("write host metrics JSON");
        eprintln!("perf gate host: metrics written to {path}");
    }

    if print {
        print!("{}", current.to_json());
        return;
    }

    let path = baseline_path();
    if bless {
        std::fs::write(&path, current.to_json()).expect("write baseline");
        eprintln!("perf gate: baseline re-blessed at {}", path.display());
        return;
    }

    let mut baseline = match std::fs::read_to_string(&path) {
        Ok(text) => match Snapshot::from_json(&text) {
            Ok(snap) => snap,
            Err(err) => {
                eprintln!("perf gate: baseline {} is malformed: {err}", path.display());
                std::process::exit(2);
            }
        },
        Err(err) => {
            eprintln!(
                "perf gate: cannot read baseline {}: {err}\n\
                 run `cargo run -p zllm-bench --bin perf_gate -- --bless` to record one",
                path.display()
            );
            std::process::exit(2);
        }
    };

    // Under `--only`, gate just that scenario's slice of the baseline;
    // `current` already holds only those keys. A valid scenario name
    // whose slice of the baseline is *empty* would gate zero keys and
    // pass vacuously (a baseline recorded before the scenario existed),
    // so that is a usage error, not a pass.
    if let Some(o) = only.as_deref() {
        baseline.counters.retain(|k, _| scenario_of(k) == o);
        baseline.gauges.retain(|k, _| scenario_of(k) == o);
        if baseline.counters.is_empty() && baseline.gauges.is_empty() {
            eprintln!(
                "perf gate: baseline {} holds no {o:?} keys — gating it would vacuously pass; \
                 re-bless the full baseline first",
                path.display()
            );
            std::process::exit(2);
        }
    }

    // Exact match for counters (byte/cycle counts of a deterministic
    // simulation); ±2% for derived rates.
    let is_gauge: std::collections::BTreeSet<&str> = baseline
        .gauges
        .keys()
        .map(String::as_str)
        .chain(current.gauges.keys().map(String::as_str))
        .collect();
    let report = baseline.compare(&current, |name| {
        if is_gauge.contains(name) {
            GAUGE_TOLERANCE
        } else {
            0.0
        }
    });

    let rows: Vec<Vec<String>> = report
        .diffs
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                d.kind.to_string(),
                fmt_value(d.kind, d.baseline),
                fmt_value(d.kind, d.current),
                match (d.kind, d.baseline, d.current) {
                    (MetricKind::Counter, Some(b), Some(c)) => {
                        format!("{:+}", c as i128 - b as i128)
                    }
                    (MetricKind::Gauge, Some(_), Some(_)) => {
                        format!("{:+.4}%", d.rel_delta * 100.0)
                    }
                    _ => "—".to_owned(),
                },
                format!("{:.1}%", d.tolerance * 100.0),
                match d.status {
                    DiffStatus::Ok => "ok".to_owned(),
                    DiffStatus::Regressed => "REGRESSED".to_owned(),
                    DiffStatus::Missing => "MISSING".to_owned(),
                    DiffStatus::NotInBaseline => "NOT IN BASELINE".to_owned(),
                },
            ]
        })
        .collect();
    print_table(
        &[
            "metric", "kind", "baseline", "current", "Δ", "tol", "status",
        ],
        &rows,
    );

    if report.passed() {
        println!(
            "\nperf gate OK: {} metrics within tolerance",
            report.diffs.len()
        );
    } else {
        let failures: Vec<&str> = report.failures().map(|d| d.name.as_str()).collect();
        println!(
            "\nperf gate FAILED: {}/{} metrics out of tolerance: {}",
            failures.len(),
            report.diffs.len(),
            failures.join(", ")
        );
        println!(
            "if the change is intentional, re-bless with \
             `cargo run -p zllm-bench --bin perf_gate -- --bless` and commit \
             bench/baseline.json"
        );
        std::process::exit(1);
    }
}
