//! Published results the paper compares against (its own citations).
//!
//! Every *measured* value here is copied from the paper's Tables II/III
//! (which in turn cite DFX, FlightLLM, EdgeLLM, SECDA-LLM, LlamaF, and the
//! llama.cpp / TinyChat / NanoLLM reports). Theoretical columns are *not*
//! stored — [`crate::roofline`] recomputes them.

use crate::platform::{self, Platform};
use zllm_model::memory::WeightPrecision;
use zllm_model::ModelConfig;

/// Which workload a row ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// GPT-2 XL (DFX).
    Gpt2Xl,
    /// LLaMA2-7B.
    Llama2_7b,
    /// ChatGLM-6B (EdgeLLM).
    ChatGlm6b,
    /// TinyLlama-1.1B (SECDA-LLM, LlamaF).
    TinyLlama,
}

impl Workload {
    /// The model geometry for roofline computation.
    pub fn config(&self) -> ModelConfig {
        match self {
            Workload::Gpt2Xl => ModelConfig::gpt2_xl_1_5b(),
            Workload::Llama2_7b => ModelConfig::llama2_7b(),
            Workload::ChatGlm6b => ModelConfig::chatglm2_6b(),
            Workload::TinyLlama => ModelConfig::tiny_llama_1_1b(),
        }
    }
}

/// FPGA resource usage as reported (for the display columns of Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaResources {
    /// LUTs (thousands).
    pub lut_k: f64,
    /// Flip-flops (thousands).
    pub ff_k: f64,
    /// Block RAMs.
    pub bram: f64,
    /// DSP slices.
    pub dsp: f64,
    /// Clock in MHz.
    pub mhz: f64,
    /// Power in watts.
    pub watts: f64,
}

/// One prior FPGA work (a row of Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaWork {
    /// Work name.
    pub name: &'static str,
    /// Platform.
    pub platform: Platform,
    /// Reported implementation numbers.
    pub resources: FpgaResources,
    /// Workload model.
    pub workload: Workload,
    /// Weight precision used for decoding traffic.
    pub precision: WeightPrecision,
    /// Precision label as Table II prints it.
    pub precision_label: &'static str,
    /// Reported decoding speed in token/s.
    pub reported_tokens_per_s: f64,
}

/// The prior FPGA works of Table II (excluding "Ours").
pub fn fpga_works() -> Vec<FpgaWork> {
    vec![
        FpgaWork {
            name: "DFX",
            platform: platform::U280,
            resources: FpgaResources {
                lut_k: 520.0,
                ff_k: 1107.0,
                bram: 1192.0,
                dsp: 3533.0,
                mhz: 200.0,
                watts: 45.0,
            },
            workload: Workload::Gpt2Xl,
            precision: WeightPrecision::W16,
            precision_label: "W16",
            // Single-FPGA figure extrapolated by the paper from the 345M
            // result.
            reported_tokens_per_s: 21.0,
        },
        FpgaWork {
            name: "FlightLLM",
            platform: platform::U280,
            resources: FpgaResources {
                lut_k: 574.0,
                ff_k: 943.0,
                bram: 1252.0,
                dsp: 6345.0,
                mhz: 225.0,
                watts: 45.0,
            },
            workload: Workload::Llama2_7b,
            // SparseGPT yields ~3.5 effective bits; the paper treats it as
            // 4-bit-equivalent for the theoretical column.
            precision: WeightPrecision::Effective(4.0),
            precision_label: "W4",
            reported_tokens_per_s: 55.0,
        },
        FpgaWork {
            name: "EdgeLLM",
            platform: platform::U280,
            resources: FpgaResources {
                lut_k: 967.0,
                ff_k: 607.0,
                bram: 1734.0,
                dsp: 5587.0,
                mhz: 250.0,
                watts: 50.7,
            },
            workload: Workload::ChatGlm6b,
            precision: WeightPrecision::Effective(4.0),
            precision_label: "W4",
            reported_tokens_per_s: 75.0,
        },
        FpgaWork {
            name: "SECDA",
            platform: platform::PYNQ_Z2,
            resources: FpgaResources {
                lut_k: f64::NAN,
                ff_k: f64::NAN,
                bram: f64::NAN,
                dsp: f64::NAN,
                mhz: f64::NAN,
                watts: f64::NAN,
            },
            workload: Workload::TinyLlama,
            precision: WeightPrecision::Effective(4.0),
            precision_label: "W4",
            reported_tokens_per_s: 0.58,
        },
        FpgaWork {
            name: "LlamaF",
            platform: platform::ZCU102,
            resources: FpgaResources {
                lut_k: 164.0,
                ff_k: 171.0,
                bram: 223.0,
                dsp: 528.0,
                mhz: 205.0,
                watts: 5.08,
            },
            workload: Workload::TinyLlama,
            precision: WeightPrecision::W8,
            precision_label: "W8",
            reported_tokens_per_s: 1.5,
        },
    ]
}

/// One embedded CPU/GPU row of Table III (4-bit LLaMA2-7B everywhere).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeDeviceRow {
    /// Platform.
    pub platform: Platform,
    /// Inference framework.
    pub framework: &'static str,
    /// Reported decoding speed in token/s.
    pub reported_tokens_per_s: f64,
}

/// The embedded CPU/GPU rows of Table III (excluding "Ours").
pub fn edge_device_rows() -> Vec<EdgeDeviceRow> {
    vec![
        EdgeDeviceRow {
            platform: platform::PI_4B,
            framework: "llama.cpp",
            reported_tokens_per_s: 0.11,
        },
        EdgeDeviceRow {
            platform: platform::JETSON_AGX_ORIN,
            framework: "llama.cpp",
            reported_tokens_per_s: 4.49,
        },
        EdgeDeviceRow {
            platform: platform::JETSON_AGX_ORIN,
            framework: "TinyChat",
            reported_tokens_per_s: 33.0,
        },
        EdgeDeviceRow {
            platform: platform::JETSON_AGX_ORIN,
            framework: "NanoLLM",
            reported_tokens_per_s: 47.1,
        },
        EdgeDeviceRow {
            platform: platform::JETSON_ORIN_NANO,
            framework: "NanoLLM",
            reported_tokens_per_s: 16.4,
        },
    ]
}

/// The paper's own reported numbers (used to cross-check our simulation).
pub mod ours_reported {
    /// Reported decoding speed.
    pub const TOKENS_PER_S: f64 = 4.9;
    /// Reported theoretical peak.
    pub const THEORETICAL_TOKENS_PER_S: f64 = 5.8;
    /// Reported bandwidth utilization.
    pub const UTILIZATION: f64 = 0.845;
    /// Reported power.
    pub const WATTS: f64 = 6.57;
    /// Reported capacity occupancy.
    pub const CAPACITY_OCCUPANCY: f64 = 0.933;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_rows_present() {
        let works = fpga_works();
        assert_eq!(works.len(), 5);
        let names: Vec<&str> = works.iter().map(|w| w.name).collect();
        assert_eq!(names, ["DFX", "FlightLLM", "EdgeLLM", "SECDA", "LlamaF"]);
    }

    #[test]
    fn table_iii_rows_present() {
        let rows = edge_device_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].framework, "llama.cpp");
        assert_eq!(rows[4].platform.name, "JetsonOrinNano");
    }

    #[test]
    fn workloads_resolve_to_configs() {
        assert_eq!(Workload::Llama2_7b.config().n_layers, 32);
        assert_eq!(Workload::TinyLlama.config().n_layers, 22);
        assert_eq!(Workload::Gpt2Xl.config().n_layers, 48);
        assert_eq!(Workload::ChatGlm6b.config().n_layers, 28);
    }
}
