//! Hardware platforms appearing in the paper's comparisons.

/// Device class, as the paper's tables group rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformClass {
    /// Server FPGA with HBM (Alveo U280, VCU128).
    CloudFpgaHbm,
    /// Embedded FPGA with DDR.
    EdgeFpgaDdr,
    /// Embedded CPU.
    EdgeCpu,
    /// Embedded GPU.
    EdgeGpu,
}

/// One hardware platform with the memory bandwidth that bounds its
/// single-batch decoding speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Device name as the tables print it.
    pub name: &'static str,
    /// Memory bandwidth in GB/s (decimal, as vendors quote it).
    pub bandwidth_gbps: f64,
    /// Device class.
    pub class: PlatformClass,
}

/// Xilinx Alveo U280 (460 GB/s HBM2).
pub const U280: Platform = Platform {
    name: "U280",
    bandwidth_gbps: 460.0,
    class: PlatformClass::CloudFpgaHbm,
};
/// Pynq-Z2 (16-bit DDR3-533: ~2.1 GB/s).
pub const PYNQ_Z2: Platform = Platform {
    name: "PYNQ",
    bandwidth_gbps: 2.1,
    class: PlatformClass::EdgeFpgaDdr,
};
/// ZCU102 (64-bit DDR4-2666: ~21.3 GB/s).
pub const ZCU102: Platform = Platform {
    name: "ZCU102",
    bandwidth_gbps: 21.3,
    class: PlatformClass::EdgeFpgaDdr,
};
/// Kria KV260 (64-bit DDR4-2400: 19.2 GB/s).
pub const KV260: Platform = Platform {
    name: "KV260",
    bandwidth_gbps: 19.2,
    class: PlatformClass::EdgeFpgaDdr,
};
/// Raspberry Pi 4B 8 GB (32-bit LPDDR4-3200: 12.8 GB/s).
pub const PI_4B: Platform = Platform {
    name: "Pi-4B 8GB",
    bandwidth_gbps: 12.8,
    class: PlatformClass::EdgeCpu,
};
/// Jetson AGX Orin (256-bit LPDDR5: 204.8 GB/s).
pub const JETSON_AGX_ORIN: Platform = Platform {
    name: "JetsonAGXOrin",
    bandwidth_gbps: 204.8,
    class: PlatformClass::EdgeGpu,
};
/// Jetson Orin Nano (128-bit LPDDR5: 68 GB/s).
pub const JETSON_ORIN_NANO: Platform = Platform {
    name: "JetsonOrinNano",
    bandwidth_gbps: 68.0,
    class: PlatformClass::EdgeGpu,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidths_match_table_values() {
        assert_eq!(U280.bandwidth_gbps, 460.0);
        assert_eq!(KV260.bandwidth_gbps, 19.2);
        assert_eq!(PI_4B.bandwidth_gbps, 12.8);
        assert_eq!(JETSON_AGX_ORIN.bandwidth_gbps, 204.8);
        assert_eq!(JETSON_ORIN_NANO.bandwidth_gbps, 68.0);
        assert_eq!(ZCU102.bandwidth_gbps, 21.3);
        assert_eq!(PYNQ_Z2.bandwidth_gbps, 2.1);
    }

    #[test]
    fn classes_partition_the_tables() {
        assert_eq!(U280.class, PlatformClass::CloudFpgaHbm);
        assert_eq!(KV260.class, PlatformClass::EdgeFpgaDdr);
        assert_eq!(PI_4B.class, PlatformClass::EdgeCpu);
        assert_eq!(JETSON_AGX_ORIN.class, PlatformClass::EdgeGpu);
    }
}
