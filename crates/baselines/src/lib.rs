//! Baseline platforms and published results for the comparison tables.
//!
//! The paper's Tables II and III compare the KV260 accelerator against
//! cloud FPGAs (DFX, FlightLLM, EdgeLLM), edge FPGAs (SECDA-LLM, LlamaF)
//! and embedded CPUs/GPUs (Raspberry Pi, Jetson AGX Orin / Orin Nano under
//! llama.cpp, TinyChat and NanoLLM). The paper itself sources the measured
//! numbers from those works' publications; this crate encodes them as data
//! ([`published`]) and recomputes every *theoretical* column from first
//! principles ([`roofline`]) so the utilization percentages are derived,
//! not restated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod platform;
pub mod published;
pub mod roofline;
pub mod tables;

pub use platform::Platform;
pub use tables::{table2_rows, table3_rows, OursResult, Table2Row, Table3Row};
