//! First-principles recomputation of every theoretical column.

use crate::published::{EdgeDeviceRow, FpgaWork};
use zllm_model::memory::{streamed_weight_bytes, weight_roofline_tokens_per_s, WeightPrecision};
use zllm_model::ModelConfig;

/// Theoretical peak decoding speed of a prior FPGA work: its platform's
/// bandwidth over its workload's streamed weight bytes at its precision.
pub fn fpga_theoretical_tokens_per_s(work: &FpgaWork) -> f64 {
    weight_roofline_tokens_per_s(
        &work.workload.config(),
        work.precision,
        work.platform.bandwidth_gbps,
    )
}

/// Theoretical peak of a Table III row (4-bit LLaMA2-7B everywhere).
pub fn edge_theoretical_tokens_per_s(row: &EdgeDeviceRow) -> f64 {
    weight_roofline_tokens_per_s(
        &ModelConfig::llama2_7b(),
        WeightPrecision::Effective(4.0),
        row.platform.bandwidth_gbps,
    )
}

/// Bandwidth utilization: reported over theoretical.
pub fn utilization(reported: f64, theoretical: f64) -> f64 {
    reported / theoretical
}

/// Bytes per decoded token of a workload at a precision (for display).
pub fn bytes_per_token(cfg: &ModelConfig, precision: WeightPrecision) -> f64 {
    streamed_weight_bytes(cfg, precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::published::{edge_device_rows, fpga_works};

    /// The paper's own theoretical column, for cross-checking.
    fn paper_theoretical(name: &str) -> f64 {
        match name {
            "DFX" => 153.0,
            "FlightLLM" => 131.0,
            "EdgeLLM" => 153.0,
            "SECDA" => 3.8,
            "LlamaF" => 19.3,
            other => panic!("unknown work {other}"),
        }
    }

    #[test]
    fn fpga_rooflines_match_paper_within_ten_percent() {
        for work in fpga_works() {
            let ours = fpga_theoretical_tokens_per_s(&work);
            let paper = paper_theoretical(work.name);
            let rel = (ours - paper).abs() / paper;
            assert!(
                rel < 0.10,
                "{}: recomputed {ours:.1} vs paper {paper} ({:.1}% off)",
                work.name,
                rel * 100.0
            );
        }
    }

    #[test]
    fn edge_rooflines_match_paper_within_five_percent() {
        // Paper's Table III theoretical column: 3.9, 62.5, 62.5, 62.5, 20.7.
        let paper = [3.9, 62.5, 62.5, 62.5, 20.7];
        for (row, want) in edge_device_rows().iter().zip(paper) {
            let got = edge_theoretical_tokens_per_s(row);
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.05,
                "{} {}: recomputed {got:.1} vs paper {want}",
                row.platform.name,
                row.framework
            );
        }
    }

    #[test]
    fn utilizations_match_papers_percentages() {
        // Spot-check the paper's Util. % column from our recomputed
        // theoreticals: LlamaF 7.7%, SECDA 15.2%, NanoLLM Orin Nano 79.2%.
        let works = fpga_works();
        let llamaf = works.iter().find(|w| w.name == "LlamaF").expect("present");
        let u = utilization(
            llamaf.reported_tokens_per_s,
            fpga_theoretical_tokens_per_s(llamaf),
        );
        assert!((0.06..0.09).contains(&u), "LlamaF util {u}");

        let secda = works.iter().find(|w| w.name == "SECDA").expect("present");
        let u = utilization(
            secda.reported_tokens_per_s,
            fpga_theoretical_tokens_per_s(secda),
        );
        assert!((0.12..0.18).contains(&u), "SECDA util {u}");

        let nano = &edge_device_rows()[4];
        let u = utilization(
            nano.reported_tokens_per_s,
            edge_theoretical_tokens_per_s(nano),
        );
        assert!((0.75..0.84).contains(&u), "Orin Nano util {u}");
    }

    #[test]
    fn bytes_per_token_scale_with_precision() {
        let cfg = ModelConfig::llama2_7b();
        let b4 = bytes_per_token(&cfg, WeightPrecision::Effective(4.0));
        let b16 = bytes_per_token(&cfg, WeightPrecision::W16);
        assert!((b16 / b4 - 4.0).abs() < 0.01);
    }
}
