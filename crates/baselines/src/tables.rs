//! Assembled comparison tables (the rows of Tables II and III).

use crate::platform;
use crate::published::{edge_device_rows, fpga_works, ours_reported, Workload};
use crate::roofline::{edge_theoretical_tokens_per_s, fpga_theoretical_tokens_per_s, utilization};
use zllm_accel::power::estimate_power;
use zllm_accel::resources::{estimate, kv260_device};
use zllm_accel::AccelConfig;
use zllm_model::memory::{weight_roofline_tokens_per_s, WeightPrecision};

/// This repository's simulated result for the "Ours" rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OursResult {
    /// Simulated decoding speed in token/s.
    pub tokens_per_s: f64,
}

impl OursResult {
    /// Falls back to the paper's reported measurement (for building the
    /// tables without running the trace simulation).
    pub fn paper_reported() -> OursResult {
        OursResult {
            tokens_per_s: ours_reported::TOKENS_PER_S,
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Work name.
    pub name: String,
    /// Device name.
    pub device: &'static str,
    /// Reported LUTs (thousands; NaN when unpublished).
    pub lut_k: f64,
    /// Reported FFs (thousands).
    pub ff_k: f64,
    /// Reported BRAMs.
    pub bram: f64,
    /// Reported DSPs.
    pub dsp: f64,
    /// Clock MHz.
    pub mhz: f64,
    /// Power in watts.
    pub watts: f64,
    /// Bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Workload name.
    pub task: String,
    /// Precision label.
    pub precision: &'static str,
    /// Theoretical peak token/s (recomputed).
    pub theoretical: f64,
    /// Measured token/s.
    pub measured: f64,
    /// Bandwidth utilization.
    pub utilization: f64,
}

/// Builds Table II: prior FPGA works plus the "Ours" row.
///
/// Pass the simulated result from the trace engine, or
/// [`OursResult::paper_reported`] to print the paper's own measurement.
pub fn table2_rows(ours: OursResult) -> Vec<Table2Row> {
    let mut rows: Vec<Table2Row> = fpga_works()
        .iter()
        .map(|w| {
            let theoretical = fpga_theoretical_tokens_per_s(w);
            Table2Row {
                name: w.name.to_owned(),
                device: w.platform.name,
                lut_k: w.resources.lut_k,
                ff_k: w.resources.ff_k,
                bram: w.resources.bram,
                dsp: w.resources.dsp,
                mhz: w.resources.mhz,
                watts: w.resources.watts,
                bandwidth_gbps: w.platform.bandwidth_gbps,
                task: w.workload.config().name,
                precision: w.precision_label,
                theoretical,
                measured: w.reported_tokens_per_s,
                utilization: utilization(w.reported_tokens_per_s, theoretical),
            }
        })
        .collect();

    // Ours: resources/power come from our own estimators, the theoretical
    // column from the roofline, the measured column from the simulation.
    let accel = AccelConfig::kv260();
    let est = estimate(&accel).total;
    let power = estimate_power(&accel).total();
    let theoretical = weight_roofline_tokens_per_s(
        &Workload::Llama2_7b.config(),
        WeightPrecision::Effective(4.0),
        platform::KV260.bandwidth_gbps,
    );
    rows.push(Table2Row {
        name: "Ours".to_owned(),
        device: platform::KV260.name,
        lut_k: est.lut / 1e3,
        ff_k: est.ff / 1e3,
        bram: est.bram,
        dsp: est.dsp,
        mhz: accel.freq_mhz,
        watts: power,
        bandwidth_gbps: platform::KV260.bandwidth_gbps,
        task: Workload::Llama2_7b.config().name,
        precision: "W4",
        theoretical,
        measured: ours.tokens_per_s,
        utilization: utilization(ours.tokens_per_s, theoretical),
    });
    rows
}

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Device name.
    pub device: &'static str,
    /// Bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Framework name.
    pub framework: String,
    /// Theoretical peak token/s.
    pub theoretical: f64,
    /// Measured token/s.
    pub measured: f64,
    /// Bandwidth utilization.
    pub utilization: f64,
}

/// Builds Table III: embedded CPU/GPU rows plus the "Ours" row.
pub fn table3_rows(ours: OursResult) -> Vec<Table3Row> {
    let mut rows: Vec<Table3Row> = edge_device_rows()
        .iter()
        .map(|r| {
            let theoretical = edge_theoretical_tokens_per_s(r);
            Table3Row {
                device: r.platform.name,
                bandwidth_gbps: r.platform.bandwidth_gbps,
                framework: r.framework.to_owned(),
                theoretical,
                measured: r.reported_tokens_per_s,
                utilization: utilization(r.reported_tokens_per_s, theoretical),
            }
        })
        .collect();
    let theoretical = weight_roofline_tokens_per_s(
        &Workload::Llama2_7b.config(),
        WeightPrecision::Effective(4.0),
        platform::KV260.bandwidth_gbps,
    );
    rows.push(Table3Row {
        device: platform::KV260.name,
        bandwidth_gbps: platform::KV260.bandwidth_gbps,
        framework: "Ours".to_owned(),
        theoretical,
        measured: ours.tokens_per_s,
        utilization: utilization(ours.tokens_per_s, theoretical),
    });
    rows
}

/// The design must fit its device — a sanity the tables implicitly claim.
pub fn ours_fits_device() -> bool {
    estimate(&AccelConfig::kv260())
        .total
        .utilization(&kv260_device())
        .max_component()
        < 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ours_wins_on_utilization() {
        let rows = table2_rows(OursResult::paper_reported());
        assert_eq!(rows.len(), 6);
        let ours = rows.last().expect("has ours row");
        assert_eq!(ours.name, "Ours");
        for row in &rows[..rows.len() - 1] {
            assert!(
                ours.utilization > row.utilization,
                "{} utilization {:.3} should trail ours {:.3}",
                row.name,
                row.utilization,
                ours.utilization
            );
        }
    }

    #[test]
    fn table2_cloud_fpgas_win_on_absolute_speed() {
        let rows = table2_rows(OursResult::paper_reported());
        let ours = rows.last().expect("has ours row");
        for name in ["FlightLLM", "EdgeLLM"] {
            let row = rows.iter().find(|r| r.name == name).expect("present");
            assert!(
                row.measured > ours.measured,
                "{name} should be faster in absolute terms"
            );
        }
    }

    #[test]
    fn table3_ours_beats_every_framework_on_utilization() {
        let rows = table3_rows(OursResult::paper_reported());
        assert_eq!(rows.len(), 6);
        let ours = rows.last().expect("has ours row");
        for row in &rows[..rows.len() - 1] {
            assert!(
                ours.utilization > row.utilization,
                "{}/{} utilization {:.3} should trail ours {:.3}",
                row.device,
                row.framework,
                row.utilization,
                ours.utilization
            );
        }
        // But the AGX Orin is faster in absolute token/s.
        let agx_nano_llm = rows
            .iter()
            .find(|r| r.device == "JetsonAGXOrin" && r.framework == "NanoLLM")
            .expect("present");
        assert!(agx_nano_llm.measured > ours.measured);
    }

    #[test]
    fn ours_row_resources_match_paper_scale() {
        let rows = table2_rows(OursResult::paper_reported());
        let ours = rows.last().expect("has ours row");
        assert!((70.0..85.0).contains(&ours.lut_k), "lut {}", ours.lut_k);
        assert!((280.0..300.0).contains(&ours.dsp));
        assert!((6.0..7.2).contains(&ours.watts));
        assert_eq!(ours.mhz, 300.0);
    }

    #[test]
    fn design_fits() {
        assert!(ours_fits_device());
    }

    #[test]
    fn paper_utilization_reproduced_from_paper_measurement() {
        let rows = table2_rows(OursResult::paper_reported());
        let ours = rows.last().expect("has ours row");
        // 4.9 / ~5.8 ≈ 84.5%.
        assert!(
            (0.80..0.88).contains(&ours.utilization),
            "util {}",
            ours.utilization
        );
    }
}
