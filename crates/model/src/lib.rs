//! LLaMA-family transformer substrate: configurations, synthetic weights,
//! an f32 reference implementation, KV caches, tokenizer and samplers.
//!
//! The paper deploys LLaMA2-7B; its comparison tables additionally involve
//! TinyLlama-1.1B, GPT-2-1.5B and ChatGLM-6B. This crate provides:
//!
//! * [`config`] — model geometries ([`config::ModelConfig`]) with presets
//!   for every model the paper mentions plus scaled-down test shapes;
//! * [`weights`] — seeded synthetic weights at any geometry (trained
//!   checkpoints are unavailable offline; quantization, layout and
//!   bandwidth behaviour depend only on shapes and statistics);
//! * [`mod@reference`] — an exact f32 decoder (RMSNorm, RoPE, causal
//!   attention with GQA, SwiGLU) used as ground truth for the accelerator;
//! * [`kv_cache`] — f32 and KV8-quantized caches;
//! * [`tokenizer`] / [`sampler`] — the "PS side" of the system: byte-level
//!   tokenization and greedy/top-k sampling;
//! * [`memory`] — byte accounting for weights and KV cache, and the
//!   bandwidth rooflines every comparison table derives from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod config;
pub mod eval;
pub mod generate;
pub mod kv_cache;
pub mod memory;
pub mod reference;
pub mod sampler;
pub mod tensor;
pub mod tokenizer;
pub mod weights;

pub use config::ModelConfig;
pub use tensor::Matrix;
pub use weights::ModelWeights;
