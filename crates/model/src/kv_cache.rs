//! Key/value caches: exact f32 and KV8-quantized.
//!
//! The cache stores one K vector and one V vector per (layer, kv-head,
//! token). [`KvStore`] abstracts over precision so the reference decoder
//! can run with either and the KV8 accuracy cost can be measured directly.

use crate::config::ModelConfig;
use zllm_quant::kv8::{quantize_kv_bits, QuantizedKv};

/// Storage interface for per-token K/V head vectors.
pub trait KvStore {
    /// Appends the current token's K and V (each `kv_dim` long, laid out
    /// head-major) for one layer. Must be called once per layer per token,
    /// layers in order.
    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]);

    /// Number of cached tokens.
    fn len(&self) -> usize;

    /// `true` if no tokens are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The K vector of (layer, token, kv-head), dequantized if necessary.
    fn key(&self, layer: usize, token: usize, head: usize) -> Vec<f32>;

    /// The V vector of (layer, token, kv-head).
    fn value(&self, layer: usize, token: usize, head: usize) -> Vec<f32>;

    /// Writes the K vector of (layer, token, kv-head) into `out` (cleared
    /// first). The default delegates to [`KvStore::key`]; implementations
    /// override it to skip the per-call allocation — values are identical
    /// either way.
    fn key_into(&self, layer: usize, token: usize, head: usize, out: &mut Vec<f32>) {
        let k = self.key(layer, token, head);
        out.clear();
        out.extend_from_slice(&k);
    }

    /// Writes the V vector of (layer, token, kv-head) into `out` (cleared
    /// first); the allocation-free counterpart of [`KvStore::value`].
    fn value_into(&self, layer: usize, token: usize, head: usize, out: &mut Vec<f32>) {
        let v = self.value(layer, token, head);
        out.clear();
        out.extend_from_slice(&v);
    }
}

/// Exact f32 cache.
#[derive(Debug, Clone)]
pub struct KvCacheF32 {
    head_dim: usize,
    n_kv_heads: usize,
    /// Per layer: flat `tokens × kv_dim` buffers.
    keys: Vec<Vec<f32>>,
    values: Vec<Vec<f32>>,
    tokens: usize,
}

impl KvCacheF32 {
    /// Creates an empty cache for a model.
    pub fn new(config: &ModelConfig) -> KvCacheF32 {
        KvCacheF32 {
            head_dim: config.head_dim(),
            n_kv_heads: config.n_kv_heads,
            keys: vec![Vec::new(); config.n_layers],
            values: vec![Vec::new(); config.n_layers],
            tokens: 0,
        }
    }
}

impl KvStore for KvCacheF32 {
    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        let kv_dim = self.head_dim * self.n_kv_heads;
        assert_eq!(k.len(), kv_dim, "K length mismatch");
        assert_eq!(v.len(), kv_dim, "V length mismatch");
        self.keys[layer].extend_from_slice(k);
        self.values[layer].extend_from_slice(v);
        if layer == self.keys.len() - 1 {
            self.tokens += 1;
        }
    }

    fn len(&self) -> usize {
        self.tokens
    }

    fn key(&self, layer: usize, token: usize, head: usize) -> Vec<f32> {
        let kv_dim = self.head_dim * self.n_kv_heads;
        let base = token * kv_dim + head * self.head_dim;
        self.keys[layer][base..base + self.head_dim].to_vec()
    }

    fn value(&self, layer: usize, token: usize, head: usize) -> Vec<f32> {
        let kv_dim = self.head_dim * self.n_kv_heads;
        let base = token * kv_dim + head * self.head_dim;
        self.values[layer][base..base + self.head_dim].to_vec()
    }

    fn key_into(&self, layer: usize, token: usize, head: usize, out: &mut Vec<f32>) {
        let kv_dim = self.head_dim * self.n_kv_heads;
        let base = token * kv_dim + head * self.head_dim;
        out.clear();
        out.extend_from_slice(&self.keys[layer][base..base + self.head_dim]);
    }

    fn value_into(&self, layer: usize, token: usize, head: usize, out: &mut Vec<f32>) {
        let kv_dim = self.head_dim * self.n_kv_heads;
        let base = token * kv_dim + head * self.head_dim;
        out.clear();
        out.extend_from_slice(&self.values[layer][base..base + self.head_dim]);
    }
}

/// KV8-quantized cache: one [`QuantizedKv`] per (layer, token, head) per
/// K/V, exactly the granularity the accelerator's on-chip quantizer uses.
///
/// The code width defaults to the paper's 8 bits; [`KvCacheQ8::with_bits`]
/// supports the KV4 ablation of §IV-B.
#[derive(Debug, Clone)]
pub struct KvCacheQ8 {
    head_dim: usize,
    n_kv_heads: usize,
    bits: u32,
    /// `keys[layer][token * n_kv_heads + head]`.
    keys: Vec<Vec<QuantizedKv>>,
    values: Vec<Vec<QuantizedKv>>,
    tokens: usize,
}

impl KvCacheQ8 {
    /// Creates an empty 8-bit cache for a model.
    pub fn new(config: &ModelConfig) -> KvCacheQ8 {
        KvCacheQ8::with_bits(config, 8)
    }

    /// Creates an empty cache with an explicit code width (1..=8 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 8.
    pub fn with_bits(config: &ModelConfig, bits: u32) -> KvCacheQ8 {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        KvCacheQ8 {
            head_dim: config.head_dim(),
            n_kv_heads: config.n_kv_heads,
            bits,
            keys: vec![Vec::new(); config.n_layers],
            values: vec![Vec::new(); config.n_layers],
            tokens: 0,
        }
    }

    /// The code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Raw quantized K entry (for layout/bandwidth accounting).
    pub fn key_q(&self, layer: usize, token: usize, head: usize) -> &QuantizedKv {
        &self.keys[layer][token * self.n_kv_heads + head]
    }
}

impl KvStore for KvCacheQ8 {
    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        let kv_dim = self.head_dim * self.n_kv_heads;
        assert_eq!(k.len(), kv_dim, "K length mismatch");
        assert_eq!(v.len(), kv_dim, "V length mismatch");
        for h in 0..self.n_kv_heads {
            let lo = h * self.head_dim;
            let hi = lo + self.head_dim;
            self.keys[layer].push(quantize_kv_bits(&k[lo..hi], self.bits));
            self.values[layer].push(quantize_kv_bits(&v[lo..hi], self.bits));
        }
        if layer == self.keys.len() - 1 {
            self.tokens += 1;
        }
    }

    fn len(&self) -> usize {
        self.tokens
    }

    fn key(&self, layer: usize, token: usize, head: usize) -> Vec<f32> {
        self.keys[layer][token * self.n_kv_heads + head].dequantize()
    }

    fn value(&self, layer: usize, token: usize, head: usize) -> Vec<f32> {
        self.values[layer][token * self.n_kv_heads + head].dequantize()
    }

    fn key_into(&self, layer: usize, token: usize, head: usize, out: &mut Vec<f32>) {
        self.keys[layer][token * self.n_kv_heads + head].dequantize_into(out);
    }

    fn value_into(&self, layer: usize, token: usize, head: usize, out: &mut Vec<f32>) {
        self.values[layer][token * self.n_kv_heads + head].dequantize_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kv(cfg: &ModelConfig, token: usize) -> (Vec<f32>, Vec<f32>) {
        let kv_dim = cfg.kv_dim();
        let k = (0..kv_dim)
            .map(|i| ((i + token * 7) as f32 * 0.37).sin())
            .collect();
        let v = (0..kv_dim)
            .map(|i| ((i + token * 3) as f32 * 0.21).cos())
            .collect();
        (k, v)
    }

    #[test]
    fn f32_cache_roundtrips_exactly() {
        let cfg = ModelConfig::test_small();
        let mut cache = KvCacheF32::new(&cfg);
        assert!(cache.is_empty());
        for t in 0..3 {
            let (k, v) = sample_kv(&cfg, t);
            for layer in 0..cfg.n_layers {
                cache.append(layer, &k, &v);
            }
        }
        assert_eq!(cache.len(), 3);
        let (k, _) = sample_kv(&cfg, 1);
        let head = 2;
        let d = cfg.head_dim();
        assert_eq!(cache.key(0, 1, head), k[head * d..(head + 1) * d].to_vec());
    }

    #[test]
    fn q8_cache_approximates_f32() {
        let cfg = ModelConfig::test_small();
        let mut exact = KvCacheF32::new(&cfg);
        let mut quant = KvCacheQ8::new(&cfg);
        for t in 0..4 {
            let (k, v) = sample_kv(&cfg, t);
            for layer in 0..cfg.n_layers {
                exact.append(layer, &k, &v);
                quant.append(layer, &k, &v);
            }
        }
        assert_eq!(quant.len(), 4);
        for head in 0..cfg.n_kv_heads {
            let a = exact.value(1, 2, head);
            let b = quant.value(1, 2, head);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 0.01, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn q8_cache_exposes_raw_entries() {
        let cfg = ModelConfig::test_small_gqa();
        let mut cache = KvCacheQ8::new(&cfg);
        let (k, v) = sample_kv(&cfg, 0);
        for layer in 0..cfg.n_layers {
            cache.append(layer, &k, &v);
        }
        let entry = cache.key_q(0, 0, 1);
        assert_eq!(entry.len(), cfg.head_dim());
    }

    #[test]
    #[should_panic(expected = "K length mismatch")]
    fn append_validates_length() {
        let cfg = ModelConfig::test_small();
        let mut cache = KvCacheF32::new(&cfg);
        cache.append(0, &[0.0; 3], &[0.0; 3]);
    }
}
