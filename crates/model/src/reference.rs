//! Exact f32 reference decoder: the ground truth the accelerator's FP16
//! datapath is validated against.
//!
//! Implements the LLaMA block exactly as Fig. 2C describes it: RMSNorm →
//! QKV projections with RoPE on Q/K → causal multi-head attention over the
//! cache → output projection → residual; then RMSNorm → SwiGLU MLP →
//! residual. GQA is supported by sharing KV heads across query-head groups.

use crate::kv_cache::KvStore;
use crate::tensor::dot;
use crate::weights::ModelWeights;

/// RMS normalisation: `x_i · g_i / √(mean(x²) + ε)`.
pub fn rmsnorm(x: &[f32], gain: &[f32], eps: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(x.len());
    rmsnorm_into(x, gain, eps, &mut out);
    out
}

/// [`rmsnorm`] into a caller-provided buffer (cleared first) — identical
/// values, no allocation once the buffer has capacity.
pub fn rmsnorm_into(x: &[f32], gain: &[f32], eps: f32, out: &mut Vec<f32>) {
    assert_eq!(x.len(), gain.len(), "gain length mismatch");
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    out.clear();
    out.extend(x.iter().zip(gain).map(|(v, g)| v * inv * g));
}

/// Numerically stable softmax (three-pass, as the SPU implements it).
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(x.len());
    softmax_into(x, &mut out);
    out
}

/// [`softmax`] into a caller-provided buffer (cleared first) — the same
/// three passes in the same order, so results are bit-identical.
pub fn softmax_into(x: &[f32], out: &mut Vec<f32>) {
    assert!(!x.is_empty(), "softmax of empty slice");
    let m = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    out.clear();
    out.extend(x.iter().map(|v| (v - m).exp()));
    let d: f32 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= d;
    }
}

/// SiLU activation.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Applies RoPE in place to one head vector (half-offset pairing: lane `i`
/// rotates with lane `i + d/2`, the convention LLaMA uses and the paper's
/// rotator implements by "caching half of the query or key").
pub fn rope_rotate(head: &mut [f32], pos: usize, base: f64) {
    let d = head.len();
    assert!(d.is_multiple_of(2), "head dimension must be even");
    let half = d / 2;
    for i in 0..half {
        let theta = pos as f64 * base.powf(-2.0 * i as f64 / d as f64);
        let (sin, cos) = (theta.sin() as f32, theta.cos() as f32);
        let a = head[i];
        let b = head[i + half];
        head[i] = a * cos - b * sin;
        head[i + half] = a * sin + b * cos;
    }
}

/// The reference decoder: owns weights and a cache, processes one token at
/// a time.
///
/// # Example
///
/// ```
/// use zllm_model::{ModelConfig, ModelWeights};
/// use zllm_model::kv_cache::KvCacheF32;
/// use zllm_model::reference::Decoder;
///
/// let cfg = ModelConfig::test_small();
/// let weights = ModelWeights::generate(&cfg, 1);
/// let mut dec = Decoder::new(&weights, KvCacheF32::new(&cfg));
/// let logits = dec.forward(7);
/// assert_eq!(logits.len(), cfg.vocab_size);
/// ```
#[derive(Debug)]
pub struct Decoder<'w, C> {
    weights: &'w ModelWeights,
    cache: C,
    pos: usize,
    scratch: Scratch,
}

/// Per-token scratch reused across [`Decoder::forward`] calls so the decode
/// loop allocates nothing per token (beyond the returned logits). Purely an
/// allocation optimisation: every value written here is computed by exactly
/// the same operations, in the same order, as the old collect-per-step code.
#[derive(Debug, Default)]
struct Scratch {
    xn: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn_out: Vec<f32>,
    scores: Vec<f32>,
    probs: Vec<f32>,
    /// One dequantized K or V head vector streamed from the cache.
    kv: Vec<f32>,
    proj: Vec<f32>,
    gate: Vec<f32>,
    up: Vec<f32>,
    inner: Vec<f32>,
}

impl<'w, C: KvStore> Decoder<'w, C> {
    /// Creates a decoder at position zero.
    pub fn new(weights: &'w ModelWeights, cache: C) -> Decoder<'w, C> {
        Decoder {
            weights,
            cache,
            pos: 0,
            scratch: Scratch::default(),
        }
    }

    /// Tokens processed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Read access to the cache.
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// Processes one token and returns the next-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary or the context is full.
    pub fn forward(&mut self, token: usize) -> Vec<f32> {
        let cfg = self.weights.config();
        assert!(token < cfg.vocab_size, "token {token} out of vocabulary");
        assert!(self.pos < cfg.max_seq_len, "context window exhausted");
        let pos = self.pos;
        let d = cfg.d_model;
        let hd = cfg.head_dim();
        let group = cfg.n_heads / cfg.n_kv_heads;

        let mut x: Vec<f32> = self.weights.embedding.row(token).to_vec();
        let s = &mut self.scratch;

        for (layer_idx, layer) in self.weights.layers.iter().enumerate() {
            // --- Attention block ---
            rmsnorm_into(&x, &layer.attn_norm, cfg.norm_eps, &mut s.xn);
            layer.wq.matvec_into(&s.xn, &mut s.q);
            layer.wk.matvec_into(&s.xn, &mut s.k);
            layer.wv.matvec_into(&s.xn, &mut s.v);

            for h in 0..cfg.n_heads {
                rope_rotate(&mut s.q[h * hd..(h + 1) * hd], pos, cfg.rope_base);
            }
            for h in 0..cfg.n_kv_heads {
                rope_rotate(&mut s.k[h * hd..(h + 1) * hd], pos, cfg.rope_base);
            }
            self.cache.append(layer_idx, &s.k, &s.v);

            let scale = 1.0 / (hd as f32).sqrt();
            s.attn_out.clear();
            s.attn_out.resize(d, 0.0);
            for h in 0..cfg.n_heads {
                let kv_head = h / group;
                let qh = &s.q[h * hd..(h + 1) * hd];
                s.scores.clear();
                for t in 0..=pos {
                    self.cache.key_into(layer_idx, t, kv_head, &mut s.kv);
                    s.scores.push(dot(qh, &s.kv) * scale);
                }
                softmax_into(&s.scores, &mut s.probs);
                let out = &mut s.attn_out[h * hd..(h + 1) * hd];
                for (t, &p) in s.probs.iter().enumerate() {
                    self.cache.value_into(layer_idx, t, kv_head, &mut s.kv);
                    for (o, &vv) in out.iter_mut().zip(&s.kv) {
                        *o += p * vv;
                    }
                }
            }

            layer.wo.matvec_into(&s.attn_out, &mut s.proj);
            for (xi, pi) in x.iter_mut().zip(&s.proj) {
                *xi += pi;
            }

            // --- MLP block ---
            rmsnorm_into(&x, &layer.mlp_norm, cfg.norm_eps, &mut s.xn);
            layer.w_gate.matvec_into(&s.xn, &mut s.gate);
            layer.w_up.matvec_into(&s.xn, &mut s.up);
            s.inner.clear();
            s.inner
                .extend(s.gate.iter().zip(&s.up).map(|(&g, &u)| silu(g) * u));
            layer.w_down.matvec_into(&s.inner, &mut s.proj);
            for (xi, di) in x.iter_mut().zip(&s.proj) {
                *xi += di;
            }
        }

        rmsnorm_into(&x, &self.weights.final_norm, cfg.norm_eps, &mut s.xn);
        self.pos += 1;
        self.weights.lm_head.matvec(&s.xn)
    }

    /// Runs the prefill phase over a prompt, returning the logits after its
    /// last token.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    pub fn prefill(&mut self, prompt: &[usize]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "empty prompt");
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.forward(t);
        }
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::kv_cache::{KvCacheF32, KvCacheQ8};
    use crate::weights::ModelWeights;

    #[test]
    fn rmsnorm_unit_output_scale() {
        let x = vec![3.0f32; 8];
        let g = vec![1.0f32; 8];
        let y = rmsnorm(&x, &g, 0.0);
        for v in y {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn rmsnorm_applies_gain() {
        let x = vec![1.0, -1.0];
        let g = vec![2.0, 0.5];
        let y = rmsnorm(&x, &g, 0.0);
        assert!((y[0] - 2.0).abs() < 1e-6);
        assert!((y[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge inputs.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rope_preserves_norm_and_is_identity_at_pos0() {
        let mut h = vec![0.3, -0.7, 0.2, 0.9];
        let orig = h.clone();
        rope_rotate(&mut h, 0, 10000.0);
        assert_eq!(h, orig);
        rope_rotate(&mut h, 13, 10000.0);
        let n0: f32 = orig.iter().map(|v| v * v).sum();
        let n1: f32 = h.iter().map(|v| v * v).sum();
        assert!((n0 - n1).abs() < 1e-5);
        assert_ne!(h, orig);
    }

    #[test]
    fn rope_is_relative() {
        // <RoPE(q, m), RoPE(k, n)> depends only on m - n.
        let q = vec![0.5, -0.2, 0.8, 0.1];
        let k = vec![-0.3, 0.9, 0.4, -0.6];
        let pairs = [(3usize, 1usize), (7, 5), (12, 10)];
        let mut dots = Vec::new();
        for (m, n) in pairs {
            let mut qm = q.clone();
            let mut kn = k.clone();
            rope_rotate(&mut qm, m, 10000.0);
            rope_rotate(&mut kn, n, 10000.0);
            dots.push(dot(&qm, &kn));
        }
        assert!((dots[0] - dots[1]).abs() < 1e-5);
        assert!((dots[1] - dots[2]).abs() < 1e-5);
    }

    #[test]
    fn decoder_is_deterministic_and_bounded() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 3);
        let mut d1 = Decoder::new(&w, KvCacheF32::new(&cfg));
        let mut d2 = Decoder::new(&w, KvCacheF32::new(&cfg));
        let l1 = d1.prefill(&[1, 2, 3]);
        let l2 = d2.prefill(&[1, 2, 3]);
        assert_eq!(l1, l2);
        assert!(l1.iter().all(|v| v.is_finite()));
        assert_eq!(d1.pos(), 3);
        assert_eq!(d1.cache().len(), 3);
    }

    #[test]
    fn context_matters() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 3);
        let mut a = Decoder::new(&w, KvCacheF32::new(&cfg));
        let mut b = Decoder::new(&w, KvCacheF32::new(&cfg));
        let la = a.prefill(&[5, 9]);
        let lb = b.prefill(&[8, 9]);
        // Same final token, different history → different logits.
        assert_ne!(la, lb);
    }

    #[test]
    fn kv8_cache_tracks_f32_closely() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 11);
        let mut exact = Decoder::new(&w, KvCacheF32::new(&cfg));
        let mut quant = Decoder::new(&w, KvCacheQ8::new(&cfg));
        let prompt = [1usize, 4, 7, 2, 9];
        let le = exact.prefill(&prompt);
        let lq = quant.prefill(&prompt);
        // KV8 perturbs logits slightly; the argmax and coarse structure
        // must survive.
        let am_e = le
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i);
        let am_q = lq
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i);
        assert_eq!(am_e, am_q, "KV8 flipped the argmax");
        let rmse: f32 = (le
            .iter()
            .zip(&lq)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / le.len() as f32)
            .sqrt();
        assert!(rmse < 0.05, "KV8 rmse {rmse}");
    }

    #[test]
    fn gqa_runs_and_differs_from_mha() {
        let cfg = ModelConfig::test_small_gqa();
        let w = ModelWeights::generate(&cfg, 3);
        let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
        let logits = d.prefill(&[1, 2, 3, 4]);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn vocabulary_checked() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 0);
        let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
        let _ = d.forward(cfg.vocab_size);
    }

    #[test]
    #[should_panic(expected = "context window exhausted")]
    fn context_limit_enforced() {
        let mut cfg = ModelConfig::test_small();
        cfg.max_seq_len = 2;
        let w = ModelWeights::generate(&cfg, 0);
        let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
        let _ = d.prefill(&[1, 2, 3]);
    }
}
