//! A shared generation loop over any decoder-shaped step function.
//!
//! Examples and tests all need the same prefill → sample → feed-back
//! loop; this module provides it once, over a `FnMut(usize) -> Vec<f32>`
//! step so it works with the f32 reference, the functional accelerator
//! decoder, or anything else that produces logits.

use crate::sampler::{argmax, TopKSampler};
use zllm_telemetry::MetricsRegistry;

/// How to pick the next token.
#[derive(Debug, Clone)]
pub enum Sampling {
    /// Greedy argmax.
    Greedy,
    /// Top-k with temperature, seeded.
    TopK {
        /// Candidates kept.
        k: usize,
        /// Softmax temperature.
        temperature: f32,
        /// RNG seed.
        seed: u64,
    },
}

/// Generation settings.
#[derive(Debug, Clone)]
pub struct GenerateOptions {
    /// Maximum tokens to generate.
    pub max_tokens: usize,
    /// Sampling strategy.
    pub sampling: Sampling,
    /// Stop early when this token is produced (e.g. EOS).
    pub stop_token: Option<usize>,
}

impl Default for GenerateOptions {
    fn default() -> GenerateOptions {
        GenerateOptions {
            max_tokens: 32,
            sampling: Sampling::Greedy,
            stop_token: None,
        }
    }
}

/// Outcome of a generation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generation {
    /// Generated token ids (stop token excluded).
    pub tokens: Vec<usize>,
    /// `true` if the stop token ended the run.
    pub stopped: bool,
}

/// Runs prefill over `prompt` then generates per `options`.
///
/// `forward` processes one token and returns next-token logits (the
/// signature of both [`crate::reference::Decoder::forward`] and the
/// accelerator's functional decoder).
///
/// # Panics
///
/// Panics if `prompt` is empty.
///
/// # Example
///
/// ```
/// use zllm_model::generate::{generate, GenerateOptions, Sampling};
/// use zllm_model::kv_cache::KvCacheF32;
/// use zllm_model::reference::Decoder;
/// use zllm_model::{ModelConfig, ModelWeights};
///
/// let cfg = ModelConfig::test_small();
/// let weights = ModelWeights::generate(&cfg, 1);
/// let mut dec = Decoder::new(&weights, KvCacheF32::new(&cfg));
/// let out = generate(|t| dec.forward(t), &[1, 2, 3], &GenerateOptions {
///     max_tokens: 4,
///     sampling: Sampling::Greedy,
///     stop_token: None,
/// });
/// assert_eq!(out.tokens.len(), 4);
/// ```
pub fn generate<F>(forward: F, prompt: &[usize], options: &GenerateOptions) -> Generation
where
    F: FnMut(usize) -> Vec<f32>,
{
    let mut reg = MetricsRegistry::new();
    generate_with_metrics(forward, prompt, options, &mut reg)
}

/// [`generate`], publishing progress counters into `reg`:
/// `generate.prefill_tokens`, `generate.sampled_tokens` and
/// `generate.stops` accumulate across calls sharing the registry.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn generate_with_metrics<F>(
    mut forward: F,
    prompt: &[usize],
    options: &GenerateOptions,
    reg: &mut MetricsRegistry,
) -> Generation
where
    F: FnMut(usize) -> Vec<f32>,
{
    assert!(!prompt.is_empty(), "empty prompt");
    let prefill_tokens = reg.counter("generate.prefill_tokens");
    let sampled_tokens = reg.counter("generate.sampled_tokens");
    let stops = reg.counter("generate.stops");
    let mut logits = Vec::new();
    for &t in prompt {
        logits = forward(t);
        prefill_tokens.inc();
    }

    let mut sampler = match options.sampling {
        Sampling::Greedy => None,
        Sampling::TopK {
            k,
            temperature,
            seed,
        } => Some(TopKSampler::new(k, temperature, seed)),
    };

    let mut tokens = Vec::with_capacity(options.max_tokens);
    for step in 0..options.max_tokens {
        let next = match &mut sampler {
            None => argmax(&logits),
            Some(s) => s.sample(&logits),
        };
        if options.stop_token == Some(next) {
            stops.inc();
            return Generation {
                tokens,
                stopped: true,
            };
        }
        sampled_tokens.inc();
        tokens.push(next);
        if step + 1 < options.max_tokens {
            logits = forward(next);
        }
    }
    Generation {
        tokens,
        stopped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv_cache::KvCacheF32;
    use crate::reference::Decoder;
    use crate::{ModelConfig, ModelWeights};

    fn setup() -> (ModelConfig, ModelWeights) {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 77);
        (cfg, w)
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let (cfg, w) = setup();
        let run = |_: ()| {
            let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
            generate(|t| d.forward(t), &[5, 6], &GenerateOptions::default())
        };
        let a = run(());
        let b = run(());
        assert_eq!(a, b);
        assert_eq!(a.tokens.len(), 32);
        assert!(!a.stopped);
    }

    #[test]
    fn stop_token_halts_generation() {
        let (cfg, w) = setup();
        // Find what greedy emits first, then use it as the stop token.
        let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
        let first = generate(
            |t| d.forward(t),
            &[9],
            &GenerateOptions {
                max_tokens: 1,
                ..GenerateOptions::default()
            },
        )
        .tokens[0];

        let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
        let out = generate(
            |t| d.forward(t),
            &[9],
            &GenerateOptions {
                max_tokens: 16,
                sampling: Sampling::Greedy,
                stop_token: Some(first),
            },
        );
        assert!(out.stopped);
        assert!(out.tokens.is_empty());
    }

    #[test]
    fn topk_generation_is_seeded() {
        let (cfg, w) = setup();
        let run = |seed| {
            let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
            generate(
                |t| d.forward(t),
                &[3, 4],
                &GenerateOptions {
                    max_tokens: 8,
                    sampling: Sampling::TopK {
                        k: 8,
                        temperature: 1.0,
                        seed,
                    },
                    stop_token: None,
                },
            )
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).tokens, run(2).tokens);
    }

    #[test]
    fn generation_respects_context_budget() {
        let (cfg, w) = setup();
        let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
        let out = generate(
            |t| d.forward(t),
            &[1],
            &GenerateOptions {
                max_tokens: cfg.max_seq_len - 1,
                ..GenerateOptions::default()
            },
        );
        assert_eq!(out.tokens.len(), cfg.max_seq_len - 1);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_rejected() {
        let _ = generate(|_| vec![0.0], &[], &GenerateOptions::default());
    }
}
