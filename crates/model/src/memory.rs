//! Byte accounting and bandwidth rooflines.
//!
//! Single-batch LLM decoding reads every weight once per token, so
//! `tokens/s ≤ bandwidth / bytes_per_token`. Every comparison row in the
//! paper's Tables II and III is this roofline evaluated at a platform's
//! bandwidth, next to a measured value. This module computes the byte
//! footprints from model geometry and quantization choices.

use crate::config::ModelConfig;

/// Mebibytes, as the paper's Fig. 1 annotates sizes.
pub const MIB: f64 = (1u64 << 20) as f64;

/// Weight precision options appearing across the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightPrecision {
    /// 4-bit groupwise (AWQ): 4 bits + scale/zero overhead per group of 128.
    W4G128,
    /// Effective bit width of a sparse/quantized scheme (e.g. FlightLLM's
    /// ~3.5 effective bits).
    Effective(f64),
    /// Plain 8-bit.
    W8,
    /// FP16.
    W16,
}

impl WeightPrecision {
    /// Bits consumed per weight, including metadata.
    pub fn bits_per_weight(&self) -> f64 {
        match self {
            // 4-bit code + (16-bit scale + 4-bit zero) / 128 elements.
            WeightPrecision::W4G128 => 4.0 + 20.0 / 128.0,
            WeightPrecision::Effective(bits) => *bits,
            WeightPrecision::W8 => 8.0,
            WeightPrecision::W16 => 16.0,
        }
    }
}

/// Bytes of the *streamed* weights per decoded token: all layer
/// projections plus the LM head at the quantized precision, plus one FP16
/// embedding row. (The embedding table is stored FP16 and only one row is
/// read per token.)
pub fn streamed_weight_bytes(cfg: &ModelConfig, prec: WeightPrecision) -> f64 {
    let layer_params = cfg.n_layers as f64 * cfg.params_per_layer() as f64;
    let head_params = (cfg.vocab_size * cfg.d_model) as f64;
    let streamed = (layer_params + head_params) * prec.bits_per_weight() / 8.0;
    let embedding_row = (cfg.d_model * 2) as f64;
    streamed + embedding_row
}

/// Resident bytes of all weights in DDR: streamed weights plus the full
/// FP16 embedding table.
pub fn resident_weight_bytes(cfg: &ModelConfig, prec: WeightPrecision) -> f64 {
    let embedding_table = (cfg.vocab_size * cfg.d_model * 2) as f64;
    streamed_weight_bytes(cfg, prec) - (cfg.d_model * 2) as f64 + embedding_table
}

/// KV8 cache bytes per token: K and V codes plus one 32-bit scale-zero pack
/// per (layer, kv-head, K/V).
pub fn kv8_bytes_per_token(cfg: &ModelConfig) -> f64 {
    let codes = (2 * cfg.n_layers * cfg.kv_dim()) as f64;
    let packs = (2 * cfg.n_layers * cfg.n_kv_heads * 4) as f64;
    codes + packs
}

/// Total KV8 cache bytes for a context of `tokens`.
pub fn kv8_cache_bytes(cfg: &ModelConfig, tokens: usize) -> f64 {
    kv8_bytes_per_token(cfg) * tokens as f64
}

/// DDR bytes read to decode one token at context length `ctx`: the full
/// weight stream plus the quantized KV history (the newly written KV adds
/// a negligible write).
pub fn decode_bytes_per_token(cfg: &ModelConfig, prec: WeightPrecision, ctx: usize) -> f64 {
    streamed_weight_bytes(cfg, prec) + kv8_cache_bytes(cfg, ctx)
}

/// The decoding-speed roofline: `bandwidth / bytes_per_token`.
///
/// `bandwidth_gbps` is in decimal GB/s as the paper quotes platform specs.
pub fn roofline_tokens_per_s(bytes_per_token: f64, bandwidth_gbps: f64) -> f64 {
    bandwidth_gbps * 1e9 / bytes_per_token
}

/// Convenience: the weight-only roofline the paper's Table II uses
/// ("the number of model weight transfers possible within one second").
pub fn weight_roofline_tokens_per_s(
    cfg: &ModelConfig,
    prec: WeightPrecision,
    bandwidth_gbps: f64,
) -> f64 {
    roofline_tokens_per_s(streamed_weight_bytes(cfg, prec), bandwidth_gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w4_bits_include_group_overhead() {
        assert!((WeightPrecision::W4G128.bits_per_weight() - 4.15625).abs() < 1e-12);
        assert_eq!(WeightPrecision::W8.bits_per_weight(), 8.0);
        assert_eq!(WeightPrecision::Effective(3.5).bits_per_weight(), 3.5);
    }

    #[test]
    fn llama2_7b_fits_the_papers_figure_1_budget() {
        let cfg = ModelConfig::llama2_7b();
        let weights = resident_weight_bytes(&cfg, WeightPrecision::W4G128) / MIB;
        // Paper reports 3556 MB of weights; our first-principles count with
        // an FP16 embedding table lands within a few percent.
        assert!(
            (3350.0..3650.0).contains(&weights),
            "resident weights {weights:.0} MiB"
        );
        let kv = kv8_cache_bytes(&cfg, 1024) / MIB;
        // Paper: 264 MB for a 1024-token KV cache.
        assert!((255.0..275.0).contains(&kv), "kv cache {kv:.0} MiB");
        // Combined occupancy of the 4 GiB device ~93%.
        let occupancy = (weights + kv) / 4096.0;
        assert!(
            (0.88..0.96).contains(&occupancy),
            "occupancy {occupancy:.3}"
        );
    }

    #[test]
    fn llama2_7b_roofline_matches_table_ii() {
        let cfg = ModelConfig::llama2_7b();
        let peak = weight_roofline_tokens_per_s(&cfg, WeightPrecision::W4G128, 19.2);
        // Paper's theoretical column: ~5.8 token/s on 19.2 GB/s.
        assert!((5.2..6.2).contains(&peak), "roofline {peak:.2} tok/s");
    }

    #[test]
    fn tiny_llama_w8_roofline_matches_llamaf_row() {
        let cfg = ModelConfig::tiny_llama_1_1b();
        let peak = weight_roofline_tokens_per_s(&cfg, WeightPrecision::W8, 21.3);
        // LlamaF row: 19.3 theoretical token/s at 21.3 GB/s.
        assert!((17.0..22.0).contains(&peak), "roofline {peak:.2} tok/s");
    }

    #[test]
    fn context_grows_decode_bytes() {
        let cfg = ModelConfig::llama2_7b();
        let b0 = decode_bytes_per_token(&cfg, WeightPrecision::W4G128, 0);
        let b1024 = decode_bytes_per_token(&cfg, WeightPrecision::W4G128, 1024);
        assert!(b1024 > b0);
        assert!((b1024 - b0 - kv8_cache_bytes(&cfg, 1024)).abs() < 1.0);
    }

    #[test]
    fn gqa_shrinks_kv_footprint() {
        let mha = kv8_bytes_per_token(&ModelConfig::llama2_7b());
        let tiny = kv8_bytes_per_token(&ModelConfig::tiny_llama_1_1b());
        // TinyLlama has 4 of 32 KV heads at half the width and fewer layers.
        assert!(tiny < mha / 10.0);
    }

    #[test]
    fn roofline_scales_linearly_with_bandwidth() {
        let cfg = ModelConfig::llama2_7b();
        let a = weight_roofline_tokens_per_s(&cfg, WeightPrecision::W4G128, 19.2);
        let b = weight_roofline_tokens_per_s(&cfg, WeightPrecision::W4G128, 38.4);
        assert!((b / a - 2.0).abs() < 1e-9);
    }
}
