//! Token samplers for the decode loop.

use zllm_rng::StdRng;

/// Greedy argmax over logits.
///
/// # Panics
///
/// Panics if `logits` is empty.
///
/// # Example
///
/// ```
/// use zllm_model::sampler::argmax;
///
/// assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
/// ```
pub fn argmax(logits: &[f32]) -> usize {
    assert!(!logits.is_empty(), "empty logits");
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("nonempty")
}

/// Seeded top-k temperature sampler.
#[derive(Debug, Clone)]
pub struct TopKSampler {
    k: usize,
    temperature: f32,
    rng: StdRng,
}

impl TopKSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `temperature <= 0`.
    pub fn new(k: usize, temperature: f32, seed: u64) -> TopKSampler {
        assert!(k > 0, "k must be positive");
        assert!(temperature > 0.0, "temperature must be positive");
        TopKSampler {
            k,
            temperature,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a token id from the top-k renormalised distribution.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty.
    pub fn sample(&mut self, logits: &[f32]) -> usize {
        assert!(!logits.is_empty(), "empty logits");
        let mut indexed: Vec<(usize, f32)> = logits.iter().cloned().enumerate().collect();
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
        indexed.truncate(self.k);
        let m = indexed[0].1;
        let weights: Vec<f32> = indexed
            .iter()
            .map(|(_, l)| ((l - m) / self.temperature).exp())
            .collect();
        let total: f32 = weights.iter().sum();
        let mut draw = self.rng.gen_range(0.0..total);
        for ((idx, _), w) in indexed.iter().zip(&weights) {
            if draw < *w {
                return *idx;
            }
            draw -= w;
        }
        indexed[0].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[-1.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[3.0]), 0);
    }

    #[test]
    fn top1_sampler_is_greedy() {
        let mut s = TopKSampler::new(1, 1.0, 7);
        for _ in 0..10 {
            assert_eq!(s.sample(&[0.0, 3.0, 1.0]), 1);
        }
    }

    #[test]
    fn sampler_is_seeded_deterministic() {
        let logits = vec![1.0, 1.1, 0.9, 1.05];
        let mut a = TopKSampler::new(4, 1.0, 42);
        let mut b = TopKSampler::new(4, 1.0, 42);
        let seq_a: Vec<usize> = (0..20).map(|_| a.sample(&logits)).collect();
        let seq_b: Vec<usize> = (0..20).map(|_| b.sample(&logits)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn low_temperature_concentrates() {
        let logits = vec![0.0, 1.0];
        let mut cold = TopKSampler::new(2, 0.05, 1);
        let picks: Vec<usize> = (0..50).map(|_| cold.sample(&logits)).collect();
        let ones = picks.iter().filter(|&&p| p == 1).count();
        assert!(
            ones >= 48,
            "cold sampling picked the max only {ones}/50 times"
        );
    }

    #[test]
    fn sampler_respects_k() {
        let logits = vec![10.0, 9.0, -50.0, -60.0];
        let mut s = TopKSampler::new(2, 5.0, 3);
        for _ in 0..50 {
            let p = s.sample(&logits);
            assert!(p < 2, "sampled outside top-k: {p}");
        }
    }

    #[test]
    #[should_panic(expected = "empty logits")]
    fn empty_logits_rejected() {
        let _ = argmax(&[]);
    }
}
