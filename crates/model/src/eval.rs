//! Language-model quality evaluation: cross-entropy, perplexity and
//! generation agreement.
//!
//! The paper's quantization choices (§IV: W4A16 over W8A8, KV8 over KV4)
//! rest on accuracy arguments. Trained checkpoints and benchmark suites
//! are unavailable offline, so quality is measured *relative to the f32
//! reference model on self-generated text*: the reference model samples a
//! corpus, and each quantized variant is scored by how well it predicts
//! that corpus. Degradation caused purely by quantization then shows up
//! as a perplexity gap against the reference's own score.

use crate::config::ModelConfig;
use crate::kv_cache::KvCacheF32;
use crate::reference::Decoder;
use crate::sampler::TopKSampler;
use crate::weights::ModelWeights;

/// Cross-entropy (nats) of predicting `target` from `logits`.
///
/// # Panics
///
/// Panics if `logits` is empty or `target` is out of range.
pub fn cross_entropy(logits: &[f32], target: usize) -> f64 {
    assert!(!logits.is_empty(), "empty logits");
    assert!(target < logits.len(), "target out of range");
    // Stable log-softmax.
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let log_z = logits
        .iter()
        .map(|&l| ((l as f64) - m).exp())
        .sum::<f64>()
        .ln()
        + m;
    log_z - logits[target] as f64
}

/// Scores a decoder over a token sequence: mean cross-entropy of
/// predicting each next token, via a caller-supplied step function
/// (`forward(token) -> logits`).
///
/// # Panics
///
/// Panics if `tokens` has fewer than two elements.
pub fn mean_cross_entropy<F>(mut forward: F, tokens: &[usize]) -> f64
where
    F: FnMut(usize) -> Vec<f32>,
{
    assert!(tokens.len() >= 2, "need at least two tokens to score");
    let mut total = 0.0;
    let mut count = 0usize;
    for pair in tokens.windows(2) {
        let logits = forward(pair[0]);
        total += cross_entropy(&logits, pair[1]);
        count += 1;
    }
    total / count as f64
}

/// Perplexity from a mean cross-entropy in nats.
pub fn perplexity(mean_ce: f64) -> f64 {
    mean_ce.exp()
}

/// Samples a corpus from the reference model itself (temperature +
/// top-k), giving text the reference predicts well — the baseline every
/// quantized variant is compared against.
///
/// # Panics
///
/// Panics if `len` is zero.
pub fn sample_corpus(weights: &ModelWeights, seed: u64, len: usize) -> Vec<usize> {
    assert!(len > 0, "empty corpus requested");
    let cfg: &ModelConfig = weights.config();
    let mut decoder = Decoder::new(weights, KvCacheF32::new(cfg));
    let mut sampler = TopKSampler::new(16, 1.0, seed);
    let mut tokens = vec![(seed as usize) % cfg.vocab_size];
    let mut logits = decoder.forward(tokens[0]);
    while tokens.len() < len.min(cfg.max_seq_len) {
        let t = sampler.sample(&logits);
        tokens.push(t);
        if tokens.len() < len.min(cfg.max_seq_len) {
            logits = decoder.forward(t);
        }
    }
    tokens
}

/// Fraction of steps at which two decoders pick the same greedy token.
///
/// # Panics
///
/// Panics if `tokens` has fewer than two elements.
pub fn greedy_agreement<F, G>(mut a: F, mut b: G, tokens: &[usize]) -> f64
where
    F: FnMut(usize) -> Vec<f32>,
    G: FnMut(usize) -> Vec<f32>,
{
    assert!(tokens.len() >= 2, "need at least two tokens");
    let mut agree = 0usize;
    let mut count = 0usize;
    for pair in tokens.windows(2) {
        let la = a(pair[0]);
        let lb = b(pair[0]);
        if crate::sampler::argmax(&la) == crate::sampler::argmax(&lb) {
            agree += 1;
        }
        count += 1;
    }
    agree as f64 / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv_cache::KvCacheQ8;

    #[test]
    fn cross_entropy_of_certain_prediction_is_small() {
        let mut logits = vec![-10.0f32; 8];
        logits[3] = 10.0;
        assert!(cross_entropy(&logits, 3) < 1e-6);
        assert!(cross_entropy(&logits, 0) > 10.0);
    }

    #[test]
    fn uniform_logits_give_log_vocab() {
        let logits = vec![0.0f32; 64];
        let ce = cross_entropy(&logits, 5);
        assert!((ce - (64f64).ln()).abs() < 1e-9);
        assert!((perplexity(ce) - 64.0).abs() < 1e-6);
    }

    #[test]
    fn corpus_is_deterministic_and_in_vocab() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 4);
        let a = sample_corpus(&w, 9, 20);
        let b = sample_corpus(&w, 9, 20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert!(a.iter().all(|&t| t < cfg.vocab_size));
        assert_ne!(a, sample_corpus(&w, 10, 20));
    }

    #[test]
    fn reference_scores_better_than_chance_on_own_text() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 5);
        let corpus = sample_corpus(&w, 11, 24);
        let mut dec = Decoder::new(&w, KvCacheF32::new(&cfg));
        let ce = mean_cross_entropy(|t| dec.forward(t), &corpus);
        let chance = (cfg.vocab_size as f64).ln();
        assert!(
            ce < chance,
            "self-scored CE {ce} should beat chance {chance}"
        );
    }

    #[test]
    fn kv8_barely_moves_cross_entropy_kv2_wrecks_it() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 6);
        let corpus = sample_corpus(&w, 3, 20);

        let score = |bits: Option<u32>| {
            let corpus = corpus.clone();
            match bits {
                None => {
                    let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
                    mean_cross_entropy(|t| d.forward(t), &corpus)
                }
                Some(b) => {
                    let mut d = Decoder::new(&w, KvCacheQ8::with_bits(&cfg, b));
                    mean_cross_entropy(|t| d.forward(t), &corpus)
                }
            }
        };
        let exact = score(None);
        let kv8 = score(Some(8));
        let kv2 = score(Some(2));
        assert!(
            (kv8 - exact).abs() < 0.05,
            "KV8 gap too large: {kv8} vs {exact}"
        );
        assert!(kv2 > kv8, "KV2 ({kv2}) should degrade past KV8 ({kv8})");
    }

    #[test]
    fn agreement_of_decoder_with_itself_is_one() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 8);
        let corpus = sample_corpus(&w, 2, 12);
        let mut a = Decoder::new(&w, KvCacheF32::new(&cfg));
        let mut b = Decoder::new(&w, KvCacheF32::new(&cfg));
        let agree = greedy_agreement(|t| a.forward(t), |t| b.forward(t), &corpus);
        assert_eq!(agree, 1.0);
    }
}
