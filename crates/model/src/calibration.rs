//! Calibration-data capture: records the activations entering every
//! linear projection during reference forward passes.
//!
//! The paper's deployment quantizes LLaMA2-7B "using the AutoAWQ
//! library" — an *activation-aware* method that needs to see real layer
//! inputs. This module reruns the reference decoder with taps on all
//! seven projection inputs per layer so whole-model AWQ/GPTQ can run
//! exactly as the offline converter would.

use crate::config::ModelConfig;
use crate::kv_cache::{KvCacheF32, KvStore};
use crate::reference::{rmsnorm, rope_rotate, silu, softmax};
use crate::tensor::dot;
use crate::weights::ModelWeights;

/// Which projection of a layer a sample feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProjectionSite {
    /// Q/K/V share the post-norm input.
    Qkv,
    /// Output projection input (concatenated attention output).
    Output,
    /// Gate/up share the post-norm input.
    GateUp,
    /// Down projection input (gated activations).
    Down,
}

impl ProjectionSite {
    /// All sites in streaming order.
    pub const ALL: [ProjectionSite; 4] = [
        ProjectionSite::Qkv,
        ProjectionSite::Output,
        ProjectionSite::GateUp,
        ProjectionSite::Down,
    ];
}

/// Captured calibration set: per (layer, site), flattened row-major
/// samples.
#[derive(Debug, Clone)]
pub struct CalibrationSet {
    n_layers: usize,
    d_model: usize,
    d_ff: usize,
    /// `data[layer * 4 + site]`, each `samples × width` row-major.
    data: Vec<Vec<f32>>,
    samples: usize,
}

impl CalibrationSet {
    /// Samples captured per site.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The captured activations for one (layer, site).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn site(&self, layer: usize, site: ProjectionSite) -> &[f32] {
        assert!(layer < self.n_layers, "layer out of range");
        let idx = layer * 4
            + match site {
                ProjectionSite::Qkv => 0,
                ProjectionSite::Output => 1,
                ProjectionSite::GateUp => 2,
                ProjectionSite::Down => 3,
            };
        &self.data[idx]
    }

    /// Input width of a site.
    pub fn width(&self, site: ProjectionSite) -> usize {
        match site {
            ProjectionSite::Down => self.d_ff,
            _ => self.d_model,
        }
    }
}

/// Runs the reference model over `tokens` and captures every projection
/// input (an instrumented copy of the reference forward pass; the
/// uninstrumented one stays allocation-lean for tests).
///
/// # Panics
///
/// Panics if `tokens` is empty or exceeds the context window.
pub fn capture(weights: &ModelWeights, tokens: &[usize]) -> CalibrationSet {
    assert!(!tokens.is_empty(), "empty calibration prompt");
    let cfg: &ModelConfig = weights.config();
    assert!(
        tokens.len() <= cfg.max_seq_len,
        "prompt exceeds context window"
    );
    let d = cfg.d_model;
    let hd = cfg.head_dim();
    let group = cfg.n_heads / cfg.n_kv_heads;
    let mut cache = KvCacheF32::new(cfg);
    let mut data = vec![Vec::new(); cfg.n_layers * 4];

    for (pos, &token) in tokens.iter().enumerate() {
        let mut x: Vec<f32> = weights.embedding.row(token).to_vec();
        for (layer_idx, layer) in weights.layers.iter().enumerate() {
            let xn = rmsnorm(&x, &layer.attn_norm, cfg.norm_eps);
            data[layer_idx * 4].extend_from_slice(&xn);

            let mut q = layer.wq.matvec(&xn);
            let mut k = layer.wk.matvec(&xn);
            let v = layer.wv.matvec(&xn);
            for h in 0..cfg.n_heads {
                rope_rotate(&mut q[h * hd..(h + 1) * hd], pos, cfg.rope_base);
            }
            for h in 0..cfg.n_kv_heads {
                rope_rotate(&mut k[h * hd..(h + 1) * hd], pos, cfg.rope_base);
            }
            cache.append(layer_idx, &k, &v);

            let scale = 1.0 / (hd as f32).sqrt();
            let mut attn_out = vec![0.0f32; d];
            for h in 0..cfg.n_heads {
                let kv_head = h / group;
                let qh = &q[h * hd..(h + 1) * hd];
                let scores: Vec<f32> = (0..=pos)
                    .map(|t| dot(qh, &cache.key(layer_idx, t, kv_head)) * scale)
                    .collect();
                let probs = softmax(&scores);
                let out = &mut attn_out[h * hd..(h + 1) * hd];
                for (t, &p) in probs.iter().enumerate() {
                    for (o, &vv) in out.iter_mut().zip(&cache.value(layer_idx, t, kv_head)) {
                        *o += p * vv;
                    }
                }
            }
            data[layer_idx * 4 + 1].extend_from_slice(&attn_out);
            let proj = layer.wo.matvec(&attn_out);
            for (xi, pi) in x.iter_mut().zip(&proj) {
                *xi += pi;
            }

            let xn = rmsnorm(&x, &layer.mlp_norm, cfg.norm_eps);
            data[layer_idx * 4 + 2].extend_from_slice(&xn);
            let gate = layer.w_gate.matvec(&xn);
            let up = layer.w_up.matvec(&xn);
            let inner: Vec<f32> = gate.iter().zip(&up).map(|(&g, &u)| silu(g) * u).collect();
            data[layer_idx * 4 + 3].extend_from_slice(&inner);
            let down = layer.w_down.matvec(&inner);
            for (xi, di) in x.iter_mut().zip(&down) {
                *xi += di;
            }
        }
    }

    CalibrationSet {
        n_layers: cfg.n_layers,
        d_model: d,
        d_ff: cfg.d_ff,
        data,
        samples: tokens.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_shapes_are_consistent() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 3);
        let calib = capture(&w, &[1, 2, 3, 4, 5]);
        assert_eq!(calib.samples(), 5);
        for layer in 0..cfg.n_layers {
            for site in ProjectionSite::ALL {
                let data = calib.site(layer, site);
                assert_eq!(data.len(), 5 * calib.width(site), "{layer} {site:?}");
                assert!(data.iter().all(|v| v.is_finite()));
            }
        }
        assert_eq!(calib.width(ProjectionSite::Down), cfg.d_ff);
        assert_eq!(calib.width(ProjectionSite::Qkv), cfg.d_model);
    }

    #[test]
    fn captured_inputs_are_normalized_where_expected() {
        // Post-RMSNorm inputs have (weighted) unit RMS — a structural
        // check that the taps sit where they claim.
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 9);
        let calib = capture(&w, &[10, 20, 30]);
        let qkv = calib.site(0, ProjectionSite::Qkv);
        let rms = (qkv.iter().map(|v| v * v).sum::<f32>() / qkv.len() as f32).sqrt();
        // Gains are drawn from 0.8..1.2, so RMS sits near 1.
        assert!((0.6..1.5).contains(&rms), "rms {rms}");
    }

    #[test]
    fn capture_is_deterministic() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 4);
        let a = capture(&w, &[7, 8, 9]);
        let b = capture(&w, &[7, 8, 9]);
        assert_eq!(
            a.site(1, ProjectionSite::Down),
            b.site(1, ProjectionSite::Down)
        );
    }

    #[test]
    #[should_panic(expected = "empty calibration prompt")]
    fn empty_prompt_rejected() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 0);
        let _ = capture(&w, &[]);
    }
}
