//! A minimal row-major f32 matrix — all the linear algebra the reference
//! implementation needs.

/// Row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use zllm_model::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Matrix { rows, cols, data }
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row slices (for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or there are none.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "operand length mismatch");
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut acc = 0.0f32;
                for (a, b) in row.iter().zip(x) {
                    acc += a * b;
                }
                acc
            })
            .collect()
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.data().len(), 6);
    }

    #[test]
    fn matvec_known_result() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        assert_eq!(m.matvec(&[3.0, 5.0]), vec![3.0, 10.0, 8.0]);
    }

    #[test]
    fn zeros_matvec() {
        let m = Matrix::zeros(4, 4);
        assert_eq!(m.matvec(&[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "buffer does not match")]
    fn dimension_mismatch_rejected() {
        let _ = Matrix::new(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "operand length mismatch")]
    fn matvec_length_checked() {
        let _ = Matrix::zeros(2, 3).matvec(&[0.0; 2]);
    }
}
