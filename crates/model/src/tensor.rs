//! A minimal row-major f32 matrix — all the linear algebra the reference
//! implementation needs.

/// Row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use zllm_model::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Matrix { rows, cols, data }
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row slices (for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or there are none.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(x, &mut out);
        out
    }

    /// [`Matrix::matvec`] into a caller-provided buffer, so decode loops can
    /// reuse scratch instead of allocating a fresh `Vec` per token.
    ///
    /// With fast kernels enabled ([`zllm_fp16::fast_kernels_enabled`]) the
    /// rows are computed by a 4-row blocked kernel — four independent
    /// accumulators sharing each pass over `x` — and, for large matrices,
    /// split across worker threads by output-row ranges. Every row's serial
    /// f32 accumulation stays in column order, so the output is
    /// bit-identical to the scalar path for any block size or thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.cols, "operand length mismatch");
        out.clear();
        out.resize(self.rows, 0.0);
        if !zllm_fp16::fast_kernels_enabled() {
            for (r, slot) in out.iter_mut().enumerate() {
                *slot = row_dot(self.row(r), x);
            }
            return;
        }
        // Row-range fan-out pays for itself only on big weight matrices;
        // check the size first so small matvecs skip the thread-count
        // lookup entirely.
        const PAR_ELEMS: usize = 1 << 16;
        let threads = if self.rows * self.cols >= PAR_ELEMS {
            zllm_par::max_threads()
        } else {
            1
        };
        if threads > 1 && self.rows >= 2 {
            let chunk = self.rows.div_ceil(threads).max(1);
            let ranges: Vec<(usize, usize)> = (0..self.rows)
                .step_by(chunk)
                .map(|lo| (lo, (lo + chunk).min(self.rows)))
                .collect();
            let parts = zllm_par::par_map(ranges, |(lo, hi)| {
                let mut part = vec![0.0f32; hi - lo];
                self.matvec_rows_blocked(x, lo, hi, &mut part);
                (lo, part)
            });
            for (lo, part) in parts {
                out[lo..lo + part.len()].copy_from_slice(&part);
            }
        } else {
            self.matvec_rows_blocked(x, 0, self.rows, out);
        }
    }

    /// The 4-row blocked kernel over rows `lo..hi`, writing `out[r - lo]`.
    /// Each accumulator runs the exact scalar column-order sum for its row;
    /// blocking only interleaves *independent* rows for ILP and x-reuse.
    fn matvec_rows_blocked(&self, x: &[f32], lo: usize, hi: usize, out: &mut [f32]) {
        let mut r = lo;
        while r + 4 <= hi {
            let r0 = self.row(r);
            let r1 = self.row(r + 1);
            let r2 = self.row(r + 2);
            let r3 = self.row(r + 3);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for c in 0..self.cols {
                let xv = x[c];
                a0 += r0[c] * xv;
                a1 += r1[c] * xv;
                a2 += r2[c] * xv;
                a3 += r3[c] * xv;
            }
            out[r - lo] = a0;
            out[r + 1 - lo] = a1;
            out[r + 2 - lo] = a2;
            out[r + 3 - lo] = a3;
            r += 4;
        }
        while r < hi {
            out[r - lo] = row_dot(self.row(r), x);
            r += 1;
        }
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// One matvec row: serial `acc += a * b` in column order (the reference
/// numerics every fast variant must reproduce bit-for-bit).
fn row_dot(row: &[f32], x: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (a, b) in row.iter().zip(x) {
        acc += a * b;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.data().len(), 6);
    }

    #[test]
    fn matvec_known_result() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        assert_eq!(m.matvec(&[3.0, 5.0]), vec![3.0, 10.0, 8.0]);
    }

    #[test]
    fn zeros_matvec() {
        let m = Matrix::zeros(4, 4);
        assert_eq!(m.matvec(&[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "buffer does not match")]
    fn dimension_mismatch_rejected() {
        let _ = Matrix::new(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "operand length mismatch")]
    fn matvec_length_checked() {
        let _ = Matrix::zeros(2, 3).matvec(&[0.0; 2]);
    }

    /// Deterministic pseudo-random f32 buffer (xorshift).
    fn noise(seed: u64, n: usize) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn blocked_matvec_matches_scalar_bit_for_bit() {
        // Shapes chosen to hit the remainder rows (rows % 4 != 0), the
        // single-row case, and a matrix big enough for the parallel split.
        for (rows, cols) in [(1, 5), (3, 7), (4, 16), (7, 33), (130, 512)] {
            let m = Matrix::new(
                rows,
                cols,
                noise(rows as u64 * 31 + cols as u64, rows * cols),
            );
            let x = noise(977, cols);
            let scalar: Vec<f32> = (0..rows).map(|r| super::row_dot(m.row(r), &x)).collect();
            for threads in [Some(1), Some(3), None] {
                zllm_par::set_max_threads(threads);
                let fast = m.matvec(&x);
                assert_eq!(fast.len(), scalar.len());
                for (r, (got, want)) in fast.iter().zip(&scalar).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "rows {rows}, cols {cols}, threads {threads:?}, row {r}"
                    );
                }
            }
            zllm_par::set_max_threads(None);
        }
    }

    #[test]
    fn matvec_into_reuses_buffer() {
        let m = Matrix::new(3, 4, noise(1, 12));
        let x = noise(2, 4);
        let mut out = vec![9.0; 17];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, m.matvec(&x));
    }
}
