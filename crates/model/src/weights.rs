//! Seeded synthetic model weights.
//!
//! Trained checkpoints are unavailable in this environment; every behaviour
//! the paper measures (quantization error structure, layout, bandwidth,
//! cycle counts) depends on tensor *shapes and statistics*, not on trained
//! values. Weights are drawn from a scaled uniform distribution
//! (`±√(3/d_in)`, unit-variance-matched to standard init) with a few
//! *salient input channels* amplified per layer so that activation-aware
//! quantization has the structure it exploits in real checkpoints.

use crate::config::ModelConfig;
use crate::tensor::Matrix;
use zllm_rng::StdRng;

/// Weights of one transformer block.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection, `d_model × d_model`.
    pub wq: Matrix,
    /// Key projection, `kv_dim × d_model`.
    pub wk: Matrix,
    /// Value projection, `kv_dim × d_model`.
    pub wv: Matrix,
    /// Output projection, `d_model × d_model`.
    pub wo: Matrix,
    /// SwiGLU gate projection, `d_ff × d_model`.
    pub w_gate: Matrix,
    /// SwiGLU up projection, `d_ff × d_model`.
    pub w_up: Matrix,
    /// Down projection, `d_model × d_ff`.
    pub w_down: Matrix,
    /// Pre-attention RMSNorm gain.
    pub attn_norm: Vec<f32>,
    /// Pre-MLP RMSNorm gain.
    pub mlp_norm: Vec<f32>,
}

/// A complete model: embedding, blocks, final norm and LM head.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    config: ModelConfig,
    /// Token embedding table, `vocab × d_model`.
    pub embedding: Matrix,
    /// Transformer blocks.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// LM head, `vocab × d_model`.
    pub lm_head: Matrix,
}

/// Refuse to materialise models above this parameter count: functional
/// simulation is for scaled-down shapes; the 7B performance studies are
/// trace-driven and never allocate weights.
pub const MAX_MATERIALIZED_PARAMS: u64 = 200_000_000;

impl ModelWeights {
    /// Generates deterministic synthetic weights.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or its parameter count
    /// exceeds [`MAX_MATERIALIZED_PARAMS`].
    pub fn generate(config: &ModelConfig, seed: u64) -> ModelWeights {
        config.validate().expect("invalid model configuration");
        assert!(
            config.param_count() <= MAX_MATERIALIZED_PARAMS,
            "refusing to materialise {} parameters; use the trace-driven path",
            config.param_count()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d_model;
        let kv = config.kv_dim();
        let ff = config.d_ff;

        // A handful of salient input channels per layer, as observed in
        // real LLMs (the phenomenon AWQ exploits).
        let salient: Vec<usize> = (0..3).map(|_| rng.gen_range(0..d)).collect();

        fn gen_matrix(rng: &mut StdRng, rows: usize, cols: usize, boost: &[usize]) -> Matrix {
            let limit = (3.0 / cols as f32).sqrt();
            let data = (0..rows * cols)
                .map(|i| {
                    let c = i % cols;
                    let base = rng.gen_range(-limit..limit);
                    if boost.contains(&c) {
                        base * 0.2 // salient channels carry big activations,
                                   // so their weights are trained small
                    } else {
                        base
                    }
                })
                .collect();
            Matrix::new(rows, cols, data)
        }

        let layers = (0..config.n_layers)
            .map(|_| LayerWeights {
                wq: gen_matrix(&mut rng, d, d, &salient),
                wk: gen_matrix(&mut rng, kv, d, &salient),
                wv: gen_matrix(&mut rng, kv, d, &salient),
                wo: gen_matrix(&mut rng, d, d, &[]),
                w_gate: gen_matrix(&mut rng, ff, d, &salient),
                w_up: gen_matrix(&mut rng, ff, d, &salient),
                w_down: gen_matrix(&mut rng, d, ff, &[]),
                attn_norm: (0..d).map(|_| rng.gen_range(0.8f32..1.2)).collect(),
                mlp_norm: (0..d).map(|_| rng.gen_range(0.8f32..1.2)).collect(),
            })
            .collect();

        let embedding = gen_matrix(&mut rng, config.vocab_size, d, &[]);
        let lm_head = gen_matrix(&mut rng, config.vocab_size, d, &[]);
        let final_norm = (0..d).map(|_| rng.gen_range(0.8f32..1.2)).collect();

        ModelWeights {
            config: config.clone(),
            embedding,
            layers,
            final_norm,
            lm_head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Iterates over every linear projection in streaming order (the order
    /// the accelerator fetches them per token): per layer Q, K, V, O, gate,
    /// up, down, then the LM head.
    pub fn projections(&self) -> impl Iterator<Item = (&'static str, &Matrix)> {
        self.layers
            .iter()
            .flat_map(|l| {
                [
                    ("wq", &l.wq),
                    ("wk", &l.wk),
                    ("wv", &l.wv),
                    ("wo", &l.wo),
                    ("w_gate", &l.w_gate),
                    ("w_up", &l.w_up),
                    ("w_down", &l.w_down),
                ]
            })
            .chain(std::iter::once(("lm_head", &self.lm_head)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ModelConfig::test_small();
        let a = ModelWeights::generate(&cfg, 99);
        let b = ModelWeights::generate(&cfg, 99);
        assert_eq!(a.layers[0].wq.data(), b.layers[0].wq.data());
        let c = ModelWeights::generate(&cfg, 100);
        assert_ne!(a.layers[0].wq.data(), c.layers[0].wq.data());
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ModelConfig::test_small_gqa();
        let w = ModelWeights::generate(&cfg, 1);
        assert_eq!(w.layers.len(), cfg.n_layers);
        let l = &w.layers[0];
        assert_eq!((l.wq.rows(), l.wq.cols()), (cfg.d_model, cfg.d_model));
        assert_eq!((l.wk.rows(), l.wk.cols()), (cfg.kv_dim(), cfg.d_model));
        assert_eq!((l.w_gate.rows(), l.w_gate.cols()), (cfg.d_ff, cfg.d_model));
        assert_eq!((l.w_down.rows(), l.w_down.cols()), (cfg.d_model, cfg.d_ff));
        assert_eq!(w.embedding.rows(), cfg.vocab_size);
        assert_eq!(w.final_norm.len(), cfg.d_model);
    }

    #[test]
    fn weights_have_sane_scale() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 5);
        let data = w.layers[0].wq.data();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        // Uniform(±√(3/d)) has variance 1/d.
        let want = 1.0 / cfg.d_model as f32;
        assert!((var - want).abs() < want * 0.5, "var {var}, want ~{want}");
    }

    #[test]
    fn projection_iterator_covers_model() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 2);
        let projections: Vec<_> = w.projections().collect();
        assert_eq!(projections.len(), cfg.n_layers * 7 + 1);
        assert_eq!(projections.last().expect("nonempty").0, "lm_head");
    }

    #[test]
    #[should_panic(expected = "refusing to materialise")]
    fn large_models_not_materialised() {
        let _ = ModelWeights::generate(&ModelConfig::llama2_7b(), 0);
    }
}
