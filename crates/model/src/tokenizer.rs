//! A deterministic byte-level tokenizer — the "tokenizer & decode program"
//! that runs on the PS side of the deployment (Fig. 1).
//!
//! Real LLaMA tokenizers are BPE over a trained vocabulary; for a synthetic
//! model any deterministic, reversible mapping exercises the same PS↔PL
//! interface. This one maps bytes to ids (offset past the special tokens)
//! and adds a greedy digram-merge layer seeded from the vocabulary size so
//! that larger vocabularies genuinely produce shorter token streams.

/// Byte-level tokenizer with synthetic digram merges.
///
/// # Example
///
/// ```
/// use zllm_model::tokenizer::Tokenizer;
///
/// let tok = Tokenizer::new(512);
/// let ids = tok.encode("hello hardware");
/// assert_eq!(tok.decode(&ids), "hello hardware");
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab_size: usize,
    /// Digram merge table: (left id, right id) pairs, rank-ordered.
    merges: Vec<(u32, u32)>,
}

/// Beginning-of-sequence token id.
pub const BOS: u32 = 0;
/// End-of-sequence token id.
pub const EOS: u32 = 1;
/// First byte token id (byte `b` is id `BYTE_BASE + b`).
pub const BYTE_BASE: u32 = 2;

impl Tokenizer {
    /// Creates a tokenizer whose ids fit in `vocab_size`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 258` (specials + bytes).
    pub fn new(vocab_size: usize) -> Tokenizer {
        assert!(vocab_size >= 258, "vocabulary must cover specials + bytes");
        let n_merges = vocab_size - 258;
        // Deterministic synthetic merges: pair frequent ASCII letters.
        let common = b"etaoinshrdlucmfwypvbgkjqxz ";
        let mut merges = Vec::with_capacity(n_merges);
        'outer: for &a in common {
            for &b in common {
                if merges.len() >= n_merges {
                    break 'outer;
                }
                merges.push((BYTE_BASE + a as u32, BYTE_BASE + b as u32));
            }
        }
        Tokenizer { vocab_size, merges }
    }

    /// The vocabulary size ids are drawn from.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Encodes text to token ids (without BOS/EOS).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = text.bytes().map(|b| BYTE_BASE + b as u32).collect();
        // Greedy merge passes in rank order, as BPE applies them.
        for (rank, &(a, b)) in self.merges.iter().enumerate() {
            let merged_id = 258 + rank as u32;
            let mut out = Vec::with_capacity(ids.len());
            let mut i = 0;
            while i < ids.len() {
                if i + 1 < ids.len() && ids[i] == a && ids[i + 1] == b {
                    out.push(merged_id);
                    i += 2;
                } else {
                    out.push(ids[i]);
                    i += 1;
                }
            }
            ids = out;
        }
        ids
    }

    /// Decodes token ids back to text (lossy on invalid UTF-8).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut bytes = Vec::with_capacity(ids.len());
        for &id in ids {
            self.push_bytes(id, &mut bytes);
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn push_bytes(&self, id: u32, out: &mut Vec<u8>) {
        if id == BOS || id == EOS {
            return;
        }
        if id < 258 {
            out.push((id - BYTE_BASE) as u8);
            return;
        }
        let (a, b) = self.merges[(id - 258) as usize];
        self.push_bytes(a, out);
        self.push_bytes(b, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ascii() {
        let tok = Tokenizer::new(512);
        for text in ["hello world", "the rain in spain", "", "a", "zzzz  zzzz"] {
            assert_eq!(tok.decode(&tok.encode(text)), text);
        }
    }

    #[test]
    fn roundtrip_utf8() {
        let tok = Tokenizer::new(300);
        let text = "héllo wörld — 你好";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn merges_shorten_common_text() {
        let small = Tokenizer::new(258); // no merges
        let big = Tokenizer::new(2048);
        let text = "the theory of the thing is that the theory theorises";
        assert!(big.encode(text).len() < small.encode(text).len());
    }

    #[test]
    fn ids_stay_in_vocabulary() {
        let tok = Tokenizer::new(400);
        for id in tok.encode("some representative text with spaces") {
            assert!((id as usize) < tok.vocab_size());
        }
    }

    #[test]
    fn specials_decode_to_nothing() {
        let tok = Tokenizer::new(258);
        assert_eq!(tok.decode(&[BOS, EOS]), "");
    }

    #[test]
    #[should_panic(expected = "must cover specials")]
    fn tiny_vocab_rejected() {
        let _ = Tokenizer::new(100);
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_arbitrary_strings(text in ".*") {
                let tok = Tokenizer::new(1024);
                prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
            }
        }
    }
}
