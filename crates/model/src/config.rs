//! Model geometries for every model the paper's evaluation touches.

/// Geometry of a LLaMA-family decoder-only transformer.
///
/// GPT-2 and ChatGLM presets are expressed in LLaMA-equivalent shapes
/// (their parameter counts and therefore their bandwidth footprints match;
/// architectural differences such as learned positional embeddings do not
/// affect the decode-bandwidth story the paper studies).
///
/// # Example
///
/// ```
/// use zllm_model::ModelConfig;
///
/// let cfg = ModelConfig::llama2_7b();
/// let params = cfg.param_count();
/// assert!((6.5e9..7.0e9).contains(&(params as f64)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Hidden (model) dimension.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Key/value heads (< `n_heads` for GQA/MQA).
    pub n_kv_heads: usize,
    /// MLP intermediate dimension.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum context length the deployment supports.
    pub max_seq_len: usize,
    /// RMSNorm epsilon.
    pub norm_eps: f32,
    /// RoPE base frequency.
    pub rope_base: f64,
}

impl ModelConfig {
    /// LLaMA2-7B: the model the paper deploys (context capped at 1024 by
    /// the KV260's capacity budget).
    pub fn llama2_7b() -> ModelConfig {
        ModelConfig {
            name: "LLaMA2-7B".to_owned(),
            n_layers: 32,
            d_model: 4096,
            n_heads: 32,
            n_kv_heads: 32,
            d_ff: 11008,
            vocab_size: 32000,
            max_seq_len: 1024,
            norm_eps: 1e-5,
            rope_base: 10000.0,
        }
    }

    /// LLaMA2-13B: the shape that does *not* fit the KV260's 4 GB even
    /// at 4-bit — the capacity wall the tiered weight storage exists to
    /// cross (weights live on flash, a DDR-resident layer cache streams
    /// them through).
    pub fn llama2_13b() -> ModelConfig {
        ModelConfig {
            name: "LLaMA2-13B".to_owned(),
            n_layers: 40,
            d_model: 5120,
            n_heads: 40,
            n_kv_heads: 40,
            d_ff: 13824,
            vocab_size: 32000,
            max_seq_len: 1024,
            norm_eps: 1e-5,
            rope_base: 10000.0,
        }
    }

    /// TinyLlama-1.1B (SECDA-LLM and LlamaF's workload).
    pub fn tiny_llama_1_1b() -> ModelConfig {
        ModelConfig {
            name: "TinyLlama-1.1B".to_owned(),
            n_layers: 22,
            d_model: 2048,
            n_heads: 32,
            n_kv_heads: 4,
            d_ff: 5632,
            vocab_size: 32000,
            max_seq_len: 2048,
            norm_eps: 1e-5,
            rope_base: 10000.0,
        }
    }

    /// GPT-2 XL, 1.5B (DFX's workload), in LLaMA-equivalent shapes.
    pub fn gpt2_xl_1_5b() -> ModelConfig {
        ModelConfig {
            name: "GPT2-1.5B".to_owned(),
            n_layers: 48,
            d_model: 1600,
            n_heads: 25,
            n_kv_heads: 25,
            // GPT-2's MLP is 2 matrices of 4d; a 3-matrix SwiGLU of 8d/3
            // has the same parameter count.
            d_ff: 4267,
            vocab_size: 50257,
            max_seq_len: 1024,
            norm_eps: 1e-5,
            rope_base: 10000.0,
        }
    }

    /// ChatGLM2-6B (EdgeLLM's workload), in LLaMA-equivalent shapes
    /// (multi-query attention with 2 KV heads).
    pub fn chatglm2_6b() -> ModelConfig {
        ModelConfig {
            name: "ChatGLM-6B".to_owned(),
            n_layers: 28,
            d_model: 4096,
            n_heads: 32,
            n_kv_heads: 2,
            d_ff: 13696,
            vocab_size: 65024,
            max_seq_len: 2048,
            norm_eps: 1e-5,
            rope_base: 10000.0,
        }
    }

    /// A small shape for functional tests: same structure, minutes-not-days
    /// simulation scale.
    pub fn test_small() -> ModelConfig {
        ModelConfig {
            name: "test-small".to_owned(),
            n_layers: 2,
            d_model: 128,
            n_heads: 4,
            n_kv_heads: 4,
            d_ff: 256,
            vocab_size: 512,
            max_seq_len: 64,
            norm_eps: 1e-5,
            rope_base: 10000.0,
        }
    }

    /// A small GQA shape (KV heads < heads) for functional tests.
    pub fn test_small_gqa() -> ModelConfig {
        ModelConfig {
            name: "test-small-gqa".to_owned(),
            n_kv_heads: 2,
            ..ModelConfig::test_small()
        }
    }

    /// Dimension of one attention head.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// KV dimension (`n_kv_heads × head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.n_kv_heads * self.head_dim()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!(
                "d_model {} not divisible by n_heads {}",
                self.d_model, self.n_heads
            ));
        }
        if !self.n_heads.is_multiple_of(self.n_kv_heads) {
            return Err(format!(
                "n_heads {} not divisible by n_kv_heads {}",
                self.n_heads, self.n_kv_heads
            ));
        }
        if !self.head_dim().is_multiple_of(2) {
            return Err(format!(
                "head_dim {} must be even for RoPE",
                self.head_dim()
            ));
        }
        if self.n_layers == 0 || self.vocab_size == 0 || self.d_ff == 0 {
            return Err("layer count, vocabulary and d_ff must be non-zero".to_owned());
        }
        Ok(())
    }

    /// Parameters per transformer layer.
    pub fn params_per_layer(&self) -> u64 {
        let d = self.d_model as u64;
        let kv = self.kv_dim() as u64;
        let ff = self.d_ff as u64;
        // Q and O are d×d, K and V are kv×d; SwiGLU gate/up are ff×d and
        // down is d×ff; two RMSNorm vectors.
        2 * d * d + 2 * kv * d + 3 * d * ff + 2 * d
    }

    /// Total parameter count (embedding + layers + final norm + LM head).
    pub fn param_count(&self) -> u64 {
        let d = self.d_model as u64;
        let v = self.vocab_size as u64;
        v * d + self.n_layers as u64 * self.params_per_layer() + d + v * d
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} layers, d={}, heads={}/{}, ff={}, vocab={})",
            self.name,
            self.n_layers,
            self.d_model,
            self.n_heads,
            self.n_kv_heads,
            self.d_ff,
            self.vocab_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for cfg in [
            ModelConfig::llama2_7b(),
            ModelConfig::tiny_llama_1_1b(),
            ModelConfig::gpt2_xl_1_5b(),
            ModelConfig::chatglm2_6b(),
            ModelConfig::test_small(),
            ModelConfig::test_small_gqa(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn llama2_7b_parameter_count() {
        let cfg = ModelConfig::llama2_7b();
        let params = cfg.param_count() as f64;
        // ~6.74B including untied LM head.
        assert!((6.6e9..6.9e9).contains(&params), "params {params}");
        assert_eq!(cfg.head_dim(), 128);
        assert_eq!(cfg.kv_dim(), 4096);
    }

    #[test]
    fn tiny_llama_parameter_count() {
        let params = ModelConfig::tiny_llama_1_1b().param_count() as f64;
        assert!((1.0e9..1.3e9).contains(&params), "params {params}");
    }

    #[test]
    fn gpt2_parameter_count() {
        let params = ModelConfig::gpt2_xl_1_5b().param_count() as f64;
        assert!((1.4e9..1.8e9).contains(&params), "params {params}");
    }

    #[test]
    fn chatglm_parameter_count() {
        let params = ModelConfig::chatglm2_6b().param_count() as f64;
        assert!((5.5e9..6.8e9).contains(&params), "params {params}");
    }

    #[test]
    fn gqa_preset_reduces_kv_dim() {
        let cfg = ModelConfig::test_small_gqa();
        assert_eq!(cfg.kv_dim(), 2 * 32);
        assert!(cfg.kv_dim() < cfg.d_model);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ModelConfig::test_small();
        cfg.n_heads = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::test_small();
        cfg.n_kv_heads = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::test_small();
        cfg.n_layers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn display_contains_name() {
        assert!(ModelConfig::llama2_7b().to_string().contains("LLaMA2-7B"));
    }
}
