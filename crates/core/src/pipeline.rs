//! The fine-grained head-wise fused pipeline of Fig. 3, and its
//! coarse-grained comparison point.
//!
//! For one attention head the fused dataflow sequences:
//!
//! 1. **Q projection** (RoPE applied to Q on the fly as elements emerge),
//! 2. **K projection** (RoPE + current-token Q·K product on the fly;
//!    K quantization runs concurrently),
//! 3. **DOT** of the rotated Q against the historical key cache,
//! 4. **V projection** (V quantization concurrent; *softmax runs here*,
//!    which is legal because three passes over `ctx` scores finish before
//!    `head_dim × d_model / lanes` projection cycles do),
//! 5. **weighted V sum** over the historical value cache.
//!
//! [`head_timeline`] produces the stage intervals of both modes, and
//! [`softmax_hides`] checks the inequality that makes stage 4's fusion
//! sound — the load-bearing claim of §V-A.

use crate::config::PipelineMode;
use zllm_model::ModelConfig;

/// One pipeline stage of a single head's processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Stage name.
    pub name: &'static str,
    /// Start cycle (relative to the head's first cycle).
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
    /// `true` if this stage occupies the memory/VPU stream; `false` for
    /// SPU work running concurrently.
    pub dense: bool,
}

impl Stage {
    /// Stage duration in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// Per-head stage lengths (cycles at one beat per cycle).
#[derive(Debug, Clone, Copy)]
pub struct HeadShape {
    /// Cycles to stream one head's Q (or K, or V) projection rows.
    pub proj: u64,
    /// Cycles to stream the K (or V) history of one head.
    pub hist: u64,
    /// RoPE cycles for one head vector.
    pub rope: u64,
    /// Softmax cycles over `ctx + 1` scores.
    pub softmax: u64,
    /// KV quantization cycles for one head vector.
    pub quant: u64,
}

impl HeadShape {
    /// Computes the stage lengths for a model at context length `ctx`
    /// with `lanes` VPU lanes.
    pub fn new(model: &ModelConfig, ctx: usize, lanes: usize) -> HeadShape {
        let hd = model.head_dim() as u64;
        let d = model.d_model as u64;
        let beats_per_row = d.div_ceil(lanes as u64);
        // One head's projection: head_dim output rows.
        let proj = hd * beats_per_row;
        // History: ctx vectors of head_dim 8-bit codes, beat-aligned.
        let hist = (ctx as u64) * hd.div_ceil(64).max(1);
        HeadShape {
            proj,
            hist,
            rope: hd,
            softmax: 3 * (ctx as u64 + 1),
            quant: 2 * hd,
        }
    }
}

/// The §V-A soundness condition: the three softmax passes fit inside the
/// value projection, so probabilities are ready when the weighted sum
/// starts.
pub fn softmax_hides(model: &ModelConfig, ctx: usize, lanes: usize) -> bool {
    let s = HeadShape::new(model, ctx, lanes);
    s.softmax <= s.proj
}

/// Builds the stage timeline of one head.
///
/// In fused mode the dense stages abut seamlessly and the miscellaneous
/// stages overlap them; in coarse mode every stage serializes.
pub fn head_timeline(
    model: &ModelConfig,
    ctx: usize,
    lanes: usize,
    mode: PipelineMode,
) -> Vec<Stage> {
    let s = HeadShape::new(model, ctx, lanes);
    let mut stages = Vec::new();
    let mut t = 0u64;
    let dense = |name: &'static str, len: u64, t: &mut u64, out: &mut Vec<Stage>| {
        out.push(Stage {
            name,
            start: *t,
            end: *t + len,
            dense: true,
        });
        *t += len;
    };

    match mode {
        PipelineMode::Fused => {
            dense("q_proj", s.proj, &mut t, &mut stages);
            // RoPE(Q) overlaps the tail of the Q projection.
            stages.push(Stage {
                name: "rope_q",
                start: t.saturating_sub(s.rope),
                end: t,
                dense: false,
            });
            dense("k_proj", s.proj, &mut t, &mut stages);
            stages.push(Stage {
                name: "rope_k+qk_dot",
                start: t.saturating_sub(s.rope),
                end: t,
                dense: false,
            });
            stages.push(Stage {
                name: "k_quant",
                start: t.saturating_sub(s.quant),
                end: t,
                dense: false,
            });
            dense("k_hist_dot", s.hist, &mut t, &mut stages);
            let v_start = t;
            dense("v_proj", s.proj, &mut t, &mut stages);
            // Softmax runs inside the V projection window.
            stages.push(Stage {
                name: "softmax",
                start: v_start,
                end: v_start + s.softmax,
                dense: false,
            });
            stages.push(Stage {
                name: "v_quant",
                start: t.saturating_sub(s.quant),
                end: t,
                dense: false,
            });
            dense("weighted_v", s.hist, &mut t, &mut stages);
        }
        PipelineMode::Coarse => {
            dense("q_proj", s.proj, &mut t, &mut stages);
            dense("k_proj", s.proj, &mut t, &mut stages);
            dense("v_proj", s.proj, &mut t, &mut stages);
            // Serialized miscellaneous work.
            let misc = |name: &'static str, len: u64, t: &mut u64, out: &mut Vec<Stage>| {
                out.push(Stage {
                    name,
                    start: *t,
                    end: *t + len,
                    dense: false,
                });
                *t += len;
            };
            misc("rope_q", s.rope, &mut t, &mut stages);
            misc("rope_k", s.rope, &mut t, &mut stages);
            misc("k_quant", s.quant, &mut t, &mut stages);
            dense("k_hist_dot", s.hist, &mut t, &mut stages);
            misc("softmax", s.softmax, &mut t, &mut stages);
            dense("weighted_v", s.hist, &mut t, &mut stages);
            misc("v_quant", s.quant, &mut t, &mut stages);
        }
    }
    stages
}

/// Total cycles of one head (the end of its last stage).
pub fn head_cycles(model: &ModelConfig, ctx: usize, lanes: usize, mode: PipelineMode) -> u64 {
    head_timeline(model, ctx, lanes, mode)
        .iter()
        .map(|s| s.end)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_hides_for_llama2_7b_at_1024() {
        // The paper's design point: 3·(1024+1) = 3075 ≤ 128·32 = 4096.
        let cfg = ModelConfig::llama2_7b();
        assert!(softmax_hides(&cfg, 1023, 128));
        // And the condition genuinely breaks somewhere past the budget.
        assert!(!softmax_hides(&cfg, 2000, 128));
    }

    #[test]
    fn fused_head_is_pure_dense_time() {
        let cfg = ModelConfig::llama2_7b();
        let ctx = 512;
        let fused = head_cycles(&cfg, ctx, 128, PipelineMode::Fused);
        let s = HeadShape::new(&cfg, ctx, 128);
        // Dense stages only: 3 projections + 2 history passes.
        assert_eq!(fused, 3 * s.proj + 2 * s.hist);
    }

    #[test]
    fn coarse_head_is_strictly_slower() {
        let cfg = ModelConfig::llama2_7b();
        for ctx in [0usize, 64, 512, 1023] {
            let fused = head_cycles(&cfg, ctx, 128, PipelineMode::Fused);
            let coarse = head_cycles(&cfg, ctx, 128, PipelineMode::Coarse);
            assert!(
                coarse > fused,
                "ctx {ctx}: coarse {coarse} vs fused {fused}"
            );
        }
    }

    #[test]
    fn coarse_gap_grows_with_context() {
        let cfg = ModelConfig::llama2_7b();
        let gap = |ctx| {
            head_cycles(&cfg, ctx, 128, PipelineMode::Coarse)
                - head_cycles(&cfg, ctx, 128, PipelineMode::Fused)
        };
        assert!(gap(1023) > gap(64));
    }

    #[test]
    fn fused_timeline_misc_stages_overlap_dense() {
        let cfg = ModelConfig::llama2_7b();
        let stages = head_timeline(&cfg, 256, 128, PipelineMode::Fused);
        let dense_end = stages
            .iter()
            .filter(|s| s.dense)
            .map(|s| s.end)
            .max()
            .expect("has dense");
        for s in stages.iter().filter(|s| !s.dense) {
            assert!(
                s.end <= dense_end,
                "misc stage {} ends at {} beyond dense end {dense_end}",
                s.name,
                s.end
            );
        }
    }

    #[test]
    fn fused_dense_stages_abut() {
        let cfg = ModelConfig::test_small();
        let stages = head_timeline(&cfg, 8, 128, PipelineMode::Fused);
        let dense: Vec<&Stage> = stages.iter().filter(|s| s.dense).collect();
        for pair in dense.windows(2) {
            assert_eq!(
                pair[0].end, pair[1].start,
                "{} → {}",
                pair[0].name, pair[1].name
            );
        }
    }

    #[test]
    fn stage_durations_positive_for_nonzero_ctx() {
        let cfg = ModelConfig::test_small();
        for s in head_timeline(&cfg, 4, 128, PipelineMode::Coarse) {
            assert!(s.cycles() > 0, "stage {} has zero cycles", s.name);
        }
    }
}
