//! The Memory Control Unit (Fig. 5A): command generation, the 4×128-bit
//! port split/merge, and the stream demultiplexer.
//!
//! The PS tokenizes the prompt and writes the token index over AXI-Lite;
//! the command generator expands it into the token's burst schedule, each
//! command split four ways so the four 128-bit HP ports fetch interleaved
//! lanes of the same 512-bit words. On-chip the four streams are
//! synchronised and concatenated back into 512-bit beats, and a
//! demultiplexer separates zero points, scales and weights according to
//! the interleaved format's superblock structure.

use zllm_layout::beat::Beat;
use zllm_layout::weight::WeightFormat;
use zllm_layout::BurstDescriptor;

/// One 128-bit lane command for a single HP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortCommand {
    /// Port index (0..4).
    pub port: u32,
    /// Byte address of the port's first 128-bit lane word.
    pub addr: u64,
    /// Number of 128-bit words the port fetches.
    pub words: u64,
    /// Stride between consecutive lane words (the full bus width).
    pub stride: u64,
}

/// Splits one 512-bit burst into the four per-port lane commands.
pub fn split_command(burst: BurstDescriptor) -> [PortCommand; 4] {
    std::array::from_fn(|p| PortCommand {
        port: p as u32,
        addr: burst.addr + 16 * p as u64,
        words: burst.beats as u64,
        stride: 64,
    })
}

/// Re-merges four synchronized 128-bit lane streams into 512-bit beats —
/// the inverse of [`split_command`], as the on-chip synchronizer does.
///
/// # Panics
///
/// Panics if the four streams have different lengths.
pub fn merge_streams(lanes: &[Vec<[u8; 16]>; 4]) -> Vec<Beat> {
    let n = lanes[0].len();
    assert!(
        lanes.iter().all(|l| l.len() == n),
        "lane streams must be synchronized"
    );
    (0..n)
        .map(|i| {
            let mut beat = Beat::zeroed();
            for (p, lane) in lanes.iter().enumerate() {
                beat.as_bytes_mut()[16 * p..16 * (p + 1)].copy_from_slice(&lane[i]);
            }
            beat
        })
        .collect()
}

/// What one demultiplexed beat contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamItem {
    /// A beat of 4-bit zero points (one per group of the superblock).
    Zeros,
    /// A beat of FP16 scales.
    Scales,
    /// A beat of 4-bit weight codes (one quantization group).
    Weights,
}

/// The stream demultiplexer: a counter FSM over the superblock structure.
///
/// # Example
///
/// ```
/// use zllm_accel::mcu::{StreamDemux, StreamItem};
/// use zllm_layout::weight::WeightFormat;
///
/// let mut demux = StreamDemux::new(WeightFormat::kv260());
/// assert_eq!(demux.next_item(), StreamItem::Zeros);
/// assert_eq!(demux.next_item(), StreamItem::Scales);
/// ```
#[derive(Debug, Clone)]
pub struct StreamDemux {
    format: WeightFormat,
    /// Position within the current superblock, in beats.
    pos: usize,
}

impl StreamDemux {
    /// Creates a demux for the given format, positioned at a superblock
    /// boundary.
    pub fn new(format: WeightFormat) -> StreamDemux {
        StreamDemux { format, pos: 0 }
    }

    /// Classifies the next incoming beat and advances the FSM.
    pub fn next_item(&mut self) -> StreamItem {
        let scale_beats = self.format.scale_beats_per_superblock();
        let item = if self.pos == 0 {
            StreamItem::Zeros
        } else if self.pos <= scale_beats {
            StreamItem::Scales
        } else {
            StreamItem::Weights
        };
        self.pos = (self.pos + 1) % self.format.superblock_beats();
        item
    }

    /// Classifies a whole stream.
    pub fn classify(&mut self, beats: usize) -> Vec<StreamItem> {
        (0..beats).map(|_| self.next_item()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_lanes() {
        let cmds = split_command(BurstDescriptor::new(0x1000, 8));
        assert_eq!(cmds[0].addr, 0x1000);
        assert_eq!(cmds[3].addr, 0x1000 + 48);
        assert!(cmds.iter().all(|c| c.words == 8 && c.stride == 64));
    }

    #[test]
    fn split_then_merge_is_identity() {
        // Build a known 2-beat memory image, split it across ports, merge.
        let mut memory = [0u8; 128];
        for (i, b) in memory.iter_mut().enumerate() {
            *b = (i * 7 % 251) as u8;
        }
        let burst = BurstDescriptor::new(0, 2);
        let cmds = split_command(burst);
        let lanes: [Vec<[u8; 16]>; 4] = std::array::from_fn(|p| {
            (0..cmds[p].words)
                .map(|w| {
                    let base = (cmds[p].addr + w * cmds[p].stride) as usize;
                    let mut lane = [0u8; 16];
                    lane.copy_from_slice(&memory[base..base + 16]);
                    lane
                })
                .collect()
        });
        let beats = merge_streams(&lanes);
        assert_eq!(beats.len(), 2);
        for (i, beat) in beats.iter().enumerate() {
            assert_eq!(&beat.as_bytes()[..], &memory[i * 64..(i + 1) * 64]);
        }
    }

    #[test]
    fn demux_follows_superblock_structure() {
        let fmt = WeightFormat::kv260();
        let mut demux = StreamDemux::new(fmt);
        let items = demux.classify(fmt.superblock_beats() * 2);
        assert_eq!(items[0], StreamItem::Zeros);
        for item in items.iter().take(5).skip(1) {
            assert_eq!(*item, StreamItem::Scales);
        }
        for item in items.iter().take(133).skip(5) {
            assert_eq!(*item, StreamItem::Weights);
        }
        // Second superblock starts over.
        assert_eq!(items[133], StreamItem::Zeros);
        let weights = items.iter().filter(|i| **i == StreamItem::Weights).count();
        assert_eq!(weights, 256);
    }

    #[test]
    #[should_panic(expected = "synchronized")]
    fn merge_requires_synchronized_lanes() {
        let lanes: [Vec<[u8; 16]>; 4] = [
            vec![[0; 16]],
            vec![[0; 16]],
            vec![[0; 16]],
            vec![[0; 16], [0; 16]],
        ];
        let _ = merge_streams(&lanes);
    }
}
