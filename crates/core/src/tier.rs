//! Tiered weight storage: prefetch policies and the per-token tier walk.
//!
//! When a model's weights live on flash ([`zllm_ddr::FlashDevice`]) and
//! only a DDR budget's worth of layers is resident
//! ([`zllm_layout::WeightCache`]), every decode token must answer: *is the
//! next layer in DDR, and if not, how long does the pipeline stall?* This
//! module prices that question. [`crate::DecodeEngine`] first prices the
//! token's schedule exactly as before, then walks the schedule's layer
//! segments against the flash timeline: a layer's decode occupies its
//! byte-share of the token wall, prefetches issue while earlier layers
//! decode, and a layer that is not ready when the walk reaches it stalls
//! the pipeline for exactly the remaining fetch time.
//!
//! Two policies drive the walk behind one trait:
//!
//! * [`BlindLru`] — the FlashLLM/FlexGen-style strawman: aggressively
//!   prefetch the next `PREFETCH_WINDOW` layers in address order and
//!   evict least-recently-used to make room. Semantic-blind: at tight
//!   budgets the window's own fetches evict each other (and layers about
//!   to be used), so most flash traffic is wasted and nearly every layer
//!   becomes a demand miss behind a backed-up link.
//! * [`ScheduleAware`] — the co-designed policy: decode replays the exact
//!   same layer sequence every token and the schedule builder knows it,
//!   so the policy splits the budget into a *pinned* set (never evicted)
//!   and a small *streamed* set spread evenly across the cycle, fetched
//!   just-in-time into the remaining slot(s). Per token it fetches each
//!   non-resident layer exactly once, overlapped with decode — the
//!   minimum traffic any policy can achieve at that budget.
//!
//! Initial residency is free: the boot-time model load is not part of
//! decode throughput, so the cache starts warm in the policy's preferred
//! order.

use zllm_ddr::{stage_fetch, FlashConfig, FlashDevice, FlashStats, MemorySystem};
use zllm_layout::{BurstDescriptor, WeightCache};
use zllm_telemetry::{Counter, Gauge, MetricsRegistry};

use crate::image::ModelImage;

/// The strawman's fixed lookahead (SNIPPETS §1: FlashLLM's aggressive
/// sequential pipelining).
pub const PREFETCH_WINDOW: usize = 4;

/// A layer-granular prefetch-and-eviction policy over a [`WeightCache`].
///
/// The engine's tier walk calls `prefetch_targets` after each layer it
/// decodes and `victim` whenever an incoming layer needs room; `plan`
/// runs once, before the first token, with the budget's layer capacity.
pub trait PrefetchPolicy: std::fmt::Debug {
    /// Short policy name for reports and telemetry.
    fn name(&self) -> &'static str;

    /// One-time planning hook: the number of layers in the cycle and how
    /// many the budget can hold at once.
    fn plan(&mut self, _n_layers: usize, _capacity_layers: usize) {}

    /// The order to warm the cache in at load time; the engine inserts
    /// layers in this order until the budget is full.
    fn warm_order(&self, n_layers: usize) -> Vec<usize> {
        (0..n_layers).collect()
    }

    /// Layers to try to prefetch while `current` decodes, in issue
    /// order. Already-resident targets are skipped by the walk.
    fn prefetch_targets(&self, current: usize, n_layers: usize, cache: &WeightCache) -> Vec<usize>;

    /// The layer to evict to make room for `incoming` while `current`
    /// decodes, or `None` to decline (the walk then skips the prefetch;
    /// for a demand fetch the walk falls back to LRU so forward progress
    /// never depends on the policy).
    fn victim(
        &self,
        incoming: usize,
        current: usize,
        n_layers: usize,
        cache: &WeightCache,
    ) -> Option<usize>;
}

/// Cyclic distance from `current` to the next use of `layer` (layers are
/// visited in index order every token). `0` means "needed right now".
fn next_use_distance(current: usize, layer: usize, n_layers: usize) -> usize {
    (layer + n_layers - current) % n_layers
}

/// The semantic-blind strawman: sequential window prefetch + LRU
/// eviction (FlashLLM / FlexGen style, `PREFETCH_WINDOW` lookahead).
#[derive(Debug, Clone)]
pub struct BlindLru {
    /// Lookahead depth in layers.
    pub window: usize,
}

impl Default for BlindLru {
    fn default() -> BlindLru {
        BlindLru {
            window: PREFETCH_WINDOW,
        }
    }
}

impl PrefetchPolicy for BlindLru {
    fn name(&self) -> &'static str {
        "blind-lru"
    }

    fn prefetch_targets(&self, current: usize, n_layers: usize, cache: &WeightCache) -> Vec<usize> {
        (1..=self.window.min(n_layers.saturating_sub(1)))
            .map(|j| (current + j) % n_layers)
            .filter(|&l| !cache.resident(l))
            .collect()
    }

    fn victim(
        &self,
        incoming: usize,
        current: usize,
        _n_layers: usize,
        cache: &WeightCache,
    ) -> Option<usize> {
        // Blind: whoever is least-recently used, even if it is a layer
        // the window just fetched or one about to be decoded.
        cache.lru(&[current, incoming])
    }
}

/// The schedule-aware policy: pin all but the streamed remainder, spread
/// the streamed layers evenly across the cycle, fetch them just-in-time.
#[derive(Debug, Clone, Default)]
pub struct ScheduleAware {
    streamed: Vec<bool>,
}

impl ScheduleAware {
    fn is_streamed(&self, layer: usize) -> bool {
        self.streamed.get(layer).copied().unwrap_or(true)
    }
}

impl PrefetchPolicy for ScheduleAware {
    fn name(&self) -> &'static str {
        "schedule-aware"
    }

    fn plan(&mut self, n_layers: usize, capacity_layers: usize) {
        self.streamed = vec![false; n_layers];
        if capacity_layers >= n_layers {
            return; // everything resident, nothing streams
        }
        // Pin capacity−1 layers, stream the other m through the last
        // slot. Spreading the streamed layers evenly maximizes the gap
        // between consecutive fetches, so each has the most decode time
        // to hide behind on the serialized flash link.
        let m = n_layers - capacity_layers + 1;
        for j in 0..m {
            self.streamed[j * n_layers / m] = true;
        }
    }

    fn warm_order(&self, n_layers: usize) -> Vec<usize> {
        // Pinned layers first (they must never lose their slot to a
        // warm-up fill), then streamed layers in cycle order.
        let mut order: Vec<usize> = (0..n_layers).filter(|&l| !self.is_streamed(l)).collect();
        order.extend((0..n_layers).filter(|&l| self.is_streamed(l)));
        order
    }

    fn prefetch_targets(&self, current: usize, n_layers: usize, cache: &WeightCache) -> Vec<usize> {
        // Upcoming streamed layers in next-use order; the walk issues
        // them while victims exist, so issuance is just-in-time.
        (1..n_layers)
            .map(|j| (current + j) % n_layers)
            .filter(|&l| self.is_streamed(l) && !cache.resident(l))
            .collect()
    }

    fn victim(
        &self,
        incoming: usize,
        current: usize,
        n_layers: usize,
        cache: &WeightCache,
    ) -> Option<usize> {
        // Evict the resident *streamed* layer whose next use is farthest,
        // and only if it is farther than the incoming layer's — pinned
        // layers are untouchable and a sooner-needed layer never yields
        // to a later-needed one (Belady's rule on the known cycle).
        let d_in = next_use_distance(current, incoming, n_layers).max(1);
        (0..n_layers)
            .filter(|&l| l != current && l != incoming && cache.resident(l) && self.is_streamed(l))
            .max_by_key(|&l| next_use_distance(current, l, n_layers))
            .filter(|&l| incoming == current || next_use_distance(current, l, n_layers) > d_in)
    }
}

/// Configuration of a tiered engine: the flash device, the DDR byte
/// budget for *layer* weights (embedding and LM head stay pinned outside
/// it), and the policy that drives the cache.
#[derive(Debug)]
pub struct TierConfig {
    /// The flash device the weights live on.
    pub flash: FlashConfig,
    /// DDR bytes available to cache layer weights.
    pub weight_budget_bytes: u64,
    /// The prefetch/eviction policy.
    pub policy: Box<dyn PrefetchPolicy>,
}

impl TierConfig {
    /// The blind strawman behind the given flash device and budget.
    pub fn blind_lru(flash: FlashConfig, weight_budget_bytes: u64) -> TierConfig {
        TierConfig {
            flash,
            weight_budget_bytes,
            policy: Box::new(BlindLru::default()),
        }
    }

    /// The schedule-aware policy behind the given device and budget.
    pub fn schedule_aware(flash: FlashConfig, weight_budget_bytes: u64) -> TierConfig {
        TierConfig {
            flash,
            weight_budget_bytes,
            policy: Box::new(ScheduleAware::default()),
        }
    }
}

/// Cumulative tier activity, kept as plain totals so nothing is
/// registered in the metrics registry until the tier actually does
/// something (the zero-cost-when-unused guarantee).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TierTally {
    pub hits: u64,
    pub demand_misses: u64,
    pub late_prefetches: u64,
    pub evictions: u64,
    pub prefetch_issued: u64,
    pub prefetch_wasted: u64,
    pub demand_bytes: u64,
    pub prefetch_bytes: u64,
    pub stall_ns: f64,
    pub staging_ddr_ns: f64,
}

impl TierTally {
    fn fetched(&self) -> bool {
        self.demand_misses + self.prefetch_issued > 0
    }
}

/// Pre-resolved registry handles, created lazily on the first fetch so
/// an all-resident tiered engine's snapshot is key-identical to a plain
/// engine's.
#[derive(Debug)]
struct TierMetrics {
    hits: Counter,
    misses: Counter,
    late_prefetches: Counter,
    evictions: Counter,
    prefetch_issued: Counter,
    prefetch_wasted: Counter,
    stall_cycles: Counter,
    flash_reads: Counter,
    flash_busy_ns: Counter,
    flash_bytes_demand: Counter,
    flash_bytes_prefetch: Counter,
    resident_layers: Gauge,
    /// Totals already flushed into the counters.
    published: TierTally,
    published_flash: FlashStats,
    published_stall_cycles: u64,
}

impl TierMetrics {
    fn register(reg: &mut MetricsRegistry) -> TierMetrics {
        TierMetrics {
            hits: reg.counter("tier.hits"),
            misses: reg.counter("tier.misses"),
            late_prefetches: reg.counter("tier.late_prefetches"),
            evictions: reg.counter("tier.evictions"),
            prefetch_issued: reg.counter("tier.prefetch.issued"),
            prefetch_wasted: reg.counter("tier.prefetch.wasted"),
            stall_cycles: reg.counter("tier.stall_cycles"),
            flash_reads: reg.counter("flash.reads"),
            flash_busy_ns: reg.counter("flash.busy_ns"),
            flash_bytes_demand: reg.counter("flash.bytes.demand"),
            flash_bytes_prefetch: reg.counter("flash.bytes.prefetch"),
            resident_layers: reg.gauge("tier.resident_layers"),
            published: TierTally::default(),
            published_flash: FlashStats::default(),
            published_stall_cycles: 0,
        }
    }
}

/// The engine-side state of the weight tier.
#[derive(Debug)]
pub(crate) struct TierState {
    pub(crate) cache: WeightCache,
    pub(crate) policy: Box<dyn PrefetchPolicy>,
    /// The flash device the layers stream from (staging writes go
    /// through the engine's own DDR system, passed into the walk).
    pub(crate) flash: FlashDevice,
    /// Ready time of an issued-but-possibly-unfinished fetch, per layer.
    in_flight: Vec<Option<f64>>,
    /// The decode timeline horizon (ns): where the previous token ended,
    /// including its stalls. Prefetch overlap is priced against it.
    clock_ns: f64,
    pub(crate) tally: TierTally,
    metrics: Option<TierMetrics>,
    /// Staging write bursts per layer (the layer's canonical addresses).
    layer_bursts: Vec<Vec<BurstDescriptor>>,
}

impl TierState {
    /// Builds the tier over an image: per-layer byte accounting, the
    /// policy's plan, and a warm cache (boot-time load is free).
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot hold the largest single layer.
    pub(crate) fn new(image: &ModelImage, mut cfg: TierConfig) -> TierState {
        let n_layers = image.model().n_layers;
        let layer_bytes: Vec<u64> = (0..n_layers).map(|l| image.layer_weight_bytes(l)).collect();
        let layer_bursts: Vec<Vec<BurstDescriptor>> = (0..n_layers)
            .map(|l| {
                image
                    .layer_projections(l)
                    .iter()
                    .map(|p| BurstDescriptor {
                        write: true,
                        ..p.burst()
                    })
                    .collect()
            })
            .collect();
        let mut cache = WeightCache::new(layer_bytes, cfg.weight_budget_bytes);
        cfg.policy.plan(n_layers, cache.capacity_layers());
        for l in cfg.policy.warm_order(n_layers) {
            if !cache.resident(l) && cache.can_fit(l) {
                cache.insert(l);
            }
        }
        TierState {
            cache,
            policy: cfg.policy,
            flash: FlashDevice::new(cfg.flash),
            in_flight: vec![None; n_layers],
            clock_ns: 0.0,
            tally: TierTally::default(),
            metrics: None,
            layer_bursts,
        }
    }

    /// Evicts `victim`, counting a wasted prefetch if it was in flight.
    fn evict(&mut self, victim: usize) {
        self.cache.evict(victim);
        self.tally.evictions += 1;
        if self.in_flight[victim].take().is_some() {
            self.tally.prefetch_wasted += 1;
        }
    }

    /// Makes room for `incoming` (needed while `current` decodes) via the
    /// policy, falling back to LRU for demand fetches so progress never
    /// depends on the policy. Returns whether the layer now fits.
    fn make_room(&mut self, incoming: usize, current: usize, demand: bool) -> bool {
        let n = self.cache.n_layers();
        while !self.cache.can_fit(incoming) {
            let victim = self
                .policy
                .victim(incoming, current, n, &self.cache)
                .or_else(|| {
                    if demand {
                        self.cache.lru(&[current, incoming])
                    } else {
                        None
                    }
                })
                .filter(|&v| v != current && v != incoming && self.cache.resident(v));
            match victim {
                Some(v) => self.evict(v),
                None => return false,
            }
        }
        true
    }

    /// Walks one priced token: `segments` are `(layer, bytes)` runs of
    /// the schedule in op order, `base_wall_ns` the token's wall before
    /// tier effects. Prices demand stalls and prefetch overlap against
    /// the flash link; staging writes go through `tiered`'s shared DDR
    /// controller. Returns `(stall_ns, staging_ddr_ns)` for this token.
    pub(crate) fn walk_token(
        &mut self,
        mem: &mut MemorySystem,
        segments: &[(Option<usize>, u64)],
        total_bytes: u64,
        base_wall_ns: f64,
    ) -> (f64, f64) {
        let n = self.cache.n_layers();
        let mut t = self.clock_ns;
        let mut stall_ns = 0.0;
        let mut staging_ns = 0.0;
        for &(layer, seg_bytes) in segments {
            if let Some(l) = layer {
                // 1. The layer must be resident (and its fetch finished)
                //    before its first burst issues.
                if let Some(ready) = self.in_flight[l].take() {
                    self.tally.hits += 1;
                    if ready > t {
                        self.tally.late_prefetches += 1;
                        stall_ns += ready - t;
                        t = ready;
                    }
                } else if self.cache.resident(l) {
                    self.tally.hits += 1;
                } else {
                    // Demand miss: fetch now, stall until ready.
                    assert!(
                        self.make_room(l, l, true),
                        "demand fetch of layer {l} found no victim"
                    );
                    let f = stage_fetch(mem, &mut self.flash, &self.layer_bursts[l], t);
                    self.cache.insert(l);
                    self.tally.demand_misses += 1;
                    self.tally.demand_bytes += f.bytes;
                    staging_ns += f.ddr_wall_ns;
                    stall_ns += f.ready_ns - t;
                    t = f.ready_ns;
                }
                self.cache.touch(l);

                // 2. Issue prefetches to overlap with this layer's decode.
                for tgt in self.policy.prefetch_targets(l, n, &self.cache) {
                    if !self.make_room(tgt, l, false) {
                        break;
                    }
                    let f = stage_fetch(mem, &mut self.flash, &self.layer_bursts[tgt], t);
                    self.cache.insert(tgt);
                    self.in_flight[tgt] = Some(f.ready_ns);
                    self.tally.prefetch_issued += 1;
                    self.tally.prefetch_bytes += f.bytes;
                    staging_ns += f.ddr_wall_ns;
                }
            }
            // The segment's decode occupies its byte-share of the token's
            // tier-free wall; prefetches issued above overlap with it.
            t += base_wall_ns * seg_bytes as f64 / total_bytes.max(1) as f64;
        }
        self.clock_ns = t;
        self.tally.stall_ns += stall_ns;
        self.tally.staging_ddr_ns += staging_ns;
        (stall_ns, staging_ns)
    }

    /// Publishes tier telemetry. Registers the key set on the first
    /// fetch only, so an all-resident tier never perturbs the snapshot.
    pub(crate) fn publish(&mut self, registry: &mut MetricsRegistry, ns_per_cycle: f64) {
        let flash = self.flash.stats();
        if self.metrics.is_none() {
            if !self.tally.fetched() {
                return;
            }
            self.metrics = Some(TierMetrics::register(registry));
        }
        let m = self.metrics.as_mut().expect("registered above");
        let t = &self.tally;
        m.hits.add(t.hits - m.published.hits);
        m.misses.add(t.demand_misses - m.published.demand_misses);
        m.late_prefetches
            .add(t.late_prefetches - m.published.late_prefetches);
        m.evictions.add(t.evictions - m.published.evictions);
        m.prefetch_issued
            .add(t.prefetch_issued - m.published.prefetch_issued);
        m.prefetch_wasted
            .add(t.prefetch_wasted - m.published.prefetch_wasted);
        m.flash_bytes_demand
            .add(t.demand_bytes - m.published.demand_bytes);
        m.flash_bytes_prefetch
            .add(t.prefetch_bytes - m.published.prefetch_bytes);
        m.flash_reads.add(flash.reads - m.published_flash.reads);
        m.flash_busy_ns
            .add(flash.busy_ns - m.published_flash.busy_ns);
        let stall_cycles = (t.stall_ns / ns_per_cycle).round() as u64;
        m.stall_cycles.add(stall_cycles - m.published_stall_cycles);
        m.resident_layers.set(self.cache.resident_count() as f64);
        m.published = *t;
        m.published_flash = flash;
        m.published_stall_cycles = stall_cycles;
    }

    /// The current [`TierReport`] view.
    pub(crate) fn report(&self) -> TierReport {
        let f = self.flash.stats();
        let t = &self.tally;
        TierReport {
            policy: self.policy.name(),
            budget_bytes: self.cache.budget_bytes(),
            capacity_layers: self.cache.capacity_layers(),
            resident_layers: self.cache.resident_count(),
            hits: t.hits,
            demand_misses: t.demand_misses,
            late_prefetches: t.late_prefetches,
            prefetch_issued: t.prefetch_issued,
            prefetch_wasted: t.prefetch_wasted,
            evictions: t.evictions,
            flash_bytes: f.bytes,
            flash_reads: f.reads,
            stall_ns: t.stall_ns,
            staging_ddr_ns: t.staging_ddr_ns,
        }
    }
}

/// A value-type view of the tier for reports and sweeps.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// Policy name.
    pub policy: &'static str,
    /// DDR byte budget for layer weights.
    pub budget_bytes: u64,
    /// Whole layers the budget can hold.
    pub capacity_layers: usize,
    /// Layers resident right now.
    pub resident_layers: usize,
    /// Layer uses served from DDR (no demand fetch).
    pub hits: u64,
    /// Demand fetches (layer absent at use time).
    pub demand_misses: u64,
    /// Prefetches that finished after the layer was needed.
    pub late_prefetches: u64,
    /// Prefetches issued.
    pub prefetch_issued: u64,
    /// Prefetches evicted before use (wasted flash traffic).
    pub prefetch_wasted: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Flash bytes moved (demand + prefetch).
    pub flash_bytes: u64,
    /// Flash requests issued (after request splitting).
    pub flash_reads: u64,
    /// Total pipeline stall waiting on the tier, ns.
    pub stall_ns: f64,
    /// DDR bus time consumed by staging writes, ns.
    pub staging_ddr_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(n: usize, cap: usize) -> WeightCache {
        WeightCache::new(vec![100; n], 100 * cap as u64)
    }

    #[test]
    fn blind_lru_prefetches_a_sequential_window() {
        let c = cache(8, 4);
        let p = BlindLru::default();
        assert_eq!(p.prefetch_targets(0, 8, &c), vec![1, 2, 3, 4]);
        // Wraps around the cycle.
        assert_eq!(p.prefetch_targets(6, 8, &c), vec![7, 0, 1, 2]);
    }

    #[test]
    fn blind_lru_evicts_soon_needed_layers() {
        let mut c = cache(8, 2);
        c.insert(0);
        c.insert(1);
        // Fetching layer 2 while decoding 0: the only candidate is 1 —
        // the very next layer. That is the strawman's flaw.
        let p = BlindLru::default();
        assert_eq!(p.victim(2, 0, 8, &c), Some(1));
    }

    #[test]
    fn schedule_aware_pins_and_spreads() {
        let mut p = ScheduleAware::default();
        p.plan(8, 6); // m = 3 streamed
        let streamed: Vec<usize> = (0..8).filter(|&l| p.is_streamed(l)).collect();
        assert_eq!(streamed.len(), 3);
        // Evenly spread: gaps of at least 2 layers.
        assert_eq!(streamed, vec![0, 2, 5]);
    }

    #[test]
    fn schedule_aware_never_evicts_pinned_or_sooner_needed() {
        let mut p = ScheduleAware::default();
        p.plan(4, 3); // streamed = {0, 2}, pinned = {1, 3}
        let mut c = cache(4, 3);
        c.insert(1);
        c.insert(3);
        c.insert(2);
        // While decoding 2, the next streamed need is 0 (distance 2);
        // resident streamed is 2 itself (current, excluded) — decline.
        assert_eq!(p.victim(0, 2, 4, &c), None);
        // While decoding 3, streamed 2 was just consumed (distance 3 >
        // 0's distance 1): evict it.
        assert_eq!(p.victim(0, 3, 4, &c), Some(2));
    }

    #[test]
    fn schedule_aware_all_resident_streams_nothing() {
        let mut p = ScheduleAware::default();
        p.plan(4, 4);
        let mut c = cache(4, 4);
        for l in p.warm_order(4) {
            c.insert(l);
        }
        assert!(p.prefetch_targets(0, 4, &c).is_empty());
    }
}
