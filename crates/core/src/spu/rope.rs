//! The RoPE submodule (Fig. 5C1): rotator + sin/cos generator + address
//! generator.
//!
//! The rotator caches the first half of the query/key head vector as it
//! streams in, then emits rotation pairs `(x_i, x_{i+d/2})`; the address
//! generator converts `(token position, lane pair)` into a read address of
//! the quarter-wave sine ROM; the rotated pair is produced with four FP16
//! multiplies and two adds.

use zllm_fp16::lut::{RopeTable, SineRom};
use zllm_fp16::F16;

/// The RoPE hardware unit for a fixed head dimension.
///
/// # Example
///
/// ```
/// use zllm_accel::spu::RopeUnit;
/// use zllm_fp16::F16;
///
/// let rope = RopeUnit::new(64);
/// let mut head: Vec<F16> = (0..64).map(|i| F16::from_f32(i as f32 / 64.0)).collect();
/// let orig = head.clone();
/// rope.apply(&mut head, 0);
/// // Position 0 rotates by zero everywhere.
/// assert_eq!(head[5].to_bits(), orig[5].to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct RopeUnit {
    rom: SineRom,
    table: RopeTable,
}

impl RopeUnit {
    /// Builds the unit (elaborates both ROMs).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is zero or odd.
    pub fn new(head_dim: usize) -> RopeUnit {
        RopeUnit {
            rom: SineRom::new(),
            table: RopeTable::new(head_dim),
        }
    }

    /// The head dimension served.
    pub fn head_dim(&self) -> usize {
        self.table.head_dim()
    }

    /// Rotates one head vector in place for token position `pos`, using
    /// LUT-quantised sin/cos and FP16 arithmetic — the exact on-chip
    /// numerics.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the unit's head dimension.
    pub fn apply(&self, head: &mut [F16], pos: u32) {
        assert_eq!(head.len(), self.head_dim(), "head length mismatch");
        let half = head.len() / 2;
        for i in 0..half {
            let (sin, cos) = self.table.sin_cos(&self.rom, pos, i);
            let a = head[i];
            let b = head[i + half];
            head[i] = a * cos - b * sin;
            head[i + half] = a * sin + b * cos;
        }
    }

    /// Pipeline cycles to rotate one head vector: the rotator consumes one
    /// element per cycle (it must see the full first half before emitting,
    /// which the `head_dim/2` buffer provides without extra stalls).
    pub fn cycles(&self) -> u64 {
        self.head_dim() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_f32(v: &[F16]) -> Vec<f32> {
        v.iter().map(|x| x.to_f32()).collect()
    }

    #[test]
    fn matches_reference_rope_within_lut_precision() {
        let unit = RopeUnit::new(32);
        for pos in [1u32, 9, 100, 1000] {
            let mut head: Vec<F16> = (0..32)
                .map(|i| F16::from_f32(((i * 3) % 7) as f32 / 7.0 - 0.5))
                .collect();
            let mut reference: Vec<f32> = to_f32(&head);
            unit.apply(&mut head, pos);
            zllm_model::reference::rope_rotate(&mut reference, pos as usize, 10000.0);
            for (h, r) in head.iter().zip(&reference) {
                assert!(
                    (h.to_f32() - r).abs() < 5e-3,
                    "pos {pos}: accel {} vs reference {r}",
                    h.to_f32()
                );
            }
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let unit = RopeUnit::new(16);
        let mut head: Vec<F16> = (0..16).map(|i| F16::from_f32((i as f32).sin())).collect();
        let n0: f32 = head.iter().map(|v| v.to_f32() * v.to_f32()).sum();
        unit.apply(&mut head, 321);
        let n1: f32 = head.iter().map(|v| v.to_f32() * v.to_f32()).sum();
        assert!((n0 - n1).abs() < 0.02 * n0.max(1.0));
    }

    #[test]
    fn latency_is_one_element_per_cycle() {
        assert_eq!(RopeUnit::new(128).cycles(), 128);
    }

    #[test]
    #[should_panic(expected = "head length mismatch")]
    fn length_checked() {
        let unit = RopeUnit::new(8);
        let mut v = vec![F16::ZERO; 6];
        unit.apply(&mut v, 0);
    }
}
