//! The Scalar Processing Unit (Fig. 5C): the miscellaneous pipelines that
//! run concurrently with the VPU so the dense stream never stalls.
//!
//! Each submodule models one hardware pipeline both *functionally* (FP16
//! in, FP16 out, with the exact intermediate precisions) and *temporally*
//! (a `cycles(…)` latency model the pipeline scheduler uses to check that
//! the fused dataflow really hides the operation).

pub mod quantizer;
pub mod rmsnorm;
pub mod rope;
pub mod silu;
pub mod softmax;

pub use quantizer::KvQuantizer;
pub use rmsnorm::RmsNormUnit;
pub use rope::RopeUnit;
pub use silu::SiluUnit;
pub use softmax::SoftmaxUnit;
