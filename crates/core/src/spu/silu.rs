//! The SiLU submodule (Fig. 5C5): the `x / (1 + e^{-x})` gate pipeline.
//!
//! In the MLP the SiLU of the gate projection multiplies the up projection
//! output element-by-element as both stream out of the VPU, producing the
//! down-projection input with no extra passes.

use zllm_fp16::{math, F16};

/// The SiLU hardware unit.
///
/// # Example
///
/// ```
/// use zllm_accel::spu::SiluUnit;
/// use zllm_fp16::F16;
///
/// let unit = SiluUnit::new();
/// assert_eq!(unit.silu(F16::ZERO).to_f32(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SiluUnit;

impl SiluUnit {
    /// Creates the unit.
    pub fn new() -> SiluUnit {
        SiluUnit
    }

    /// SiLU of one element.
    pub fn silu(&self, x: F16) -> F16 {
        math::silu(x)
    }

    /// The fused MLP gating: `silu(gate_i) · up_i` element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn gate(&self, gate: &[F16], up: &[F16]) -> Vec<F16> {
        assert_eq!(gate.len(), up.len(), "gate/up length mismatch");
        gate.iter()
            .zip(up)
            .map(|(&g, &u)| self.silu(g) * u)
            .collect()
    }

    /// One element per cycle.
    pub fn cycles(&self, len: usize) -> u64 {
        len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_f32_reference() {
        let unit = SiluUnit::new();
        for v in [-4.0f32, -1.0, 0.0, 0.5, 2.0, 6.0] {
            let got = unit.silu(F16::from_f32(v)).to_f32();
            let want = zllm_model::reference::silu(v);
            assert!((got - want).abs() < 4e-3, "silu({v}): {got} vs {want}");
        }
    }

    #[test]
    fn gate_combines_streams() {
        let unit = SiluUnit::new();
        let gate: Vec<F16> = [1.0f32, -1.0, 2.0]
            .iter()
            .map(|&v| F16::from_f32(v))
            .collect();
        let up: Vec<F16> = [2.0f32, 2.0, 0.5]
            .iter()
            .map(|&v| F16::from_f32(v))
            .collect();
        let out = unit.gate(&gate, &up);
        for (i, o) in out.iter().enumerate() {
            let want = zllm_model::reference::silu(gate[i].to_f32()) * up[i].to_f32();
            assert!((o.to_f32() - want).abs() < 5e-3);
        }
    }

    #[test]
    fn latency_model() {
        assert_eq!(SiluUnit::new().cycles(11008), 11008);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn gate_length_checked() {
        let _ = SiluUnit::new().gate(&[F16::ZERO], &[F16::ZERO, F16::ZERO]);
    }
}
