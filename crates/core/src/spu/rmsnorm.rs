//! The RMSNorm submodule (Fig. 5C2): two sequential passes.
//!
//! Pass 1 accumulates the square sum (skippable when the DOT engine
//! already produced it — the fused pipeline computes the post-attention
//! square sum *during* the output projection, §V-A); pass 2 multiplies
//! each element by `1/√(mean + ε)` and the per-channel gain.

use zllm_fp16::{math, F16};

/// The RMSNorm hardware unit.
///
/// # Example
///
/// ```
/// use zllm_accel::spu::RmsNormUnit;
/// use zllm_fp16::F16;
///
/// let unit = RmsNormUnit::new(1e-5);
/// let x = vec![F16::from_f32(3.0); 8];
/// let g = vec![F16::ONE; 8];
/// let y = unit.normalize(&x, &g);
/// assert!((y[0].to_f32() - 1.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RmsNormUnit {
    eps: f32,
}

impl RmsNormUnit {
    /// Creates the unit with the model's ε.
    pub fn new(eps: f32) -> RmsNormUnit {
        RmsNormUnit { eps }
    }

    /// Pass 1: the square sum, accumulated in f32 (the DSP accumulator is
    /// wider than FP16).
    pub fn square_sum(&self, x: &[F16]) -> f32 {
        x.iter()
            .map(|v| {
                let f = v.to_f32();
                f * f
            })
            .sum()
    }

    /// Pass 2: normalisation given a precomputed square sum.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `gain` lengths differ or `x` is empty.
    pub fn normalize_with_sum(&self, x: &[F16], gain: &[F16], square_sum: f32) -> Vec<F16> {
        assert_eq!(x.len(), gain.len(), "gain length mismatch");
        assert!(!x.is_empty(), "empty input");
        let mean = square_sum / x.len() as f32 + self.eps;
        let inv = math::rsqrt(F16::from_f32(mean));
        x.iter().zip(gain).map(|(&v, &g)| v * inv * g).collect()
    }

    /// Both passes.
    pub fn normalize(&self, x: &[F16], gain: &[F16]) -> Vec<F16> {
        self.normalize_with_sum(x, gain, self.square_sum(x))
    }

    /// Cycles when both passes run on the SPU.
    pub fn cycles(&self, len: usize) -> u64 {
        2 * len as u64
    }

    /// Cycles when the square sum was computed by the DOT engine for free.
    pub fn cycles_sum_bypassed(&self, len: usize) -> u64 {
        len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f16v(v: &[f32]) -> Vec<F16> {
        v.iter().map(|&x| F16::from_f32(x)).collect()
    }

    #[test]
    fn matches_f32_reference() {
        let x = [0.5f32, -1.25, 2.0, 0.125, -0.75, 1.5, -2.25, 0.25];
        let g = [1.1f32, 0.9, 1.0, 1.2, 0.8, 1.05, 0.95, 1.0];
        let unit = RmsNormUnit::new(1e-5);
        let got = unit.normalize(&f16v(&x), &f16v(&g));
        let want = zllm_model::reference::rmsnorm(&x, &g, 1e-5);
        for (a, b) in got.iter().zip(&want) {
            assert!((a.to_f32() - b).abs() < 5e-3, "{} vs {b}", a.to_f32());
        }
    }

    #[test]
    fn bypassed_sum_matches_two_pass() {
        let x = f16v(&[1.0, 2.0, 3.0, 4.0]);
        let g = f16v(&[1.0; 4]);
        let unit = RmsNormUnit::new(0.0);
        let two_pass = unit.normalize(&x, &g);
        let sum = unit.square_sum(&x);
        let bypassed = unit.normalize_with_sum(&x, &g, sum);
        for (a, b) in two_pass.iter().zip(&bypassed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn latency_model() {
        let unit = RmsNormUnit::new(1e-5);
        assert_eq!(unit.cycles(4096), 8192);
        assert_eq!(unit.cycles_sum_bypassed(4096), 4096);
    }

    #[test]
    fn zero_vector_stays_finite() {
        let unit = RmsNormUnit::new(1e-5);
        let y = unit.normalize(&f16v(&[0.0; 8]), &f16v(&[1.0; 8]));
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
