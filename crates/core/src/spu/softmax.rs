//! The softmax submodule (Fig. 5C4): the numerically stable three-pass
//! variant of Milakov & Gimelshein.
//!
//! Pass 1 scans for the maximum, pass 2 accumulates `Σ e^{x−m}`, pass 3
//! emits `e^{x−m}/d`. The fused dataflow schedules these passes during the
//! value projection so the probabilities are ready exactly when the
//! weighted value sum begins (§V-A).
//!
//! The exponential can be evaluated exactly (a deep FP pipeline) or via
//! the 512-entry table pipeline of [`zllm_fp16::math::ExpLut`] — the
//! cheaper implementation an area-pressed design would choose; both are
//! provided so the accuracy cost is measurable.

use zllm_fp16::math::{self, ExpLut};
use zllm_fp16::F16;

#[derive(Debug, Clone, Default)]
enum ExpImpl {
    /// Correctly rounded FP16 exponential.
    #[default]
    Exact,
    /// Table-driven pipeline (one BRAM read + exponent add).
    Lut(ExpLut),
}

/// The softmax hardware unit.
///
/// # Example
///
/// ```
/// use zllm_accel::spu::SoftmaxUnit;
/// use zllm_fp16::F16;
///
/// let unit = SoftmaxUnit::new();
/// let p = unit.softmax(&[F16::ONE, F16::ONE]);
/// assert!((p[0].to_f32() - 0.5).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SoftmaxUnit {
    exp_impl: ExpImpl,
}

impl SoftmaxUnit {
    /// Creates the unit with the exact exponential.
    pub fn new() -> SoftmaxUnit {
        SoftmaxUnit {
            exp_impl: ExpImpl::Exact,
        }
    }

    /// Creates the unit with the table-driven exponential pipeline.
    pub fn with_lut() -> SoftmaxUnit {
        SoftmaxUnit {
            exp_impl: ExpImpl::Lut(ExpLut::new()),
        }
    }

    fn exp(&self, x: F16) -> F16 {
        match &self.exp_impl {
            ExpImpl::Exact => math::exp(x),
            ExpImpl::Lut(lut) => lut.eval(x),
        }
    }

    /// Pass 1: running maximum.
    pub fn max_scan(&self, x: &[F16]) -> F16 {
        x.iter().fold(F16::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// Pass 2: normalisation term `Σ e^{x−m}`, accumulated in f32.
    pub fn denom(&self, x: &[F16], m: F16) -> f32 {
        x.iter().map(|&v| self.exp(v - m).to_f32()).sum()
    }

    /// All three passes.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty.
    pub fn softmax(&self, x: &[F16]) -> Vec<F16> {
        assert!(!x.is_empty(), "softmax of empty slice");
        let m = self.max_scan(x);
        let d = self.denom(x, m);
        let inv = 1.0 / d;
        x.iter()
            .map(|&v| F16::from_f32(self.exp(v - m).to_f32() * inv))
            .collect()
    }

    /// Cycles for the three passes over `len` scores.
    pub fn cycles(&self, len: usize) -> u64 {
        3 * len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f16v(v: &[f32]) -> Vec<F16> {
        v.iter().map(|&x| F16::from_f32(x)).collect()
    }

    #[test]
    fn matches_f32_reference() {
        let x = [0.1f32, -2.0, 3.5, 1.0, 0.0];
        let got = SoftmaxUnit::new().softmax(&f16v(&x));
        let want = zllm_model::reference::softmax(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!((a.to_f32() - b).abs() < 3e-3, "{} vs {b}", a.to_f32());
        }
    }

    #[test]
    fn sums_to_one() {
        let unit = SoftmaxUnit::new();
        let x = f16v(&[5.0, 5.0, 5.0, 5.0]);
        let p = unit.softmax(&x);
        let s: f32 = p.iter().map(|v| v.to_f32()).sum();
        assert!((s - 1.0).abs() < 2e-3);
    }

    #[test]
    fn stable_with_large_scores() {
        // Raw e^30 overflows FP16; the max-subtraction keeps it finite.
        let x = f16v(&[30.0, 29.0]);
        let p = SoftmaxUnit::new().softmax(&x);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[0] > p[1]);
    }

    #[test]
    fn single_element_is_one() {
        let p = SoftmaxUnit::new().softmax(&[F16::from_f32(-7.0)]);
        assert!((p[0].to_f32() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lut_variant_tracks_exact_variant() {
        let exact = SoftmaxUnit::new();
        let lut = SoftmaxUnit::with_lut();
        let x = f16v(&[0.3, -1.7, 2.2, 0.9, -0.4, 1.1, 3.0, -2.8]);
        let pe = exact.softmax(&x);
        let pl = lut.softmax(&x);
        for (a, b) in pe.iter().zip(&pl) {
            assert!(
                (a.to_f32() - b.to_f32()).abs() < 4e-3,
                "{} vs {}",
                a.to_f32(),
                b.to_f32()
            );
        }
        let s: f32 = pl.iter().map(|v| v.to_f32()).sum();
        assert!((s - 1.0).abs() < 5e-3);
    }

    #[test]
    fn latency_model() {
        assert_eq!(SoftmaxUnit::new().cycles(1024), 3072);
        assert_eq!(SoftmaxUnit::with_lut().cycles(1024), 3072);
    }
}
