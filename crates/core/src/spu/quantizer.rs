//! The online KV quantization submodule (Fig. 5C6) + serial-to-parallel
//! write-back path (Fig. 5C3).
//!
//! As each K/V head vector is produced it is quantized in two passes
//! (range scan, then code emission), its scale-zero pack goes to the
//! packing FIFO (Fig. 4B), and the codes go through a serial-to-parallel
//! unit that assembles full 512-bit beats for the write channel.

use zllm_fp16::F16;
use zllm_layout::beat::{Beat, BEAT_BYTES};
use zllm_layout::kv_pack::{FlushedElement, KvPackCounters, KvPackFifo};
use zllm_quant::kv8::{quantize_kv, QuantizedKv};

/// The on-chip KV quantizer: quantization + metadata packing + beat
/// assembly.
///
/// # Example
///
/// ```
/// use zllm_accel::spu::KvQuantizer;
/// use zllm_fp16::F16;
///
/// let mut q = KvQuantizer::new(4); // 4 metadata streams
/// let head: Vec<F16> = (0..64).map(|i| F16::from_f32(i as f32 / 64.0)).collect();
/// let out = q.quantize_head(0, &head);
/// assert_eq!(out.codes.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct KvQuantizer {
    fifo: KvPackFifo,
}

/// Result of quantizing one head vector.
#[derive(Debug, Clone)]
pub struct QuantizedHead {
    /// The quantized vector (codes + metadata).
    pub codes: QuantizedKv,
    /// A metadata beat, if this pack completed a FIFO element.
    pub flushed_meta: Option<FlushedElement>,
}

impl KvQuantizer {
    /// Creates the quantizer with `streams` metadata streams (layers ×
    /// kv-heads × 2 for a full model).
    pub fn new(streams: usize) -> KvQuantizer {
        KvQuantizer {
            fifo: KvPackFifo::new(streams),
        }
    }

    /// Creates the quantizer with its packing FIFO publishing into the
    /// given telemetry handles (see [`KvPackCounters::register`]).
    pub fn with_counters(streams: usize, counters: KvPackCounters) -> KvQuantizer {
        KvQuantizer {
            fifo: KvPackFifo::with_counters(streams, counters),
        }
    }

    /// Quantizes one head vector in two passes and feeds its scale-zero
    /// pack into the FIFO. `stream` is only used for assertions in tests;
    /// packs must arrive in the fixed head-wise, layer-wise order.
    pub fn quantize_head(&mut self, _stream: usize, head: &[F16]) -> QuantizedHead {
        let f32s: Vec<f32> = head.iter().map(|v| v.to_f32()).collect();
        let codes = quantize_kv(&f32s);
        let flushed_meta = self.fifo.append(codes.meta().to_pack());
        QuantizedHead {
            codes,
            flushed_meta,
        }
    }

    /// Replays an already-emitted scale-zero pack into the FIFO without
    /// re-quantizing. Speculative rollback rebuilds a sequence's FIFO by
    /// replaying the retained tokens' packs (recovered from the stored
    /// [`QuantizedKv`] metadata) in their original append order; the
    /// quantization itself is not repeated because the codes are already
    /// in the KV cache.
    pub fn replay_pack(&mut self, pack: u32) {
        let _ = self.fifo.append(pack);
    }

    /// Swaps in a different set of telemetry handles (see
    /// [`KvPackFifo::attach_counters`]): a rollback replay runs against
    /// detached counters, then re-attaches the shared registered set so
    /// the replay is not double-counted as new quantization traffic.
    pub fn attach_counters(&mut self, counters: KvPackCounters) {
        self.fifo.attach_counters(counters);
    }

    /// Assembles 8-bit codes into full write beats (serial-to-parallel).
    /// Returns the beats plus the number of valid bytes in the last one.
    pub fn serialize_codes(codes: &[u8]) -> (Vec<Beat>, usize) {
        let mut beats = Vec::with_capacity(codes.len().div_ceil(BEAT_BYTES));
        for chunk in codes.chunks(BEAT_BYTES) {
            let mut beat = Beat::zeroed();
            for (i, &b) in chunk.iter().enumerate() {
                beat.set_byte(i, b);
            }
            beats.push(beat);
        }
        let tail = if codes.is_empty() {
            0
        } else {
            codes.len() - (beats.len() - 1) * BEAT_BYTES
        };
        (beats, tail)
    }

    /// Two passes over the vector.
    pub fn cycles(&self, len: usize) -> u64 {
        2 * len as u64
    }

    /// Metadata streams in the FIFO.
    pub fn streams(&self) -> usize {
        self.fifo.streams()
    }

    /// The packing FIFO's telemetry handles — cloneable, so a replacement
    /// quantizer (a slot re-armed for a new sequence) can keep publishing
    /// into the same counters.
    pub fn counters(&self) -> &KvPackCounters {
        self.fifo.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(seed: usize, len: usize) -> Vec<F16> {
        (0..len)
            .map(|i| F16::from_f32((((i + seed) * 37) % 101) as f32 / 50.0 - 1.0))
            .collect()
    }

    #[test]
    fn quantize_matches_offline_kv8() {
        let mut q = KvQuantizer::new(2);
        let h = head(3, 128);
        let out = q.quantize_head(0, &h);
        let direct = quantize_kv(&h.iter().map(|v| v.to_f32()).collect::<Vec<_>>());
        assert_eq!(out.codes.codes(), direct.codes());
        assert_eq!(out.codes.meta(), direct.meta());
    }

    #[test]
    fn fifo_flushes_every_16_tokens() {
        let streams = 4;
        let mut q = KvQuantizer::new(streams);
        let mut flushes = 0;
        for _token in 0..16 {
            for s in 0..streams {
                if q.quantize_head(s, &head(s, 64)).flushed_meta.is_some() {
                    flushes += 1;
                }
            }
        }
        assert_eq!(flushes, streams);
        assert_eq!(q.streams(), streams);
    }

    #[test]
    fn serialize_codes_packs_beats() {
        let codes: Vec<u8> = (0..130).map(|i| i as u8).collect();
        let (beats, tail) = KvQuantizer::serialize_codes(&codes);
        assert_eq!(beats.len(), 3);
        assert_eq!(tail, 2);
        assert_eq!(beats[0].byte(0), 0);
        assert_eq!(beats[1].byte(0), 64);
        assert_eq!(beats[2].byte(1), 129);
        // Padding is zero.
        assert_eq!(beats[2].byte(2), 0);
    }

    #[test]
    fn serialize_empty() {
        let (beats, tail) = KvQuantizer::serialize_codes(&[]);
        assert!(beats.is_empty());
        assert_eq!(tail, 0);
    }

    #[test]
    fn latency_is_two_passes() {
        assert_eq!(KvQuantizer::new(1).cycles(128), 256);
    }
}
