//! The functional decoder: runs a quantized model through the exact
//! on-chip datapaths — W4 dequantization into the 128-lane FP16 VPU, SPU
//! RoPE/RMSNorm/softmax/SiLU pipelines, and the KV8 online quantizer —
//! producing real logits that are validated against the f32 reference.

use crate::spu::{KvQuantizer, RmsNormUnit, RopeUnit, SiluUnit, SoftmaxUnit};
use crate::vpu::Vpu;
use zllm_fp16::F16;
use zllm_layout::kv_page::PagedKvAllocator;
use zllm_model::{ModelConfig, ModelWeights};
use zllm_quant::group::{GroupQuantConfig, GroupQuantizer, QuantizedTensor};
use zllm_quant::kv8::QuantizedKv;

/// A weight matrix quantized row-wise (each row starts fresh groups, as
/// the streaming dataflow requires).
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    rows_q: Vec<QuantizedTensor>,
}

impl QuantizedMatrix {
    /// Quantizes a row-major matrix.
    pub fn quantize(
        data: &[f32],
        rows: usize,
        cols: usize,
        cfg: GroupQuantConfig,
    ) -> QuantizedMatrix {
        assert_eq!(data.len(), rows * cols, "dimensions inconsistent");
        let quantizer = GroupQuantizer::new(cfg);
        let rows_q = data
            .chunks(cols)
            .map(|row| quantizer.quantize(row))
            .collect();
        QuantizedMatrix { rows, cols, rows_q }
    }

    /// Assembles a matrix from pre-quantized rows (AWQ/GPTQ converters).
    ///
    /// # Panics
    ///
    /// Panics if the row count or any row's length mismatches.
    pub fn from_rows(rows: usize, cols: usize, rows_q: Vec<QuantizedTensor>) -> QuantizedMatrix {
        assert_eq!(rows_q.len(), rows, "row count mismatch");
        assert!(
            rows_q.iter().all(|r| r.len() == cols),
            "row length mismatch"
        );
        QuantizedMatrix { rows, cols, rows_q }
    }

    /// Output rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantized rows.
    pub fn rows_q(&self) -> &[QuantizedTensor] {
        &self.rows_q
    }

    /// Matrix–vector product through the VPU: per output row, dequantize
    /// each group beat and accumulate the lane dot products in f32.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, vpu: &Vpu, x: &[F16]) -> Vec<F16> {
        let mut scratch = MatvecScratch::default();
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(vpu, x, &mut scratch, &mut out);
        out
    }

    /// [`QuantizedMatrix::matvec`] with caller-provided scratch buffers;
    /// `out` receives the results (cleared first). Per-row group/beat
    /// order, rounding and f32 accumulation are unchanged, so the output
    /// is bit-identical to the allocating variant — the decode loop uses
    /// this to run each token with zero per-group allocation.
    ///
    /// With fast kernels enabled ([`zllm_fp16::fast_kernels_enabled`])
    /// 4-bit groups take a fused path: the activations are decoded to f32
    /// once per call, each group dequantizes through its 16-entry
    /// per-code table ([`Vpu::dequant_table16`]), and the engine gathers
    /// straight from it per lane ([`Vpu::dot_q4`]). Every per-element
    /// value, rounding and counter increment is identical to the beat
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_into(
        &self,
        vpu: &Vpu,
        x: &[F16],
        scratch: &mut MatvecScratch,
        out: &mut Vec<F16>,
    ) {
        assert_eq!(x.len(), self.cols, "operand length mismatch");
        let lanes = vpu.lanes();
        out.clear();
        out.reserve(self.rows);
        let fused = zllm_fp16::fast_kernels_enabled();
        if fused {
            scratch.x32.clear();
            scratch.x32.extend(x.iter().map(|v| v.to_f32()));
        }
        for row in &self.rows_q {
            let gs = row.config().group_size;
            let mut acc = 0.0f32;
            for (g, chunk) in row.codes().chunks(gs).enumerate() {
                let lo = g * gs;
                if fused && chunk.len() > 16 && chunk.iter().all(|&q| q < 16) {
                    let lut = vpu.dequant_table16(row.zeros()[g], row.scales()[g]);
                    let dots = &mut scratch.dots;
                    for (cb, xb) in chunk
                        .chunks(lanes)
                        .zip(scratch.x32[lo..lo + chunk.len()].chunks(lanes))
                    {
                        acc += vpu.dot_q4(dots, cb, &lut, xb);
                    }
                } else {
                    let beat = &mut scratch.beat;
                    vpu.dequantize_beat_into(chunk, row.zeros()[g], row.scales()[g], beat);
                    for (wb, xb) in beat
                        .chunks(lanes)
                        .zip(x[lo..lo + chunk.len()].chunks(lanes))
                    {
                        acc += vpu.dot(wb, xb);
                    }
                }
            }
            out.push(F16::from_f32(acc));
        }
    }
}

/// Reusable scratch for [`QuantizedMatrix::matvec_into`]: one dequantized
/// beat for the scalar path, plus the predecoded activations and engine
/// tree scratch the fused fast path streams through.
#[derive(Debug, Clone, Default)]
pub struct MatvecScratch {
    beat: crate::vpu::WeightBeat,
    x32: Vec<f32>,
    dots: zllm_fp16::vector::DotScratch,
}

impl QuantizedMatrix {
    /// Matrix–vector products for a whole batch of activation vectors in
    /// one weight pass: each group's dequantization (the 16-entry code
    /// table on the fused path, the decoded beat otherwise) is computed
    /// **once** and reused by every sequence — the functional mirror of
    /// the trace path's weight-stream amortization.
    ///
    /// Per sequence, the group order, lane chunking, rounding and f32
    /// accumulation are exactly those of [`QuantizedMatrix::matvec_into`],
    /// so each output vector is bit-identical to a single-sequence call
    /// with that sequence's activations.
    ///
    /// `outs` is resized to the batch; each entry receives that
    /// sequence's product (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any `xs[i].len() != cols`.
    pub fn matvec_batch(
        &self,
        vpu: &Vpu,
        xs: &[Vec<F16>],
        scratch: &mut BatchMatvecScratch,
        outs: &mut Vec<Vec<F16>>,
    ) {
        assert!(!xs.is_empty(), "at least one sequence required");
        for x in xs {
            assert_eq!(x.len(), self.cols, "operand length mismatch");
        }
        let b = xs.len();
        let lanes = vpu.lanes();
        outs.resize_with(b, Vec::new);
        for out in outs.iter_mut() {
            out.clear();
            out.reserve(self.rows);
        }
        let fused = zllm_fp16::fast_kernels_enabled();
        let BatchMatvecScratch {
            beat,
            x32,
            dots,
            accs,
        } = scratch;
        if fused {
            x32.resize_with(b, Vec::new);
            for (decoded, x) in x32.iter_mut().zip(xs) {
                decoded.clear();
                decoded.extend(x.iter().map(|v| v.to_f32()));
            }
        }
        for row in &self.rows_q {
            let gs = row.config().group_size;
            accs.clear();
            accs.resize(b, 0.0f32);
            for (g, chunk) in row.codes().chunks(gs).enumerate() {
                let lo = g * gs;
                if fused && chunk.len() > 16 && chunk.iter().all(|&q| q < 16) {
                    // One table per group for the whole batch.
                    let lut = vpu.dequant_table16(row.zeros()[g], row.scales()[g]);
                    for (seq, acc) in accs.iter_mut().enumerate() {
                        for (cb, xb) in chunk
                            .chunks(lanes)
                            .zip(x32[seq][lo..lo + chunk.len()].chunks(lanes))
                        {
                            *acc += vpu.dot_q4(dots, cb, &lut, xb);
                        }
                    }
                } else {
                    // One decoded beat per group for the whole batch.
                    vpu.dequantize_beat_into(chunk, row.zeros()[g], row.scales()[g], beat);
                    for (seq, acc) in accs.iter_mut().enumerate() {
                        for (wb, xb) in beat
                            .chunks(lanes)
                            .zip(xs[seq][lo..lo + chunk.len()].chunks(lanes))
                        {
                            *acc += vpu.dot(wb, xb);
                        }
                    }
                }
            }
            for (out, &acc) in outs.iter_mut().zip(accs.iter()) {
                out.push(F16::from_f32(acc));
            }
        }
    }
}

/// Reusable scratch for [`QuantizedMatrix::matvec_batch`]: the shared
/// per-group beat/table state plus per-sequence decoded activations and
/// row accumulators.
#[derive(Debug, Clone, Default)]
pub struct BatchMatvecScratch {
    beat: crate::vpu::WeightBeat,
    x32: Vec<Vec<f32>>,
    dots: zllm_fp16::vector::DotScratch,
    accs: Vec<f32>,
}

/// A fully quantized model in the accelerator's formats: W4 grouped
/// weights, FP16 norms and embeddings.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    config: ModelConfig,
    embedding: Vec<Vec<F16>>,
    layers: Vec<QuantizedLayer>,
    final_norm: Vec<F16>,
    lm_head: QuantizedMatrix,
}

/// One quantized transformer block.
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    /// Query projection.
    pub wq: QuantizedMatrix,
    /// Key projection.
    pub wk: QuantizedMatrix,
    /// Value projection.
    pub wv: QuantizedMatrix,
    /// Output projection.
    pub wo: QuantizedMatrix,
    /// Gate projection.
    pub w_gate: QuantizedMatrix,
    /// Up projection.
    pub w_up: QuantizedMatrix,
    /// Down projection.
    pub w_down: QuantizedMatrix,
    /// Pre-attention norm gain (FP16).
    pub attn_norm: Vec<F16>,
    /// Pre-MLP norm gain (FP16).
    pub mlp_norm: Vec<F16>,
}

impl QuantizedModel {
    /// Quantizes synthetic f32 weights into the deployment format.
    pub fn quantize(weights: &ModelWeights, group: GroupQuantConfig) -> QuantizedModel {
        let cfg = weights.config().clone();
        let q =
            |m: &zllm_model::Matrix| QuantizedMatrix::quantize(m.data(), m.rows(), m.cols(), group);
        let f16v = |v: &[f32]| v.iter().map(|&x| F16::from_f32(x)).collect::<Vec<_>>();
        let layers = weights
            .layers
            .iter()
            .map(|l| QuantizedLayer {
                wq: q(&l.wq),
                wk: q(&l.wk),
                wv: q(&l.wv),
                wo: q(&l.wo),
                w_gate: q(&l.w_gate),
                w_up: q(&l.w_up),
                w_down: q(&l.w_down),
                attn_norm: f16v(&l.attn_norm),
                mlp_norm: f16v(&l.mlp_norm),
            })
            .collect();
        let embedding = (0..cfg.vocab_size)
            .map(|t| f16v(weights.embedding.row(t)))
            .collect();
        QuantizedModel {
            embedding,
            layers,
            final_norm: f16v(&weights.final_norm),
            lm_head: q(&weights.lm_head),
            config: cfg,
        }
    }

    /// Assembles a model from converter output (see
    /// [`crate::converter`]).
    ///
    /// # Panics
    ///
    /// Panics if the layer count or embedding size mismatches the
    /// configuration.
    pub fn from_parts(
        config: ModelConfig,
        embedding: Vec<Vec<F16>>,
        layers: Vec<QuantizedLayer>,
        final_norm: Vec<F16>,
        lm_head: QuantizedMatrix,
    ) -> QuantizedModel {
        assert_eq!(layers.len(), config.n_layers, "layer count mismatch");
        assert_eq!(
            embedding.len(),
            config.vocab_size,
            "embedding rows mismatch"
        );
        assert_eq!(
            final_norm.len(),
            config.d_model,
            "final norm length mismatch"
        );
        QuantizedModel {
            config,
            embedding,
            layers,
            final_norm,
            lm_head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }
}

/// One layer's quantized KV history, as the on-chip quantizer wrote it.
#[derive(Debug, Clone, Default)]
struct LayerKv {
    /// `keys[token * n_kv_heads + head]`.
    keys: Vec<QuantizedKv>,
    values: Vec<QuantizedKv>,
}

/// The shared physical page pool of a paged batch decoder — the
/// functional mirror of [`crate::ModelImage::build_paged`]: fixed-size
/// pages of `page_tokens` tokens granted on demand through the layout
/// allocator, each holding that token span's K/V codes for every layer.
/// Paging only remaps *where* codes are stored, never what is computed,
/// so a paged decoder's logits are bit-identical to the contiguous one's.
#[derive(Debug)]
struct KvPagePool {
    alloc: PagedKvAllocator,
    /// `pages[phys][layer]` — the codes resident in physical page `phys`.
    pages: Vec<Vec<LayerKv>>,
}

impl KvPagePool {
    fn new(total_pages: usize, seqs: usize, page_tokens: usize, n_layers: usize) -> KvPagePool {
        KvPagePool {
            alloc: PagedKvAllocator::new(total_pages, seqs, page_tokens),
            pages: vec![vec![LayerKv::default(); n_layers]; total_pages],
        }
    }

    /// Grants `slot` whatever pages it needs to hold position `pos`,
    /// clearing freshly granted pages of their previous owner's codes.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted — the admission layer's job is to
    /// never let concurrent growth outrun the pool.
    fn ensure(&mut self, slot: usize, pos: usize) {
        let before = self.alloc.pages_of(slot).len();
        assert!(
            self.alloc.grow_to(slot, pos + 1),
            "KV page pool exhausted (admission must bound growth)"
        );
        for i in before..self.alloc.pages_of(slot).len() {
            let phys = self.alloc.pages_of(slot)[i];
            for kv in &mut self.pages[phys] {
                kv.keys.clear();
                kv.values.clear();
            }
        }
    }

    fn release(&mut self, slot: usize) {
        self.alloc.release(slot);
    }

    fn push(
        &mut self,
        slot: usize,
        layer: usize,
        pos: usize,
        key: QuantizedKv,
        value: QuantizedKv,
    ) {
        let pt = self.alloc.page_tokens();
        let phys = self.alloc.pages_of(slot)[pos / pt];
        let kv = &mut self.pages[phys][layer];
        kv.keys.push(key);
        kv.values.push(value);
    }

    fn key(
        &self,
        slot: usize,
        layer: usize,
        t: usize,
        head: usize,
        n_kv_heads: usize,
    ) -> &QuantizedKv {
        let pt = self.alloc.page_tokens();
        let phys = self.alloc.pages_of(slot)[t / pt];
        &self.pages[phys][layer].keys[(t % pt) * n_kv_heads + head]
    }

    fn value(
        &self,
        slot: usize,
        layer: usize,
        t: usize,
        head: usize,
        n_kv_heads: usize,
    ) -> &QuantizedKv {
        let pt = self.alloc.page_tokens();
        let phys = self.alloc.pages_of(slot)[t / pt];
        &self.pages[phys][layer].values[(t % pt) * n_kv_heads + head]
    }
}

/// The functional accelerator decoder.
///
/// # Example
///
/// ```
/// use zllm_accel::{AccelDecoder, QuantizedModel};
/// use zllm_model::{ModelConfig, ModelWeights};
/// use zllm_quant::group::GroupQuantConfig;
///
/// let cfg = ModelConfig::test_small();
/// let weights = ModelWeights::generate(&cfg, 1);
/// let qmodel = QuantizedModel::quantize(&weights, GroupQuantConfig::w4_g128());
/// let mut dec = AccelDecoder::new(&qmodel);
/// let logits = dec.forward(3);
/// assert_eq!(logits.len(), cfg.vocab_size);
/// ```
#[derive(Debug)]
pub struct AccelDecoder<'m> {
    model: &'m QuantizedModel,
    vpu: Vpu,
    rope: RopeUnit,
    rms: RmsNormUnit,
    softmax: SoftmaxUnit,
    silu: SiluUnit,
    quantizer: KvQuantizer,
    kv: Vec<LayerKv>,
    pos: usize,
    scratch: AccelScratch,
}

/// Per-token scratch reused across [`AccelDecoder::forward`] calls — an
/// allocation optimisation only; every value is produced by the identical
/// datapath operations in the identical order.
#[derive(Debug, Default)]
struct AccelScratch {
    /// Matvec scratch (dequantized beat + fused-path f32 buffers), shared
    /// by every matvec.
    mv: MatvecScratch,
    q: Vec<F16>,
    k: Vec<F16>,
    v: Vec<F16>,
    attn_out: Vec<F16>,
    scores: Vec<F16>,
    /// One dequantized KV8 head vector streamed from the cache.
    kv: Vec<F16>,
    /// Per-lane f32 accumulator of the weighted value sum.
    acc: Vec<f32>,
    proj: Vec<F16>,
    gate: Vec<F16>,
    up: Vec<F16>,
    logits: Vec<F16>,
}

impl<'m> AccelDecoder<'m> {
    /// Creates a decoder over a quantized model.
    pub fn new(model: &'m QuantizedModel) -> AccelDecoder<'m> {
        let cfg = model.config();
        AccelDecoder {
            model,
            vpu: Vpu::kv260(),
            rope: RopeUnit::new(cfg.head_dim()),
            rms: RmsNormUnit::new(cfg.norm_eps),
            softmax: SoftmaxUnit::new(),
            silu: SiluUnit::new(),
            quantizer: KvQuantizer::new(cfg.n_layers * cfg.n_kv_heads * 2),
            kv: vec![LayerKv::default(); cfg.n_layers],
            pos: 0,
            scratch: AccelScratch::default(),
        }
    }

    /// Creates a decoder whose VPU and KV-pack path publish into the
    /// given registry (under `vpu.*` and `kv_pack.*`).
    pub fn with_metrics(
        model: &'m QuantizedModel,
        reg: &mut zllm_telemetry::MetricsRegistry,
    ) -> AccelDecoder<'m> {
        let cfg = model.config();
        let mut dec = AccelDecoder::new(model);
        dec.vpu = Vpu::with_counters(
            128,
            zllm_fp16::vector::TreePrecision::Fp32,
            crate::vpu::VpuCounters::register(reg, "vpu"),
        );
        dec.quantizer = KvQuantizer::with_counters(
            cfg.n_layers * cfg.n_kv_heads * 2,
            zllm_layout::kv_pack::KvPackCounters::register(reg, "kv_pack"),
        );
        dec
    }

    /// Tokens processed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Processes one token through the accelerator datapath, returning
    /// next-token logits as f32.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary or the context is full.
    pub fn forward(&mut self, token: usize) -> Vec<f32> {
        let cfg = self.model.config().clone();
        assert!(token < cfg.vocab_size, "token {token} out of vocabulary");
        assert!(self.pos < cfg.max_seq_len, "context window exhausted");
        let pos = self.pos;
        let hd = cfg.head_dim();
        let group = cfg.n_heads / cfg.n_kv_heads;
        let scale = F16::from_f32(1.0 / (hd as f32).sqrt());

        let mut x: Vec<F16> = self.model.embedding[token].clone();
        let s = &mut self.scratch;

        for (layer_idx, layer) in self.model.layers.iter().enumerate() {
            // Attention block.
            let xn = self.rms.normalize(&x, &layer.attn_norm);
            layer.wq.matvec_into(&self.vpu, &xn, &mut s.mv, &mut s.q);
            layer.wk.matvec_into(&self.vpu, &xn, &mut s.mv, &mut s.k);
            layer.wv.matvec_into(&self.vpu, &xn, &mut s.mv, &mut s.v);

            for h in 0..cfg.n_heads {
                self.rope.apply(&mut s.q[h * hd..(h + 1) * hd], pos as u32);
            }
            for h in 0..cfg.n_kv_heads {
                self.rope.apply(&mut s.k[h * hd..(h + 1) * hd], pos as u32);
                // Online KV8 quantization, pack into the FIFO.
                let kq = self.quantizer.quantize_head(0, &s.k[h * hd..(h + 1) * hd]);
                let vq = self.quantizer.quantize_head(0, &s.v[h * hd..(h + 1) * hd]);
                self.kv[layer_idx].keys.push(kq.codes);
                self.kv[layer_idx].values.push(vq.codes);
            }

            s.attn_out.clear();
            s.attn_out.resize(cfg.d_model, F16::ZERO);
            for h in 0..cfg.n_heads {
                let kv_head = h / group;
                let qh = &s.q[h * hd..(h + 1) * hd];
                s.scores.clear();
                for t in 0..=pos {
                    self.kv[layer_idx].keys[t * cfg.n_kv_heads + kv_head]
                        .dequantize_f16_into(&mut s.kv);
                    s.scores
                        .push(F16::from_f32(self.vpu.dot_row(qh, &s.kv)) * scale);
                }
                let probs = self.softmax.softmax(&s.scores);
                // Weighted value sum, accumulated in f32 per lane.
                s.acc.clear();
                s.acc.resize(hd, 0.0);
                for (t, &p) in probs.iter().enumerate() {
                    self.kv[layer_idx].values[t * cfg.n_kv_heads + kv_head]
                        .dequantize_f16_into(&mut s.kv);
                    for (a, vv) in s.acc.iter_mut().zip(&s.kv) {
                        *a += (p * *vv).to_f32();
                    }
                }
                for (o, a) in s.attn_out[h * hd..(h + 1) * hd].iter_mut().zip(&s.acc) {
                    *o = F16::from_f32(*a);
                }
            }

            layer
                .wo
                .matvec_into(&self.vpu, &s.attn_out, &mut s.mv, &mut s.proj);
            for (xi, pi) in x.iter_mut().zip(&s.proj) {
                *xi += *pi;
            }

            // MLP block.
            let xn = self.rms.normalize(&x, &layer.mlp_norm);
            layer
                .w_gate
                .matvec_into(&self.vpu, &xn, &mut s.mv, &mut s.gate);
            layer.w_up.matvec_into(&self.vpu, &xn, &mut s.mv, &mut s.up);
            let inner = self.silu.gate(&s.gate, &s.up);
            layer
                .w_down
                .matvec_into(&self.vpu, &inner, &mut s.mv, &mut s.proj);
            for (xi, di) in x.iter_mut().zip(&s.proj) {
                *xi += *di;
            }
        }

        let xn = self.rms.normalize(&x, &self.model.final_norm);
        self.pos += 1;
        self.model
            .lm_head
            .matvec_into(&self.vpu, &xn, &mut s.mv, &mut s.logits);
        s.logits.iter().map(|v| v.to_f32()).collect()
    }

    /// Runs the prefill phase, returning the last logits.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    pub fn prefill(&mut self, prompt: &[usize]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "empty prompt");
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.forward(t);
        }
        logits
    }
}

/// One sequence's private state inside the batch decoder: its KV cache
/// history, its own decode position, and the (stateful) online KV8
/// quantizer feeding its metadata FIFO. Everything else — weights, the
/// VPU, the stateless SPU units — is shared by the whole batch.
#[derive(Debug)]
struct SeqState {
    quantizer: KvQuantizer,
    kv: Vec<LayerKv>,
    pos: usize,
}

/// The functional decoder for a batch of concurrent sequences.
///
/// Runs up to `B` sequences through the accelerator datapath with every
/// weight matrix traversed **once** per step: [`QuantizedMatrix::matvec_batch`]
/// dequantizes each group a single time and fans the dot products out to
/// all sequences, exactly as the batched hardware schedule streams each
/// weight beat once. Per-sequence results are bit-identical to `B`
/// independent [`AccelDecoder`]s fed the same tokens.
///
/// Each slot keeps its own position, so sequences need not run in
/// lockstep: [`AccelBatchDecoder::decode_at`] steps any subset of slots
/// at their own context lengths (the continuous-batching step), and
/// [`AccelBatchDecoder::reset_seq`] re-arms one finished slot for a new
/// sequence without touching its neighbours.
/// [`AccelBatchDecoder::decode_batch`] is the lockstep special case.
///
/// # Example
///
/// ```
/// use zllm_accel::{AccelBatchDecoder, AccelDecoder, QuantizedModel};
/// use zllm_model::{ModelConfig, ModelWeights};
/// use zllm_quant::group::GroupQuantConfig;
///
/// let cfg = ModelConfig::test_small();
/// let weights = ModelWeights::generate(&cfg, 1);
/// let qmodel = QuantizedModel::quantize(&weights, GroupQuantConfig::w4_g128());
/// let mut batch = AccelBatchDecoder::new(&qmodel, 2);
/// let logits = batch.decode_batch(&[3, 7]);
/// let mut single = AccelDecoder::new(&qmodel);
/// assert_eq!(logits[0], single.forward(3));
/// ```
#[derive(Debug)]
pub struct AccelBatchDecoder<'m> {
    model: &'m QuantizedModel,
    vpu: Vpu,
    rope: RopeUnit,
    rms: RmsNormUnit,
    softmax: SoftmaxUnit,
    silu: SiluUnit,
    seqs: Vec<SeqState>,
    /// `Some` on a paged decoder: KV codes live in shared physical pages
    /// instead of per-slot contiguous vectors.
    pool: Option<KvPagePool>,
    scratch: BatchScratch,
}

/// Per-step scratch reused across [`AccelBatchDecoder::decode_batch`]
/// calls — an allocation optimisation only, like [`AccelScratch`].
/// Matvec operands and results are per-sequence; the attention
/// temporaries are reused sequence by sequence.
#[derive(Debug, Default)]
struct BatchScratch {
    mv: BatchMatvecScratch,
    xn: Vec<Vec<F16>>,
    q: Vec<Vec<F16>>,
    k: Vec<Vec<F16>>,
    v: Vec<Vec<F16>>,
    attn_out: Vec<Vec<F16>>,
    inner: Vec<Vec<F16>>,
    proj: Vec<Vec<F16>>,
    gate: Vec<Vec<F16>>,
    up: Vec<Vec<F16>>,
    logits: Vec<Vec<F16>>,
    scores: Vec<F16>,
    kv: Vec<F16>,
    acc: Vec<f32>,
}

impl<'m> AccelBatchDecoder<'m> {
    /// Creates a decoder for `batch` concurrent sequences.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(model: &'m QuantizedModel, batch: usize) -> AccelBatchDecoder<'m> {
        assert!(batch > 0, "batch must be at least one sequence");
        let cfg = model.config();
        let seqs = (0..batch)
            .map(|_| SeqState {
                quantizer: KvQuantizer::new(cfg.n_layers * cfg.n_kv_heads * 2),
                kv: vec![LayerKv::default(); cfg.n_layers],
                pos: 0,
            })
            .collect();
        AccelBatchDecoder {
            model,
            vpu: Vpu::kv260(),
            rope: RopeUnit::new(cfg.head_dim()),
            rms: RmsNormUnit::new(cfg.norm_eps),
            softmax: SoftmaxUnit::new(),
            silu: SiluUnit::new(),
            seqs,
            pool: None,
            scratch: BatchScratch::default(),
        }
    }

    /// Creates a decoder for `batch` concurrent sequences whose KV codes
    /// live in a shared pool of `total_pages` pages of `page_tokens`
    /// tokens each, granted on demand as sequences decode — the
    /// functional mirror of [`crate::ModelImage::build_paged`]. Paging
    /// remaps storage only; logits are bit-identical to
    /// [`AccelBatchDecoder::new`] fed the same tokens.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero, `total_pages` is zero, or `page_tokens`
    /// is not a positive multiple of the 16-token KV pack window. A later
    /// decode step panics if growth exhausts the pool.
    pub fn new_paged(
        model: &'m QuantizedModel,
        batch: usize,
        total_pages: usize,
        page_tokens: usize,
    ) -> AccelBatchDecoder<'m> {
        let mut dec = AccelBatchDecoder::new(model, batch);
        let n_layers = model.config().n_layers;
        dec.pool = Some(KvPagePool::new(total_pages, batch, page_tokens, n_layers));
        dec
    }

    /// Creates a batch decoder publishing into the given registry (under
    /// `vpu.*` and `kv_pack.*`; the sequences share the counter cells, so
    /// the totals are batch-wide).
    pub fn with_metrics(
        model: &'m QuantizedModel,
        batch: usize,
        reg: &mut zllm_telemetry::MetricsRegistry,
    ) -> AccelBatchDecoder<'m> {
        let cfg = model.config();
        let mut dec = AccelBatchDecoder::new(model, batch);
        dec.vpu = Vpu::with_counters(
            128,
            zllm_fp16::vector::TreePrecision::Fp32,
            crate::vpu::VpuCounters::register(reg, "vpu"),
        );
        let counters = zllm_layout::kv_pack::KvPackCounters::register(reg, "kv_pack");
        for seq in &mut dec.seqs {
            seq.quantizer =
                KvQuantizer::with_counters(cfg.n_layers * cfg.n_kv_heads * 2, counters.clone());
        }
        dec
    }

    /// Sequences in the batch.
    pub fn batch(&self) -> usize {
        self.seqs.len()
    }

    /// Tokens processed so far by the furthest-ahead sequence (for a
    /// lockstep batch, every sequence's shared position).
    pub fn pos(&self) -> usize {
        self.seqs.iter().map(|s| s.pos).max().unwrap_or(0)
    }

    /// Tokens processed so far by the sequence in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn seq_pos(&self, slot: usize) -> usize {
        self.seqs[slot].pos
    }

    /// Re-arms `slot` for a fresh sequence joining the batch: clears its
    /// KV history, rewinds its position to zero and replaces its online
    /// quantizer's pack FIFO (keeping the shared telemetry counters), all
    /// without touching any other slot's state.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn reset_seq(&mut self, slot: usize) {
        let cfg = self.model.config();
        let state = &mut self.seqs[slot];
        state.quantizer = KvQuantizer::with_counters(
            cfg.n_layers * cfg.n_kv_heads * 2,
            state.quantizer.counters().clone(),
        );
        state.kv = vec![LayerKv::default(); cfg.n_layers];
        state.pos = 0;
        // A paged slot also returns its physical pages to the pool —
        // the functional evict-on-finish.
        if let Some(pool) = &mut self.pool {
            pool.release(slot);
        }
    }

    /// Decodes one token for every sequence in lockstep (`tokens[i]` is
    /// sequence `i`'s input), returning each sequence's next-token
    /// logits. The uniform special case of
    /// [`AccelBatchDecoder::decode_at`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len()` differs from the batch, the sequences
    /// are not at the same position, any token is out of vocabulary, or
    /// the context is full.
    pub fn decode_batch(&mut self, tokens: &[usize]) -> Vec<Vec<f32>> {
        assert_eq!(tokens.len(), self.seqs.len(), "one token per sequence");
        let pos0 = self.seqs[0].pos;
        assert!(
            self.seqs.iter().all(|s| s.pos == pos0),
            "sequences are ragged; use decode_at"
        );
        let steps: Vec<(usize, usize)> = tokens.iter().copied().enumerate().collect();
        self.decode_at(&steps)
    }

    /// Decodes one token for each `(slot, token)` pair, every sequence at
    /// **its own** position — the continuous-batching step. Slots not
    /// named sit out unchanged, so sequences join (after
    /// [`AccelBatchDecoder::reset_seq`]) and leave between steps freely.
    /// Weight matrices are still traversed once, fanned across the
    /// participants; per-sequence logits are bit-identical to independent
    /// [`AccelDecoder`]s at the same positions.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, repeats a slot, names a slot out of
    /// range, a token out of vocabulary, or a sequence whose context is
    /// full.
    pub fn decode_at(&mut self, steps: &[(usize, usize)]) -> Vec<Vec<f32>> {
        let cfg = self.model.config().clone();
        assert!(!steps.is_empty(), "at least one sequence required");
        for (i, &(slot, t)) in steps.iter().enumerate() {
            assert!(slot < self.seqs.len(), "slot {slot} out of range");
            assert!(
                !steps[..i].iter().any(|&(s, _)| s == slot),
                "duplicate slot in decode step"
            );
            assert!(t < cfg.vocab_size, "token {t} out of vocabulary");
            assert!(
                self.seqs[slot].pos < cfg.max_seq_len,
                "context window exhausted"
            );
        }
        let b = steps.len();

        // Paged storage: grant every participating sequence the page its
        // write-back lands on *before* any layer runs — one on-demand
        // allocation per crossed page boundary, exactly the step the
        // schedule prices as its `kv_pt_write` burst.
        if let Some(pool) = &mut self.pool {
            for &(slot, _) in steps {
                pool.ensure(slot, self.seqs[slot].pos);
            }
        }

        let mut xs: Vec<Vec<F16>> = steps
            .iter()
            .map(|&(_, t)| self.model.embedding[t].clone())
            .collect();
        let s = &mut self.scratch;
        s.xn.resize_with(b, Vec::new);
        s.attn_out.resize_with(b, Vec::new);
        s.inner.resize_with(b, Vec::new);

        for (layer_idx, layer) in self.model.layers.iter().enumerate() {
            batch_layer_forward(
                layer,
                layer_idx,
                &cfg,
                &self.vpu,
                &self.rope,
                &self.rms,
                &self.softmax,
                &self.silu,
                &mut self.seqs,
                self.pool.as_mut(),
                steps,
                &mut xs,
                s,
            );
        }

        for (xn, x) in s.xn.iter_mut().zip(&xs) {
            *xn = self.rms.normalize(x, &self.model.final_norm);
        }
        for &(slot, _) in steps {
            self.seqs[slot].pos += 1;
        }
        self.model
            .lm_head
            .matvec_batch(&self.vpu, &s.xn, &mut s.mv, &mut s.logits);
        s.logits
            .iter()
            .map(|logits| logits.iter().map(|v| v.to_f32()).collect())
            .collect()
    }

    /// Runs a prefill phase for every sequence in lockstep
    /// (`prompts[step]` holds each sequence's token at `step`), returning
    /// the last step's logits.
    ///
    /// # Panics
    ///
    /// Panics if `prompts` is empty or any step's width differs from the
    /// batch.
    pub fn prefill_batch(&mut self, prompts: &[Vec<usize>]) -> Vec<Vec<f32>> {
        assert!(!prompts.is_empty(), "empty prompt");
        let mut logits = Vec::new();
        for step in prompts {
            logits = self.decode_batch(step);
        }
        logits
    }

    /// Runs the target model over one speculative verify window:
    /// `tokens[0]` is the last committed token and `tokens[1..]` are the
    /// draft proposals, each processed at the sequence's next position.
    /// Returns one logits vector per window position.
    ///
    /// The window runs token by token through
    /// [`AccelBatchDecoder::decode_at`], so every logits vector is
    /// bit-identical to sequential decode *by construction* — the
    /// hardware's batched verify pass amortizes the weight stream (priced
    /// by [`crate::schedule::speculative_verify_schedule`]) without
    /// changing any arithmetic. All window tokens are committed to the KV
    /// cache as they run; the rejected suffix is un-committed afterwards
    /// with [`AccelBatchDecoder::rollback_seq`].
    ///
    /// # Panics
    ///
    /// Panics as [`AccelBatchDecoder::decode_at`] does, or if the window
    /// is empty.
    pub fn verify_window(&mut self, slot: usize, tokens: &[usize]) -> Vec<Vec<f32>> {
        assert!(!tokens.is_empty(), "verify window needs at least one token");
        tokens
            .iter()
            .map(|&t| self.decode_at(&[(slot, t)]).remove(0))
            .collect()
    }

    /// Rolls `slot` back to a history of `keep_pos` tokens, discarding a
    /// rejected speculative suffix: KV codes past the boundary are
    /// truncated (a paged slot also returns wholly-freed pages to the
    /// pool), the position rewinds, and the online quantizer's pack FIFO
    /// is rebuilt by replaying the retained tokens' scale-zero packs in
    /// their original append order. The codes themselves are already in
    /// the cache, so nothing is re-quantized; the replay runs against a
    /// detached FIFO and the shared telemetry counters are re-attached
    /// afterwards, so they see no new packs.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or `keep_pos` exceeds the
    /// sequence's position.
    pub fn rollback_seq(&mut self, slot: usize, keep_pos: usize) {
        let cfg = self.model.config();
        assert!(slot < self.seqs.len(), "slot {slot} out of range");
        assert!(
            keep_pos <= self.seqs[slot].pos,
            "cannot roll forward: keep {keep_pos} > pos {}",
            self.seqs[slot].pos
        );
        if keep_pos == self.seqs[slot].pos {
            return;
        }
        // Truncate the KV storage to the retained prefix.
        match &mut self.pool {
            Some(pool) => {
                let pt = pool.alloc.page_tokens();
                if !keep_pos.is_multiple_of(pt) {
                    // The boundary page survives partially occupied.
                    let phys = pool.alloc.pages_of(slot)[keep_pos / pt];
                    for kv in &mut pool.pages[phys] {
                        kv.keys.truncate((keep_pos % pt) * cfg.n_kv_heads);
                        kv.values.truncate((keep_pos % pt) * cfg.n_kv_heads);
                    }
                }
                // Freed pages need no clearing here: `ensure` clears
                // every freshly granted page for its new owner.
                pool.alloc.shrink_to(slot, keep_pos);
            }
            None => {
                for kv in &mut self.seqs[slot].kv {
                    kv.keys.truncate(keep_pos * cfg.n_kv_heads);
                    kv.values.truncate(keep_pos * cfg.n_kv_heads);
                }
            }
        }
        // Rebuild the pack FIFO: replay the retained packs in quantize
        // order (token → layer → kv-head → K then V, exactly as
        // `batch_layer_forward` appended them).
        let mut packs = Vec::with_capacity(keep_pos * cfg.n_layers * cfg.n_kv_heads * 2);
        for t in 0..keep_pos {
            for layer in 0..cfg.n_layers {
                for h in 0..cfg.n_kv_heads {
                    let (k, v) = match &self.pool {
                        Some(pool) => (
                            pool.key(slot, layer, t, h, cfg.n_kv_heads),
                            pool.value(slot, layer, t, h, cfg.n_kv_heads),
                        ),
                        None => {
                            let kv = &self.seqs[slot].kv[layer];
                            (
                                &kv.keys[t * cfg.n_kv_heads + h],
                                &kv.values[t * cfg.n_kv_heads + h],
                            )
                        }
                    };
                    packs.push(k.meta().to_pack());
                    packs.push(v.meta().to_pack());
                }
            }
        }
        let state = &mut self.seqs[slot];
        let counters = state.quantizer.counters().clone();
        let mut fresh = KvQuantizer::new(cfg.n_layers * cfg.n_kv_heads * 2);
        for pack in packs {
            fresh.replay_pack(pack);
        }
        fresh.attach_counters(counters);
        state.quantizer = fresh;
        state.pos = keep_pos;
    }
}

/// Greedy accept/reject of a verify window's logits against the draft
/// proposals: `logits[j]` is the target's next-token distribution after
/// window position `j` and `drafts[j]` is the draft model's proposal for
/// that next token, so `logits.len() == drafts.len() + 1` (the window
/// also ran the last proposal). Returns `(accepted, next_token)`: the
/// length of the longest prefix of drafts the target would itself have
/// produced under greedy sampling, plus the target's own token after the
/// accepted prefix — the "bonus" token when every draft is accepted, the
/// correction otherwise. The caller commits `accepted + 1` tokens either
/// way, which is why speculation never emits fewer tokens per verify
/// pass than plain decode.
///
/// # Panics
///
/// Panics if `logits.len() != drafts.len() + 1`.
pub fn greedy_accept(logits: &[Vec<f32>], drafts: &[usize]) -> (usize, usize) {
    assert_eq!(
        logits.len(),
        drafts.len() + 1,
        "one logits vector per verify position (drafts + 1)"
    );
    let accepted = drafts
        .iter()
        .zip(logits)
        .take_while(|&(&d, l)| zllm_model::sampler::argmax(l) == d)
        .count();
    (accepted, zllm_model::sampler::argmax(&logits[accepted]))
}

/// One transformer layer of the batched datapath — the exact operation
/// sequence [`AccelBatchDecoder::decode_at`] runs, factored out so the
/// pipeline-sharded decoder executes the identical code path per stage
/// and its logits stay bit-identical to the single-board decoder by
/// construction. `kv_idx` indexes the caller's per-sequence KV storage
/// (global layer index for the full decoder, stage-local for a shard).
/// With `pool` set, KV codes live in shared physical pages (the paged
/// decoder) instead of the slot-local vectors; the arithmetic and its
/// order are identical either way.
#[allow(clippy::too_many_arguments)]
fn batch_layer_forward(
    layer: &QuantizedLayer,
    kv_idx: usize,
    cfg: &ModelConfig,
    vpu: &Vpu,
    rope: &RopeUnit,
    rms: &RmsNormUnit,
    softmax: &SoftmaxUnit,
    silu: &SiluUnit,
    seqs: &mut [SeqState],
    mut pool: Option<&mut KvPagePool>,
    steps: &[(usize, usize)],
    xs: &mut [Vec<F16>],
    s: &mut BatchScratch,
) {
    let hd = cfg.head_dim();
    let group = cfg.n_heads / cfg.n_kv_heads;
    let scale = F16::from_f32(1.0 / (hd as f32).sqrt());

    // Attention block.
    for (xn, x) in s.xn.iter_mut().zip(xs.iter()) {
        *xn = rms.normalize(x, &layer.attn_norm);
    }
    layer.wq.matvec_batch(vpu, &s.xn, &mut s.mv, &mut s.q);
    layer.wk.matvec_batch(vpu, &s.xn, &mut s.mv, &mut s.k);
    layer.wv.matvec_batch(vpu, &s.xn, &mut s.mv, &mut s.v);

    for (i, &(slot, _)) in steps.iter().enumerate() {
        let state = &mut seqs[slot];
        let pos = state.pos;
        for h in 0..cfg.n_heads {
            rope.apply(&mut s.q[i][h * hd..(h + 1) * hd], pos as u32);
        }
        for h in 0..cfg.n_kv_heads {
            rope.apply(&mut s.k[i][h * hd..(h + 1) * hd], pos as u32);
            // Online KV8 quantization into this sequence's FIFO.
            let kq = state
                .quantizer
                .quantize_head(0, &s.k[i][h * hd..(h + 1) * hd]);
            let vq = state
                .quantizer
                .quantize_head(0, &s.v[i][h * hd..(h + 1) * hd]);
            match pool.as_deref_mut() {
                Some(pool) => pool.push(slot, kv_idx, pos, kq.codes, vq.codes),
                None => {
                    state.kv[kv_idx].keys.push(kq.codes);
                    state.kv[kv_idx].values.push(vq.codes);
                }
            }
        }
    }

    for (i, &(slot, _)) in steps.iter().enumerate() {
        let state = &seqs[slot];
        let pos = state.pos;
        let attn_out = &mut s.attn_out[i];
        attn_out.clear();
        attn_out.resize(cfg.d_model, F16::ZERO);
        for h in 0..cfg.n_heads {
            let kv_head = h / group;
            let qh = &s.q[i][h * hd..(h + 1) * hd];
            s.scores.clear();
            for t in 0..=pos {
                match pool.as_deref() {
                    Some(pool) => pool
                        .key(slot, kv_idx, t, kv_head, cfg.n_kv_heads)
                        .dequantize_f16_into(&mut s.kv),
                    None => state.kv[kv_idx].keys[t * cfg.n_kv_heads + kv_head]
                        .dequantize_f16_into(&mut s.kv),
                }
                s.scores.push(F16::from_f32(vpu.dot_row(qh, &s.kv)) * scale);
            }
            let probs = softmax.softmax(&s.scores);
            // Weighted value sum, accumulated in f32 per lane.
            s.acc.clear();
            s.acc.resize(hd, 0.0);
            for (t, &p) in probs.iter().enumerate() {
                match pool.as_deref() {
                    Some(pool) => pool
                        .value(slot, kv_idx, t, kv_head, cfg.n_kv_heads)
                        .dequantize_f16_into(&mut s.kv),
                    None => state.kv[kv_idx].values[t * cfg.n_kv_heads + kv_head]
                        .dequantize_f16_into(&mut s.kv),
                }
                for (a, vv) in s.acc.iter_mut().zip(&s.kv) {
                    *a += (p * *vv).to_f32();
                }
            }
            for (o, a) in attn_out[h * hd..(h + 1) * hd].iter_mut().zip(&s.acc) {
                *o = F16::from_f32(*a);
            }
        }
    }

    layer
        .wo
        .matvec_batch(vpu, &s.attn_out, &mut s.mv, &mut s.proj);
    for (x, proj) in xs.iter_mut().zip(&s.proj) {
        for (xi, pi) in x.iter_mut().zip(proj) {
            *xi += *pi;
        }
    }

    // MLP block.
    for (xn, x) in s.xn.iter_mut().zip(xs.iter()) {
        *xn = rms.normalize(x, &layer.mlp_norm);
    }
    layer
        .w_gate
        .matvec_batch(vpu, &s.xn, &mut s.mv, &mut s.gate);
    layer.w_up.matvec_batch(vpu, &s.xn, &mut s.mv, &mut s.up);
    for (inner, (gate, up)) in s.inner.iter_mut().zip(s.gate.iter().zip(&s.up)) {
        *inner = silu.gate(gate, up);
    }
    layer
        .w_down
        .matvec_batch(vpu, &s.inner, &mut s.mv, &mut s.proj);
    for (x, proj) in xs.iter_mut().zip(&s.proj) {
        for (xi, di) in x.iter_mut().zip(proj) {
            *xi += *di;
        }
    }
}

/// One pipeline stage of the sharded decoder: a contiguous global layer
/// range plus the per-sequence KV state for exactly those layers — the
/// state the board holding this shard would keep in its own DDR.
#[derive(Debug)]
struct ShardStage {
    layers: std::ops::Range<usize>,
    seqs: Vec<SeqState>,
}

/// The functional decoder for a pipeline-parallel sharded batch.
///
/// The model's layers split into `stages` contiguous ranges (see
/// [`crate::image::split_layers`]); each stage keeps its own per-sequence
/// KV history and online KV8 quantizers for exactly its layers, as each
/// board of a cluster would, and the hidden-state vector is handed from
/// stage to stage exactly as the interconnect would carry it. Every stage
/// runs the identical per-layer datapath as [`AccelBatchDecoder`]
/// (the shared `batch_layer_forward`), and KV8 codes are a pure function
/// of the head vector being quantized, so per-sequence logits are
/// **bit-identical** to the single-board decoder — the determinism test
/// the cluster layer's pricing rests on.
///
/// # Example
///
/// ```
/// use zllm_accel::{AccelBatchDecoder, QuantizedModel, ShardedBatchDecoder};
/// use zllm_model::{ModelConfig, ModelWeights};
/// use zllm_quant::group::GroupQuantConfig;
///
/// let cfg = ModelConfig::test_small();
/// let weights = ModelWeights::generate(&cfg, 1);
/// let qmodel = QuantizedModel::quantize(&weights, GroupQuantConfig::w4_g128());
/// let mut sharded = ShardedBatchDecoder::new(&qmodel, 2, 2);
/// let mut single = AccelBatchDecoder::new(&qmodel, 2);
/// assert_eq!(sharded.decode_batch(&[3, 7]), single.decode_batch(&[3, 7]));
/// ```
#[derive(Debug)]
pub struct ShardedBatchDecoder<'m> {
    model: &'m QuantizedModel,
    vpu: Vpu,
    rope: RopeUnit,
    rms: RmsNormUnit,
    softmax: SoftmaxUnit,
    silu: SiluUnit,
    stages: Vec<ShardStage>,
    scratch: BatchScratch,
}

impl<'m> ShardedBatchDecoder<'m> {
    /// Creates a decoder for `batch` concurrent sequences over `stages`
    /// pipeline shards.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero, or `stages` is zero or exceeds the
    /// model's layer count.
    pub fn new(model: &'m QuantizedModel, batch: usize, stages: usize) -> ShardedBatchDecoder<'m> {
        assert!(batch > 0, "batch must be at least one sequence");
        let cfg = model.config();
        let stages = crate::image::split_layers(cfg.n_layers, stages)
            .into_iter()
            .map(|layers| ShardStage {
                seqs: (0..batch)
                    .map(|_| SeqState {
                        quantizer: KvQuantizer::new(layers.len() * cfg.n_kv_heads * 2),
                        kv: vec![LayerKv::default(); layers.len()],
                        pos: 0,
                    })
                    .collect(),
                layers,
            })
            .collect();
        ShardedBatchDecoder {
            model,
            vpu: Vpu::kv260(),
            rope: RopeUnit::new(cfg.head_dim()),
            rms: RmsNormUnit::new(cfg.norm_eps),
            softmax: SoftmaxUnit::new(),
            silu: SiluUnit::new(),
            stages,
            scratch: BatchScratch::default(),
        }
    }

    /// Pipeline stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Sequences in the batch.
    pub fn batch(&self) -> usize {
        self.stages[0].seqs.len()
    }

    /// Tokens processed so far by the furthest-ahead sequence.
    pub fn pos(&self) -> usize {
        self.stages[0].seqs.iter().map(|s| s.pos).max().unwrap_or(0)
    }

    /// Tokens processed so far by the sequence in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn seq_pos(&self, slot: usize) -> usize {
        self.stages[0].seqs[slot].pos
    }

    /// Re-arms `slot` for a fresh sequence on **every** stage — the
    /// cluster-wide analogue of [`AccelBatchDecoder::reset_seq`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn reset_seq(&mut self, slot: usize) {
        let cfg = self.model.config();
        for stage in &mut self.stages {
            let state = &mut stage.seqs[slot];
            state.quantizer = KvQuantizer::with_counters(
                stage.layers.len() * cfg.n_kv_heads * 2,
                state.quantizer.counters().clone(),
            );
            state.kv = vec![LayerKv::default(); stage.layers.len()];
            state.pos = 0;
        }
    }

    /// Decodes one token for every sequence in lockstep — the uniform
    /// special case of [`ShardedBatchDecoder::decode_at`].
    ///
    /// # Panics
    ///
    /// Panics as [`AccelBatchDecoder::decode_batch`] does.
    pub fn decode_batch(&mut self, tokens: &[usize]) -> Vec<Vec<f32>> {
        assert_eq!(tokens.len(), self.batch(), "one token per sequence");
        let pos0 = self.stages[0].seqs[0].pos;
        assert!(
            self.stages[0].seqs.iter().all(|s| s.pos == pos0),
            "sequences are ragged; use decode_at"
        );
        let steps: Vec<(usize, usize)> = tokens.iter().copied().enumerate().collect();
        self.decode_at(&steps)
    }

    /// Decodes one token for each `(slot, token)` pair across the whole
    /// pipeline: the first stage embeds, each stage runs its layer range
    /// over its own KV state, hidden states flow stage to stage, and the
    /// last stage applies the final norm and LM head. Bit-identical to
    /// [`AccelBatchDecoder::decode_at`] on the same model and history.
    ///
    /// # Panics
    ///
    /// Panics as [`AccelBatchDecoder::decode_at`] does.
    pub fn decode_at(&mut self, steps: &[(usize, usize)]) -> Vec<Vec<f32>> {
        let cfg = self.model.config().clone();
        assert!(!steps.is_empty(), "at least one sequence required");
        for (i, &(slot, t)) in steps.iter().enumerate() {
            assert!(slot < self.batch(), "slot {slot} out of range");
            assert!(
                !steps[..i].iter().any(|&(s, _)| s == slot),
                "duplicate slot in decode step"
            );
            assert!(t < cfg.vocab_size, "token {t} out of vocabulary");
            assert!(
                self.stages[0].seqs[slot].pos < cfg.max_seq_len,
                "context window exhausted"
            );
        }
        let b = steps.len();

        // Stage 0 owns the embedding table.
        let mut xs: Vec<Vec<F16>> = steps
            .iter()
            .map(|&(_, t)| self.model.embedding[t].clone())
            .collect();
        let s = &mut self.scratch;
        s.xn.resize_with(b, Vec::new);
        s.attn_out.resize_with(b, Vec::new);
        s.inner.resize_with(b, Vec::new);

        for stage in &mut self.stages {
            for (kv_idx, layer_idx) in stage.layers.clone().enumerate() {
                batch_layer_forward(
                    &self.model.layers[layer_idx],
                    kv_idx,
                    &cfg,
                    &self.vpu,
                    &self.rope,
                    &self.rms,
                    &self.softmax,
                    &self.silu,
                    &mut stage.seqs,
                    None,
                    steps,
                    &mut xs,
                    s,
                );
            }
        }

        // The last stage owns the final norm and LM head.
        for (xn, x) in s.xn.iter_mut().zip(&xs) {
            *xn = self.rms.normalize(x, &self.model.final_norm);
        }
        for stage in &mut self.stages {
            for &(slot, _) in steps {
                stage.seqs[slot].pos += 1;
            }
        }
        self.model
            .lm_head
            .matvec_batch(&self.vpu, &s.xn, &mut s.mv, &mut s.logits);
        s.logits
            .iter()
            .map(|logits| logits.iter().map(|v| v.to_f32()).collect())
            .collect()
    }

    /// Runs a lockstep prefill phase, returning the last step's logits.
    ///
    /// # Panics
    ///
    /// Panics if `prompts` is empty or any step's width differs from the
    /// batch.
    pub fn prefill_batch(&mut self, prompts: &[Vec<usize>]) -> Vec<Vec<f32>> {
        assert!(!prompts.is_empty(), "empty prompt");
        let mut logits = Vec::new();
        for step in prompts {
            logits = self.decode_batch(step);
        }
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zllm_model::kv_cache::KvCacheF32;
    use zllm_model::reference::Decoder;
    use zllm_model::sampler::argmax;
    use zllm_quant::error::ErrorStats;

    fn setup(seed: u64) -> (ModelConfig, ModelWeights, QuantizedModel) {
        let cfg = ModelConfig::test_small();
        let weights = ModelWeights::generate(&cfg, seed);
        let qmodel = QuantizedModel::quantize(&weights, GroupQuantConfig::w4_g128());
        (cfg, weights, qmodel)
    }

    #[test]
    fn quantized_matvec_tracks_f32() {
        let rows = 32;
        let cols = 256;
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31) % 61) as f32 / 61.0 - 0.5)
            .collect();
        let qm = QuantizedMatrix::quantize(&data, rows, cols, GroupQuantConfig::w4_g128());
        assert_eq!(qm.rows(), rows);
        assert_eq!(qm.cols(), cols);
        let x: Vec<f32> = (0..cols)
            .map(|i| ((i * 17) % 23) as f32 / 23.0 - 0.5)
            .collect();
        let x16: Vec<F16> = x.iter().map(|&v| F16::from_f32(v)).collect();
        let got = qm.matvec(&Vpu::kv260(), &x16);
        let m = zllm_model::Matrix::new(rows, cols, data);
        let want = m.matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.to_f32() - w).abs() < 0.35, "{} vs {w}", g.to_f32());
        }
    }

    #[test]
    fn accel_decoder_matches_reference_closely() {
        let (cfg, weights, qmodel) = setup(21);
        let mut reference = Decoder::new(&weights, KvCacheF32::new(&cfg));
        let mut accel = AccelDecoder::new(&qmodel);
        let prompt = [3usize, 11, 7, 100, 42];
        let ref_logits = reference.prefill(&prompt);
        let acc_logits = accel.prefill(&prompt);
        let stats = ErrorStats::between(&ref_logits, &acc_logits);
        // W4 on *synthetic* (incompressible, uniform) weights is harsher
        // than on trained checkpoints; a cosine above 0.95 over two full
        // blocks confirms the datapath is numerically sound.
        assert!(stats.cosine > 0.95, "logit cosine too low: {stats}");
        // The reference argmax should be near the top of the accel ranking.
        let top = argmax(&ref_logits);
        let mut ranked: Vec<usize> = (0..acc_logits.len()).collect();
        ranked.sort_by(|&a, &b| acc_logits[b].total_cmp(&acc_logits[a]));
        let rank = ranked.iter().position(|&i| i == top).expect("present");
        assert!(
            rank < 10,
            "reference argmax ranked {rank} by the accelerator"
        );
    }

    #[test]
    fn decoder_is_deterministic() {
        let (_, _, qmodel) = setup(5);
        let mut a = AccelDecoder::new(&qmodel);
        let mut b = AccelDecoder::new(&qmodel);
        assert_eq!(a.prefill(&[1, 2, 3]), b.prefill(&[1, 2, 3]));
        assert_eq!(a.pos(), 3);
    }

    #[test]
    fn generation_loop_runs() {
        let (_, _, qmodel) = setup(9);
        let mut dec = AccelDecoder::new(&qmodel);
        let mut logits = dec.prefill(&[10, 20]);
        let mut generated = Vec::new();
        for _ in 0..5 {
            let t = argmax(&logits);
            generated.push(t);
            logits = dec.forward(t);
        }
        assert_eq!(generated.len(), 5);
        assert!(generated.iter().all(|&t| t < qmodel.config().vocab_size));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn vocabulary_checked() {
        let (cfg, _, qmodel) = setup(1);
        let mut dec = AccelDecoder::new(&qmodel);
        let _ = dec.forward(cfg.vocab_size);
    }

    #[test]
    fn matvec_batch_bit_identical_and_amortizes_dequant() {
        use crate::vpu::VpuCounters;
        use zllm_fp16::vector::TreePrecision;
        use zllm_telemetry::MetricsRegistry;

        let rows = 8;
        let cols = 256;
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 37) % 53) as f32 / 53.0 - 0.5)
            .collect();
        let qm = QuantizedMatrix::quantize(&data, rows, cols, GroupQuantConfig::w4_g128());
        let xs: Vec<Vec<F16>> = (0..4usize)
            .map(|seq| {
                (0..cols)
                    .map(|i| F16::from_f32(((i * 13 + seq * 7) % 29) as f32 / 29.0 - 0.5))
                    .collect()
            })
            .collect();

        let mut breg = MetricsRegistry::new();
        let bvpu = Vpu::with_counters(
            128,
            TreePrecision::Fp32,
            VpuCounters::register(&mut breg, "vpu"),
        );
        let mut scratch = BatchMatvecScratch::default();
        let mut outs = Vec::new();
        qm.matvec_batch(&bvpu, &xs, &mut scratch, &mut outs);

        let mut sreg = MetricsRegistry::new();
        let svpu = Vpu::with_counters(
            128,
            TreePrecision::Fp32,
            VpuCounters::register(&mut sreg, "vpu"),
        );
        for (seq, x) in xs.iter().enumerate() {
            let want = qm.matvec(&svpu, x);
            let got_bits: Vec<u16> = outs[seq].iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u16> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "sequence {seq} diverged");
        }

        // Dequantization ran once per group in the batch, B times across
        // the independent runs; the dot work is per-sequence either way.
        let batched = breg.snapshot();
        let independent = sreg.snapshot();
        let bd = batched.counters["vpu.dequant_beats"];
        assert!(bd > 0);
        assert_eq!(independent.counters["vpu.dequant_beats"], bd * 4);
        assert_eq!(
            independent.counters["vpu.dot_beats"],
            batched.counters["vpu.dot_beats"]
        );
    }

    #[test]
    fn batch_decode_matches_independent_decoders() {
        let (_, _, qmodel) = setup(13);
        let mut batch = AccelBatchDecoder::new(&qmodel, 3);
        let mut singles: Vec<AccelDecoder> = (0..3).map(|_| AccelDecoder::new(&qmodel)).collect();
        let steps = [[1usize, 50, 7], [9, 2, 101], [30, 30, 4]];
        for step in steps {
            let got = batch.decode_batch(&step);
            for (seq, (dec, &tok)) in singles.iter_mut().zip(&step).enumerate() {
                let want = dec.forward(tok);
                let got_bits: Vec<u32> = got[seq].iter().map(|v| v.to_bits()).collect();
                let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, want_bits, "sequence {seq} diverged");
            }
        }
        assert_eq!(batch.pos(), 3);
        assert_eq!(batch.batch(), 3);
    }

    #[test]
    fn batch_prefill_matches_single_prefill() {
        let (_, _, qmodel) = setup(4);
        let mut batch = AccelBatchDecoder::new(&qmodel, 2);
        let steps = vec![vec![10usize, 3], vec![20, 40], vec![5, 5]];
        let got = batch.prefill_batch(&steps);
        let mut a = AccelDecoder::new(&qmodel);
        let mut b = AccelDecoder::new(&qmodel);
        assert_eq!(got[0], a.prefill(&[10, 20, 5]));
        assert_eq!(got[1], b.prefill(&[3, 40, 5]));
    }

    #[test]
    #[should_panic(expected = "one token per sequence")]
    fn batch_width_checked() {
        let (_, _, qmodel) = setup(2);
        let mut batch = AccelBatchDecoder::new(&qmodel, 2);
        let _ = batch.decode_batch(&[1, 2, 3]);
    }

    #[test]
    fn sharded_decode_matches_single_board_bitwise() {
        let (cfg, _, qmodel) = setup(17);
        for stages in 1..=cfg.n_layers.min(4) {
            let mut sharded = ShardedBatchDecoder::new(&qmodel, 3, stages);
            let mut single = AccelBatchDecoder::new(&qmodel, 3);
            assert_eq!(sharded.stages(), stages);
            let steps = [[1usize, 50, 7], [9, 2, 101], [30, 30, 4]];
            for step in steps {
                let got = sharded.decode_batch(&step);
                let want = single.decode_batch(&step);
                for (seq, (g, w)) in got.iter().zip(&want).enumerate() {
                    let gb: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
                    let wb: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(gb, wb, "sequence {seq} diverged at {stages} stages");
                }
            }
            assert_eq!(sharded.pos(), single.pos());
        }
    }

    #[test]
    fn sharded_ragged_join_and_leave_matches() {
        let (_, _, qmodel) = setup(23);
        let mut sharded = ShardedBatchDecoder::new(&qmodel, 3, 2);
        let mut single = AccelBatchDecoder::new(&qmodel, 3);
        // Ragged steps: slot 1 sits out, then joins fresh after a reset.
        let phases: [&[(usize, usize)]; 4] = [
            &[(0, 5), (2, 9)],
            &[(0, 11), (2, 3)],
            &[(1, 7)],
            &[(0, 2), (1, 4), (2, 8)],
        ];
        for (i, steps) in phases.iter().enumerate() {
            if i == 2 {
                sharded.reset_seq(1);
                single.reset_seq(1);
            }
            let got = sharded.decode_at(steps);
            let want = single.decode_at(steps);
            for (seq, (g, w)) in got.iter().zip(&want).enumerate() {
                let gb: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "phase {i} participant {seq} diverged");
            }
        }
        assert_eq!(sharded.seq_pos(0), single.seq_pos(0));
        assert_eq!(sharded.seq_pos(1), single.seq_pos(1));
    }

    #[test]
    fn ragged_decode_with_join_and_leave_matches_independent_decoders() {
        let (_, _, qmodel) = setup(29);
        let mut batch = AccelBatchDecoder::new(&qmodel, 3);
        let mut a = AccelDecoder::new(&qmodel);
        let mut b = AccelDecoder::new(&qmodel);
        let mut c = AccelDecoder::new(&qmodel);

        let check = |got: &[Vec<f32>], want: &[Vec<f32>]| {
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                let gb: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "participant {i} diverged");
            }
        };

        // Sequence A decodes alone for two steps.
        let got = batch.decode_at(&[(0, 5)]);
        check(&got, &[a.forward(5)]);
        let got = batch.decode_at(&[(0, 9)]);
        check(&got, &[a.forward(9)]);

        // B joins at slot 2 — A is two tokens ahead, the step is ragged.
        let got = batch.decode_at(&[(0, 11), (2, 40)]);
        check(&got, &[a.forward(11), b.forward(40)]);
        assert_eq!(batch.seq_pos(0), 3);
        assert_eq!(batch.seq_pos(2), 1);

        // A leaves; B decodes alone.
        let got = batch.decode_at(&[(2, 41)]);
        check(&got, &[b.forward(41)]);

        // C takes over A's old slot after a reset — B's history and the
        // fresh slot coexist bit-exactly.
        batch.reset_seq(0);
        assert_eq!(batch.seq_pos(0), 0);
        let got = batch.decode_at(&[(2, 42), (0, 77)]);
        check(&got, &[b.forward(42), c.forward(77)]);
        assert_eq!(batch.pos(), 3, "furthest sequence");
    }

    #[test]
    fn paged_decode_is_bit_identical_to_contiguous() {
        let (_, _, qmodel) = setup(31);
        // A deliberately tight pool: 5 pages of 16 tokens shared by 3
        // slots, so page tables scatter across the pool as slots churn.
        let mut paged = AccelBatchDecoder::new_paged(&qmodel, 3, 5, 16);
        let mut flat = AccelBatchDecoder::new(&qmodel, 3);

        let check = |got: &[Vec<f32>], want: &[Vec<f32>]| {
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                let gb: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "participant {i} diverged");
            }
        };

        // Two sequences decode past a page boundary together — each
        // grows a second, non-adjacent page in the shared pool.
        for i in 0..18 {
            let steps = [(0, 7 + i), (2, 3 + i)];
            check(&paged.decode_at(&steps), &flat.decode_at(&steps));
        }
        // Slot 2 finishes, returning its pages; a successor reuses them
        // while slot 0's history stays scattered and slot 1 joins fresh.
        paged.reset_seq(2);
        flat.reset_seq(2);
        for i in 0..3 {
            let steps = [(0, 40 + i), (2, 60 + i), (1, 11 + i)];
            check(&paged.decode_at(&steps), &flat.decode_at(&steps));
        }
    }

    #[test]
    #[should_panic(expected = "KV page pool exhausted")]
    fn paged_decode_panics_when_growth_outruns_the_pool() {
        let (_, _, qmodel) = setup(7);
        let mut paged = AccelBatchDecoder::new_paged(&qmodel, 2, 2, 16);
        // Two slots fill both pages; the first boundary crossing starves.
        for i in 0..17 {
            let _ = paged.decode_at(&[(0, 1 + i), (1, 2 + i)]);
        }
    }

    #[test]
    #[should_panic(expected = "sequences are ragged")]
    fn lockstep_decode_rejects_ragged_state() {
        let (_, _, qmodel) = setup(2);
        let mut batch = AccelBatchDecoder::new(&qmodel, 2);
        let _ = batch.decode_at(&[(0, 1)]);
        let _ = batch.decode_batch(&[1, 2]);
    }

    #[test]
    fn verify_window_logits_match_sequential_decode_bitwise() {
        let (_, _, qmodel) = setup(37);
        let mut spec = AccelBatchDecoder::new(&qmodel, 2);
        let mut seq = AccelDecoder::new(&qmodel);
        for t in [5usize, 9, 2] {
            let _ = spec.decode_at(&[(1, t)]);
            let _ = seq.forward(t);
        }
        let window = [11usize, 40, 7, 3];
        let got = spec.verify_window(1, &window);
        assert_eq!(got.len(), window.len());
        for (j, &t) in window.iter().enumerate() {
            let want = seq.forward(t);
            let gb: Vec<u32> = got[j].iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "window position {j} diverged");
        }
    }

    #[test]
    fn greedy_accept_takes_the_longest_matching_prefix_plus_bonus() {
        let l = |top: usize| {
            let mut v = vec![0.0f32; 8];
            v[top] = 1.0;
            v
        };
        // The target would produce 4, then 2, then 6.
        let logits = vec![l(4), l(2), l(6)];
        assert_eq!(greedy_accept(&logits, &[4, 5]), (1, 2));
        assert_eq!(greedy_accept(&logits, &[4, 2]), (2, 6));
        assert_eq!(greedy_accept(&logits, &[0, 2]), (0, 4));
        assert_eq!(greedy_accept(&logits[..1], &[]), (0, 4));
    }

    #[test]
    fn rollback_then_continue_matches_a_never_speculated_decoder() {
        use zllm_telemetry::MetricsRegistry;
        let (cfg, _, qmodel) = setup(41);
        let mut reg = MetricsRegistry::new();
        let mut spec = AccelBatchDecoder::with_metrics(&qmodel, 2, &mut reg);
        let mut plain = AccelBatchDecoder::new(&qmodel, 2);
        for t in [3usize, 8, 50] {
            let _ = spec.decode_at(&[(0, t)]);
            let _ = plain.decode_at(&[(0, t)]);
        }
        // Speculate three drafts after the committed token; pretend only
        // the first draft was accepted (committed inputs = window[..2]).
        let window = [7usize, 12, 90, 34];
        let _ = spec.verify_window(0, &window);
        let packs_before = reg.snapshot().counters["kv_pack.packs"];
        spec.rollback_seq(0, 3 + 2);
        assert_eq!(
            reg.snapshot().counters["kv_pack.packs"],
            packs_before,
            "the FIFO replay must not be counted as new quantization"
        );
        for &t in &window[..2] {
            let _ = plain.decode_at(&[(0, t)]);
        }
        assert_eq!(spec.seq_pos(0), plain.seq_pos(0));
        // Continue far enough to cross the 16-token KV pack window, so a
        // stale FIFO or KV suffix would surface as diverging logits or a
        // mistimed metadata flush.
        for i in 0..14 {
            let t = (i * 13 + 5) % cfg.vocab_size;
            let g = spec.decode_at(&[(0, t)]);
            let w = plain.decode_at(&[(0, t)]);
            let gb: Vec<u32> = g[0].iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = w[0].iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "step {i} after rollback diverged");
        }
    }

    #[test]
    fn rollback_to_current_position_is_a_no_op() {
        let (_, _, qmodel) = setup(2);
        let mut dec = AccelBatchDecoder::new(&qmodel, 1);
        let before = dec.decode_at(&[(0, 5)]);
        dec.rollback_seq(0, 1);
        assert_eq!(dec.seq_pos(0), 1);
        let after = dec.decode_at(&[(0, 5)]);
        let _ = (before, after);
    }

    #[test]
    #[should_panic(expected = "cannot roll forward")]
    fn rollback_past_the_position_panics() {
        let (_, _, qmodel) = setup(2);
        let mut dec = AccelBatchDecoder::new(&qmodel, 1);
        let _ = dec.decode_at(&[(0, 5)]);
        dec.rollback_seq(0, 2);
    }

    #[test]
    fn paged_rollback_returns_pages_and_stays_bit_identical() {
        let (_, _, qmodel) = setup(43);
        // 4 pages of 16 tokens for 2 slots: the finale below only fits
        // because rollback really returns the speculated-into page.
        let mut paged = AccelBatchDecoder::new_paged(&qmodel, 2, 4, 16);
        let mut flat = AccelBatchDecoder::new(&qmodel, 2);
        for i in 0..14 {
            let _ = paged.decode_at(&[(0, 2 + i)]);
            let _ = flat.decode_at(&[(0, 2 + i)]);
        }
        // Speculate six tokens: crosses the page boundary at 16, pulling
        // a second page; then reject everything past the first token.
        let window = [1usize, 2, 3, 4, 5, 6];
        let _ = paged.verify_window(0, &window);
        paged.rollback_seq(0, 15);
        let _ = flat.decode_at(&[(0, window[0])]);
        flat.rollback_seq(0, 15);
        assert_eq!(paged.seq_pos(0), 15);
        // Both slots now grow to two pages each — exactly the pool, so a
        // leaked rollback page would exhaust it — and every logits vector
        // stays bit-identical to the contiguous decoder's.
        let vocab = qmodel.config().vocab_size;
        for i in 0..17 {
            let steps = [(0, (3 * i + 1) % vocab), (1, (5 * i + 2) % vocab)];
            let g = paged.decode_at(&steps);
            let w = flat.decode_at(&steps);
            for (seq, (gv, wv)) in g.iter().zip(&w).enumerate() {
                let gb: Vec<u32> = gv.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = wv.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "step {i} participant {seq} diverged");
            }
        }
    }
}
