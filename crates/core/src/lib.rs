//! The KV260 LLM decoding accelerator — the paper's primary contribution,
//! reproduced as a cycle-approximate, numerically faithful simulation.
//!
//! The architecture (Fig. 5) has three units:
//!
//! * [`mcu`] — the Memory Control Unit: command generation, the 4×128-bit
//!   AXI stream merge, and the demultiplexer separating scales, zero
//!   points, weights and embeddings;
//! * [`vpu`] — the Vector Processing Unit: a 128-lane FP16 dot engine
//!   sized so one 512-bit weight beat is consumed per 300 MHz cycle,
//!   exactly matching the 19.2 GB/s memory system;
//! * [`spu`] — the Scalar Processing Unit: RoPE, RMSNorm, softmax, SiLU
//!   and the online KV quantizer, all designed to run *concurrently* with
//!   the VPU so the bandwidth-bound dense stream never stalls (§V-A).
//!
//! On top of the units sit:
//!
//! * [`image`] — the model's DDR image and the bare-metal memory map
//!   (Fig. 1);
//! * [`schedule`] — the per-token memory/compute operation schedule;
//! * [`pipeline`] — the fine-grained head-wise fused pipeline (Fig. 3) and
//!   the coarse-grained baseline it is compared against;
//! * [`trace`] — the trace-driven performance engine producing the
//!   token/s and bandwidth-utilization numbers of Tables II/III;
//! * [`tier`] — the flash-backed weight tier: schedule-aware (and
//!   strawman blind-LRU) layer prefetch policies and the per-token walk
//!   that hides flash fetches behind decode;
//! * [`functional`] — a functional FP16 decoder using the exact on-chip
//!   datapaths, validated against the f32 reference;
//! * [`resources`] / [`power`] — parametric FPGA resource and power
//!   estimates regenerating Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baremetal;
pub mod config;
pub mod converter;
pub mod functional;
pub mod image;
pub mod mcu;
pub mod pipeline;
pub mod power;
pub mod resources;
pub mod schedule;
pub mod spu;
pub mod tier;
pub mod trace;
pub mod vpu;

pub use config::AccelConfig;
pub use functional::{
    greedy_accept, AccelBatchDecoder, AccelDecoder, QuantizedModel, ShardedBatchDecoder,
};
pub use image::{split_layers, ModelImage};
pub use schedule::{PrefillChunk, SpecWindow};
pub use tier::{BlindLru, PrefetchPolicy, ScheduleAware, TierConfig, TierReport};
pub use trace::{BatchTokenReport, DecodeEngine, DraftCost, TokenReport};

/// The unified metrics registry every unit publishes into — re-exported
/// so downstream crates need no direct `zllm-telemetry` dependency.
pub use zllm_telemetry as telemetry;
