//! The Vector Processing Unit (Fig. 5B): dequantizer + 128-lane FP16 dot
//! engine with adder tree, scaling multiplier and accumulator.
//!
//! The paper deliberately builds a *vector* engine rather than a matrix
//! engine: decoding is bandwidth-bound, so 128 multipliers — exactly one
//! dequantized 512-bit weight beat per cycle — saturate the memory system
//! with no idle compute (§VI-B, "bandwidth-area balanced").

use zllm_fp16::vector::{DotEngine, DotScratch, TreePrecision};
use zllm_fp16::F16;
use zllm_telemetry::{Counter, MetricsRegistry};

/// One beat of dequantized weights with its group scale/zero already
/// applied — the exact operand the multiplier array receives.
pub type WeightBeat = Vec<F16>;

/// The VPU model.
///
/// # Example
///
/// ```
/// use zllm_accel::vpu::Vpu;
/// use zllm_fp16::F16;
///
/// let vpu = Vpu::kv260();
/// let w = vec![F16::ONE; 128];
/// let x = vec![F16::from_f32(0.5); 128];
/// let y = vpu.dot(&w, &x);
/// assert_eq!(y, 64.0);
/// ```
#[derive(Debug, Clone)]
pub struct Vpu {
    engine: DotEngine,
    counters: VpuCounters,
}

/// Telemetry handles for the VPU datapath. Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct VpuCounters {
    /// Dot-engine invocations (one weight beat each).
    pub dot_beats: Counter,
    /// Weight beats dequantized.
    pub dequant_beats: Counter,
}

impl VpuCounters {
    /// Free-standing counters, not visible in any registry.
    pub fn detached() -> VpuCounters {
        VpuCounters {
            dot_beats: Counter::detached(),
            dequant_beats: Counter::detached(),
        }
    }

    /// Registers the counter set under `prefix` (e.g. `"vpu"` yields
    /// `vpu.dot_beats` and `vpu.dequant_beats`).
    pub fn register(reg: &mut MetricsRegistry, prefix: &str) -> VpuCounters {
        VpuCounters {
            dot_beats: reg.counter(&format!("{prefix}.dot_beats")),
            dequant_beats: reg.counter(&format!("{prefix}.dequant_beats")),
        }
    }
}

impl Vpu {
    /// The paper's VPU: 128 lanes, wide accumulation.
    pub fn kv260() -> Vpu {
        Vpu::new(128, TreePrecision::Fp32)
    }

    /// A VPU with explicit lane count/precision (for ablations).
    pub fn new(lanes: usize, precision: TreePrecision) -> Vpu {
        Vpu::with_counters(lanes, precision, VpuCounters::detached())
    }

    /// A VPU publishing into the given telemetry handles (see
    /// [`VpuCounters::register`]).
    pub fn with_counters(lanes: usize, precision: TreePrecision, counters: VpuCounters) -> Vpu {
        Vpu {
            engine: DotEngine::new(lanes, precision),
            counters,
        }
    }

    /// The telemetry handles this VPU publishes into.
    pub fn counters(&self) -> &VpuCounters {
        &self.counters
    }

    /// Lane count.
    pub fn lanes(&self) -> usize {
        self.engine.lanes()
    }

    /// One engine invocation: dot of up to `lanes` pairs, result in the
    /// wide accumulator domain (f32).
    pub fn dot(&self, w: &[F16], x: &[F16]) -> f32 {
        self.counters.dot_beats.inc();
        self.engine.dot(w, x).to_f32()
    }

    /// One engine invocation over operands given as their exact f32
    /// decodes (see [`zllm_fp16::vector::DotEngine::dot_f32`]) — used by
    /// the fused dequantize+dot fast path. Counter behaviour and result
    /// bits match [`Vpu::dot`] on the F16 operands.
    pub fn dot_f32(&self, w32: &[f32], x32: &[f32]) -> f32 {
        self.counters.dot_beats.inc();
        self.engine.dot_f32(w32, x32).to_f32()
    }

    /// [`Vpu::dot_f32`] with caller-provided engine scratch, skipping the
    /// per-beat thread-local lookup — the fused matvec threads a single
    /// scratch through every beat of every row.
    pub fn dot_f32_scratch(&self, scratch: &mut DotScratch, w32: &[f32], x32: &[f32]) -> f32 {
        self.counters.dot_beats.inc();
        self.engine.dot_f32_with(scratch, w32, x32).to_f32()
    }

    /// One fused dequantize+dot beat over 4-bit codes (see
    /// [`zllm_fp16::vector::DotEngine::dot_q4_with`]): lane `i` reads
    /// `lut[codes[i]]`, so no dequantized weight buffer ever exists.
    /// Counter behaviour and result bits match [`Vpu::dot`] on the
    /// dequantized beat.
    pub fn dot_q4(
        &self,
        scratch: &mut DotScratch,
        codes: &[u8],
        lut: &[f32; 16],
        x32: &[f32],
    ) -> f32 {
        self.counters.dot_beats.inc();
        self.engine.dot_q4_with(scratch, codes, lut, x32).to_f32()
    }

    /// The per-code dequantization table of one 4-bit group: entry `q` is
    /// the exact f32 decode of the F16 weight [`Vpu::dequantize_beat`]
    /// would produce for code `q`. Counts as one dequantized beat, like
    /// `dequantize_beat_into` — the fused matvec calls exactly one of the
    /// two per group.
    pub fn dequant_table16(&self, zero: u8, scale: F16) -> [f32; 16] {
        self.counters.dequant_beats.inc();
        let s32 = scale.to_f32();
        // `demote_round` is exactly `F16::from_f32(v).to_f32()` without the
        // intermediate F16 — 16 pure-ALU roundings per group.
        std::array::from_fn(|q| {
            let centred = q as i32 - zero as i32;
            zllm_fp16::fast::demote_round(centred as f32 * s32)
        })
    }

    /// A full row dot product streamed beat by beat, accumulated in f32 —
    /// one output element of a matrix–vector product.
    pub fn dot_row(&self, w_row: &[F16], x: &[F16]) -> f32 {
        assert_eq!(w_row.len(), x.len(), "operand length mismatch");
        let mut acc = 0.0f32;
        let lanes = self.lanes();
        for (wc, xc) in w_row.chunks(lanes).zip(x.chunks(lanes)) {
            self.counters.dot_beats.inc();
            acc += self.engine.dot(wc, xc).to_f32();
        }
        acc
    }

    /// Dequantizes a beat of 4-bit codes into the FP16 lane operands:
    /// `(q − z) · s` per element, rounded once — what the dequantizer
    /// between demux and multipliers computes.
    pub fn dequantize_beat(&self, codes: &[u8], zero: u8, scale: F16) -> WeightBeat {
        let mut out = WeightBeat::new();
        self.dequantize_beat_into(codes, zero, scale, &mut out);
        out
    }

    /// [`Vpu::dequantize_beat`] into a caller-provided buffer (cleared
    /// first), so streaming matvecs reuse one beat buffer instead of
    /// allocating per group. Values and counter behaviour are identical.
    pub fn dequantize_beat_into(&self, codes: &[u8], zero: u8, scale: F16, out: &mut WeightBeat) {
        self.counters.dequant_beats.inc();
        out.clear();
        out.reserve(codes.len());
        // 4-bit beats (the deployment format) hit at most 16 distinct
        // codes, so one encode per *code value* — instead of one per
        // element — produces the identical beat: the table entry is the
        // exact per-element expression below.
        if zllm_fp16::fast_kernels_enabled() && codes.len() > 16 && codes.iter().all(|&q| q < 16) {
            let mut table = [F16::ZERO; 16];
            for (q, slot) in table.iter_mut().enumerate() {
                let centred = q as i32 - zero as i32;
                *slot = F16::from_f32(centred as f32 * scale.to_f32());
            }
            out.extend(codes.iter().map(|&q| table[q as usize]));
            return;
        }
        out.extend(codes.iter().map(|&q| {
            let centred = q as i32 - zero as i32;
            F16::from_f32(centred as f32 * scale.to_f32())
        }));
    }

    /// Cycles to stream a matrix–vector product of `rows × cols` weights:
    /// one beat per cycle, rows are sequential.
    pub fn matvec_cycles(&self, rows: usize, cols: usize) -> u64 {
        (rows as u64) * (cols as u64).div_ceil(self.lanes() as u64)
    }

    /// Pipeline fill/drain latency of one dot product: multiplier stage +
    /// adder-tree depth + scale + accumulate (a handful of cycles, exposed
    /// only at dependency boundaries).
    pub fn pipeline_latency(&self) -> u64 {
        // 1 (dequant) + 1 (mult) + log2(lanes) (tree) + 1 (scale) + 1 (acc)
        4 + self.engine.tree_depth() as u64
    }
}

impl Default for Vpu {
    fn default() -> Vpu {
        Vpu::kv260()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zllm_quant::group::{GroupQuantConfig, GroupQuantizer};

    #[test]
    fn kv260_geometry() {
        let vpu = Vpu::kv260();
        assert_eq!(vpu.lanes(), 128);
        assert_eq!(vpu.pipeline_latency(), 11);
        assert_eq!(Vpu::default().lanes(), 128);
    }

    #[test]
    fn dot_row_matches_manual_accumulation() {
        let vpu = Vpu::new(4, TreePrecision::Fp32);
        let w: Vec<F16> = (0..10).map(|i| F16::from_f32(i as f32 * 0.1)).collect();
        let x: Vec<F16> = (0..10)
            .map(|i| F16::from_f32(1.0 - i as f32 * 0.05))
            .collect();
        let got = vpu.dot_row(&w, &x);
        let want: f32 = w
            .chunks(4)
            .zip(x.chunks(4))
            .map(|(a, b)| vpu.dot(a, b))
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn dequantize_beat_matches_quant_crate() {
        let values: Vec<f32> = (0..128).map(|i| (i as f32 * 0.11).sin()).collect();
        let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
        let vpu = Vpu::kv260();
        let beat = vpu.dequantize_beat(q.codes(), q.zeros()[0], q.scales()[0]);
        let reference = q.dequantize_f16();
        for (a, b) in beat.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matvec_cycles_counts_beats() {
        let vpu = Vpu::kv260();
        // 4096×4096 at 128 lanes: 32 beats per row.
        assert_eq!(vpu.matvec_cycles(4096, 4096), 4096 * 32);
        // Ragged cols round up.
        assert_eq!(vpu.matvec_cycles(10, 130), 20);
    }

    #[test]
    fn quantized_matvec_tracks_f32() {
        // End-to-end: quantize a row, dequantize beat-wise, dot against an
        // activation — must track the f32 product within quantization error.
        let cols = 256;
        let w: Vec<f32> = (0..cols)
            .map(|i| ((i * 13) % 31) as f32 / 31.0 - 0.5)
            .collect();
        let x: Vec<f32> = (0..cols)
            .map(|i| ((i * 7) % 17) as f32 / 17.0 - 0.5)
            .collect();
        let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&w);
        let vpu = Vpu::kv260();

        let x16: Vec<F16> = x.iter().map(|&v| F16::from_f32(v)).collect();
        let mut acc = 0.0f32;
        for (g, chunk) in q.codes().chunks(128).enumerate() {
            let beat = vpu.dequantize_beat(chunk, q.zeros()[g], q.scales()[g]);
            acc += vpu.dot(&beat, &x16[g * 128..g * 128 + chunk.len()]);
        }
        let exact: f32 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((acc - exact).abs() < 0.3, "accel {acc} vs exact {exact}");
    }
}
