//! The offline model converter: whole-model AWQ / GPTQ quantization with
//! calibration, producing a [`QuantizedModel`] in the deployment format.
//!
//! The paper's flow quantizes LLaMA2-7B "using the AutoAWQ library,
//! converted to our proposed format" (§VII-A). This module reproduces
//! that converter: it captures per-projection calibration activations
//! from the f32 reference model, runs the activation-aware (or
//! second-order) search, **folds** the AWQ per-channel scales into the
//! upstream operation so the on-chip dataflow is unchanged, and emits
//! deployment-format codes.
//!
//! Scale folding, per projection site:
//!
//! * Q/K/V input (post-RMSNorm): scales fold into the attention-norm gain;
//! * output-projection input (attention output): scales fold into the V
//!   projection's output rows (MHA only — with GQA several query heads
//!   share one V row, so folding is skipped and W_O quantizes plainly);
//! * gate/up input (post-RMSNorm): scales fold into the MLP-norm gain;
//! * down input (gated activations): scales fold into the up projection's
//!   output rows.

use crate::functional::{QuantizedLayer, QuantizedMatrix, QuantizedModel};
use zllm_fp16::F16;
use zllm_model::calibration::{CalibrationSet, ProjectionSite};
use zllm_model::{Matrix, ModelWeights};
use zllm_quant::awq::{quantize_awq, AwqConfig};
use zllm_quant::gptq::{quantize_gptq, GptqConfig};
use zllm_quant::group::{GroupQuantConfig, QuantizedTensor};

/// Which post-training quantization method the converter runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtqMethod {
    /// Plain round-to-nearest (the baseline).
    Rtn,
    /// Activation-aware weight quantization (the paper's choice).
    Awq,
    /// Second-order error compensation.
    Gptq,
}

impl std::fmt::Display for PtqMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PtqMethod::Rtn => "RTN",
            PtqMethod::Awq => "AWQ",
            PtqMethod::Gptq => "GPTQ",
        })
    }
}

fn f16v(v: &[f32]) -> Vec<F16> {
    v.iter().map(|&x| F16::from_f32(x)).collect()
}

/// Splits a stacked AWQ result's rows back into consecutive matrices.
fn split_rows(mut rows_q: Vec<QuantizedTensor>, splits: &[(usize, usize)]) -> Vec<QuantizedMatrix> {
    let mut out = Vec::with_capacity(splits.len());
    for &(rows, cols) in splits {
        let rest = rows_q.split_off(rows);
        out.push(QuantizedMatrix::from_rows(rows, cols, rows_q));
        rows_q = rest;
    }
    assert!(rows_q.is_empty(), "row split mismatch");
    out
}

/// Stacks matrices row-wise into one f32 buffer (they must share `cols`).
fn stack(ms: &[&Matrix]) -> (Vec<f32>, usize, usize) {
    let cols = ms[0].cols();
    assert!(
        ms.iter().all(|m| m.cols() == cols),
        "column mismatch in stack"
    );
    let rows = ms.iter().map(|m| m.rows()).sum();
    let mut data = Vec::with_capacity(rows * cols);
    for m in ms {
        data.extend_from_slice(m.data());
    }
    (data, rows, cols)
}

/// Runs the converter.
///
/// `calib` must come from [`zllm_model::calibration::capture`] on the
/// same weights. For [`PtqMethod::Rtn`] the calibration set is unused
/// (pass any capture; it is still validated for shape).
pub fn convert(
    weights: &ModelWeights,
    calib: &CalibrationSet,
    group: GroupQuantConfig,
    method: PtqMethod,
) -> QuantizedModel {
    let cfg = weights.config().clone();
    let is_mha = cfg.n_heads == cfg.n_kv_heads;
    let awq_cfg = AwqConfig {
        quant: group,
        ..AwqConfig::default()
    };
    let gptq_cfg = GptqConfig {
        quant: group,
        damping: 0.01,
    };

    let rtn = |m: &Matrix| QuantizedMatrix::quantize(m.data(), m.rows(), m.cols(), group);
    let gptq = |m: &Matrix, x: &[f32]| {
        let q = quantize_gptq(m.data(), m.rows(), m.cols(), x, gptq_cfg);
        QuantizedMatrix::from_rows(m.rows(), m.cols(), q.rows_q().to_vec())
    };

    let mut layers = Vec::with_capacity(cfg.n_layers);
    for (layer_idx, layer) in weights.layers.iter().enumerate() {
        let x_qkv = calib.site(layer_idx, ProjectionSite::Qkv);
        let x_out = calib.site(layer_idx, ProjectionSite::Output);
        let x_gateup = calib.site(layer_idx, ProjectionSite::GateUp);
        let x_down = calib.site(layer_idx, ProjectionSite::Down);

        let quantized = match method {
            PtqMethod::Rtn => QuantizedLayer {
                wq: rtn(&layer.wq),
                wk: rtn(&layer.wk),
                wv: rtn(&layer.wv),
                wo: rtn(&layer.wo),
                w_gate: rtn(&layer.w_gate),
                w_up: rtn(&layer.w_up),
                w_down: rtn(&layer.w_down),
                attn_norm: f16v(&layer.attn_norm),
                mlp_norm: f16v(&layer.mlp_norm),
            },
            PtqMethod::Gptq => QuantizedLayer {
                wq: gptq(&layer.wq, x_qkv),
                wk: gptq(&layer.wk, x_qkv),
                wv: gptq(&layer.wv, x_qkv),
                wo: gptq(&layer.wo, x_out),
                w_gate: gptq(&layer.w_gate, x_gateup),
                w_up: gptq(&layer.w_up, x_gateup),
                w_down: gptq(&layer.w_down, x_down),
                attn_norm: f16v(&layer.attn_norm),
                mlp_norm: f16v(&layer.mlp_norm),
            },
            PtqMethod::Awq => {
                // 1. Down projection: scales fold into up's output rows.
                let down_q = quantize_awq(
                    layer.w_down.data(),
                    layer.w_down.rows(),
                    layer.w_down.cols(),
                    x_down,
                    &awq_cfg,
                );
                // Row j of up feeds channel j of down's input.
                let mut w_up = layer.w_up.clone();
                for (j, &s) in down_q.channel_scales().iter().enumerate() {
                    let cols = w_up.cols();
                    let row = &mut w_up.data_mut()[j * cols..(j + 1) * cols];
                    for v in row {
                        *v /= s;
                    }
                }
                let w_down = QuantizedMatrix::from_rows(
                    layer.w_down.rows(),
                    layer.w_down.cols(),
                    down_q.rows_q().to_vec(),
                );

                // 2. Output projection: fold into V's output rows (MHA).
                let (wo, wv_folded) = if is_mha {
                    let wo_q = quantize_awq(
                        layer.wo.data(),
                        layer.wo.rows(),
                        layer.wo.cols(),
                        x_out,
                        &awq_cfg,
                    );
                    let mut wv = layer.wv.clone();
                    for (j, &s) in wo_q.channel_scales().iter().enumerate() {
                        let cols = wv.cols();
                        let row = &mut wv.data_mut()[j * cols..(j + 1) * cols];
                        for v in row {
                            *v /= s;
                        }
                    }
                    (
                        QuantizedMatrix::from_rows(
                            layer.wo.rows(),
                            layer.wo.cols(),
                            wo_q.rows_q().to_vec(),
                        ),
                        wv,
                    )
                } else {
                    (rtn(&layer.wo), layer.wv.clone())
                };

                // 3. QKV: joint search over the stacked matrices, scales
                //    fold into the attention-norm gain.
                let (stacked, rows, cols) = stack(&[&layer.wq, &layer.wk, &wv_folded]);
                let qkv_q = quantize_awq(&stacked, rows, cols, x_qkv, &awq_cfg);
                let attn_norm: Vec<F16> = layer
                    .attn_norm
                    .iter()
                    .zip(qkv_q.channel_scales())
                    .map(|(&g, &s)| F16::from_f32(g / s))
                    .collect();
                let mut parts = split_rows(
                    qkv_q.rows_q().to_vec(),
                    &[
                        (layer.wq.rows(), cols),
                        (layer.wk.rows(), cols),
                        (wv_folded.rows(), cols),
                    ],
                );
                let wv = parts.pop().expect("three parts");
                let wk = parts.pop().expect("two parts");
                let wq = parts.pop().expect("one part");

                // 4. Gate/up: joint search, scales fold into the MLP norm.
                let (stacked, rows, cols) = stack(&[&layer.w_gate, &w_up]);
                let gu_q = quantize_awq(&stacked, rows, cols, x_gateup, &awq_cfg);
                let mlp_norm: Vec<F16> = layer
                    .mlp_norm
                    .iter()
                    .zip(gu_q.channel_scales())
                    .map(|(&g, &s)| F16::from_f32(g / s))
                    .collect();
                let mut parts = split_rows(
                    gu_q.rows_q().to_vec(),
                    &[(layer.w_gate.rows(), cols), (w_up.rows(), cols)],
                );
                let w_up_q = parts.pop().expect("two parts");
                let w_gate = parts.pop().expect("one part");

                QuantizedLayer {
                    wq,
                    wk,
                    wv,
                    wo,
                    w_gate,
                    w_up: w_up_q,
                    w_down,
                    attn_norm,
                    mlp_norm,
                }
            }
        };
        layers.push(quantized);
    }

    let lm_head = match method {
        PtqMethod::Gptq => {
            // The head shares the final-norm output; reuse the last
            // layer's post-norm statistics as its calibration proxy.
            let x = calib.site(cfg.n_layers - 1, ProjectionSite::GateUp);
            gptq(&weights.lm_head, x)
        }
        _ => rtn(&weights.lm_head),
    };

    QuantizedModel::from_parts(
        cfg.clone(),
        (0..cfg.vocab_size)
            .map(|t| f16v(weights.embedding.row(t)))
            .collect(),
        layers,
        f16v(&weights.final_norm),
        lm_head,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::AccelDecoder;
    use zllm_model::calibration::capture;
    use zllm_model::eval::{mean_cross_entropy, perplexity, sample_corpus};
    use zllm_model::kv_cache::KvCacheF32;
    use zllm_model::reference::Decoder;
    use zllm_model::ModelConfig;

    fn ppl_of(model: &QuantizedModel, corpus: &[usize]) -> f64 {
        let mut dec = AccelDecoder::new(model);
        perplexity(mean_cross_entropy(|t| dec.forward(t), corpus))
    }

    #[test]
    fn all_methods_produce_working_models() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 31);
        let corpus = sample_corpus(&w, 7, 24);
        let calib = capture(&w, &corpus[..12]);

        let reference_ppl = {
            let mut d = Decoder::new(&w, KvCacheF32::new(&cfg));
            perplexity(mean_cross_entropy(|t| d.forward(t), &corpus))
        };

        let group = GroupQuantConfig::w4_g128();
        for method in [PtqMethod::Rtn, PtqMethod::Awq, PtqMethod::Gptq] {
            let qm = convert(&w, &calib, group, method);
            let ppl = ppl_of(&qm, &corpus);
            let gap = ppl / reference_ppl - 1.0;
            assert!(
                gap.abs() < 0.30,
                "{method}: perplexity {ppl:.2} too far from reference {reference_ppl:.2}"
            );
        }
    }

    #[test]
    fn gptq_is_no_worse_than_rtn_end_to_end() {
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 8);
        let corpus = sample_corpus(&w, 3, 24);
        let calib = capture(&w, &corpus[..12]);
        let group = GroupQuantConfig::w4_g128();
        let rtn_ppl = ppl_of(&convert(&w, &calib, group, PtqMethod::Rtn), &corpus);
        let gptq_ppl = ppl_of(&convert(&w, &calib, group, PtqMethod::Gptq), &corpus);
        assert!(
            gptq_ppl <= rtn_ppl * 1.02,
            "GPTQ ppl {gptq_ppl:.3} should not exceed RTN ppl {rtn_ppl:.3}"
        );
    }

    #[test]
    fn awq_folding_preserves_function_at_alpha_zero() {
        // With a single-valued α grid at 0, AWQ's scales are all 1 and the
        // converted model must match plain RTN logits exactly.
        let cfg = ModelConfig::test_small();
        let w = ModelWeights::generate(&cfg, 12);
        let corpus = sample_corpus(&w, 1, 8);
        let calib = capture(&w, &corpus);
        let group = GroupQuantConfig::w4_g128();

        // Build AWQ with a degenerate grid by reusing the public API:
        // α = 0 is in the default grid, but the search may pick another.
        // Instead verify the *identity* directly: fold + scaled weights
        // reproduce RTN when scales are unity, which convert() guarantees
        // through quantize_awq's α=0 candidate — so here we simply check
        // AWQ logits stay close to RTN logits (the fold is lossless up to
        // FP16 gain rounding).
        let rtn_model = convert(&w, &calib, group, PtqMethod::Rtn);
        let awq_model = convert(&w, &calib, group, PtqMethod::Awq);
        let mut rtn_dec = AccelDecoder::new(&rtn_model);
        let mut awq_dec = AccelDecoder::new(&awq_model);
        let a = rtn_dec.prefill(&corpus);
        let b = awq_dec.prefill(&corpus);
        let stats = zllm_quant::error::ErrorStats::between(&a, &b);
        assert!(stats.cosine > 0.98, "AWQ model diverged from RTN: {stats}");
    }

    #[test]
    fn gqa_models_convert_without_folding_wo() {
        let cfg = ModelConfig::test_small_gqa();
        let w = ModelWeights::generate(&cfg, 4);
        let corpus = sample_corpus(&w, 2, 10);
        let calib = capture(&w, &corpus);
        let qm = convert(&w, &calib, GroupQuantConfig::w4_g128(), PtqMethod::Awq);
        let mut dec = AccelDecoder::new(&qm);
        let logits = dec.prefill(&corpus);
        assert!(logits.iter().all(|v| v.is_finite()));
    }
}
