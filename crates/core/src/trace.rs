//! The trace-driven performance engine: prices a decode step's schedule
//! through the DDR/AXI model and produces the token/s and bandwidth
//! utilization numbers of Tables II/III.
//!
//! This path never touches tensor data — for a bandwidth-bound workload
//! the wall time is governed entirely by the memory stream and the
//! pipeline's exposed cycles, both of which the schedule captures. The
//! numerically faithful datapath lives in [`crate::functional`] and shares
//! the same schedule generator, so the two views are consistent by
//! construction.

use crate::config::AccelConfig;
use crate::image::ModelImage;
use crate::schedule::{
    batched_token_schedule, chunked_prefill_schedule, ragged_token_schedule,
    speculative_verify_schedule, token_schedule, PrefillChunk, SpecWindow, TokenSchedule,
};
use crate::tier::{TierConfig, TierReport, TierState};
use crate::vpu::{Vpu, VpuCounters};
use std::collections::HashMap;
use std::rc::Rc;
use zllm_ddr::compress::{CompCounters, CompressedController, CompressionConfig, StreamClass};
use zllm_ddr::{DdrCounters, MemorySystem};
use zllm_layout::addr_map::AllocError;
use zllm_model::{memory, ModelConfig};
use zllm_telemetry::{Counter, Gauge, MetricsRegistry, Snapshot};

/// Performance report of one decoded token.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenReport {
    /// Context length at this step.
    pub ctx: usize,
    /// Bytes moved (reads + writes).
    pub bytes: u64,
    /// DDR busy time in nanoseconds.
    pub mem_ns: f64,
    /// VPU streaming cycles (PL domain).
    pub vpu_cycles: u64,
    /// Exposed miscellaneous cycles (coarse pipeline only).
    pub exposed_misc_cycles: u64,
    /// Pipeline fill/drain bubbles (fused pipeline bookkeeping).
    pub bubble_cycles: u64,
    /// End-to-end time for this token in nanoseconds.
    pub wall_ns: f64,
    /// Decoding speed if every token cost this much.
    pub tokens_per_s: f64,
    /// Measured speed over the paper's weight-transfer roofline
    /// (`bandwidth / (params × 4 bits)` — Table II's "Util. %").
    pub bandwidth_util: f64,
    /// Bytes per operation category (label prefix → bytes), for
    /// breakdown displays.
    pub breakdown: Vec<(String, u64)>,
}

impl TokenReport {
    /// Bytes attributed to categories whose label contains `needle`.
    pub fn bytes_for(&self, needle: &str) -> u64 {
        self.breakdown
            .iter()
            .filter(|(label, _)| label.contains(needle))
            .map(|(_, b)| b)
            .sum()
    }
}

/// Performance report of one lockstep batched decode step (`batch`
/// sequences each produce one token).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchTokenReport {
    /// Context length at this step (same for every sequence).
    pub ctx: usize,
    /// Concurrent sequences decoded this step.
    pub batch: usize,
    /// Bytes moved (reads + writes), whole batch.
    pub bytes: u64,
    /// DDR busy time in nanoseconds.
    pub mem_ns: f64,
    /// VPU streaming cycles; shared weight beats cost
    /// `⌈weights_per_beat · batch / lanes⌉` cycles each.
    pub vpu_cycles: u64,
    /// Exposed miscellaneous cycles (coarse pipeline only).
    pub exposed_misc_cycles: u64,
    /// Pipeline fill/drain bubbles.
    pub bubble_cycles: u64,
    /// End-to-end time for this step in nanoseconds.
    pub wall_ns: f64,
    /// Aggregate decoding speed: `batch` tokens per step.
    pub tokens_per_s: f64,
    /// Each individual sequence's decoding speed (`tokens_per_s / batch`).
    pub seq_tokens_per_s: f64,
    /// Aggregate speed over the single-sequence weight-transfer roofline;
    /// may exceed 1.0 on compute-rich engines where batching amortizes
    /// the weight stream.
    pub bandwidth_util: f64,
    /// Bytes that `batch` independent single-sequence decodes would have
    /// moved, divided by the bytes this batched step moved. Equals 1 at
    /// `batch = 1` and approaches `batch` while weight traffic dominates.
    pub weight_amortization: f64,
    /// KV traffic (history reads + write-backs + metadata flushes) as a
    /// fraction of total bytes — the share that grows with `batch` and
    /// context until it ends the amortization win.
    pub kv_share: f64,
    /// Bytes per operation category (label prefix → bytes), whole batch.
    pub breakdown: Vec<(String, u64)>,
}

impl BatchTokenReport {
    /// Bytes attributed to categories whose label contains `needle`.
    pub fn bytes_for(&self, needle: &str) -> u64 {
        self.breakdown
            .iter()
            .filter(|(label, _)| label.contains(needle))
            .map(|(_, b)| b)
            .sum()
    }
}

/// Operation kinds whose traffic is paid once **per sequence** (each
/// sequence decodes its own token and owns its own KV cache region);
/// everything else is the shared weight stream, paid once per batch.
/// The speculative rollback kinds rewrite a single sequence's metadata,
/// so they belong here too.
fn is_per_sequence_kind(kind: &str) -> bool {
    matches!(
        kind,
        "embedding"
            | "kv_read"
            | "kv_write"
            | "kv_meta_flush"
            | "kv_pt_read"
            | "kv_pt_write"
            | "kv_meta_rollback"
            | "kv_pt_rollback"
    )
}

/// The compression stream class of an operation kind: weight tiles, KV8
/// cache lines, and FP16 activation (embedding) rows each carry their own
/// entropy-measured ratio; everything else — scale-zero flushes, page
/// tables, rollback metadata — is latency-critical control traffic the
/// controller never compresses.
fn stream_class_of(kind: &str) -> StreamClass {
    match kind {
        "qkv" | "wo" | "mlp" | "lm_head" => StreamClass::Weight,
        "kv_read" | "kv_write" => StreamClass::Kv,
        "embedding" => StreamClass::Activation,
        _ => StreamClass::Meta,
    }
}

/// How a speculative step's draft tokens are priced.
///
/// The verify pass is simulated exactly (its schedule streams through the
/// engine's own DDR controller); the *draft* model is outside the target
/// engine's datapath, so its cost is parameterized: either a flat
/// per-token figure (a draft running on the host CPU, or a measured
/// external number), or a synthetic draft geometry decoded token by token
/// through the same DDR controller — its weight stream contends with
/// nothing (drafting and verification alternate) but is priced with the
/// same bank/refresh dynamics as the target's traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum DraftCost {
    /// A fixed cost per drafted token, in nanoseconds. `ns_per_token: 0.0`
    /// gives the free-draft upper bound on speculation's uplift.
    FlatNs {
        /// Nanoseconds charged per drafted token.
        ns_per_token: f64,
    },
    /// A synthetic draft model decoded through the engine's DDR
    /// controller, one token per drafted position at that position's
    /// context. The draft image is placed like a `max_batch = 1` target
    /// image (its addresses may overlap the target's — acceptable for
    /// pricing, where only the stream's geometry matters) and is cached
    /// across calls.
    Synthetic {
        /// The draft model's geometry.
        model: ModelConfig,
    },
}

/// Averaged report over a generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Tokens generated.
    pub tokens: usize,
    /// Mean tokens/s across the run.
    pub tokens_per_s: f64,
    /// Mean bandwidth utilization.
    pub bandwidth_util: f64,
    /// Per-token reports.
    pub steps: Vec<TokenReport>,
}

/// The trace-driven decode engine.
///
/// # Example
///
/// ```
/// use zllm_accel::{AccelConfig, DecodeEngine};
/// use zllm_model::ModelConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut engine = DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::test_small(), 32)?;
/// let report = engine.decode_token(4);
/// assert!(report.tokens_per_s > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecodeEngine {
    accel: AccelConfig,
    model: ModelConfig,
    image: ModelImage,
    mem: MemorySystem,
    vpu: Vpu,
    /// Flash-backed weight tier ([`DecodeEngine::new_tiered`]); `None`
    /// for the ordinary all-in-DDR engine.
    tier: Option<TierState>,
    /// Inline-compression stage in front of the DDR controller
    /// ([`DecodeEngine::enable_compression`]); `None` prices every burst
    /// at logical size.
    comp: Option<CompState>,
    /// The paper's theoretical roofline for this model on this bandwidth.
    roofline_tokens_per_s: f64,
    /// All components publish into this registry; [`TokenReport`] and
    /// [`zllm_ddr::DdrStats`] are value-type views over the same numbers.
    registry: MetricsRegistry,
    metrics: DecodeMetrics,
    /// Schedules already derived, keyed by `(ctx, batch)`. A schedule is a
    /// pure function of `(image, ctx, batch, pipeline)` and image and
    /// pipeline are fixed for the engine's lifetime, so reuse is exact.
    /// Bounded by [`SCHEDULE_CACHE_CAP`]; misses past the cap are priced
    /// from a freshly derived schedule without being retained.
    schedules: HashMap<(usize, usize), Rc<CachedSchedule>>,
    /// Ragged (per-sequence-context) schedules, keyed by the full slot
    /// vector, in their own bounded cache so continuous-batching traffic
    /// never evicts or pollutes the uniform `(ctx, batch)` entries the
    /// sweeps and the perf gate rely on. Uniform slot vectors are routed
    /// to `schedules` instead and never land here.
    ragged_schedules: HashMap<Vec<(usize, usize)>, Rc<CachedSchedule>>,
    /// The synthetic draft model's placed image
    /// ([`DraftCost::Synthetic`]), cached across speculative steps and
    /// rebuilt only when the draft geometry changes.
    draft: Option<(ModelConfig, ModelImage)>,
}

/// Upper bound on retained schedules. Sweeps and the perf gate revisit a
/// handful of context lengths; a token-by-token generation run visits each
/// context once, where caching buys nothing — so stop retaining rather
/// than let a long run hold hundreds of schedules alive.
const SCHEDULE_CACHE_CAP: usize = 64;

/// Upper bound on retained ragged schedules. A serving run revisits the
/// same few slot-vector shapes while the batch composition is stable and
/// moves on as sequences advance, so a small window captures the reuse.
const RAGGED_CACHE_CAP: usize = 64;

/// The engine's compression stage plus its telemetry registration state.
///
/// `comp.*` metrics follow the `tier.*`/`spec.*` registered-on-first-use
/// pattern: they appear in the snapshot only once compressed traffic has
/// actually been priced, so compression-off engines — and compressed
/// engines whose every ratio is 1.0 — keep exactly the uncompressed key
/// set.
#[derive(Debug)]
struct CompState {
    ctrl: CompressedController,
    registered: bool,
}

/// A token schedule plus everything `price` derives from it alone:
/// schedule-wide totals, the per-kind byte breakdown, and the telemetry
/// counters those kinds publish into — resolved once instead of a
/// `format!`-keyed registry lookup per kind per token.
#[derive(Debug)]
struct CachedSchedule {
    sched: TokenSchedule,
    /// Read beats grouped by compute fanout, in first-appearance order.
    /// A `(fanout, beats)` group costs `beats ×
    /// cycles_per_beat_for(fanout)` VPU cycles; at `batch = 1` there is a
    /// single group at fanout 1 and the arithmetic reduces to the
    /// single-sequence pricing exactly.
    beat_groups: Vec<(u32, u64)>,
    exposed_misc: u64,
    /// Bytes per operation kind, in first-appearance order.
    breakdown: Vec<(String, u64)>,
    /// `decode.bytes.{kind}` handles, parallel to `breakdown`.
    kind_counters: Vec<Counter>,
    /// Consecutive ops grouped by layer (`L{n}.…` labels; `None` for
    /// embedding/head/meta traffic), with the group's bytes — the runs
    /// the tier walk paces a token by.
    layer_segments: Vec<(Option<usize>, u64)>,
    /// Compression stream class per op, parallel to `sched.ops` — so the
    /// compressed pricing path never re-parses labels.
    classes: Vec<StreamClass>,
}

impl CachedSchedule {
    fn build(sched: TokenSchedule, registry: &mut MetricsRegistry) -> CachedSchedule {
        // Aggregate bytes by operation kind (strip the layer prefix) and
        // read beats by compute fanout.
        let mut breakdown: Vec<(String, u64)> = Vec::new();
        let mut beat_groups: Vec<(u32, u64)> = Vec::new();
        let mut layer_segments: Vec<(Option<usize>, u64)> = Vec::new();
        let mut classes: Vec<StreamClass> = Vec::with_capacity(sched.ops.len());
        for op in &sched.ops {
            let kind = op
                .label
                .split_once('.')
                .map(|(_, k)| k)
                .unwrap_or(&op.label);
            classes.push(stream_class_of(kind));
            let layer = op
                .label
                .strip_prefix('L')
                .and_then(|rest| rest.split_once('.'))
                .and_then(|(n, _)| n.parse::<usize>().ok());
            match layer_segments.last_mut() {
                Some((l, b)) if *l == layer => *b += op.bytes(),
                _ => layer_segments.push((layer, op.bytes())),
            }
            match breakdown.iter_mut().find(|(k, _)| k == kind) {
                Some((_, b)) => *b += op.bytes(),
                None => breakdown.push((kind.to_owned(), op.bytes())),
            }
            match beat_groups
                .iter_mut()
                .find(|(f, _)| *f == op.compute_fanout)
            {
                Some((_, b)) => *b += op.vpu_beats,
                None => beat_groups.push((op.compute_fanout, op.vpu_beats)),
            }
        }
        let kind_counters = breakdown
            .iter()
            .map(|(kind, _)| registry.counter(&format!("decode.bytes.{kind}")))
            .collect();
        CachedSchedule {
            beat_groups,
            exposed_misc: sched.total_exposed_misc(),
            breakdown,
            kind_counters,
            layer_segments,
            classes,
            sched,
        }
    }
}

/// Pre-resolved handles for the metrics the pricing loop publishes, so
/// the hot path never performs a name lookup.
#[derive(Debug)]
struct DecodeMetrics {
    tokens: Counter,
    bytes: Counter,
    vpu_cycles: Counter,
    bubble_cycles: Counter,
    exposed_misc_cycles: Counter,
    tokens_per_s: Gauge,
    bandwidth_util: Gauge,
    wall_ns: Gauge,
}

impl DecodeMetrics {
    fn register(reg: &mut MetricsRegistry) -> DecodeMetrics {
        DecodeMetrics {
            tokens: reg.counter("decode.tokens"),
            bytes: reg.counter("decode.bytes"),
            vpu_cycles: reg.counter("vpu.cycles"),
            bubble_cycles: reg.counter("pipeline.bubble_cycles"),
            exposed_misc_cycles: reg.counter("pipeline.exposed_misc_cycles"),
            tokens_per_s: reg.gauge("decode.tokens_per_s"),
            bandwidth_util: reg.gauge("decode.bandwidth_util"),
            wall_ns: reg.gauge("decode.wall_ns"),
        }
    }
}

impl DecodeEngine {
    /// Builds the engine, placing the model image in the 4 GB map.
    ///
    /// # Errors
    ///
    /// Returns the allocation error if the model does not fit.
    pub fn new(
        accel: AccelConfig,
        model: &ModelConfig,
        ctx_capacity: usize,
    ) -> Result<DecodeEngine, AllocError> {
        DecodeEngine::new_batched(accel, model, ctx_capacity, 1)
    }

    /// Builds an engine provisioned for up to `max_batch` concurrent
    /// sequences: the image reserves `max_batch` per-sequence KV cache and
    /// metadata regions (weights are shared). `new` is this at
    /// `max_batch = 1`.
    ///
    /// # Errors
    ///
    /// Returns the allocation error if the model plus the batched KV
    /// provisioning does not fit the 4 GB map — on LLaMA2-7B-class models
    /// the KV cache is 256 KiB per token per sequence, so large
    /// `batch × ctx_capacity` products hit the capacity wall the paper's
    /// single-user design deliberately avoids.
    pub fn new_batched(
        accel: AccelConfig,
        model: &ModelConfig,
        ctx_capacity: usize,
        max_batch: usize,
    ) -> Result<DecodeEngine, AllocError> {
        let image = ModelImage::build_batched(model, accel.format, ctx_capacity, max_batch)?;
        Ok(DecodeEngine::with_image(accel, image))
    }

    /// [`DecodeEngine::new_batched`] over a *paged* KV image: the same
    /// budget carved into `page_tokens`-token pages with per-sequence
    /// page tables, whose lookups and appends the schedules price as
    /// real metadata bursts (see [`ModelImage::build_paged`]).
    ///
    /// # Errors
    ///
    /// Returns the allocation error if the model plus the KV pool does
    /// not fit the 4 GB map.
    pub fn new_paged(
        accel: AccelConfig,
        model: &ModelConfig,
        ctx_capacity: usize,
        max_batch: usize,
        page_tokens: usize,
    ) -> Result<DecodeEngine, AllocError> {
        let image =
            ModelImage::build_paged(model, accel.format, ctx_capacity, max_batch, page_tokens)?;
        Ok(DecodeEngine::with_image(accel, image))
    }

    /// Builds the engine over an already-placed image — the path the
    /// cluster layer takes to stand one engine up per pipeline shard
    /// (see [`ModelImage::build_shard`]). The engine prices exactly the
    /// image's own DDR traffic: a stage without the embedding table or
    /// LM head schedules no bytes for them, so the union of the shard
    /// engines' traffic equals the single-board engine's.
    pub fn with_image(accel: AccelConfig, image: ModelImage) -> DecodeEngine {
        let model = image.model().clone();
        let mut registry = MetricsRegistry::new();
        let mem = MemorySystem::with_counters(
            accel.ddr.clone(),
            accel.axi,
            accel.mem_lookahead,
            DdrCounters::register(&mut registry, "ddr.port0"),
        );
        let vpu = Vpu::with_counters(
            accel.lanes,
            zllm_fp16::vector::TreePrecision::Fp32,
            VpuCounters::register(&mut registry, "vpu"),
        );
        let roofline = memory::weight_roofline_tokens_per_s(
            &model,
            memory::WeightPrecision::Effective(4.0),
            accel
                .axi
                .bandwidth_gbps()
                .min(accel.ddr.peak_bandwidth_gbps()),
        );
        let metrics = DecodeMetrics::register(&mut registry);
        registry.gauge("decode.roofline_tokens_per_s").set(roofline);
        DecodeEngine {
            vpu,
            accel,
            model,
            image,
            mem,
            tier: None,
            comp: None,
            roofline_tokens_per_s: roofline,
            registry,
            metrics,
            schedules: HashMap::new(),
            ragged_schedules: HashMap::new(),
            draft: None,
        }
    }

    /// Builds a **tiered** engine: weights live on the configured flash
    /// device and only `tier.weight_budget_bytes` of layer weights are
    /// DDR-resident at a time, managed by the tier's prefetch policy.
    /// Models too big for the 4 GiB device are placed in an extended
    /// virtual address space ([`ModelImage::build_tiered`]); the physical
    /// footprint is then `non-layer bytes + weight budget` (see
    /// [`DecodeEngine::tier_physical_bytes`]), which is how a 13B-shape
    /// model decodes on a 4 GiB board.
    ///
    /// Every token is first priced exactly as the flat engine would, then
    /// the schedule's layer runs are walked against the flash timeline:
    /// prefetches overlap decode, demand misses and late prefetches stall
    /// it, and staging writes contend on the shared DDR controller.
    ///
    /// # Errors
    ///
    /// Returns the allocation error if the model exceeds even the largest
    /// virtual map.
    ///
    /// # Panics
    ///
    /// Panics if the weight budget cannot hold the largest single layer.
    pub fn new_tiered(
        accel: AccelConfig,
        model: &ModelConfig,
        ctx_capacity: usize,
        tier: TierConfig,
    ) -> Result<DecodeEngine, AllocError> {
        let image = ModelImage::build_tiered(model, accel.format, ctx_capacity)?;
        Ok(DecodeEngine::with_image_tiered(accel, image, tier))
    }

    /// [`DecodeEngine::with_image`] plus a weight tier over the image's
    /// layers. The cache starts warm in the policy's preferred order —
    /// the boot-time model load is not decode time.
    ///
    /// # Panics
    ///
    /// Panics if the weight budget cannot hold the largest single layer.
    pub fn with_image_tiered(
        accel: AccelConfig,
        image: ModelImage,
        tier: TierConfig,
    ) -> DecodeEngine {
        let mut engine = DecodeEngine::with_image(accel, image);
        engine.tier = Some(TierState::new(&engine.image, tier));
        engine
    }

    /// The tier's activity so far, or `None` on a flat engine.
    pub fn tier_report(&self) -> Option<TierReport> {
        self.tier.as_ref().map(|t| t.report())
    }

    /// Physical DDR bytes a tiered deployment needs: everything placed
    /// except layer weights, plus the layer weight budget. `None` on a
    /// flat engine. This is the number that must fit the real board.
    pub fn tier_physical_bytes(&self) -> Option<u64> {
        self.tier
            .as_ref()
            .map(|t| self.image.non_layer_resident_bytes() + t.cache.budget_bytes())
    }

    /// Puts the inline-compression stage in front of the DDR controller:
    /// weight, KV and activation bursts are priced at their compressed
    /// wire size per the configuration's per-class ratios, page-map
    /// metadata bursts are charged, and the decompressor's cut-through
    /// stall is folded into the wall (see
    /// [`zllm_ddr::compress::CompressedController`]).
    ///
    /// Logical accounting is unchanged: `decode.bytes.*` and the report's
    /// `bytes` stay at logical size, while `comp.bytes.wire` and the
    /// `ddr.port0.*` counters reflect what actually crossed the bus. With
    /// every ratio at 1.0 the stage is a bit-identical pass-through and
    /// registers no `comp.*` telemetry. Tiered staging and synthetic
    /// draft traffic bypass the stage (they model bulk copies and an
    /// off-datapath draft engine, not decode streams).
    pub fn enable_compression(&mut self, cfg: CompressionConfig) {
        self.comp = Some(CompState {
            ctrl: CompressedController::new(cfg),
            registered: false,
        });
    }

    /// [`DecodeEngine::new`] with the compression stage enabled.
    ///
    /// # Errors
    ///
    /// Returns the allocation error if the model does not fit.
    pub fn new_compressed(
        accel: AccelConfig,
        model: &ModelConfig,
        ctx_capacity: usize,
        cfg: CompressionConfig,
    ) -> Result<DecodeEngine, AllocError> {
        let mut engine = DecodeEngine::new(accel, model, ctx_capacity)?;
        engine.enable_compression(cfg);
        Ok(engine)
    }

    /// The compression stage's cumulative `(logical, wire, metadata)`
    /// bytes so far, or `None` on an uncompressed engine.
    pub fn compression_bytes(&self) -> Option<(u64, u64, u64)> {
        self.comp.as_ref().map(|c| {
            let k = c.ctrl.counters();
            (
                k.bytes_logical.get(),
                k.bytes_wire.get(),
                k.bytes_meta.get(),
            )
        })
    }

    /// The metrics registry every component of this engine publishes into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable access to the registry (for registering extra metrics or
    /// resetting between scenarios).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// A deterministic snapshot of every metric published so far.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The placed model image.
    pub fn image(&self) -> &ModelImage {
        &self.image
    }

    /// Sequences this engine's image provisions KV space for.
    pub fn max_batch(&self) -> usize {
        self.image.batch()
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The accelerator configuration.
    pub fn accel(&self) -> &AccelConfig {
        &self.accel
    }

    /// The paper's theoretical peak for this model (pure 4-bit weight
    /// transfers at full bandwidth).
    pub fn roofline_tokens_per_s(&self) -> f64 {
        self.roofline_tokens_per_s
    }

    /// Prices one decode step at context length `ctx`.
    pub fn decode_token(&mut self, ctx: usize) -> TokenReport {
        let cached = self.schedule_for(ctx, 1);
        let r = self.price(&cached);
        TokenReport {
            ctx: r.ctx,
            bytes: r.bytes,
            mem_ns: r.mem_ns,
            vpu_cycles: r.vpu_cycles,
            exposed_misc_cycles: r.exposed_misc_cycles,
            bubble_cycles: r.bubble_cycles,
            wall_ns: r.wall_ns,
            tokens_per_s: r.tokens_per_s,
            bandwidth_util: r.bandwidth_util,
            breakdown: r.breakdown,
        }
    }

    /// Prices one lockstep batched decode step: `batch` sequences, each
    /// at context length `ctx`, each producing one token. The schedule
    /// streams every weight tile **once** and fans its compute out to all
    /// sequences; each sequence's KV history and write-back are priced as
    /// separate DDR streams over that sequence's own cache region.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or exceeds the engine's provisioning
    /// (`max_batch` passed to [`DecodeEngine::new_batched`]).
    pub fn decode_token_batch(&mut self, ctx: usize, batch: usize) -> BatchTokenReport {
        let cached = self.schedule_for(ctx, batch);
        self.price(&cached)
    }

    /// Prices one *ragged* (continuous-batching) decode step: each
    /// `(slot, ctx)` pair is a sequence at its own context length in its
    /// own KV slot. Weight streams are still fetched once and fanned to
    /// all participants; each sequence pays exactly its own KV traffic,
    /// so a freshly joined sequence never pads to the longest veteran.
    ///
    /// Uniform slot vectors (`[(0, c), …, (B-1, c)]`) price through the
    /// same cached schedule as [`DecodeEngine::decode_token_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty, repeats a slot, or names a slot or
    /// context beyond the engine's provisioning.
    pub fn decode_token_ragged(&mut self, slots: &[(usize, usize)]) -> BatchTokenReport {
        let cached = self.ragged_schedule_for(slots);
        self.price(&cached)
    }

    /// Prices one chunked-prefill step: the weight stream is fetched once
    /// and its compute fanned across every prompt token of every chunk
    /// (`Σ len`), each chunk reads its own cached history once, and every
    /// chunk token's KV is written back. The report's `batch` counts
    /// prompt tokens, so `tokens_per_s` is prefill throughput.
    ///
    /// Prefill shapes rarely repeat (each chunk advances `start`), so
    /// these schedules are derived fresh rather than cached.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty, a chunk is empty or repeats a slot,
    /// or a chunk runs past the engine's provisioning.
    pub fn prefill_chunked(&mut self, chunks: &[PrefillChunk]) -> BatchTokenReport {
        let sched = chunked_prefill_schedule(&self.image, chunks, self.accel.pipeline);
        let cached = CachedSchedule::build(sched, &mut self.registry);
        self.price(&cached)
    }

    /// Prices one speculative decode step: each window verifies its
    /// `drafted` proposals plus the preceding committed token in a single
    /// pass that streams every weight tile **once** with its compute
    /// fanned across all `drafted + 1` positions — the decode-side twin
    /// of [`DecodeEngine::prefill_chunked`]'s amortization — then commits
    /// the accepted prefix and rolls the rejected suffix's KV metadata
    /// and page-table entries back
    /// (see [`crate::schedule::speculative_verify_schedule`]).
    ///
    /// Accept outcomes are an input, not a simulation product: the
    /// functional layer's [`crate::functional::greedy_accept`] (or the
    /// serving layer's accept-rate model) resolves each
    /// [`SpecWindow::accepted`] before pricing. The report's `batch`
    /// counts **committed** tokens (`accepted + 1` per window), so
    /// `tokens_per_s` is useful-token throughput, and the draft model's
    /// cost — priced per [`DraftCost`] — is folded into `wall_ns`.
    /// Speculative shapes rarely repeat, so schedules are derived fresh
    /// rather than cached, like prefill's.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty, a window over-accepts or repeats a
    /// slot, or a window runs past the engine's provisioning; a
    /// [`DraftCost::Synthetic`] draft panics if its image does not fit
    /// the device.
    pub fn decode_speculative(
        &mut self,
        windows: &[SpecWindow],
        draft: &DraftCost,
    ) -> BatchTokenReport {
        let sched = speculative_verify_schedule(&self.image, windows, self.accel.pipeline);
        let cached = CachedSchedule::build(sched, &mut self.registry);
        // Draft first: drafting precedes verification in the real loop,
        // so its DDR traffic sets the bank/refresh phase the verify
        // stream then sees.
        let (draft_ns, draft_bytes) = self.draft_cost(windows, draft);
        let mut report = self.price(&cached);
        report.wall_ns += draft_ns;
        report.tokens_per_s = report.batch as f64 * 1e9 / report.wall_ns;
        report.seq_tokens_per_s = 1e9 / report.wall_ns;
        report.bandwidth_util = report.tokens_per_s / self.roofline_tokens_per_s;
        // Re-set the step gauges `price` published from the draft-free
        // wall.
        self.metrics.tokens_per_s.set(report.tokens_per_s);
        self.metrics.bandwidth_util.set(report.bandwidth_util);
        self.metrics.wall_ns.set(report.wall_ns);
        // Speculation telemetry exists only once a speculative step ran,
        // so non-speculative runs (and the committed baseline scenarios)
        // keep exactly their pre-speculation key set.
        let drafted: usize = windows.iter().map(|w| w.drafted).sum();
        let accepted: usize = windows.iter().map(|w| w.accepted).sum();
        self.registry
            .counter("spec.windows")
            .add(windows.len() as u64);
        self.registry
            .counter("spec.tokens.drafted")
            .add(drafted as u64);
        self.registry
            .counter("spec.tokens.accepted")
            .add(accepted as u64);
        self.registry
            .counter("spec.tokens.committed")
            .add(report.batch as u64);
        self.registry.counter("spec.draft.bytes").add(draft_bytes);
        self.registry.gauge("spec.draft_ns").set(draft_ns);
        self.registry
            .gauge("spec.bytes_per_committed_token")
            .set(report.bytes as f64 / report.batch as f64);
        report
    }

    /// The draft model's cost for this step: `(wall ns, DDR bytes)`. A
    /// synthetic draft decodes one token per drafted position at that
    /// position's context through the engine's own memory system (its
    /// bursts bump the `ddr.port0.*` counters as real traffic); a flat
    /// cost moves no bytes.
    fn draft_cost(&mut self, windows: &[SpecWindow], draft: &DraftCost) -> (f64, u64) {
        match draft {
            DraftCost::FlatNs { ns_per_token } => {
                let drafted: usize = windows.iter().map(|w| w.drafted).sum();
                (ns_per_token * drafted as f64, 0)
            }
            DraftCost::Synthetic { model } => {
                if !matches!(&self.draft, Some((m, _)) if m == model) {
                    let image = ModelImage::build_batched(
                        model,
                        self.accel.format,
                        self.image.ctx_capacity(),
                        1,
                    )
                    .expect("draft model must fit the device");
                    self.draft = Some((model.clone(), image));
                }
                let DecodeEngine {
                    draft: cache,
                    mem,
                    accel,
                    vpu,
                    ..
                } = self;
                let (_, image) = cache.as_ref().expect("just built");
                let wpb = accel.format.weights_per_beat() as u64;
                let fabric =
                    (zllm_layout::BEAT_BYTES as u64).div_ceil(accel.axi.bytes_per_cycle().max(1));
                let cpb = wpb.div_ceil(accel.lanes as u64).max(fabric);
                let mut total_ns = 0.0;
                let mut bytes = 0u64;
                for w in windows {
                    for j in 0..w.drafted {
                        let sched = token_schedule(image, w.ctx + j, accel.pipeline);
                        let report = mem
                            .transfer_iter(sched.ops.iter().flat_map(|o| o.bursts.iter().copied()));
                        let beats: u64 = sched.ops.iter().map(|o| o.vpu_beats).sum();
                        let bubbles = sched.ops.len() as u64 * vpu.pipeline_latency();
                        let compute_ns = accel.cycles_to_ns(beats * cpb + bubbles);
                        let exposed_ns = accel.cycles_to_ns(sched.total_exposed_misc());
                        total_ns += report.wall_ns.max(compute_ns) + exposed_ns;
                        bytes += report.bytes;
                    }
                }
                (total_ns, bytes)
            }
        }
    }

    /// The cached schedule for a ragged slot vector. Uniform vectors are
    /// routed to the `(ctx, batch)` cache; genuinely ragged ones get
    /// their own bounded map keyed by the full vector.
    fn ragged_schedule_for(&mut self, slots: &[(usize, usize)]) -> Rc<CachedSchedule> {
        if let Some(&(_, ctx0)) = slots.first() {
            if slots
                .iter()
                .enumerate()
                .all(|(i, &(slot, ctx))| slot == i && ctx == ctx0)
            {
                return self.schedule_for(ctx0, slots.len());
            }
        }
        if let Some(cached) = self.ragged_schedules.get(slots) {
            // The hit/miss counters exist only once a genuinely ragged
            // step ran, so uniform-only runs (and the committed baseline
            // scenarios that predate them) keep their exact key set.
            self.registry.counter("decode.ragged_cache.hits").add(1);
            return Rc::clone(cached);
        }
        self.registry.counter("decode.ragged_cache.misses").add(1);
        let sched = ragged_token_schedule(&self.image, slots, self.accel.pipeline);
        let cached = Rc::new(CachedSchedule::build(sched, &mut self.registry));
        if self.ragged_schedules.len() < RAGGED_CACHE_CAP {
            self.ragged_schedules
                .insert(slots.to_vec(), Rc::clone(&cached));
        }
        cached
    }

    /// The cached schedule for `(ctx, batch)`, deriving (and, below the
    /// cache cap, retaining) it on first use.
    fn schedule_for(&mut self, ctx: usize, batch: usize) -> Rc<CachedSchedule> {
        if let Some(cached) = self.schedules.get(&(ctx, batch)) {
            return Rc::clone(cached);
        }
        let sched = batched_token_schedule(&self.image, ctx, batch, self.accel.pipeline);
        let cached = Rc::new(CachedSchedule::build(sched, &mut self.registry));
        if self.schedules.len() < SCHEDULE_CACHE_CAP {
            self.schedules.insert((ctx, batch), Rc::clone(&cached));
        }
        cached
    }

    /// PL cycles needed per 512-bit read beat: the slower of the VPU's
    /// dequantize-and-multiply rate (a beat carries `weights_per_beat`
    /// codes, the VPU retires `lanes` per cycle) and the AXI fabric's
    /// delivery rate (`bytes_per_cycle` of the configured port set).
    fn cycles_per_beat(&self) -> u64 {
        self.cycles_per_beat_for(1)
    }

    /// Same, for a beat whose codes multiply against `fanout` activation
    /// vectors (a shared weight beat in a batch of `fanout`): the VPU
    /// retires `weights_per_beat × fanout` MACs for it.
    fn cycles_per_beat_for(&self, fanout: u32) -> u64 {
        let vpu = (self.accel.format.weights_per_beat() as u64 * fanout as u64)
            .div_ceil(self.accel.lanes as u64);
        let fabric =
            (zllm_layout::BEAT_BYTES as u64).div_ceil(self.accel.axi.bytes_per_cycle().max(1));
        vpu.max(fabric)
    }

    fn price(&mut self, cached: &CachedSchedule) -> BatchTokenReport {
        let sched = &cached.sched;
        let batch = sched.batch;
        // `comp.*` telemetry appears only once compressed traffic is
        // actually priced (all-identity configurations stay invisible).
        if let Some(comp) = self.comp.as_mut() {
            if !comp.registered && !comp.ctrl.config().is_identity() {
                let cfg = *comp.ctrl.config();
                comp.ctrl
                    .set_counters(CompCounters::register(&mut self.registry, "comp"));
                self.registry
                    .gauge("comp.ratio.weight")
                    .set(cfg.weight.ratio());
                self.registry.gauge("comp.ratio.kv").set(cfg.kv.ratio());
                self.registry
                    .gauge("comp.ratio.activation")
                    .set(cfg.activation.ratio());
                comp.registered = true;
            }
        }
        // Memory time: the whole step's bursts streamed through the DDR
        // model, without materializing an intermediate Vec — through the
        // compression stage when one is enabled. The report keeps
        // *logical* bytes (the engine's accounting currency); the wall is
        // wire time, and the decompressor's exposed stall extends the
        // memory term below.
        let (report, comp_stall_ns) = match self.comp.as_mut() {
            Some(comp) => {
                let t = comp.ctrl.transfer(
                    &mut self.mem,
                    sched
                        .ops
                        .iter()
                        .zip(&cached.classes)
                        .flat_map(|(o, &class)| o.bursts.iter().map(move |b| (*b, class))),
                );
                let mut r = t.report;
                r.bytes = t.logical_bytes;
                (r, t.decomp_stall_ns)
            }
            None => (
                self.mem
                    .transfer_iter(sched.ops.iter().flat_map(|o| o.bursts.iter().copied())),
                0.0,
            ),
        };

        let vpu_cycles: u64 = cached
            .beat_groups
            .iter()
            .map(|&(fanout, beats)| beats * self.cycles_per_beat_for(fanout))
            .sum();
        let exposed = cached.exposed_misc;
        // Fused-pipeline bubbles: one VPU fill/drain per operation
        // boundary (dependency handoff).
        let bubbles = sched.ops.len() as u64 * self.vpu.pipeline_latency();

        let compute_ns = self.accel.cycles_to_ns(vpu_cycles + bubbles);
        let exposed_ns = self.accel.cycles_to_ns(exposed);
        // Weight-tier effects: walk the token's layer runs against the
        // flash timeline. Prefetch staging adds contention on the DDR bus
        // (it shares the controller with the decode stream); demand
        // misses and late prefetches stall the whole pipeline. The walk
        // paces itself by the tier-free wall — conservative, since the
        // real token is never faster than that.
        let base_wall_ns = (report.wall_ns + comp_stall_ns).max(compute_ns) + exposed_ns;
        let (stall_ns, staging_ns) = match self.tier.as_mut() {
            Some(tier) => tier.walk_token(
                &mut self.mem,
                &cached.layer_segments,
                report.bytes,
                base_wall_ns,
            ),
            None => (0.0, 0.0),
        };
        // The decompressor stall extends the memory term (cut-through: a
        // compute-bound engine hides it), like the tier's staging time.
        let wall_ns =
            (report.wall_ns + comp_stall_ns + staging_ns).max(compute_ns) + exposed_ns + stall_ns;
        let tokens_per_s = batch as f64 * 1e9 / wall_ns;
        let seq_tokens_per_s = 1e9 / wall_ns;

        // Byte split for the amortization metrics, measured from the
        // schedule itself: per-sequence kinds scale with `batch`, the
        // rest is the shared weight stream paid once.
        let per_seq_bytes: u64 = cached
            .breakdown
            .iter()
            .filter(|(kind, _)| is_per_sequence_kind(kind))
            .map(|(_, b)| b)
            .sum();
        let shared_bytes = report.bytes - per_seq_bytes;
        let kv_bytes: u64 = cached
            .breakdown
            .iter()
            .filter(|(kind, _)| kind.starts_with("kv_"))
            .map(|(_, b)| b)
            .sum();
        // `batch` independent decodes would stream the shared weights
        // `batch` times over, plus the same per-sequence traffic.
        let independent_bytes = shared_bytes * batch as u64 + per_seq_bytes;
        let weight_amortization = independent_bytes as f64 / report.bytes as f64;
        let kv_share = kv_bytes as f64 / report.bytes as f64;

        // Publish into the registry: counters accumulate across the run,
        // gauges reflect the most recent priced step. The DDR counters
        // were already bumped inside `transfer_iter()` via the shared
        // handles, and the per-kind byte counters were resolved when the
        // schedule was cached.
        self.metrics.tokens.add(batch as u64);
        self.metrics.bytes.add(report.bytes);
        self.metrics.vpu_cycles.add(vpu_cycles);
        self.metrics.bubble_cycles.add(bubbles);
        self.metrics.exposed_misc_cycles.add(exposed);
        self.metrics.tokens_per_s.set(tokens_per_s);
        self.metrics
            .bandwidth_util
            .set(tokens_per_s / self.roofline_tokens_per_s);
        self.metrics.wall_ns.set(wall_ns);
        for ((_, bytes), counter) in cached.breakdown.iter().zip(&cached.kind_counters) {
            counter.add(*bytes);
        }
        // Batch gauges appear only once a batched step has been priced,
        // so single-sequence snapshots (and the committed baseline) keep
        // exactly their pre-batching key set.
        let ns_per_cycle = self.accel.cycles_to_ns(1);
        if let Some(tier) = self.tier.as_mut() {
            tier.publish(&mut self.registry, ns_per_cycle);
        }
        if batch > 1 {
            self.registry.gauge("decode.batch.size").set(batch as f64);
            self.registry
                .gauge("decode.batch.seq_tokens_per_s")
                .set(seq_tokens_per_s);
            self.registry
                .gauge("decode.batch.weight_amortization")
                .set(weight_amortization);
            self.registry.gauge("decode.batch.kv_share").set(kv_share);
        }

        BatchTokenReport {
            ctx: sched.ctx,
            batch,
            bytes: report.bytes,
            mem_ns: report.wall_ns,
            vpu_cycles,
            exposed_misc_cycles: exposed,
            bubble_cycles: bubbles,
            wall_ns,
            tokens_per_s,
            seq_tokens_per_s,
            bandwidth_util: tokens_per_s / self.roofline_tokens_per_s,
            weight_amortization,
            kv_share,
            breakdown: cached.breakdown.clone(),
        }
    }

    /// Prices a generation run: contexts `start_ctx .. start_ctx + tokens`.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero.
    pub fn decode_run(&mut self, start_ctx: usize, tokens: usize) -> RunReport {
        assert!(tokens > 0, "at least one token required");
        let steps: Vec<TokenReport> = (0..tokens)
            .map(|i| self.decode_token(start_ctx + i))
            .collect();
        let total_ns: f64 = steps.iter().map(|s| s.wall_ns).sum();
        let tokens_per_s = tokens as f64 * 1e9 / total_ns;
        let bandwidth_util = tokens_per_s / self.roofline_tokens_per_s;
        self.registry
            .gauge("decode.run.tokens_per_s")
            .set(tokens_per_s);
        self.registry
            .gauge("decode.run.bandwidth_util")
            .set(bandwidth_util);
        RunReport {
            tokens,
            tokens_per_s,
            bandwidth_util,
            steps,
        }
    }

    /// Estimates the prefill phase on the paper's *vector* engine, which
    /// streams the full weight set for every prompt token (no reuse —
    /// the deliberate sacrifice of §VI-B). Sampled like
    /// [`Self::decode_run_sampled`].
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` is zero or exceeds capacity.
    pub fn prefill_vector_ns(&mut self, prompt_len: usize) -> f64 {
        assert!(prompt_len > 0, "empty prompt");
        let samples = prompt_len.min(4);
        let run = self.decode_run_sampled(prompt_len, samples);
        let mean_ns: f64 =
            run.steps.iter().map(|s| s.wall_ns).sum::<f64>() / run.steps.len() as f64;
        mean_ns * prompt_len as f64
    }

    /// Analytic estimate of the same prefill on a hypothetical *matrix*
    /// engine with `macs` multipliers: weights stream **once** (token
    /// batch shares the fetch), and the engine is compute-bound at
    /// `macs` MACs/cycle.
    ///
    /// On the KV260's DSP budget this buys almost nothing — prefill flops
    /// divided by the same multiplier count dominate either way — which
    /// is exactly why the paper spends the area on a bandwidth-matched
    /// vector engine instead.
    pub fn prefill_matrix_engine_ns(&self, prompt_len: usize, macs: usize) -> f64 {
        assert!(prompt_len > 0, "empty prompt");
        assert!(macs > 0, "at least one multiplier");
        let weight_bytes =
            memory::streamed_weight_bytes(&self.model, memory::WeightPrecision::W4G128);
        let mem_ns = weight_bytes / self.accel.axi.bandwidth_gbps();
        let flops = 2.0
            * (self.model.param_count() as f64
                - (self.model.vocab_size * self.model.d_model) as f64)
            * prompt_len as f64;
        let compute_ns = flops / (2.0 * macs as f64 * self.accel.freq_mhz * 1e6) * 1e9;
        mem_ns.max(compute_ns)
    }

    /// Estimates multi-batch decoding throughput (total tokens/s across
    /// `batch` concurrent sequences at context `ctx`).
    ///
    /// Batching amortizes the weight stream across sequences — the reason
    /// server FPGAs serve many users (§II) — but each sequence still
    /// reads its own KV history, and every weight beat now multiplies
    /// against `batch` activation vectors, needing
    /// `⌈weights_per_beat · batch / lanes⌉` VPU cycles. On the paper's
    /// *bandwidth-area balanced* engine (lanes exactly matching the bus)
    /// total throughput is therefore **flat** in batch size: the design
    /// deliberately has no batching headroom, which is only sensible for
    /// the one-user edge workload (§II, §VI-B).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn decode_batch_estimate(&mut self, ctx: usize, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be at least 1");
        let single = self.decode_token(ctx);
        // Split the single-sequence step into shared (weights) and
        // per-sequence (KV) traffic.
        let kv_bytes = single.bytes_for("kv_read") + single.bytes_for("kv_write");
        let shared_bytes = single.bytes - kv_bytes;
        let total_bytes = shared_bytes + kv_bytes * batch as u64;
        // Memory time scales with bytes at the measured efficiency.
        let mem_ns = single.mem_ns * total_bytes as f64 / single.bytes as f64;
        // Compute: `batch` activations per weight beat, `lanes` MACs/cycle.
        let beats = single.vpu_cycles / self.cycles_per_beat();
        let wpb = self.accel.format.weights_per_beat() as u64;
        let fabric =
            (zllm_layout::BEAT_BYTES as u64).div_ceil(self.accel.axi.bytes_per_cycle().max(1));
        let cpb = (wpb * batch as u64)
            .div_ceil(self.accel.lanes as u64)
            .max(fabric);
        let compute_ns = self.accel.cycles_to_ns(beats * cpb + single.bubble_cycles);
        let exposed_ns = self
            .accel
            .cycles_to_ns(single.exposed_misc_cycles * batch as u64);
        let wall_ns = mem_ns.max(compute_ns) + exposed_ns;
        batch as f64 * 1e9 / wall_ns
    }

    /// Prices a *sampled* long generation cheaply: simulates one token at
    /// each of `samples` evenly spaced context lengths in
    /// `[0, ctx_end)` and averages the per-token cost — accurate because
    /// cost is affine in context length.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero or `ctx_end` exceeds capacity.
    pub fn decode_run_sampled(&mut self, ctx_end: usize, samples: usize) -> RunReport {
        assert!(samples > 0, "at least one sample required");
        assert!(
            ctx_end <= self.image.ctx_capacity(),
            "context beyond capacity"
        );
        let step = (ctx_end.max(1) / samples).max(1);
        let steps: Vec<TokenReport> = (0..samples)
            .map(|i| self.decode_token((i * step).min(ctx_end.saturating_sub(1))))
            .collect();
        let mean_ns: f64 = steps.iter().map(|s| s.wall_ns).sum::<f64>() / steps.len() as f64;
        let tokens_per_s = 1e9 / mean_ns;
        let bandwidth_util = tokens_per_s / self.roofline_tokens_per_s;
        self.registry
            .gauge("decode.run.tokens_per_s")
            .set(tokens_per_s);
        self.registry
            .gauge("decode.run.bandwidth_util")
            .set(bandwidth_util);
        RunReport {
            tokens: samples,
            tokens_per_s,
            bandwidth_util,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineMode;
    use crate::schedule::token_schedule;

    fn small_engine(mode: PipelineMode) -> DecodeEngine {
        let accel = match mode {
            PipelineMode::Fused => AccelConfig::kv260(),
            PipelineMode::Coarse => AccelConfig::kv260_coarse(),
        };
        DecodeEngine::new(accel, &ModelConfig::test_small(), 32).expect("test model fits")
    }

    #[test]
    fn reports_are_self_consistent() {
        let mut engine = small_engine(PipelineMode::Fused);
        let r = engine.decode_token(4);
        assert!(r.bytes > 0);
        assert!(r.wall_ns >= r.mem_ns);
        assert!(r.tokens_per_s > 0.0);
        assert_eq!(r.exposed_misc_cycles, 0);
        assert!(r.bandwidth_util > 0.0 && r.bandwidth_util <= 1.0);
        // Breakdown covers every byte exactly once.
        let sum: u64 = r.breakdown.iter().map(|(_, b)| b).sum();
        assert_eq!(sum, r.bytes);
        assert!(r.bytes_for("mlp") > r.bytes_for("kv_read"));
    }

    #[test]
    fn schedule_cache_reuses_and_stays_exact() {
        let mut engine = small_engine(PipelineMode::Fused);
        let first = engine.decode_token(8);
        let again = engine.decode_token(8);
        assert_eq!(engine.schedules.len(), 1, "same ctx should share one entry");
        // Reuse must not change what the schedule describes — only the
        // DDR phase (refresh timing) may differ between the two steps.
        assert_eq!(first.bytes, again.bytes);
        assert_eq!(first.vpu_cycles, again.vpu_cycles);
        assert_eq!(first.breakdown, again.breakdown);
        // The cached breakdown matches a fresh aggregation of the raw
        // schedule, byte for byte and in first-appearance order.
        let sched = token_schedule(engine.image(), 8, PipelineMode::Fused);
        let mut expected: Vec<(String, u64)> = Vec::new();
        for op in &sched.ops {
            let kind = op
                .label
                .split_once('.')
                .map(|(_, k)| k)
                .unwrap_or(&op.label)
                .to_owned();
            match expected.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, b)) => *b += op.bytes(),
                None => expected.push((kind, op.bytes())),
            }
        }
        assert_eq!(first.breakdown, expected);
    }

    #[test]
    fn schedule_cache_is_bounded() {
        let mut engine =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::test_small(), 256).expect("fits");
        for ctx in 0..200 {
            engine.decode_token(ctx);
        }
        assert!(engine.schedules.len() <= SCHEDULE_CACHE_CAP);
        // Contexts past the cap are still priced correctly.
        assert!(engine.decode_token(199).bytes > 0);
    }

    #[test]
    fn coarse_is_slower_than_fused() {
        let mut fused = small_engine(PipelineMode::Fused);
        let mut coarse = small_engine(PipelineMode::Coarse);
        let rf = fused.decode_token(16);
        let rc = coarse.decode_token(16);
        assert!(
            rc.tokens_per_s < rf.tokens_per_s,
            "coarse {} should be slower than fused {}",
            rc.tokens_per_s,
            rf.tokens_per_s
        );
        assert!(rc.exposed_misc_cycles > 0);
    }

    #[test]
    fn longer_context_costs_more() {
        let mut engine = small_engine(PipelineMode::Fused);
        let short = engine.decode_token(1);
        let long = engine.decode_token(31);
        assert!(long.bytes > short.bytes);
        assert!(long.wall_ns > short.wall_ns * 0.99);
    }

    #[test]
    fn run_averages_steps() {
        let mut engine = small_engine(PipelineMode::Fused);
        let run = engine.decode_run(0, 8);
        assert_eq!(run.steps.len(), 8);
        assert!(run.tokens_per_s > 0.0);
        let min = run
            .steps
            .iter()
            .map(|s| s.tokens_per_s)
            .fold(f64::INFINITY, f64::min);
        let max = run.steps.iter().map(|s| s.tokens_per_s).fold(0.0, f64::max);
        assert!(run.tokens_per_s >= min * 0.99 && run.tokens_per_s <= max * 1.01);
    }

    #[test]
    fn sampled_run_tracks_exact_run() {
        let mut a = small_engine(PipelineMode::Fused);
        let mut b = small_engine(PipelineMode::Fused);
        let exact = a.decode_run(0, 16);
        let sampled = b.decode_run_sampled(16, 4);
        let rel = (sampled.tokens_per_s - exact.tokens_per_s).abs() / exact.tokens_per_s;
        assert!(
            rel < 0.15,
            "sampled {} vs exact {}",
            sampled.tokens_per_s,
            exact.tokens_per_s
        );
    }

    #[test]
    fn roofline_is_positive_and_exceeds_measured() {
        let engine = small_engine(PipelineMode::Fused);
        assert!(engine.roofline_tokens_per_s() > 0.0);
    }

    #[test]
    fn cycles_per_beat_tracks_lanes_and_ports() {
        // 64 lanes: two cycles to retire a 128-code beat.
        let mut narrow = AccelConfig::kv260();
        narrow.lanes = 64;
        let engine = DecodeEngine::new(narrow, &ModelConfig::test_small(), 32).expect("fits");
        assert_eq!(engine.cycles_per_beat(), 2);
        // 2 AXI ports: two cycles to deliver 64 bytes.
        let mut half_ports = AccelConfig::kv260();
        half_ports.axi.ports = 2;
        let engine = DecodeEngine::new(half_ports, &ModelConfig::test_small(), 32).expect("fits");
        assert_eq!(engine.cycles_per_beat(), 2);
        // The default is perfectly balanced at 1.
        let engine =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::test_small(), 32).expect("fits");
        assert_eq!(engine.cycles_per_beat(), 1);
    }

    #[test]
    fn halving_lanes_halves_decode_speed() {
        let mut narrow = AccelConfig::kv260();
        narrow.lanes = 64;
        let base = DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::test_small(), 32)
            .expect("fits")
            .decode_token(8)
            .tokens_per_s;
        let slow = DecodeEngine::new(narrow, &ModelConfig::test_small(), 32)
            .expect("fits")
            .decode_token(8)
            .tokens_per_s;
        let ratio = base / slow;
        assert!((1.7..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prefill_vector_vs_matrix_engine() {
        let mut engine =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::test_small(), 64).expect("fits");
        let vector = engine.prefill_vector_ns(32);
        // Matrix engine with the same 128 multipliers: no meaningful win
        // on this compute-starved device (at most the bandwidth ratio).
        let matrix_same = engine.prefill_matrix_engine_ns(32, 128);
        assert!(
            matrix_same <= vector,
            "matrix {matrix_same} vs vector {vector}"
        );
        // A 16x bigger engine would help prefill substantially...
        let matrix_big = engine.prefill_matrix_engine_ns(32, 2048);
        assert!(matrix_big < matrix_same);
        // ...but even an infinite engine cannot beat the one-shot weight
        // stream time.
        let floor = engine.prefill_matrix_engine_ns(32, usize::MAX / 2);
        assert!(matrix_big >= floor * 0.999);
    }

    #[test]
    fn all_resident_tier_prices_identically_to_flat_engine() {
        // With a budget that holds every layer the tier fetches nothing,
        // stalls nothing and stages nothing — so a tiered engine must be
        // byte- and cycle-identical to the flat one, and must register
        // no tier metrics at all. This is what lets the `tiered.*`
        // scenario enter the perf baseline without perturbing any
        // pre-existing key.
        for policy in ["schedule_aware", "blind_lru"] {
            let mut flat = small_engine(PipelineMode::Fused);
            let flash = zllm_ddr::FlashConfig::emmc_hs400();
            let tier = match policy {
                "schedule_aware" => TierConfig::schedule_aware(flash, u64::MAX / 2),
                _ => TierConfig::blind_lru(flash, u64::MAX / 2),
            };
            let mut tiered = DecodeEngine::new_tiered(
                AccelConfig::kv260(),
                &ModelConfig::test_small(),
                32,
                tier,
            )
            .expect("test model fits without a virtual map");
            assert!(!tiered.image().is_tiered_virtual());
            for ctx in [0, 4, 15, 31] {
                let f = flat.decode_token(ctx);
                let t = tiered.decode_token(ctx);
                assert_eq!(f.bytes, t.bytes, "{policy} ctx {ctx}");
                assert_eq!(f.vpu_cycles, t.vpu_cycles, "{policy} ctx {ctx}");
                assert_eq!(f.bubble_cycles, t.bubble_cycles, "{policy} ctx {ctx}");
                assert_eq!(f.wall_ns, t.wall_ns, "{policy} ctx {ctx}");
                assert_eq!(f.tokens_per_s, t.tokens_per_s, "{policy} ctx {ctx}");
                assert_eq!(f.breakdown, t.breakdown, "{policy} ctx {ctx}");
            }
            let report = tiered.tier_report().expect("tiered engine");
            assert_eq!(report.demand_misses + report.prefetch_issued, 0);
            assert_eq!(report.flash_bytes, 0);
            assert_eq!(report.stall_ns, 0.0);
            let fs = flat.metrics_snapshot();
            let ts = tiered.metrics_snapshot();
            assert_eq!(fs.counters, ts.counters, "{policy}");
            assert_eq!(
                fs.gauges.keys().collect::<Vec<_>>(),
                ts.gauges.keys().collect::<Vec<_>>(),
                "{policy}"
            );
        }
    }

    #[test]
    fn identity_compression_prices_identically_to_plain_engine() {
        // All ratios at 1.0: the stage passes every burst through
        // untouched, stalls nothing, and registers no `comp.*` metrics —
        // so a compression-off run is bit-identical in reports, DDR byte
        // counters and snapshot keys. This is what lets the `comp.*`
        // scenario enter the perf baseline without perturbing any
        // pre-existing key.
        let mut plain = small_engine(PipelineMode::Fused);
        let mut comp = small_engine(PipelineMode::Fused);
        comp.enable_compression(zllm_ddr::compress::CompressionConfig::identity());
        for ctx in [0, 4, 15, 31] {
            let p = plain.decode_token(ctx);
            let c = comp.decode_token(ctx);
            assert_eq!(p.bytes, c.bytes, "ctx {ctx}");
            assert_eq!(p.mem_ns.to_bits(), c.mem_ns.to_bits(), "ctx {ctx}");
            assert_eq!(p.wall_ns.to_bits(), c.wall_ns.to_bits(), "ctx {ctx}");
            assert_eq!(p.tokens_per_s, c.tokens_per_s, "ctx {ctx}");
            assert_eq!(p.breakdown, c.breakdown, "ctx {ctx}");
        }
        let (logical, wire, meta) = comp.compression_bytes().expect("stage enabled");
        assert_eq!(logical, wire);
        assert_eq!(meta, 0);
        let ps = plain.metrics_snapshot();
        let cs = comp.metrics_snapshot();
        assert_eq!(ps.counters, cs.counters);
        assert_eq!(
            ps.gauges.keys().collect::<Vec<_>>(),
            cs.gauges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn compression_shrinks_wire_traffic_and_registers_metrics() {
        let mut plain = small_engine(PipelineMode::Fused);
        let mut comp = small_engine(PipelineMode::Fused);
        comp.enable_compression(zllm_ddr::compress::CompressionConfig::with_ratios(
            zllm_ddr::compress::StreamRatio::from_ratio(2.0),
            zllm_ddr::compress::StreamRatio::from_ratio(1.2),
            zllm_ddr::compress::StreamRatio::from_ratio(1.1),
        ));
        // `comp.*` appears only once compressed traffic flows.
        assert!(!comp
            .metrics_snapshot()
            .counters
            .keys()
            .any(|k| k.starts_with("comp.")));
        let p = plain.decode_token(8);
        let c = comp.decode_token(8);
        // Logical accounting is unchanged; wire traffic shrinks; the
        // memory term (wire time + decomp stall) is cheaper than the
        // uncompressed stream on this memory-bound schedule.
        assert_eq!(p.bytes, c.bytes);
        assert_eq!(p.breakdown, c.breakdown);
        let (logical, wire, meta) = comp.compression_bytes().expect("stage enabled");
        assert_eq!(logical, p.bytes);
        assert!(wire < logical, "wire {wire} !< logical {logical}");
        assert!(meta <= logical / 64);
        let snap = comp.metrics_snapshot();
        assert_eq!(snap.counters.get("comp.bytes.logical"), Some(&logical));
        assert_eq!(snap.counters.get("comp.bytes.wire"), Some(&wire));
        assert!(snap.gauges.contains_key("comp.ratio.weight"));
        // The DDR controller saw fewer column accesses than the plain
        // engine's.
        assert!(comp.mem.stats().reads < plain.mem.stats().reads);
    }

    #[test]
    fn batch_of_one_prices_identically_to_single_sequence() {
        // An engine provisioned for one sequence must be byte- and
        // cycle-identical to the pre-batching engine (same image layout,
        // so even DDR row dynamics match) — this is what keeps the
        // committed perf baseline valid.
        let mut single = small_engine(PipelineMode::Fused);
        let mut one =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 1)
                .expect("fits");
        for ctx in [0, 4, 15, 31] {
            let s = single.decode_token(ctx);
            let b = one.decode_token_batch(ctx, 1);
            assert_eq!(b.batch, 1);
            assert_eq!(s.bytes, b.bytes);
            assert_eq!(s.vpu_cycles, b.vpu_cycles);
            assert_eq!(s.bubble_cycles, b.bubble_cycles);
            assert_eq!(s.wall_ns, b.wall_ns);
            assert_eq!(s.tokens_per_s, b.tokens_per_s);
            assert_eq!(b.tokens_per_s, b.seq_tokens_per_s);
            assert_eq!(b.weight_amortization, 1.0);
            assert_eq!(s.breakdown, b.breakdown);
        }
        let ss = single.metrics_snapshot();
        let bs = one.metrics_snapshot();
        assert_eq!(ss.counters, bs.counters);
        assert_eq!(
            ss.gauges.keys().collect::<Vec<_>>(),
            bs.gauges.keys().collect::<Vec<_>>()
        );

        // An engine provisioned for a *bigger* batch places KV regions at
        // different addresses (row locality may shift), but everything
        // the schedule determines is still identical at B = 1 — and no
        // decode.batch.* gauges leak into the snapshot.
        let mut wide =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4)
                .expect("fits");
        for ctx in [0, 4, 15, 31] {
            let b = wide.decode_token_batch(ctx, 1);
            let s = single.decode_token(ctx);
            assert_eq!(s.bytes, b.bytes);
            assert_eq!(s.vpu_cycles, b.vpu_cycles);
            assert_eq!(s.bubble_cycles, b.bubble_cycles);
            assert_eq!(s.breakdown, b.breakdown);
        }
        let ws = wide.metrics_snapshot();
        for key in ss.counters.keys().filter(|k| !k.starts_with("ddr.")) {
            assert_eq!(ss.counters[key], ws.counters[key], "counter {key}");
        }
        assert_eq!(
            ss.gauges.keys().collect::<Vec<_>>(),
            ws.gauges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn batched_step_amortizes_weights_and_grows_kv_share() {
        let mut engine =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 8)
                .expect("fits");
        let b1 = engine.decode_token_batch(16, 1);
        let b4 = engine.decode_token_batch(16, 4);
        let b8 = engine.decode_token_batch(16, 8);
        // Weight bytes are shared: total bytes grow far slower than B.
        assert!(b4.bytes < b1.bytes * 4);
        assert!(b4.weight_amortization > 3.0 && b4.weight_amortization <= 4.0);
        assert!(b8.weight_amortization > b4.weight_amortization);
        assert!(b8.kv_share > b4.kv_share && b4.kv_share > b1.kv_share);
        // On the balanced engine every shared beat now costs B cycles, so
        // aggregate throughput is ~flat (the paper's deliberate design).
        assert!(b4.tokens_per_s < b1.tokens_per_s * 1.3);
        assert!(b4.seq_tokens_per_s < b1.tokens_per_s);
        // KV share measured from the same breakdown that sums to bytes.
        let sum: u64 = b4.breakdown.iter().map(|(_, b)| b).sum();
        assert_eq!(sum, b4.bytes);
        // Gauges for the batch view exist once a batched step ran.
        let snap = engine.metrics_snapshot();
        assert!(snap.gauges.contains_key("decode.batch.weight_amortization"));
        assert_eq!(snap.counters["decode.tokens"], 1 + 4 + 8);
    }

    #[test]
    fn batched_compute_scales_on_shared_beats_only() {
        let mut engine =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4)
                .expect("fits");
        let b1 = engine.decode_token_batch(16, 1);
        let b4 = engine.decode_token_batch(16, 4);
        // Shared weight beats cost 4x; per-sequence KV beats are 4x as
        // many but still one cycle each — so total VPU cycles are exactly
        // 4x the single-sequence count on the balanced engine.
        assert_eq!(b4.vpu_cycles, b1.vpu_cycles * 4);
    }

    #[test]
    fn schedule_cache_keys_on_ctx_and_batch() {
        let mut engine =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4)
                .expect("fits");
        engine.decode_token_batch(8, 1);
        engine.decode_token_batch(8, 4);
        engine.decode_token_batch(8, 4);
        engine.decode_token(8);
        assert_eq!(engine.schedules.len(), 2, "(8,1) and (8,4)");
    }

    #[test]
    fn uniform_ragged_step_prices_like_lockstep_and_shares_its_cache() {
        let mut engine =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4)
                .expect("fits");
        let lock = engine.decode_token_batch(8, 4);
        let ragged = engine.decode_token_ragged(&[(0, 8), (1, 8), (2, 8), (3, 8)]);
        assert_eq!(lock.bytes, ragged.bytes);
        assert_eq!(lock.vpu_cycles, ragged.vpu_cycles);
        assert_eq!(lock.breakdown, ragged.breakdown);
        assert_eq!(engine.schedules.len(), 1, "routed to the uniform cache");
        assert!(engine.ragged_schedules.is_empty());
    }

    #[test]
    fn ragged_step_prices_each_sequence_at_its_own_context() {
        let mut engine =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4)
                .expect("fits");
        let ragged = engine.decode_token_ragged(&[(0, 2), (1, 30), (3, 0)]);
        assert_eq!(ragged.batch, 3);
        assert_eq!(ragged.ctx, 30, "reported ctx is the longest sequence's");
        // Per-sequence KV bytes equal the sum of each member's own cost —
        // strictly less than padding everyone to ctx 30.
        let kv_expected: u64 = [2usize, 30, 0]
            .iter()
            .map(|&c| {
                let r = engine.decode_token_batch(c, 1);
                r.bytes_for("kv_read") + r.bytes_for("kv_write") + r.bytes_for("kv_meta_flush")
            })
            .sum();
        let kv_ragged = ragged.bytes_for("kv_read")
            + ragged.bytes_for("kv_write")
            + ragged.bytes_for("kv_meta_flush");
        assert_eq!(kv_ragged, kv_expected);
        let padded = engine.decode_token_batch(30, 3);
        assert!(ragged.bytes < padded.bytes, "raggedness avoids pad traffic");
        assert_eq!(engine.ragged_schedules.len(), 1);
        // The cache hit reprices the identical schedule.
        let again = engine.decode_token_ragged(&[(0, 2), (1, 30), (3, 0)]);
        assert_eq!(again.bytes, ragged.bytes);
        assert_eq!(again.vpu_cycles, ragged.vpu_cycles);
        assert_eq!(engine.ragged_schedules.len(), 1);
    }

    #[test]
    fn ragged_cache_telemetry_counts_hits_and_misses() {
        let mut engine =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4)
                .expect("fits");
        // Uniform steps route to the (ctx, batch) cache and must not
        // create the ragged-cache counters — the baseline key set.
        engine.decode_token_batch(8, 4);
        engine.decode_token_ragged(&[(0, 8), (1, 8), (2, 8), (3, 8)]);
        let snap = engine.metrics_snapshot();
        assert!(!snap.counters.contains_key("decode.ragged_cache.hits"));
        assert!(!snap.counters.contains_key("decode.ragged_cache.misses"));
        engine.decode_token_ragged(&[(0, 2), (1, 30)]); // miss
        engine.decode_token_ragged(&[(0, 2), (1, 30)]); // hit
        engine.decode_token_ragged(&[(0, 3), (1, 30)]); // miss
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counters["decode.ragged_cache.hits"], 1);
        assert_eq!(snap.counters["decode.ragged_cache.misses"], 2);
    }

    #[test]
    fn paged_engine_prices_page_tables_and_contiguous_stays_pristine() {
        let mut flat =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4)
                .expect("fits");
        let mut paged =
            DecodeEngine::new_paged(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4, 16)
                .expect("fits");
        assert!(paged.image().is_paged());
        let f = flat.decode_token_ragged(&[(0, 5), (1, 17)]);
        let p = paged.decode_token_ragged(&[(0, 5), (1, 17)]);
        // Paging adds page-table metadata traffic and nothing else.
        assert_eq!(p.bytes - p.bytes_for("kv_pt"), f.bytes);
        assert!(p.bytes_for("kv_pt_read") > 0);
        assert_eq!(p.vpu_cycles, f.vpu_cycles);
        assert!(p.kv_share > f.kv_share, "tables count as KV traffic");
        // The per-kind counters exist only on the paged engine.
        let snap = paged.metrics_snapshot();
        assert!(snap.counters.contains_key("decode.bytes.kv_pt_read"));
        let fsnap = flat.metrics_snapshot();
        assert!(!fsnap.counters.contains_key("decode.bytes.kv_pt_read"));
    }

    #[test]
    fn chunked_prefill_beats_token_by_token_bytes() {
        let mut engine =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 2)
                .expect("fits");
        let chunk = engine.prefill_chunked(&[crate::schedule::PrefillChunk {
            slot: 0,
            start: 0,
            len: 16,
        }]);
        assert_eq!(chunk.batch, 16, "reports prompt tokens");
        // Token-by-token prefill streams the weights 16 times over.
        let serial_bytes: u64 = (0..16).map(|c| engine.decode_token_batch(c, 1).bytes).sum();
        assert!(chunk.bytes < serial_bytes / 8, "weights fetched once");
        assert!(chunk.weight_amortization > 8.0);
        assert!(chunk.tokens_per_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate slot in ragged schedule")]
    fn ragged_duplicate_slot_panics() {
        let mut engine =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 4)
                .expect("fits");
        let _ = engine.decode_token_ragged(&[(1, 4), (1, 6)]);
    }

    #[test]
    #[should_panic(expected = "batch beyond image batch provisioning")]
    fn batch_beyond_provisioning_panics() {
        let mut engine = small_engine(PipelineMode::Fused);
        let _ = engine.decode_token_batch(4, 2);
    }

    #[test]
    fn batching_is_flat_on_the_balanced_engine_but_scales_with_lanes() {
        // The paper's engine matches compute to bandwidth exactly, so
        // batching buys (almost) nothing — by design.
        let mut balanced =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::test_small(), 32).expect("fits");
        let t1 = balanced.decode_batch_estimate(8, 1);
        let t8 = balanced.decode_batch_estimate(8, 8);
        assert!(
            t8 < t1 * 1.3,
            "balanced engine should have no batching headroom: {t8} vs {t1}"
        );
        // Single-batch estimate equals the plain decode (up to refresh
        // phase drift between consecutive simulations).
        let plain = balanced.decode_token(8).tokens_per_s;
        assert!((t1 - plain).abs() / plain < 0.05);

        // A compute-rich (server-class) engine amortizes the weight
        // stream and scales until the fabric binds.
        let mut rich_cfg = AccelConfig::kv260();
        rich_cfg.lanes = 1024;
        let mut rich = DecodeEngine::new(rich_cfg, &ModelConfig::test_small(), 32).expect("fits");
        let r1 = rich.decode_batch_estimate(8, 1);
        let r8 = rich.decode_batch_estimate(8, 8);
        assert!(
            r8 > r1 * 3.0,
            "compute-rich engine should batch well: {r8} vs {r1}"
        );
    }

    #[test]
    fn exact_batched_pricing_tracks_the_analytic_estimate() {
        let mut est =
            DecodeEngine::new(AccelConfig::kv260(), &ModelConfig::test_small(), 32).expect("fits");
        let mut exact =
            DecodeEngine::new_batched(AccelConfig::kv260(), &ModelConfig::test_small(), 32, 8)
                .expect("fits");
        for batch in [2usize, 4, 8] {
            let estimate = est.decode_batch_estimate(16, batch);
            let measured = exact.decode_token_batch(16, batch).tokens_per_s;
            let rel = (measured - estimate).abs() / estimate;
            assert!(
                rel < 0.15,
                "B={batch}: exact {measured} vs estimate {estimate}"
            );
        }
    }

    #[test]
    fn speculative_zero_draft_window_prices_like_plain_decode() {
        let mut plain = small_engine(PipelineMode::Fused);
        let mut spec = small_engine(PipelineMode::Fused);
        let p = plain.decode_token(8);
        let s = spec.decode_speculative(
            &[SpecWindow {
                slot: 0,
                ctx: 8,
                drafted: 0,
                accepted: 0,
            }],
            &DraftCost::FlatNs { ns_per_token: 0.0 },
        );
        assert_eq!(s.batch, 1);
        assert_eq!(s.bytes, p.bytes);
        assert_eq!(s.vpu_cycles, p.vpu_cycles);
        assert_eq!(s.bubble_cycles, p.bubble_cycles);
        assert_eq!(s.breakdown, p.breakdown);
    }

    #[test]
    fn spec_metrics_appear_only_after_a_speculative_step() {
        let mut engine = small_engine(PipelineMode::Fused);
        engine.decode_token(4);
        let snap = engine.metrics_snapshot();
        assert!(!snap.counters.keys().any(|k| k.starts_with("spec.")));
        assert!(!snap.gauges.keys().any(|k| k.starts_with("spec.")));
        engine.decode_speculative(
            &[SpecWindow {
                slot: 0,
                ctx: 5,
                drafted: 2,
                accepted: 1,
            }],
            &DraftCost::FlatNs { ns_per_token: 50.0 },
        );
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counters["spec.windows"], 1);
        assert_eq!(snap.counters["spec.tokens.drafted"], 2);
        assert_eq!(snap.counters["spec.tokens.accepted"], 1);
        assert_eq!(snap.counters["spec.tokens.committed"], 2);
        assert_eq!(
            snap.counters["spec.draft.bytes"], 0,
            "flat draft moves no bytes"
        );
        assert!((snap.gauges["spec.draft_ns"] - 100.0).abs() < 1e-9);
        assert!(snap.gauges["spec.bytes_per_committed_token"] > 0.0);
    }

    #[test]
    fn speculation_multiplies_throughput_on_a_compute_rich_engine() {
        let window = [SpecWindow {
            slot: 0,
            ctx: 8,
            drafted: 4,
            accepted: 4,
        }];
        let free_draft = DraftCost::FlatNs { ns_per_token: 0.0 };
        // Lanes-widened engine: the weight stream is fetched once and the
        // fanout headroom turns it into ~5 committed tokens per stream.
        let mut rich_cfg = AccelConfig::kv260();
        rich_cfg.lanes = 1024;
        let mut rich = DecodeEngine::new(rich_cfg, &ModelConfig::test_small(), 32).expect("fits");
        let plain = rich.decode_token(8);
        let spec = rich.decode_speculative(&window, &free_draft);
        assert_eq!(spec.batch, 5, "accepted + bonus tokens commit");
        assert!(spec.bytes < plain.bytes * 2, "one weight stream, not five");
        assert!(
            spec.tokens_per_s > plain.tokens_per_s * 3.0,
            "spec {} vs plain {}",
            spec.tokens_per_s,
            plain.tokens_per_s
        );
        // The paper's bandwidth-area balanced engine has no fanout
        // headroom by design: every shared beat costs K+1 cycles, so
        // speculation buys (almost) nothing there.
        let mut balanced = small_engine(PipelineMode::Fused);
        let bp = balanced.decode_token(8);
        let bs = balanced.decode_speculative(&window, &free_draft);
        assert!(
            bs.tokens_per_s < bp.tokens_per_s * 1.5,
            "balanced engine should have no speculation headroom: {} vs {}",
            bs.tokens_per_s,
            bp.tokens_per_s
        );
    }

    #[test]
    fn flat_draft_cost_extends_wall_without_moving_bytes() {
        let window = [SpecWindow {
            slot: 0,
            ctx: 8,
            drafted: 4,
            accepted: 2,
        }];
        let mut free = small_engine(PipelineMode::Fused);
        let mut paid = small_engine(PipelineMode::Fused);
        let f = free.decode_speculative(&window, &DraftCost::FlatNs { ns_per_token: 0.0 });
        let p = paid.decode_speculative(
            &window,
            &DraftCost::FlatNs {
                ns_per_token: 10_000.0,
            },
        );
        assert_eq!(f.bytes, p.bytes);
        assert!((p.wall_ns - f.wall_ns - 40_000.0).abs() < 1e-6);
        assert!(p.tokens_per_s < f.tokens_per_s);
    }

    #[test]
    fn synthetic_draft_prices_real_ddr_traffic() {
        let window = [SpecWindow {
            slot: 0,
            ctx: 8,
            drafted: 3,
            accepted: 3,
        }];
        let mut flat = small_engine(PipelineMode::Fused);
        let mut syn = small_engine(PipelineMode::Fused);
        let f = flat.decode_speculative(&window, &DraftCost::FlatNs { ns_per_token: 0.0 });
        let s = syn.decode_speculative(
            &window,
            &DraftCost::Synthetic {
                model: ModelConfig::test_small(),
            },
        );
        // The report's bytes cover the verify stream only; the draft's
        // traffic is accounted separately and costs wall time.
        assert_eq!(s.bytes, f.bytes);
        assert!(s.wall_ns > f.wall_ns);
        let snap = syn.metrics_snapshot();
        assert!(snap.counters["spec.draft.bytes"] > 0);
        assert!(snap.gauges["spec.draft_ns"] > 0.0);
        // The draft image is cached: a second step reuses it.
        let again = syn.decode_speculative(
            &window,
            &DraftCost::Synthetic {
                model: ModelConfig::test_small(),
            },
        );
        assert_eq!(again.bytes, s.bytes);
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// A schedule-cache hit prices the very same step as a fresh
            /// rebuild: identical bytes, VPU cycles, bubbles, breakdown,
            /// and derived batch metrics (only the DDR refresh phase may
            /// drift between steps, so wall time is excluded).
            #[test]
            fn cache_hit_matches_rebuild(ctx in 0usize..32, batch in 1usize..=4) {
                let mut warm = DecodeEngine::new_batched(
                    AccelConfig::kv260(),
                    &ModelConfig::test_small(),
                    32,
                    4,
                )
                .expect("fits");
                let rebuilt = warm.decode_token_batch(ctx, batch); // miss
                let hit = warm.decode_token_batch(ctx, batch); // hit
                let mut fresh = DecodeEngine::new_batched(
                    AccelConfig::kv260(),
                    &ModelConfig::test_small(),
                    32,
                    4,
                )
                .expect("fits");
                let independent = fresh.decode_token_batch(ctx, batch); // rebuild
                for other in [&hit, &independent] {
                    prop_assert_eq!(rebuilt.bytes, other.bytes);
                    prop_assert_eq!(rebuilt.vpu_cycles, other.vpu_cycles);
                    prop_assert_eq!(rebuilt.bubble_cycles, other.bubble_cycles);
                    prop_assert_eq!(rebuilt.exposed_misc_cycles, other.exposed_misc_cycles);
                    prop_assert_eq!(&rebuilt.breakdown, &other.breakdown);
                    prop_assert_eq!(rebuilt.weight_amortization, other.weight_amortization);
                    prop_assert_eq!(rebuilt.kv_share, other.kv_share);
                }
            }
        }
    }
}
