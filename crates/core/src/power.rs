//! Activity-based power estimation, calibrated to the paper's 6.57 W
//! Vivado report.
//!
//! Total on-chip power = PS subsystem (APU running the bare-metal
//! program, DDR controller and PHY) + PL static + PL dynamic. PL dynamic
//! is modelled per resource class with per-primitive coefficients at
//! 300 MHz and scales linearly with clock frequency.

use crate::config::AccelConfig;
use crate::resources::{estimate, ResourceVector};

/// Power breakdown in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Processing-system power (APU + DDR controller/PHY).
    pub ps: f64,
    /// PL static leakage.
    pub pl_static: f64,
    /// PL dynamic power.
    pub pl_dynamic: f64,
}

impl PowerEstimate {
    /// Total on-chip power.
    pub fn total(&self) -> f64 {
        self.ps + self.pl_static + self.pl_dynamic
    }
}

impl std::fmt::Display for PowerEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} W (PS {:.2}, PL static {:.2}, PL dynamic {:.2})",
            self.total(),
            self.ps,
            self.pl_static,
            self.pl_dynamic
        )
    }
}

/// Per-primitive dynamic coefficients at 300 MHz (watts per instance).
const LUT_W: f64 = 20e-6;
const FF_W: f64 = 5e-6;
const DSP_W: f64 = 2.5e-3;
const BRAM_W: f64 = 8e-3;
const URAM_W: f64 = 12e-3;
/// PS subsystem (APU + DDRC + PHY) under the decode workload.
const PS_W: f64 = 2.8;
/// PL static leakage of the K26 at nominal temperature.
const PL_STATIC_W: f64 = 0.55;

/// Dynamic power of a resource vector at a given clock.
pub fn dynamic_power(res: &ResourceVector, freq_mhz: f64) -> f64 {
    let at_300 =
        res.lut * LUT_W + res.ff * FF_W + res.dsp * DSP_W + res.bram * BRAM_W + res.uram * URAM_W;
    at_300 * freq_mhz / 300.0
}

/// Estimates the design's power.
///
/// # Example
///
/// ```
/// use zllm_accel::{power, AccelConfig};
///
/// let p = power::estimate_power(&AccelConfig::kv260());
/// assert!((6.0..7.2).contains(&p.total())); // paper: 6.57 W
/// ```
pub fn estimate_power(cfg: &AccelConfig) -> PowerEstimate {
    let res = estimate(cfg).total;
    PowerEstimate {
        ps: PS_W,
        pl_static: PL_STATIC_W,
        pl_dynamic: dynamic_power(&res, cfg.freq_mhz),
    }
}

/// Energy per decoded token in joules, given a decode speed.
pub fn energy_per_token(power_w: f64, tokens_per_s: f64) -> f64 {
    power_w / tokens_per_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_power_matches_paper() {
        let p = estimate_power(&AccelConfig::kv260());
        assert!(
            (p.total() - 6.57).abs() < 0.35,
            "total {} should be near the paper's 6.57 W",
            p.total()
        );
        assert!(!format!("{p}").is_empty());
    }

    #[test]
    fn dynamic_power_scales_with_frequency() {
        let mut slow = AccelConfig::kv260();
        slow.freq_mhz = 150.0;
        let p300 = estimate_power(&AccelConfig::kv260());
        let p150 = estimate_power(&slow);
        assert!((p300.pl_dynamic / p150.pl_dynamic - 2.0).abs() < 1e-9);
        // Static and PS terms don't scale.
        assert_eq!(p300.ps, p150.ps);
    }

    #[test]
    fn energy_per_token_at_paper_operating_point() {
        // ~6.57 W at ~4.9 token/s → ~1.34 J/token.
        let e = energy_per_token(6.57, 4.9);
        assert!((1.2..1.5).contains(&e), "energy {e}");
    }

    #[test]
    fn more_lanes_cost_more_power() {
        let mut big = AccelConfig::kv260();
        big.lanes = 256;
        assert!(estimate_power(&big).total() > estimate_power(&AccelConfig::kv260()).total());
    }
}
