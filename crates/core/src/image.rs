//! The model's DDR image and the bare-metal memory map (Fig. 1, §VII-A).
//!
//! Builds the address map the bare-metal loader would program: the FP16
//! embedding table, every projection's interleaved 4-bit weight stream,
//! the per-layer KV-cache code regions and the packed scale-zero region.
//! Placement prefers the high 2 GB window (as the paper does for the
//! embedding table, weights and early-layer KV space) and spills to the
//! low window when full.

use zllm_layout::addr_map::{AllocError, MemoryMap, Region, Window};
use zllm_layout::weight::WeightFormat;
use zllm_layout::{BurstDescriptor, BEAT_BYTES};
use zllm_model::ModelConfig;

/// The seven projections of one layer, in streaming order.
pub const PROJECTIONS: [&str; 7] = ["wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down"];

/// Splits `n_layers` transformer layers into `stages` contiguous,
/// near-even ranges — the canonical pipeline-parallel shard boundaries
/// shared by [`ModelImage::build_shard`] callers and the functional
/// sharded decoder. Earlier stages absorb the remainder, so stage sizes
/// differ by at most one layer.
///
/// # Panics
///
/// Panics if `stages` is zero or exceeds `n_layers`.
pub fn split_layers(n_layers: usize, stages: usize) -> Vec<std::ops::Range<usize>> {
    assert!(
        stages > 0 && stages <= n_layers,
        "stage count {stages} must be in 1..={n_layers}"
    );
    let base = n_layers / stages;
    let extra = n_layers % stages;
    let mut out = Vec::with_capacity(stages);
    let mut start = 0;
    for s in 0..stages {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// One placed weight stream.
#[derive(Debug, Clone)]
pub struct PlacedProjection {
    /// Projection name (one of [`PROJECTIONS`] or `"lm_head"`).
    pub name: &'static str,
    /// Layer index (`usize::MAX` for the LM head).
    pub layer: usize,
    /// Output rows.
    pub rows: usize,
    /// Input columns.
    pub cols: usize,
    /// Start address of the interleaved stream.
    pub addr: u64,
    /// Stream length in 512-bit beats (metadata included).
    pub beats: u64,
}

impl PlacedProjection {
    /// The stream as one consecutive burst.
    pub fn burst(&self) -> BurstDescriptor {
        BurstDescriptor::new(self.addr, self.beats as u32)
    }

    /// Number of weights (before format padding).
    pub fn n_weights(&self) -> usize {
        self.rows * self.cols
    }
}

/// A placed model image.
#[derive(Debug, Clone)]
pub struct ModelImage {
    model: ModelConfig,
    format: WeightFormat,
    ctx_capacity: usize,
    /// Concurrent sequences the KV regions are provisioned for. The dense
    /// weight image is shared by every sequence; only KV space scales.
    batch: usize,
    map: MemoryMap,
    /// Global index of the first transformer layer this image holds.
    /// Zero for a full image; the shard boundary for pipeline-parallel
    /// splits built by [`ModelImage::build_shard`].
    layer_offset: usize,
    /// Whether this image places the LM head (the last pipeline stage).
    owns_head: bool,
    /// `None` for shards that do not hold the embedding table (every
    /// pipeline stage but the first).
    embedding: Option<Region>,
    projections: Vec<PlacedProjection>,
    /// Per (layer, K/V): contiguous code region of `batch × ctx_capacity`
    /// tokens — sequence `s` owns the slots
    /// `[s·ctx_capacity, (s+1)·ctx_capacity)`, so each sequence's history
    /// is still one consecutive DDR stream.
    kv_regions: Vec<Region>,
    kv_meta: Region,
}

impl ModelImage {
    /// Builds the image for a model at a given context capacity (one
    /// sequence).
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if the model does not fit the 4 GB
    /// device (e.g. LLaMA2-13B).
    pub fn build(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_batched(model, format, ctx_capacity, 1)
    }

    /// Builds the image with KV space for `batch` concurrent sequences of
    /// `ctx_capacity` tokens each. The weight streams are placed exactly
    /// as in the single-sequence image — batching never duplicates them —
    /// so `batch = 1` reproduces [`ModelImage::build`] byte for byte.
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if weights plus `batch` KV FIFOs
    /// exceed the 4 GB device — the capacity wall the batch sweep tables.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn build_batched(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_ranged(model, format, ctx_capacity, batch, 0..model.n_layers)
    }

    /// Builds the image of one pipeline-parallel shard: the weight
    /// streams and KV regions of layers `layers.start..layers.end` only,
    /// plus the embedding table when the shard starts at layer 0 and the
    /// LM head when it ends at the last layer. Everything on the image —
    /// layer accessors, KV budget, request pricing, schedules — then
    /// speaks shard-local layer indices (`0..layers.len()`); the global
    /// boundary is recorded as [`ModelImage::layer_offset`].
    ///
    /// A board holding a shard spends its DDR only on its own slice, so
    /// per-board KV budgets shrink with depth and the freed capacity can
    /// be re-provisioned as extra sequence slots — the lever the cluster
    /// layer prices.
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if the shard does not fit the 4 GB
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `layers` is empty or out of range.
    pub fn build_shard(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
        layers: std::ops::Range<usize>,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_ranged(model, format, ctx_capacity, batch, layers)
    }

    fn build_ranged(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
        layers: std::ops::Range<usize>,
    ) -> Result<ModelImage, AllocError> {
        assert!(batch > 0, "batch must be at least 1");
        assert!(
            !layers.is_empty() && layers.end <= model.n_layers,
            "shard layer range {layers:?} must be a non-empty subrange of 0..{}",
            model.n_layers
        );
        model.validate().map_err(|e| AllocError {
            name: e,
            requested: 0,
            available: 0,
        })?;
        let owns_embedding = layers.start == 0;
        let owns_head = layers.end == model.n_layers;
        // The image speaks shard-local layer indices: a shard-local model
        // config (n_layers = the slice length) keeps every accessor and
        // scheduling loop — KV budgets, request pricing, stream counts —
        // correct without the rest of the stack knowing about shards.
        let mut shard = model.clone();
        shard.n_layers = layers.len();
        let mut map = MemoryMap::kv260();

        let alloc_spill = |map: &mut MemoryMap, name: &str, bytes: u64| {
            map.alloc(name, bytes, Window::High)
                .or_else(|_| map.alloc(name, bytes, Window::Low))
        };

        // FP16 embedding table — only on the first pipeline stage.
        let embedding = if owns_embedding {
            Some(alloc_spill(
                &mut map,
                "embedding table (fp16)",
                (model.vocab_size * model.d_model * 2) as u64,
            )?)
        } else {
            None
        };

        // Per-layer projections, in streaming order.
        let d = model.d_model;
        let kv = model.kv_dim();
        let ff = model.d_ff;
        let shapes: [(&str, usize, usize); 7] = [
            ("wq", d, d),
            ("wk", kv, d),
            ("wv", kv, d),
            ("wo", d, d),
            ("w_gate", ff, d),
            ("w_up", ff, d),
            ("w_down", d, ff),
        ];
        let mut projections = Vec::with_capacity(layers.len() * 7 + usize::from(owns_head));
        for layer in layers.clone() {
            for (name, rows, cols) in shapes {
                let beats = format.beats_for(rows * cols) as u64;
                let region = alloc_spill(
                    &mut map,
                    &format!("L{layer}.{name}"),
                    beats * BEAT_BYTES as u64,
                )?;
                projections.push(PlacedProjection {
                    name,
                    layer,
                    rows,
                    cols,
                    addr: region.base,
                    beats,
                });
            }
        }
        if owns_head {
            let head_beats = format.beats_for(model.vocab_size * d) as u64;
            let head_region = alloc_spill(&mut map, "lm_head", head_beats * BEAT_BYTES as u64)?;
            projections.push(PlacedProjection {
                name: "lm_head",
                layer: usize::MAX,
                rows: model.vocab_size,
                cols: d,
                addr: head_region.base,
                beats: head_beats,
            });
        }

        // KV code regions: one per (layer, K/V), each ctx_capacity × kv_dim
        // bytes, beat-aligned per token vector.
        let token_bytes = kv.max(1).next_multiple_of(BEAT_BYTES) as u64;
        let mut kv_regions = Vec::with_capacity(layers.len() * 2);
        for layer in layers.clone() {
            for which in ["K", "V"] {
                let r = alloc_spill(
                    &mut map,
                    &format!("kv.{which}.L{layer}"),
                    token_bytes * ctx_capacity as u64 * batch as u64,
                )?;
                kv_regions.push(r);
            }
        }

        // Packed scale-zero region: one beat per stream per 16 tokens,
        // one block per sequence. Streams count only this image's layers.
        let streams = (shard.n_layers * shard.n_kv_heads * 2) as u64;
        let meta_beats = streams * (ctx_capacity as u64).div_ceil(16) * batch as u64;
        let kv_meta = alloc_spill(&mut map, "kv scale-zero packs", meta_beats * 64)?;

        Ok(ModelImage {
            model: shard,
            format,
            ctx_capacity,
            batch,
            map,
            layer_offset: layers.start,
            owns_head,
            embedding,
            projections,
            kv_regions,
            kv_meta,
        })
    }

    /// The model configuration this image holds. For a shard built by
    /// [`ModelImage::build_shard`] this is the shard-local view —
    /// `n_layers` is the slice length, and every layer-indexed accessor
    /// takes shard-local indices.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Global index of the first layer this image holds (zero for a full
    /// image).
    pub fn layer_offset(&self) -> usize {
        self.layer_offset
    }

    /// Whether this image places the FP16 embedding table (true for full
    /// images and the first pipeline stage).
    pub fn owns_embedding(&self) -> bool {
        self.embedding.is_some()
    }

    /// Whether this image places the LM head (true for full images and
    /// the last pipeline stage).
    pub fn owns_head(&self) -> bool {
        self.owns_head
    }

    /// The weight format.
    pub fn format(&self) -> WeightFormat {
        self.format
    }

    /// Maximum context length the KV regions hold (per sequence).
    pub fn ctx_capacity(&self) -> usize {
        self.ctx_capacity
    }

    /// Concurrent sequences the KV regions are provisioned for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The underlying memory map.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Fraction of the 4 GB device occupied (the paper's 93.3 % number).
    pub fn occupancy(&self) -> f64 {
        self.map.occupancy()
    }

    /// Whether Linux could still boot beside the image (the paper's
    /// bare-metal argument is that it cannot).
    pub fn linux_bootable(&self) -> bool {
        self.map.linux_bootable()
    }

    /// All placed projections in per-token streaming order.
    pub fn projections(&self) -> &[PlacedProjection] {
        &self.projections
    }

    /// The projections of one layer, in streaming order.
    pub fn layer_projections(&self, layer: usize) -> &[PlacedProjection] {
        &self.projections[layer * 7..layer * 7 + 7]
    }

    /// The LM head projection.
    ///
    /// # Panics
    ///
    /// Panics on a shard image that does not own the head.
    pub fn lm_head(&self) -> &PlacedProjection {
        assert!(self.owns_head, "shard image does not place the LM head");
        self.projections
            .last()
            .expect("image always has an LM head")
    }

    /// Read burst for one embedding row (FP16).
    ///
    /// # Panics
    ///
    /// Panics on a shard image that does not own the embedding table.
    pub fn embedding_row_burst(&self, token: usize) -> BurstDescriptor {
        let embedding = self
            .embedding
            .as_ref()
            .expect("shard image does not place the embedding table");
        let row_bytes = (self.model.d_model * 2) as u64;
        let beats = row_bytes.div_ceil(BEAT_BYTES as u64) as u32;
        BurstDescriptor::new(embedding.base + token as u64 * row_bytes, beats)
    }

    /// Bytes one cached token vector occupies (beat-aligned codes).
    pub fn kv_token_bytes(&self) -> u64 {
        (self.model.kv_dim().max(1)).next_multiple_of(BEAT_BYTES) as u64
    }

    /// Read burst of the whole K (or V) history of one layer up to `ctx`
    /// tokens — one consecutive burst thanks to the per-layer regions.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` exceeds the image's context capacity.
    pub fn kv_read_burst(&self, layer: usize, value: bool, ctx: usize) -> BurstDescriptor {
        self.kv_read_burst_seq(layer, value, ctx, 0)
    }

    /// [`ModelImage::kv_read_burst`] for sequence `seq` of a batched
    /// image: the same layer's history, streamed from that sequence's
    /// slot block — a separate consecutive DDR stream per sequence.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` exceeds the per-sequence capacity or `seq` exceeds
    /// the provisioned batch.
    pub fn kv_read_burst_seq(
        &self,
        layer: usize,
        value: bool,
        ctx: usize,
        seq: usize,
    ) -> BurstDescriptor {
        assert!(ctx <= self.ctx_capacity, "context beyond capacity");
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        let region = &self.kv_regions[layer * 2 + usize::from(value)];
        let tb = self.kv_token_bytes();
        let beats = (tb * ctx as u64 / BEAT_BYTES as u64) as u32;
        BurstDescriptor::new(
            region.base + seq as u64 * self.ctx_capacity as u64 * tb,
            beats,
        )
    }

    /// Write burst for the current token's K (or V) vector of one layer.
    pub fn kv_write_burst(&self, layer: usize, value: bool, token: usize) -> BurstDescriptor {
        self.kv_write_burst_seq(layer, value, token, 0)
    }

    /// [`ModelImage::kv_write_burst`] for sequence `seq` of a batched
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if `seq` exceeds the provisioned batch.
    pub fn kv_write_burst_seq(
        &self,
        layer: usize,
        value: bool,
        token: usize,
        seq: usize,
    ) -> BurstDescriptor {
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        let region = &self.kv_regions[layer * 2 + usize::from(value)];
        let tb = self.kv_token_bytes();
        BurstDescriptor::write(
            region.base + (seq as u64 * self.ctx_capacity as u64 + token as u64) * tb,
            (tb / BEAT_BYTES as u64) as u32,
        )
    }

    /// Write burst for one flushed scale-zero FIFO element.
    pub fn kv_meta_write_burst(&self, stream: usize, window16: u64) -> BurstDescriptor {
        self.kv_meta_write_burst_seq(stream, window16, 0)
    }

    /// [`ModelImage::kv_meta_write_burst`] for sequence `seq` of a
    /// batched image: each sequence flushes into its own block of the
    /// packed scale-zero region.
    ///
    /// # Panics
    ///
    /// Panics if `seq` exceeds the provisioned batch.
    pub fn kv_meta_write_burst_seq(
        &self,
        stream: usize,
        window16: u64,
        seq: usize,
    ) -> BurstDescriptor {
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        let streams = (self.model.n_layers * self.model.n_kv_heads * 2) as u64;
        let windows = (self.ctx_capacity as u64).div_ceil(16);
        let offset = (seq as u64 * streams * windows + window16 * streams + stream as u64)
            * BEAT_BYTES as u64;
        BurstDescriptor::write(self.kv_meta.base + offset, 1)
    }

    /// Total bytes the image provisions for KV state across every slot:
    /// all per-layer K/V code regions plus the packed scale-zero region.
    /// This is the Fig. 1 KV budget an admission controller prices
    /// against — the hard capacity wall once weights are placed.
    pub fn kv_budget_bytes(&self) -> u64 {
        let codes: u64 = self.kv_regions.iter().map(|r| r.size).sum();
        codes + self.kv_meta.size
    }

    /// KV bytes one sequence holding `tokens` cached tokens occupies:
    /// its K and V codes in every layer plus its share of the packed
    /// scale-zero region (one beat per stream per started 16-token
    /// window). The admission currency — `kv_budget_bytes / batch`
    /// equals `kv_request_bytes(ctx_capacity)` rounded to whole windows.
    pub fn kv_request_bytes(&self, tokens: usize) -> u64 {
        let codes = (self.model.n_layers * 2) as u64 * self.kv_token_bytes() * tokens as u64;
        let streams = (self.model.n_layers * self.model.n_kv_heads * 2) as u64;
        let meta = streams * (tokens as u64).div_ceil(16) * BEAT_BYTES as u64;
        codes + meta
    }

    /// Total bytes of all weight streams (format padding included).
    pub fn weight_stream_bytes(&self) -> u64 {
        self.projections
            .iter()
            .map(|p| p.beats * BEAT_BYTES as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_image_reproduces_fig1() {
        let image = ModelImage::build(&ModelConfig::llama2_7b(), WeightFormat::kv260(), 1024)
            .expect("7B must fit the 4GB device");
        let occ = image.occupancy();
        assert!(
            (0.90..0.96).contains(&occ),
            "occupancy {occ:.4} should be ~93%"
        );
        assert!(!image.linux_bootable(), "paper: too little room for Linux");
        assert!(image.map().check_invariants());
        // Weight stream ≈ 3.3–3.5 GB.
        let wb = image.weight_stream_bytes() as f64 / (1u64 << 20) as f64;
        assert!((3100.0..3500.0).contains(&wb), "weight stream {wb:.0} MiB");
    }

    #[test]
    fn thirteen_b_does_not_fit() {
        let mut cfg = ModelConfig::llama2_7b();
        cfg.name = "LLaMA2-13B".into();
        cfg.n_layers = 40;
        cfg.d_model = 5120;
        cfg.n_heads = 40;
        cfg.n_kv_heads = 40;
        cfg.d_ff = 13824;
        assert!(ModelImage::build(&cfg, WeightFormat::kv260(), 1024).is_err());
    }

    #[test]
    fn small_image_geometry() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 64).expect("fits");
        assert_eq!(image.projections().len(), cfg.n_layers * 7 + 1);
        assert_eq!(image.layer_projections(1).len(), 7);
        assert_eq!(image.layer_projections(1)[0].name, "wq");
        assert_eq!(image.lm_head().rows, cfg.vocab_size);
        assert_eq!(image.ctx_capacity(), 64);
    }

    #[test]
    fn kv_bursts_are_contiguous_and_sized() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 64).expect("fits");
        let tb = image.kv_token_bytes();
        assert_eq!(tb % BEAT_BYTES as u64, 0);
        let read = image.kv_read_burst(0, false, 10);
        assert_eq!(read.bytes(), tb * 10);
        let w0 = image.kv_write_burst(0, false, 0);
        let w1 = image.kv_write_burst(0, false, 1);
        assert_eq!(w1.addr - w0.addr, tb);
        assert!(w0.write);
        // K and V regions are distinct.
        let rv = image.kv_read_burst(0, true, 10);
        assert_ne!(read.addr, rv.addr);
    }

    #[test]
    fn embedding_rows_are_addressable() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 64).expect("fits");
        let b0 = image.embedding_row_burst(0);
        let b1 = image.embedding_row_burst(1);
        assert_eq!(b1.addr - b0.addr, (cfg.d_model * 2) as u64);
        assert_eq!(b0.bytes(), (cfg.d_model * 2) as u64);
    }

    #[test]
    fn meta_write_bursts_are_beat_sized() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 64).expect("fits");
        let b = image.kv_meta_write_burst(3, 1);
        assert_eq!(b.beats, 1);
        assert!(b.write);
    }

    #[test]
    #[should_panic(expected = "context beyond capacity")]
    fn kv_read_checks_capacity() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 16).expect("fits");
        let _ = image.kv_read_burst(0, false, 17);
    }

    #[test]
    fn batched_image_shares_weights_and_separates_kv() {
        let cfg = ModelConfig::test_small();
        let single = ModelImage::build(&cfg, WeightFormat::kv260(), 32).expect("fits");
        let batched = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 4).expect("fits");
        assert_eq!(single.batch(), 1);
        assert_eq!(batched.batch(), 4);
        // The dense weight image is identical — batching never duplicates it.
        assert_eq!(single.weight_stream_bytes(), batched.weight_stream_bytes());
        // Each sequence gets its own consecutive history stream.
        let tb = batched.kv_token_bytes();
        let s0 = batched.kv_read_burst_seq(0, false, 10, 0);
        let s1 = batched.kv_read_burst_seq(0, false, 10, 1);
        assert_eq!(s1.addr - s0.addr, 32 * tb);
        assert_eq!(s0.bytes(), s1.bytes());
        // Seq 0 bursts coincide with the single-sequence accessor.
        assert_eq!(batched.kv_read_burst(0, false, 10), s0);
        let w0 = batched.kv_write_burst_seq(0, true, 3, 0);
        let w2 = batched.kv_write_burst_seq(0, true, 3, 2);
        assert_eq!(w2.addr - w0.addr, 2 * 32 * tb);
        // Meta blocks are per-sequence too.
        let m0 = batched.kv_meta_write_burst_seq(0, 0, 0);
        let m1 = batched.kv_meta_write_burst_seq(0, 0, 1);
        let streams = (cfg.n_layers * cfg.n_kv_heads * 2) as u64;
        assert_eq!(m1.addr - m0.addr, streams * 2 * BEAT_BYTES as u64);
    }

    #[test]
    fn kv_budget_prices_full_occupancy() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 4).expect("fits");
        // A full slot costs exactly 1/batch of the provisioned budget.
        assert_eq!(image.kv_request_bytes(32) * 4, image.kv_budget_bytes());
        // Footprint is monotone in tokens and zero at zero.
        assert_eq!(image.kv_request_bytes(0), 0);
        assert!(image.kv_request_bytes(16) < image.kv_request_bytes(17));
        // Metadata rounds to whole 16-token windows.
        let one = image.kv_request_bytes(1);
        let sixteen = image.kv_request_bytes(16);
        assert_eq!(
            sixteen - one,
            15 * (cfg.n_layers * 2) as u64 * image.kv_token_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "sequence beyond provisioned batch")]
    fn kv_read_checks_batch() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 16, 2).expect("fits");
        let _ = image.kv_read_burst_seq(0, false, 4, 2);
    }

    #[test]
    fn shards_partition_the_full_image() {
        let cfg = ModelConfig::test_small();
        let full = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 2).expect("fits");
        let mid = cfg.n_layers / 2;
        let first =
            ModelImage::build_shard(&cfg, WeightFormat::kv260(), 32, 2, 0..mid).expect("fits");
        let last = ModelImage::build_shard(&cfg, WeightFormat::kv260(), 32, 2, mid..cfg.n_layers)
            .expect("fits");

        // Ownership splits along the pipeline.
        assert!(first.owns_embedding() && !first.owns_head());
        assert!(!last.owns_embedding() && last.owns_head());
        assert_eq!(first.layer_offset(), 0);
        assert_eq!(last.layer_offset(), mid);
        assert_eq!(first.model().n_layers, mid);
        assert_eq!(last.model().n_layers, cfg.n_layers - mid);

        // The shards exactly partition the full image's weight stream
        // and KV budget — nothing duplicated, nothing dropped.
        assert_eq!(
            first.weight_stream_bytes() + last.weight_stream_bytes(),
            full.weight_stream_bytes()
        );
        assert_eq!(
            first.kv_budget_bytes() + last.kv_budget_bytes(),
            full.kv_budget_bytes()
        );
        assert_eq!(
            first.kv_request_bytes(20) + last.kv_request_bytes(20),
            full.kv_request_bytes(20)
        );

        // Shard-local accessors address the shard's own slice.
        assert_eq!(first.projections().len(), mid * 7);
        assert_eq!(last.projections().len(), (cfg.n_layers - mid) * 7 + 1);
        assert_eq!(last.lm_head().rows, cfg.vocab_size);
        assert_eq!(last.layer_projections(0)[0].layer, mid);

        // A full build is a degenerate shard.
        let whole = ModelImage::build_shard(&cfg, WeightFormat::kv260(), 32, 2, 0..cfg.n_layers)
            .expect("fits");
        assert_eq!(whole.weight_stream_bytes(), full.weight_stream_bytes());
        assert_eq!(whole.kv_budget_bytes(), full.kv_budget_bytes());
        assert!(whole.owns_embedding() && whole.owns_head());
    }

    #[test]
    #[should_panic(expected = "does not place the embedding table")]
    fn tail_shard_has_no_embedding() {
        let cfg = ModelConfig::test_small();
        let shard = ModelImage::build_shard(&cfg, WeightFormat::kv260(), 16, 1, 1..cfg.n_layers)
            .expect("fits");
        let _ = shard.embedding_row_burst(0);
    }

    #[test]
    #[should_panic(expected = "does not place the LM head")]
    fn head_shard_has_no_lm_head() {
        let cfg = ModelConfig::test_small();
        let shard =
            ModelImage::build_shard(&cfg, WeightFormat::kv260(), 16, 1, 0..1).expect("fits");
        let _ = shard.lm_head();
    }
}
