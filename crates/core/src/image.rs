//! The model's DDR image and the bare-metal memory map (Fig. 1, §VII-A).
//!
//! Builds the address map the bare-metal loader would program: the FP16
//! embedding table, every projection's interleaved 4-bit weight stream,
//! the per-layer KV-cache code regions and the packed scale-zero region.
//! Placement prefers the high 2 GB window (as the paper does for the
//! embedding table, weights and early-layer KV space) and spills to the
//! low window when full.

use zllm_layout::addr_map::{AllocError, MemoryMap, Region, Window};
use zllm_layout::kv_page::PAGE_TOKEN_QUANTUM;
use zllm_layout::weight::WeightFormat;
use zllm_layout::{BurstDescriptor, BEAT_BYTES};
use zllm_model::ModelConfig;

/// Bytes one page-table entry occupies in DDR (a 32-bit physical page
/// index — 16 entries per 512-bit beat).
const PAGE_TABLE_ENTRY_BYTES: u64 = 4;

/// The seven projections of one layer, in streaming order.
pub const PROJECTIONS: [&str; 7] = ["wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down"];

/// Splits `n_layers` transformer layers into `stages` contiguous,
/// near-even ranges — the canonical pipeline-parallel shard boundaries
/// shared by [`ModelImage::build_shard`] callers and the functional
/// sharded decoder. Earlier stages absorb the remainder, so stage sizes
/// differ by at most one layer.
///
/// # Panics
///
/// Panics if `stages` is zero or exceeds `n_layers`.
pub fn split_layers(n_layers: usize, stages: usize) -> Vec<std::ops::Range<usize>> {
    assert!(
        stages > 0 && stages <= n_layers,
        "stage count {stages} must be in 1..={n_layers}"
    );
    let base = n_layers / stages;
    let extra = n_layers % stages;
    let mut out = Vec::with_capacity(stages);
    let mut start = 0;
    for s in 0..stages {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// One placed weight stream.
#[derive(Debug, Clone)]
pub struct PlacedProjection {
    /// Projection name (one of [`PROJECTIONS`] or `"lm_head"`).
    pub name: &'static str,
    /// Layer index (`usize::MAX` for the LM head).
    pub layer: usize,
    /// Output rows.
    pub rows: usize,
    /// Input columns.
    pub cols: usize,
    /// Start address of the interleaved stream.
    pub addr: u64,
    /// Stream length in 512-bit beats (metadata included).
    pub beats: u64,
}

impl PlacedProjection {
    /// The stream as one consecutive burst.
    pub fn burst(&self) -> BurstDescriptor {
        BurstDescriptor::new(self.addr, self.beats as u32)
    }

    /// Number of weights (before format padding).
    pub fn n_weights(&self) -> usize {
        self.rows * self.cols
    }
}

/// A placed model image.
#[derive(Debug, Clone)]
pub struct ModelImage {
    model: ModelConfig,
    format: WeightFormat,
    ctx_capacity: usize,
    /// Concurrent sequences the KV regions are provisioned for. The dense
    /// weight image is shared by every sequence; only KV space scales.
    batch: usize,
    map: MemoryMap,
    /// Global index of the first transformer layer this image holds.
    /// Zero for a full image; the shard boundary for pipeline-parallel
    /// splits built by [`ModelImage::build_shard`].
    layer_offset: usize,
    /// Whether this image places the LM head (the last pipeline stage).
    owns_head: bool,
    /// `None` for shards that do not hold the embedding table (every
    /// pipeline stage but the first).
    embedding: Option<Region>,
    projections: Vec<PlacedProjection>,
    /// Per (layer, K/V): contiguous code region of `batch × ctx_capacity`
    /// tokens — sequence `s` owns the slots
    /// `[s·ctx_capacity, (s+1)·ctx_capacity)`, so each sequence's history
    /// is still one consecutive DDR stream. In a paged image the same
    /// region is instead a pool of `batch × ctx_capacity / page_tokens`
    /// physical pages addressed through per-sequence page tables.
    kv_regions: Vec<Region>,
    kv_meta: Region,
    /// `Some(page_tokens)` for a paged image ([`ModelImage::build_paged`]):
    /// KV space is carved into fixed-size pages of this many tokens and
    /// every KV access indirects through a per-sequence page table.
    page_tokens: Option<usize>,
    /// The per-sequence page tables in DDR (paged images only).
    page_table: Option<Region>,
    /// Whether the image was placed in an extended virtual address space
    /// for tiered weight storage ([`ModelImage::build_tiered`]).
    tiered_virtual: bool,
}

impl ModelImage {
    /// Builds the image for a model at a given context capacity (one
    /// sequence).
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if the model does not fit the 4 GB
    /// device (e.g. LLaMA2-13B).
    pub fn build(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_batched(model, format, ctx_capacity, 1)
    }

    /// Builds the image with KV space for `batch` concurrent sequences of
    /// `ctx_capacity` tokens each. The weight streams are placed exactly
    /// as in the single-sequence image — batching never duplicates them —
    /// so `batch = 1` reproduces [`ModelImage::build`] byte for byte.
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if weights plus `batch` KV FIFOs
    /// exceed the 4 GB device — the capacity wall the batch sweep tables.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn build_batched(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_ranged(model, format, ctx_capacity, batch, 0..model.n_layers, None)
    }

    /// Builds a **paged** image: the same weight placement and total KV
    /// provisioning as [`ModelImage::build_batched`], but the KV space is
    /// carved into fixed-size pages of `page_tokens` tokens granted on
    /// demand, with per-sequence page tables placed in DDR and every KV
    /// access indirecting through them. Pages use a canonical interleaved
    /// physical placement (logical page `p` of sequence `s` lives at
    /// physical page `p × batch + s`), so the burst streams are a pure
    /// function of `(slot, ctx)` — cacheable like every other schedule —
    /// while still modelling the scatter a shared page pool produces.
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if the image (weights, KV pool,
    /// scale-zero packs, page tables) exceeds the 4 GB device.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero, `page_tokens` is not a positive
    /// multiple of the 16-token pack window, or `ctx_capacity` is not a
    /// multiple of `page_tokens`.
    pub fn build_paged(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
        page_tokens: usize,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_ranged(
            model,
            format,
            ctx_capacity,
            batch,
            0..model.n_layers,
            Some(page_tokens),
        )
    }

    /// Builds the image of one pipeline-parallel shard: the weight
    /// streams and KV regions of layers `layers.start..layers.end` only,
    /// plus the embedding table when the shard starts at layer 0 and the
    /// LM head when it ends at the last layer. Everything on the image —
    /// layer accessors, KV budget, request pricing, schedules — then
    /// speaks shard-local layer indices (`0..layers.len()`); the global
    /// boundary is recorded as [`ModelImage::layer_offset`].
    ///
    /// A board holding a shard spends its DDR only on its own slice, so
    /// per-board KV budgets shrink with depth and the freed capacity can
    /// be re-provisioned as extra sequence slots — the lever the cluster
    /// layer prices.
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if the shard does not fit the 4 GB
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `layers` is empty or out of range.
    pub fn build_shard(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
        layers: std::ops::Range<usize>,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_ranged(model, format, ctx_capacity, batch, layers, None)
    }

    /// [`ModelImage::build_shard`] with paged KV space on the shard —
    /// the per-board analogue of [`ModelImage::build_paged`].
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if the shard does not fit the 4 GB
    /// device.
    ///
    /// # Panics
    ///
    /// Panics as [`ModelImage::build_paged`] and
    /// [`ModelImage::build_shard`] do.
    pub fn build_shard_paged(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
        layers: std::ops::Range<usize>,
        page_tokens: usize,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_ranged(
            model,
            format,
            ctx_capacity,
            batch,
            layers,
            Some(page_tokens),
        )
    }

    /// Builds the image for **tiered** (flash-backed) weight storage:
    /// identical to [`ModelImage::build`] when the model fits the 4 GiB
    /// device, and otherwise placed in the smallest power-of-two
    /// [`MemoryMap::tiered_virtual`] address space that holds it. Layers
    /// keep canonical, stable addresses either way — which layers are
    /// *physically* resident is the `WeightCache`'s accounting, enforced
    /// by the tier budget, not by placement — so schedules stay cacheable
    /// and an all-resident tier prices bit-identically to a flat image.
    ///
    /// # Errors
    ///
    /// Returns the allocation failure if the model exceeds even a 64 GiB
    /// virtual address space.
    pub fn build_tiered(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
    ) -> Result<ModelImage, AllocError> {
        let mut last = match ModelImage::build(model, format, ctx_capacity) {
            Ok(image) => return Ok(image),
            Err(e) => e,
        };
        for gib in [8u64, 16, 32, 64] {
            match ModelImage::build_virtual(model, format, ctx_capacity, gib << 30) {
                Ok(image) => return Ok(image),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn build_virtual(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        total_bytes: u64,
    ) -> Result<ModelImage, AllocError> {
        let mut image = ModelImage::build_ranged_in(
            model,
            format,
            ctx_capacity,
            1,
            0..model.n_layers,
            None,
            MemoryMap::tiered_virtual(total_bytes),
        )?;
        image.tiered_virtual = true;
        Ok(image)
    }

    fn build_ranged(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
        layers: std::ops::Range<usize>,
        page_tokens: Option<usize>,
    ) -> Result<ModelImage, AllocError> {
        ModelImage::build_ranged_in(
            model,
            format,
            ctx_capacity,
            batch,
            layers,
            page_tokens,
            MemoryMap::kv260(),
        )
    }

    fn build_ranged_in(
        model: &ModelConfig,
        format: WeightFormat,
        ctx_capacity: usize,
        batch: usize,
        layers: std::ops::Range<usize>,
        page_tokens: Option<usize>,
        mut map: MemoryMap,
    ) -> Result<ModelImage, AllocError> {
        assert!(batch > 0, "batch must be at least 1");
        if let Some(pt) = page_tokens {
            assert!(
                pt > 0 && pt.is_multiple_of(PAGE_TOKEN_QUANTUM),
                "page_tokens {pt} must be a positive multiple of {PAGE_TOKEN_QUANTUM}"
            );
            assert!(
                ctx_capacity.is_multiple_of(pt),
                "ctx_capacity {ctx_capacity} must be a multiple of page_tokens {pt}"
            );
        }
        assert!(
            !layers.is_empty() && layers.end <= model.n_layers,
            "shard layer range {layers:?} must be a non-empty subrange of 0..{}",
            model.n_layers
        );
        model.validate().map_err(|e| AllocError {
            name: e,
            requested: 0,
            available: 0,
        })?;
        let owns_embedding = layers.start == 0;
        let owns_head = layers.end == model.n_layers;
        // The image speaks shard-local layer indices: a shard-local model
        // config (n_layers = the slice length) keeps every accessor and
        // scheduling loop — KV budgets, request pricing, stream counts —
        // correct without the rest of the stack knowing about shards.
        let mut shard = model.clone();
        shard.n_layers = layers.len();

        let alloc_spill = |map: &mut MemoryMap, name: &str, bytes: u64| {
            map.alloc(name, bytes, Window::High)
                .or_else(|_| map.alloc(name, bytes, Window::Low))
        };

        // FP16 embedding table — only on the first pipeline stage.
        let embedding = if owns_embedding {
            Some(alloc_spill(
                &mut map,
                "embedding table (fp16)",
                (model.vocab_size * model.d_model * 2) as u64,
            )?)
        } else {
            None
        };

        // Per-layer projections, in streaming order.
        let d = model.d_model;
        let kv = model.kv_dim();
        let ff = model.d_ff;
        let shapes: [(&str, usize, usize); 7] = [
            ("wq", d, d),
            ("wk", kv, d),
            ("wv", kv, d),
            ("wo", d, d),
            ("w_gate", ff, d),
            ("w_up", ff, d),
            ("w_down", d, ff),
        ];
        let mut projections = Vec::with_capacity(layers.len() * 7 + usize::from(owns_head));
        for layer in layers.clone() {
            for (name, rows, cols) in shapes {
                let beats = format.beats_for(rows * cols) as u64;
                let region = alloc_spill(
                    &mut map,
                    &format!("L{layer}.{name}"),
                    beats * BEAT_BYTES as u64,
                )?;
                projections.push(PlacedProjection {
                    name,
                    layer,
                    rows,
                    cols,
                    addr: region.base,
                    beats,
                });
            }
        }
        if owns_head {
            let head_beats = format.beats_for(model.vocab_size * d) as u64;
            let head_region = alloc_spill(&mut map, "lm_head", head_beats * BEAT_BYTES as u64)?;
            projections.push(PlacedProjection {
                name: "lm_head",
                layer: usize::MAX,
                rows: model.vocab_size,
                cols: d,
                addr: head_region.base,
                beats: head_beats,
            });
        }

        // KV code regions: one per (layer, K/V), each ctx_capacity × kv_dim
        // bytes, beat-aligned per token vector.
        let token_bytes = kv.max(1).next_multiple_of(BEAT_BYTES) as u64;
        let mut kv_regions = Vec::with_capacity(layers.len() * 2);
        for layer in layers.clone() {
            for which in ["K", "V"] {
                let r = alloc_spill(
                    &mut map,
                    &format!("kv.{which}.L{layer}"),
                    token_bytes * ctx_capacity as u64 * batch as u64,
                )?;
                kv_regions.push(r);
            }
        }

        // Packed scale-zero region: one beat per stream per 16 tokens,
        // one block per sequence. Streams count only this image's layers.
        let streams = (shard.n_layers * shard.n_kv_heads * 2) as u64;
        let meta_beats = streams * (ctx_capacity as u64).div_ceil(16) * batch as u64;
        let kv_meta = alloc_spill(&mut map, "kv scale-zero packs", meta_beats * 64)?;

        // Per-sequence page tables: one 32-bit physical-page entry per
        // logical page, each sequence's table rounded up to whole beats
        // so a table fetch is one aligned burst.
        let page_table = match page_tokens {
            Some(pt) => {
                let entries = (ctx_capacity / pt) as u64;
                let stride = (entries * PAGE_TABLE_ENTRY_BYTES).div_ceil(BEAT_BYTES as u64)
                    * BEAT_BYTES as u64;
                Some(alloc_spill(
                    &mut map,
                    "kv page tables",
                    stride * batch as u64,
                )?)
            }
            None => None,
        };

        Ok(ModelImage {
            model: shard,
            format,
            ctx_capacity,
            batch,
            map,
            layer_offset: layers.start,
            owns_head,
            embedding,
            projections,
            kv_regions,
            kv_meta,
            page_tokens,
            page_table,
            tiered_virtual: false,
        })
    }

    /// The model configuration this image holds. For a shard built by
    /// [`ModelImage::build_shard`] this is the shard-local view —
    /// `n_layers` is the slice length, and every layer-indexed accessor
    /// takes shard-local indices.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Global index of the first layer this image holds (zero for a full
    /// image).
    pub fn layer_offset(&self) -> usize {
        self.layer_offset
    }

    /// Whether this image places the FP16 embedding table (true for full
    /// images and the first pipeline stage).
    pub fn owns_embedding(&self) -> bool {
        self.embedding.is_some()
    }

    /// Whether this image places the LM head (true for full images and
    /// the last pipeline stage).
    pub fn owns_head(&self) -> bool {
        self.owns_head
    }

    /// The weight format.
    pub fn format(&self) -> WeightFormat {
        self.format
    }

    /// Maximum context length the KV regions hold (per sequence).
    pub fn ctx_capacity(&self) -> usize {
        self.ctx_capacity
    }

    /// Concurrent sequences the KV regions are provisioned for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The underlying memory map.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Fraction of the 4 GB device occupied (the paper's 93.3 % number).
    pub fn occupancy(&self) -> f64 {
        self.map.occupancy()
    }

    /// Whether Linux could still boot beside the image (the paper's
    /// bare-metal argument is that it cannot).
    pub fn linux_bootable(&self) -> bool {
        self.map.linux_bootable()
    }

    /// All placed projections in per-token streaming order.
    pub fn projections(&self) -> &[PlacedProjection] {
        &self.projections
    }

    /// The projections of one layer, in streaming order.
    pub fn layer_projections(&self, layer: usize) -> &[PlacedProjection] {
        &self.projections[layer * 7..layer * 7 + 7]
    }

    /// The LM head projection.
    ///
    /// # Panics
    ///
    /// Panics on a shard image that does not own the head.
    pub fn lm_head(&self) -> &PlacedProjection {
        assert!(self.owns_head, "shard image does not place the LM head");
        self.projections
            .last()
            .expect("image always has an LM head")
    }

    /// Read burst for one embedding row (FP16).
    ///
    /// # Panics
    ///
    /// Panics on a shard image that does not own the embedding table.
    pub fn embedding_row_burst(&self, token: usize) -> BurstDescriptor {
        let embedding = self
            .embedding
            .as_ref()
            .expect("shard image does not place the embedding table");
        let row_bytes = (self.model.d_model * 2) as u64;
        let beats = row_bytes.div_ceil(BEAT_BYTES as u64) as u32;
        BurstDescriptor::new(embedding.base + token as u64 * row_bytes, beats)
    }

    /// Bytes one cached token vector occupies (beat-aligned codes).
    pub fn kv_token_bytes(&self) -> u64 {
        (self.model.kv_dim().max(1)).next_multiple_of(BEAT_BYTES) as u64
    }

    /// Read burst of the whole K (or V) history of one layer up to `ctx`
    /// tokens — one consecutive burst thanks to the per-layer regions.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` exceeds the image's context capacity.
    pub fn kv_read_burst(&self, layer: usize, value: bool, ctx: usize) -> BurstDescriptor {
        self.kv_read_burst_seq(layer, value, ctx, 0)
    }

    /// [`ModelImage::kv_read_burst`] for sequence `seq` of a batched
    /// image: the same layer's history, streamed from that sequence's
    /// slot block — a separate consecutive DDR stream per sequence.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` exceeds the per-sequence capacity or `seq` exceeds
    /// the provisioned batch.
    pub fn kv_read_burst_seq(
        &self,
        layer: usize,
        value: bool,
        ctx: usize,
        seq: usize,
    ) -> BurstDescriptor {
        assert!(ctx <= self.ctx_capacity, "context beyond capacity");
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        assert!(
            self.page_tokens.is_none(),
            "paged image history is fragmented; use kv_read_bursts_seq"
        );
        let region = &self.kv_regions[layer * 2 + usize::from(value)];
        let tb = self.kv_token_bytes();
        let beats = (tb * ctx as u64 / BEAT_BYTES as u64) as u32;
        BurstDescriptor::new(
            region.base + seq as u64 * self.ctx_capacity as u64 * tb,
            beats,
        )
    }

    /// The K (or V) history of one layer up to `ctx` tokens as a burst
    /// list: one consecutive burst on a contiguous image, one burst per
    /// KV page on a paged image (the fragmentation paging pays for its
    /// capacity win — each page is still a long aligned burst, never a
    /// scattered read).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` exceeds the per-sequence capacity or `seq` exceeds
    /// the provisioned batch.
    pub fn kv_read_bursts_seq(
        &self,
        layer: usize,
        value: bool,
        ctx: usize,
        seq: usize,
    ) -> Vec<BurstDescriptor> {
        let Some(pt) = self.page_tokens else {
            return vec![self.kv_read_burst_seq(layer, value, ctx, seq)];
        };
        assert!(ctx <= self.ctx_capacity, "context beyond capacity");
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        let region = &self.kv_regions[layer * 2 + usize::from(value)];
        let tb = self.kv_token_bytes();
        let mut bursts = Vec::with_capacity(ctx.div_ceil(pt));
        for page in 0..ctx.div_ceil(pt) {
            let tokens = pt.min(ctx - page * pt) as u64;
            let phys = self.physical_page(seq, page);
            bursts.push(BurstDescriptor::new(
                region.base + phys * pt as u64 * tb,
                (tokens * tb / BEAT_BYTES as u64) as u32,
            ));
        }
        bursts
    }

    /// Physical page backing logical page `logical` of sequence `seq` in
    /// a paged image: the canonical interleave `logical × batch + seq` —
    /// bijective over the pool, and deliberately *not* sequence-local, so
    /// consecutive logical pages of one sequence land `batch` pages apart
    /// exactly as a shared on-demand pool scatters them.
    fn physical_page(&self, seq: usize, logical: usize) -> u64 {
        (logical * self.batch + seq) as u64
    }

    /// Write burst for the current token's K (or V) vector of one layer.
    pub fn kv_write_burst(&self, layer: usize, value: bool, token: usize) -> BurstDescriptor {
        self.kv_write_burst_seq(layer, value, token, 0)
    }

    /// [`ModelImage::kv_write_burst`] for sequence `seq` of a batched
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if `seq` exceeds the provisioned batch.
    pub fn kv_write_burst_seq(
        &self,
        layer: usize,
        value: bool,
        token: usize,
        seq: usize,
    ) -> BurstDescriptor {
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        let region = &self.kv_regions[layer * 2 + usize::from(value)];
        let tb = self.kv_token_bytes();
        let addr = match self.page_tokens {
            None => region.base + (seq as u64 * self.ctx_capacity as u64 + token as u64) * tb,
            Some(pt) => {
                let phys = self.physical_page(seq, token / pt);
                region.base + (phys * pt as u64 + (token % pt) as u64) * tb
            }
        };
        BurstDescriptor::write(addr, (tb / BEAT_BYTES as u64) as u32)
    }

    /// Write burst for one flushed scale-zero FIFO element.
    pub fn kv_meta_write_burst(&self, stream: usize, window16: u64) -> BurstDescriptor {
        self.kv_meta_write_burst_seq(stream, window16, 0)
    }

    /// [`ModelImage::kv_meta_write_burst`] for sequence `seq` of a
    /// batched image: each sequence flushes into its own block of the
    /// packed scale-zero region.
    ///
    /// # Panics
    ///
    /// Panics if `seq` exceeds the provisioned batch.
    pub fn kv_meta_write_burst_seq(
        &self,
        stream: usize,
        window16: u64,
        seq: usize,
    ) -> BurstDescriptor {
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        let streams = (self.model.n_layers * self.model.n_kv_heads * 2) as u64;
        let windows = (self.ctx_capacity as u64).div_ceil(16);
        let offset = (seq as u64 * streams * windows + window16 * streams + stream as u64)
            * BEAT_BYTES as u64;
        BurstDescriptor::write(self.kv_meta.base + offset, 1)
    }

    /// Total bytes the image provisions for KV state across every slot:
    /// all per-layer K/V code regions plus the packed scale-zero region.
    /// This is the Fig. 1 KV budget an admission controller prices
    /// against — the hard capacity wall once weights are placed.
    pub fn kv_budget_bytes(&self) -> u64 {
        let codes: u64 = self.kv_regions.iter().map(|r| r.size).sum();
        codes + self.kv_meta.size
    }

    /// KV bytes one sequence holding `tokens` cached tokens occupies:
    /// its K and V codes in every layer plus its share of the packed
    /// scale-zero region (one beat per stream per started 16-token
    /// window). The admission currency — `kv_budget_bytes / batch`
    /// equals `kv_request_bytes(ctx_capacity)` rounded to whole windows.
    pub fn kv_request_bytes(&self, tokens: usize) -> u64 {
        let codes = (self.model.n_layers * 2) as u64 * self.kv_token_bytes() * tokens as u64;
        let streams = (self.model.n_layers * self.model.n_kv_heads * 2) as u64;
        let meta = streams * (tokens as u64).div_ceil(16) * BEAT_BYTES as u64;
        codes + meta
    }

    /// Tokens per KV page, or `None` on a contiguous image.
    pub fn page_tokens(&self) -> Option<usize> {
        self.page_tokens
    }

    /// Whether KV state is organised as a paged pool.
    pub fn is_paged(&self) -> bool {
        self.page_tokens.is_some()
    }

    /// Physical pages in the paged KV pool
    /// (`batch × ctx_capacity / page_tokens`).
    ///
    /// # Panics
    ///
    /// Panics on a contiguous image.
    pub fn total_kv_pages(&self) -> usize {
        let pt = self.page_tokens.expect("contiguous image has no pages");
        self.batch * (self.ctx_capacity / pt)
    }

    /// KV bytes one page accounts for: its codes in every layer plus its
    /// page-aligned share of the scale-zero region. Because pages are
    /// whole 16-token windows, `total_kv_pages × kv_page_bytes` equals
    /// [`ModelImage::kv_budget_bytes`] exactly — paging re-divides the
    /// budget, it does not shrink or inflate it.
    ///
    /// # Panics
    ///
    /// Panics on a contiguous image.
    pub fn kv_page_bytes(&self) -> u64 {
        let pt = self.page_tokens.expect("contiguous image has no pages");
        self.kv_request_bytes(pt)
    }

    /// [`ModelImage::kv_request_bytes`] rounded up to whole pages of
    /// `page_tokens` tokens — the actual-growth admission currency. Works
    /// on contiguous images too, so a worst-case and a paged controller
    /// can be compared against the same budget.
    pub fn page_rounded_request_bytes(&self, tokens: usize, page_tokens: usize) -> u64 {
        self.kv_request_bytes(page_tokens) * tokens.div_ceil(page_tokens) as u64
    }

    /// One full read of `seq`'s page table: the page-table lookup a paged
    /// decode step pays before it can issue the fragmented KV reads.
    ///
    /// # Panics
    ///
    /// Panics on a contiguous image or if `seq` exceeds the batch.
    pub fn kv_page_table_read_burst(&self, seq: usize) -> BurstDescriptor {
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        let table = self
            .page_table
            .as_ref()
            .expect("contiguous image has no page tables");
        let stride = table.size / self.batch as u64;
        BurstDescriptor::new(
            table.base + seq as u64 * stride,
            (stride / BEAT_BYTES as u64) as u32,
        )
    }

    /// One-beat flush of the page-table entry mapping `seq`'s logical
    /// page `logical` — paid when a sequence crosses a page boundary and
    /// a fresh page is appended to its table.
    ///
    /// # Panics
    ///
    /// Panics on a contiguous image, if `seq` exceeds the batch, or if
    /// `logical` exceeds the per-sequence table.
    pub fn kv_page_table_write_burst(&self, seq: usize, logical: usize) -> BurstDescriptor {
        assert!(seq < self.batch, "sequence beyond provisioned batch");
        let pt = self
            .page_tokens
            .expect("contiguous image has no page tables");
        assert!(
            logical < self.ctx_capacity / pt,
            "logical page beyond capacity"
        );
        let table = self
            .page_table
            .as_ref()
            .expect("contiguous image has no page tables");
        let stride = table.size / self.batch as u64;
        let beat = logical as u64 * PAGE_TABLE_ENTRY_BYTES / BEAT_BYTES as u64;
        BurstDescriptor::write(
            table.base + seq as u64 * stride + beat * BEAT_BYTES as u64,
            1,
        )
    }

    /// Total bytes of all weight streams (format padding included).
    pub fn weight_stream_bytes(&self) -> u64 {
        self.projections
            .iter()
            .map(|p| p.beats * BEAT_BYTES as u64)
            .sum()
    }

    /// Bytes of one layer's weight streams (all seven projections, format
    /// padding included) — the unit the tiered weight cache accounts in.
    pub fn layer_weight_bytes(&self, layer: usize) -> u64 {
        self.layer_projections(layer)
            .iter()
            .map(|p| p.beats * BEAT_BYTES as u64)
            .sum()
    }

    /// Bytes that must stay DDR-resident regardless of the weight tier:
    /// everything placed except the per-layer projection streams — the
    /// embedding table, LM head, KV regions, scale-zero packs and page
    /// tables. `non_layer_resident_bytes() + weight budget` is the
    /// physical footprint a tiered deployment needs.
    pub fn non_layer_resident_bytes(&self) -> u64 {
        let layer_bytes: u64 = (0..self.model.n_layers)
            .map(|l| self.layer_weight_bytes(l))
            .sum();
        self.map.allocated_bytes() - layer_bytes
    }

    /// Whether the image lives in an extended virtual address space for
    /// tiered weight storage (see [`ModelImage::build_tiered`]).
    pub fn is_tiered_virtual(&self) -> bool {
        self.tiered_virtual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_image_reproduces_fig1() {
        let image = ModelImage::build(&ModelConfig::llama2_7b(), WeightFormat::kv260(), 1024)
            .expect("7B must fit the 4GB device");
        let occ = image.occupancy();
        assert!(
            (0.90..0.96).contains(&occ),
            "occupancy {occ:.4} should be ~93%"
        );
        assert!(!image.linux_bootable(), "paper: too little room for Linux");
        assert!(image.map().check_invariants());
        // Weight stream ≈ 3.3–3.5 GB.
        let wb = image.weight_stream_bytes() as f64 / (1u64 << 20) as f64;
        assert!((3100.0..3500.0).contains(&wb), "weight stream {wb:.0} MiB");
    }

    #[test]
    fn thirteen_b_does_not_fit() {
        let mut cfg = ModelConfig::llama2_7b();
        cfg.name = "LLaMA2-13B".into();
        cfg.n_layers = 40;
        cfg.d_model = 5120;
        cfg.n_heads = 40;
        cfg.n_kv_heads = 40;
        cfg.d_ff = 13824;
        assert!(ModelImage::build(&cfg, WeightFormat::kv260(), 1024).is_err());
    }

    #[test]
    fn small_image_geometry() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 64).expect("fits");
        assert_eq!(image.projections().len(), cfg.n_layers * 7 + 1);
        assert_eq!(image.layer_projections(1).len(), 7);
        assert_eq!(image.layer_projections(1)[0].name, "wq");
        assert_eq!(image.lm_head().rows, cfg.vocab_size);
        assert_eq!(image.ctx_capacity(), 64);
    }

    #[test]
    fn kv_bursts_are_contiguous_and_sized() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 64).expect("fits");
        let tb = image.kv_token_bytes();
        assert_eq!(tb % BEAT_BYTES as u64, 0);
        let read = image.kv_read_burst(0, false, 10);
        assert_eq!(read.bytes(), tb * 10);
        let w0 = image.kv_write_burst(0, false, 0);
        let w1 = image.kv_write_burst(0, false, 1);
        assert_eq!(w1.addr - w0.addr, tb);
        assert!(w0.write);
        // K and V regions are distinct.
        let rv = image.kv_read_burst(0, true, 10);
        assert_ne!(read.addr, rv.addr);
    }

    #[test]
    fn embedding_rows_are_addressable() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 64).expect("fits");
        let b0 = image.embedding_row_burst(0);
        let b1 = image.embedding_row_burst(1);
        assert_eq!(b1.addr - b0.addr, (cfg.d_model * 2) as u64);
        assert_eq!(b0.bytes(), (cfg.d_model * 2) as u64);
    }

    #[test]
    fn meta_write_bursts_are_beat_sized() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 64).expect("fits");
        let b = image.kv_meta_write_burst(3, 1);
        assert_eq!(b.beats, 1);
        assert!(b.write);
    }

    #[test]
    #[should_panic(expected = "context beyond capacity")]
    fn kv_read_checks_capacity() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build(&cfg, WeightFormat::kv260(), 16).expect("fits");
        let _ = image.kv_read_burst(0, false, 17);
    }

    #[test]
    fn batched_image_shares_weights_and_separates_kv() {
        let cfg = ModelConfig::test_small();
        let single = ModelImage::build(&cfg, WeightFormat::kv260(), 32).expect("fits");
        let batched = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 4).expect("fits");
        assert_eq!(single.batch(), 1);
        assert_eq!(batched.batch(), 4);
        // The dense weight image is identical — batching never duplicates it.
        assert_eq!(single.weight_stream_bytes(), batched.weight_stream_bytes());
        // Each sequence gets its own consecutive history stream.
        let tb = batched.kv_token_bytes();
        let s0 = batched.kv_read_burst_seq(0, false, 10, 0);
        let s1 = batched.kv_read_burst_seq(0, false, 10, 1);
        assert_eq!(s1.addr - s0.addr, 32 * tb);
        assert_eq!(s0.bytes(), s1.bytes());
        // Seq 0 bursts coincide with the single-sequence accessor.
        assert_eq!(batched.kv_read_burst(0, false, 10), s0);
        let w0 = batched.kv_write_burst_seq(0, true, 3, 0);
        let w2 = batched.kv_write_burst_seq(0, true, 3, 2);
        assert_eq!(w2.addr - w0.addr, 2 * 32 * tb);
        // Meta blocks are per-sequence too.
        let m0 = batched.kv_meta_write_burst_seq(0, 0, 0);
        let m1 = batched.kv_meta_write_burst_seq(0, 0, 1);
        let streams = (cfg.n_layers * cfg.n_kv_heads * 2) as u64;
        assert_eq!(m1.addr - m0.addr, streams * 2 * BEAT_BYTES as u64);
    }

    #[test]
    fn kv_budget_prices_full_occupancy() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 4).expect("fits");
        // A full slot costs exactly 1/batch of the provisioned budget.
        assert_eq!(image.kv_request_bytes(32) * 4, image.kv_budget_bytes());
        // Footprint is monotone in tokens and zero at zero.
        assert_eq!(image.kv_request_bytes(0), 0);
        assert!(image.kv_request_bytes(16) < image.kv_request_bytes(17));
        // Metadata rounds to whole 16-token windows.
        let one = image.kv_request_bytes(1);
        let sixteen = image.kv_request_bytes(16);
        assert_eq!(
            sixteen - one,
            15 * (cfg.n_layers * 2) as u64 * image.kv_token_bytes()
        );
    }

    #[test]
    fn paged_image_redivides_the_kv_budget_exactly() {
        let cfg = ModelConfig::test_small();
        let flat = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 4).expect("fits");
        let paged = ModelImage::build_paged(&cfg, WeightFormat::kv260(), 32, 4, 16).expect("fits");
        assert!(paged.is_paged() && !flat.is_paged());
        assert_eq!(paged.page_tokens(), Some(16));
        // Paging re-divides the same budget: pages × page bytes is the
        // whole KV budget, and that budget matches the contiguous image.
        assert_eq!(paged.kv_budget_bytes(), flat.kv_budget_bytes());
        assert_eq!(paged.total_kv_pages(), 4 * 2);
        assert_eq!(
            paged.total_kv_pages() as u64 * paged.kv_page_bytes(),
            paged.kv_budget_bytes()
        );
        // Page-rounded charging: whole pages, monotone, capped at full.
        assert_eq!(paged.page_rounded_request_bytes(0, 16), 0);
        assert_eq!(
            paged.page_rounded_request_bytes(1, 16),
            paged.kv_page_bytes()
        );
        assert_eq!(
            paged.page_rounded_request_bytes(17, 16),
            2 * paged.kv_page_bytes()
        );
        assert_eq!(
            paged.page_rounded_request_bytes(32, 16) * 4,
            paged.kv_budget_bytes()
        );
        // Contiguous images can price page-rounded too (twin-run compare).
        assert_eq!(
            flat.page_rounded_request_bytes(17, 16),
            paged.page_rounded_request_bytes(17, 16)
        );
    }

    #[test]
    fn paged_reads_fragment_but_conserve_bytes() {
        let cfg = ModelConfig::test_small();
        let flat = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 4).expect("fits");
        let paged = ModelImage::build_paged(&cfg, WeightFormat::kv260(), 32, 4, 16).expect("fits");
        for ctx in [1usize, 15, 16, 17, 31, 32] {
            let flat_bytes: u64 = flat
                .kv_read_bursts_seq(0, false, ctx, 1)
                .iter()
                .map(|b| b.bytes())
                .sum();
            let bursts = paged.kv_read_bursts_seq(0, false, ctx, 1);
            assert_eq!(bursts.len(), ctx.div_ceil(16), "one burst per page");
            let paged_bytes: u64 = bursts.iter().map(|b| b.bytes()).sum();
            assert_eq!(paged_bytes, flat_bytes, "ctx {ctx}: same bytes moved");
        }
        // Canonical interleave: logical page p of seq s sits at physical
        // page p·batch + s, so seq 0 / page 0 coincides with the start of
        // the region and consecutive logical pages are batch pages apart.
        let tb = paged.kv_token_bytes();
        let bursts = paged.kv_read_bursts_seq(0, false, 32, 0);
        assert_eq!(bursts[0].addr, flat.kv_read_burst_seq(0, false, 32, 0).addr);
        assert_eq!(bursts[1].addr - bursts[0].addr, 4 * 16 * tb);
        // Writes remap the same way: token 16 of seq 1 lands in physical
        // page 1·4 + 1 = 5 at offset 0.
        let w = paged.kv_write_burst_seq(0, false, 16, 1);
        assert_eq!(w.addr, bursts[0].addr + 5 * 16 * tb);
    }

    #[test]
    fn page_table_bursts_are_priced_per_sequence() {
        let cfg = ModelConfig::test_small();
        let paged = ModelImage::build_paged(&cfg, WeightFormat::kv260(), 32, 4, 16).expect("fits");
        // 2 entries × 4 B rounds up to one 64 B beat per sequence.
        let r0 = paged.kv_page_table_read_burst(0);
        let r1 = paged.kv_page_table_read_burst(1);
        assert_eq!(r0.beats, 1);
        assert_eq!(r1.addr - r0.addr, BEAT_BYTES as u64);
        assert!(!r0.write);
        let w = paged.kv_page_table_write_burst(0, 1);
        assert!(w.write);
        assert_eq!(w.beats, 1);
        assert_eq!(w.addr, r0.addr);
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn paged_image_rejects_misaligned_page_size() {
        let cfg = ModelConfig::test_small();
        let _ = ModelImage::build_paged(&cfg, WeightFormat::kv260(), 32, 4, 24);
    }

    #[test]
    #[should_panic(expected = "paged image history is fragmented")]
    fn contiguous_read_accessor_rejects_paged_images() {
        let cfg = ModelConfig::test_small();
        let paged = ModelImage::build_paged(&cfg, WeightFormat::kv260(), 32, 4, 16).expect("fits");
        let _ = paged.kv_read_burst_seq(0, false, 4, 0);
    }

    #[test]
    #[should_panic(expected = "sequence beyond provisioned batch")]
    fn kv_read_checks_batch() {
        let cfg = ModelConfig::test_small();
        let image = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 16, 2).expect("fits");
        let _ = image.kv_read_burst_seq(0, false, 4, 2);
    }

    #[test]
    fn shards_partition_the_full_image() {
        let cfg = ModelConfig::test_small();
        let full = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 2).expect("fits");
        let mid = cfg.n_layers / 2;
        let first =
            ModelImage::build_shard(&cfg, WeightFormat::kv260(), 32, 2, 0..mid).expect("fits");
        let last = ModelImage::build_shard(&cfg, WeightFormat::kv260(), 32, 2, mid..cfg.n_layers)
            .expect("fits");

        // Ownership splits along the pipeline.
        assert!(first.owns_embedding() && !first.owns_head());
        assert!(!last.owns_embedding() && last.owns_head());
        assert_eq!(first.layer_offset(), 0);
        assert_eq!(last.layer_offset(), mid);
        assert_eq!(first.model().n_layers, mid);
        assert_eq!(last.model().n_layers, cfg.n_layers - mid);

        // The shards exactly partition the full image's weight stream
        // and KV budget — nothing duplicated, nothing dropped.
        assert_eq!(
            first.weight_stream_bytes() + last.weight_stream_bytes(),
            full.weight_stream_bytes()
        );
        assert_eq!(
            first.kv_budget_bytes() + last.kv_budget_bytes(),
            full.kv_budget_bytes()
        );
        assert_eq!(
            first.kv_request_bytes(20) + last.kv_request_bytes(20),
            full.kv_request_bytes(20)
        );

        // Shard-local accessors address the shard's own slice.
        assert_eq!(first.projections().len(), mid * 7);
        assert_eq!(last.projections().len(), (cfg.n_layers - mid) * 7 + 1);
        assert_eq!(last.lm_head().rows, cfg.vocab_size);
        assert_eq!(last.layer_projections(0)[0].layer, mid);

        // A full build is a degenerate shard.
        let whole = ModelImage::build_shard(&cfg, WeightFormat::kv260(), 32, 2, 0..cfg.n_layers)
            .expect("fits");
        assert_eq!(whole.weight_stream_bytes(), full.weight_stream_bytes());
        assert_eq!(whole.kv_budget_bytes(), full.kv_budget_bytes());
        assert!(whole.owns_embedding() && whole.owns_head());
    }

    #[test]
    #[should_panic(expected = "does not place the embedding table")]
    fn tail_shard_has_no_embedding() {
        let cfg = ModelConfig::test_small();
        let shard = ModelImage::build_shard(&cfg, WeightFormat::kv260(), 16, 1, 1..cfg.n_layers)
            .expect("fits");
        let _ = shard.embedding_row_burst(0);
    }

    #[test]
    #[should_panic(expected = "does not place the LM head")]
    fn head_shard_has_no_lm_head() {
        let cfg = ModelConfig::test_small();
        let shard =
            ModelImage::build_shard(&cfg, WeightFormat::kv260(), 16, 1, 0..1).expect("fits");
        let _ = shard.lm_head();
    }
}
