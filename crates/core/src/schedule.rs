//! The per-token memory/compute operation schedule.
//!
//! For each decoded token the MCU issues a fixed sequence of bursts:
//! the embedding row, then per layer the seven projections interleaved
//! with the KV-cache history reads and the current token's KV write-back,
//! then the LM head. Every operation carries its VPU beat count and — for
//! the coarse-pipeline baseline — the miscellaneous SPU cycles that would
//! be *exposed* without operator fusion (§V-A).

use crate::config::PipelineMode;
use crate::image::ModelImage;
use zllm_layout::BurstDescriptor;

/// One scheduled operation.
#[derive(Debug, Clone)]
pub struct MemOp {
    /// Human-readable label ("L3.w_gate", "L3.kv_read.K", …).
    pub label: String,
    /// The bursts this operation issues.
    pub bursts: Vec<BurstDescriptor>,
    /// Beats the VPU consumes (one per cycle at fanout 1).
    pub vpu_beats: u64,
    /// SPU cycles serialized after this op in the coarse pipeline
    /// (zero in the fused pipeline, where they hide under the next dense
    /// stream).
    pub exposed_misc: u64,
    /// Sequences whose activations multiply against this stream's beats.
    /// Shared weight streams carry the whole batch (`fanout = B`, each
    /// beat's codes retire against `B` activation vectors); per-sequence
    /// streams (KV history, embedding rows) feed only their own sequence
    /// (`fanout = 1`).
    pub compute_fanout: u32,
}

impl MemOp {
    fn new(label: String, bursts: Vec<BurstDescriptor>) -> MemOp {
        let vpu_beats = bursts
            .iter()
            .filter(|b| !b.write)
            .map(|b| b.beats as u64)
            .sum();
        MemOp {
            label,
            bursts,
            vpu_beats,
            exposed_misc: 0,
            compute_fanout: 1,
        }
    }

    fn fanned(label: String, bursts: Vec<BurstDescriptor>, fanout: u32) -> MemOp {
        let mut op = MemOp::new(label, bursts);
        op.compute_fanout = fanout;
        op
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bursts.iter().map(BurstDescriptor::bytes).sum()
    }
}

/// The complete schedule of one decode step.
#[derive(Debug, Clone)]
pub struct TokenSchedule {
    /// Operations in issue order.
    pub ops: Vec<MemOp>,
    /// The context length this schedule serves (same for every sequence —
    /// batched decoding is lockstep).
    pub ctx: usize,
    /// Concurrent sequences this step decodes (1 = the single-sequence
    /// schedule).
    pub batch: usize,
}

impl TokenSchedule {
    /// Total bytes moved in this step.
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(MemOp::bytes).sum()
    }

    /// Total VPU beats.
    pub fn total_vpu_beats(&self) -> u64 {
        self.ops.iter().map(|o| o.vpu_beats).sum()
    }

    /// Total exposed miscellaneous cycles (coarse mode only).
    pub fn total_exposed_misc(&self) -> u64 {
        self.ops.iter().map(|o| o.exposed_misc).sum()
    }
}

/// Builds the schedule for decoding one token with `ctx` tokens already
/// cached (position `ctx` is being produced; its KV is written back).
///
/// Single-sequence convenience over [`batched_token_schedule`] at
/// `batch = 1` (same ops, same labels, same bursts).
///
/// # Panics
///
/// Panics if `ctx >= image.ctx_capacity()`.
pub fn token_schedule(image: &ModelImage, ctx: usize, mode: PipelineMode) -> TokenSchedule {
    batched_token_schedule(image, ctx, 1, mode)
}

/// Builds the schedule for decoding one token for each of `batch`
/// lockstep sequences, all at context length `ctx`.
///
/// Dense weight streams (embedding table rows aside) appear **once** and
/// fan their compute out to all `batch` sequences
/// ([`MemOp::compute_fanout`]); per-sequence traffic — the embedding row
/// of each sequence's token, the KV history reads, the KV write-backs,
/// and the scale-zero metadata flushes — is emitted per sequence against
/// that sequence's own cache region. This is the batched-serving memory
/// model: weight bytes are independent of `batch`, KV bytes linear in it.
///
/// # Panics
///
/// Panics if `ctx >= image.ctx_capacity()`, if `batch == 0`, or if
/// `batch > image.batch()` (the image does not provision KV space for
/// that many sequences).
pub fn batched_token_schedule(
    image: &ModelImage,
    ctx: usize,
    batch: usize,
    mode: PipelineMode,
) -> TokenSchedule {
    assert!(ctx < image.ctx_capacity(), "context beyond image capacity");
    assert!(batch > 0, "batch must be at least one sequence");
    assert!(
        batch <= image.batch(),
        "batch beyond image batch provisioning"
    );
    let model = image.model();
    let d = model.d_model;
    let hd = model.head_dim();
    let heads = model.n_heads;
    let b = batch as u64;
    let fanout = batch as u32;
    let mut ops: Vec<MemOp> = Vec::with_capacity(model.n_layers * (4 + 2 * batch) + 2);

    // Miscellaneous SPU latencies, exposed only in coarse mode. The SPU
    // works per activation vector, so in a batch each sequence pays its
    // own pass.
    let rmsnorm = 2 * d as u64;
    let rope_all = (heads + model.n_kv_heads) as u64 * hd as u64;
    let softmax_all = 3 * (ctx as u64 + 1) * heads as u64;
    let quant_all = 2 * 2 * model.kv_dim() as u64; // K and V, two passes
    let silu = model.d_ff as u64;

    // One embedding row per sequence (each decodes its own token).
    ops.push(MemOp::new(
        "embedding".into(),
        (0..batch).map(|_| image.embedding_row_burst(0)).collect(),
    ));

    for layer in 0..model.n_layers {
        let projs = image.layer_projections(layer);
        let find = |name: &str| {
            projs
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("projection {name} missing"))
        };

        // Pre-attention RMSNorm exposes before Q in the coarse pipeline.
        let mut qkv = MemOp::fanned(
            format!("L{layer}.qkv"),
            vec![find("wq").burst(), find("wk").burst(), find("wv").burst()],
            fanout,
        );
        if mode == PipelineMode::Coarse {
            qkv.exposed_misc = (rmsnorm + rope_all + quant_all) * b;
        }
        ops.push(qkv);

        // KV history reads (the attention DOT and weighted-value sums):
        // one stream per sequence, each over its own cache region.
        if ctx > 0 {
            for seq in 0..batch {
                let mut kv_read = MemOp::new(
                    format!("L{layer}.kv_read"),
                    vec![
                        image.kv_read_burst_seq(layer, false, ctx, seq),
                        image.kv_read_burst_seq(layer, true, ctx, seq),
                    ],
                );
                if mode == PipelineMode::Coarse {
                    kv_read.exposed_misc = softmax_all;
                }
                ops.push(kv_read);
            }
        } else if mode == PipelineMode::Coarse {
            // Even with no history each sequence's scores need softmax.
            if let Some(last) = ops.last_mut() {
                last.exposed_misc += softmax_all * b;
            }
        }

        // Current tokens' KV write-backs (codes; metadata amortized).
        for seq in 0..batch {
            ops.push(MemOp::new(
                format!("L{layer}.kv_write"),
                vec![
                    image.kv_write_burst_seq(layer, false, ctx, seq),
                    image.kv_write_burst_seq(layer, true, ctx, seq),
                ],
            ));
        }

        ops.push(MemOp::fanned(
            format!("L{layer}.wo"),
            vec![find("wo").burst()],
            fanout,
        ));

        let mut mlp = MemOp::fanned(
            format!("L{layer}.mlp"),
            vec![
                find("w_gate").burst(),
                find("w_up").burst(),
                find("w_down").burst(),
            ],
            fanout,
        );
        if mode == PipelineMode::Coarse {
            mlp.exposed_misc = (rmsnorm + silu) * b;
        }
        ops.push(mlp);
    }

    // Scale-zero FIFO flush: every 16th token writes one beat per stream,
    // per sequence (each sequence owns its own metadata block).
    if (ctx + 1).is_multiple_of(16) {
        let streams = model.n_layers * model.n_kv_heads * 2;
        let window = (ctx as u64 + 1) / 16 - 1;
        let bursts = (0..batch)
            .flat_map(|seq| {
                (0..streams).map(move |s| image.kv_meta_write_burst_seq(s, window, seq))
            })
            .collect();
        ops.push(MemOp::new("kv_meta_flush".into(), bursts));
    }

    let mut head = MemOp::fanned("lm_head".into(), vec![image.lm_head().burst()], fanout);
    if mode == PipelineMode::Coarse {
        head.exposed_misc = rmsnorm * b;
    }
    ops.push(head);

    TokenSchedule { ops, ctx, batch }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zllm_layout::weight::WeightFormat;
    use zllm_model::ModelConfig;

    fn image() -> ModelImage {
        ModelImage::build(&ModelConfig::test_small(), WeightFormat::kv260(), 32)
            .expect("test model fits")
    }

    fn batched_image(batch: usize) -> ModelImage {
        ModelImage::build_batched(&ModelConfig::test_small(), WeightFormat::kv260(), 32, batch)
            .expect("test model fits")
    }

    /// Bytes split into the two halves of the batched memory model:
    /// `(shared weight-stream bytes, per-sequence bytes)`.
    fn split_bytes(sched: &TokenSchedule) -> (u64, u64) {
        let per_seq: u64 = sched
            .ops
            .iter()
            .filter(|o| {
                o.label.contains("kv_read")
                    || o.label.contains("kv_write")
                    || o.label == "kv_meta_flush"
                    || o.label == "embedding"
            })
            .map(MemOp::bytes)
            .sum();
        (sched.total_bytes() - per_seq, per_seq)
    }

    #[test]
    fn schedule_covers_all_weights() {
        let image = image();
        let sched = token_schedule(&image, 4, PipelineMode::Fused);
        // Every projection byte appears exactly once.
        let weight_bytes: u64 = image.weight_stream_bytes();
        let sched_weight_bytes: u64 = sched
            .ops
            .iter()
            .filter(|o| {
                o.label.contains(".qkv")
                    || o.label.contains(".wo")
                    || o.label.contains(".mlp")
                    || o.label == "lm_head"
            })
            .map(MemOp::bytes)
            .sum();
        assert_eq!(sched_weight_bytes, weight_bytes);
    }

    #[test]
    fn fused_mode_exposes_nothing() {
        let sched = token_schedule(&image(), 4, PipelineMode::Fused);
        assert_eq!(sched.total_exposed_misc(), 0);
    }

    #[test]
    fn coarse_mode_exposure_grows_with_context() {
        let image = image();
        let short = token_schedule(&image, 2, PipelineMode::Coarse);
        let long = token_schedule(&image, 30, PipelineMode::Coarse);
        assert!(short.total_exposed_misc() > 0);
        assert!(long.total_exposed_misc() > short.total_exposed_misc());
    }

    #[test]
    fn kv_reads_scale_with_context() {
        let image = image();
        let b4 = token_schedule(&image, 4, PipelineMode::Fused).total_bytes();
        let b16 = token_schedule(&image, 16, PipelineMode::Fused).total_bytes();
        assert!(b16 > b4);
    }

    #[test]
    fn zero_context_schedules_no_history_reads() {
        let sched = token_schedule(&image(), 0, PipelineMode::Fused);
        assert!(!sched.ops.iter().any(|o| o.label.contains("kv_read")));
        // But KV write-back still happens.
        assert!(sched.ops.iter().any(|o| o.label.contains("kv_write")));
    }

    #[test]
    fn meta_flush_every_16_tokens() {
        let image = image();
        let s15 = token_schedule(&image, 15, PipelineMode::Fused);
        assert!(s15.ops.iter().any(|o| o.label == "kv_meta_flush"));
        let s14 = token_schedule(&image, 14, PipelineMode::Fused);
        assert!(!s14.ops.iter().any(|o| o.label == "kv_meta_flush"));
    }

    #[test]
    fn writes_do_not_count_as_vpu_beats() {
        let sched = token_schedule(&image(), 4, PipelineMode::Fused);
        let write_op = sched
            .ops
            .iter()
            .find(|o| o.label.contains("kv_write"))
            .expect("has write op");
        assert_eq!(write_op.vpu_beats, 0);
        assert!(write_op.bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "context beyond image capacity")]
    fn capacity_checked() {
        let image = image();
        let _ = token_schedule(&image, 32, PipelineMode::Fused);
    }

    #[test]
    #[should_panic(expected = "batch beyond image batch provisioning")]
    fn batch_provisioning_checked() {
        let image = image();
        let _ = batched_token_schedule(&image, 4, 2, PipelineMode::Fused);
    }

    #[test]
    fn batch_of_one_is_the_single_sequence_schedule() {
        let image = batched_image(4);
        for mode in [PipelineMode::Fused, PipelineMode::Coarse] {
            for ctx in [0, 4, 15, 31] {
                let single = token_schedule(&image, ctx, mode);
                let batched = batched_token_schedule(&image, ctx, 1, mode);
                assert_eq!(single.batch, 1);
                assert_eq!(single.ops.len(), batched.ops.len());
                for (a, b) in single.ops.iter().zip(&batched.ops) {
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.bytes(), b.bytes());
                    assert_eq!(a.vpu_beats, b.vpu_beats);
                    assert_eq!(a.exposed_misc, b.exposed_misc);
                    assert_eq!(a.compute_fanout, 1);
                    assert_eq!(b.compute_fanout, 1);
                    assert_eq!(a.bursts.len(), b.bursts.len());
                    for (ba, bb) in a.bursts.iter().zip(&b.bursts) {
                        assert_eq!(ba.addr, bb.addr);
                        assert_eq!(ba.beats, bb.beats);
                        assert_eq!(ba.write, bb.write);
                    }
                }
            }
        }
    }

    #[test]
    fn weight_bytes_amortize_kv_bytes_scale() {
        let image = batched_image(8);
        let (w1, s1) = split_bytes(&batched_token_schedule(&image, 16, 1, PipelineMode::Fused));
        for batch in [2usize, 4, 8] {
            let sched = batched_token_schedule(&image, 16, batch, PipelineMode::Fused);
            let (w, s) = split_bytes(&sched);
            assert_eq!(w, w1, "weight bytes must not scale with batch");
            assert_eq!(s, s1 * batch as u64, "per-seq bytes must scale linearly");
        }
    }

    #[test]
    fn shared_streams_fan_out_per_sequence_streams_do_not() {
        let sched = batched_token_schedule(&batched_image(4), 16, 4, PipelineMode::Fused);
        for op in &sched.ops {
            let per_seq =
                op.label.contains("kv_") || op.label == "kv_meta_flush" || op.label == "embedding";
            let expect = if per_seq { 1 } else { 4 };
            assert_eq!(op.compute_fanout, expect, "fanout of {}", op.label);
        }
    }

    #[test]
    fn batched_kv_reads_touch_distinct_regions() {
        let image = batched_image(2);
        let sched = batched_token_schedule(&image, 8, 2, PipelineMode::Fused);
        let reads: Vec<_> = sched
            .ops
            .iter()
            .filter(|o| o.label == "L0.kv_read")
            .collect();
        assert_eq!(reads.len(), 2);
        assert_ne!(reads[0].bursts[0].addr, reads[1].bursts[0].addr);
        assert_eq!(reads[0].bytes(), reads[1].bytes());
    }
}

#[cfg(all(test, feature = "proptest"))]
mod properties {
    use super::*;
    use proptest::prelude::*;
    use zllm_layout::weight::WeightFormat;
    use zllm_model::ModelConfig;

    fn split(sched: &TokenSchedule) -> (u64, u64) {
        let per_seq: u64 = sched
            .ops
            .iter()
            .filter(|o| {
                o.label.contains("kv_read")
                    || o.label.contains("kv_write")
                    || o.label == "kv_meta_flush"
                    || o.label == "embedding"
            })
            .map(MemOp::bytes)
            .sum();
        (sched.total_bytes() - per_seq, per_seq)
    }

    proptest! {
        /// Weight bytes are independent of B; per-sequence bytes (KV plus
        /// embedding rows) are exactly linear in B.
        #[test]
        fn batched_schedules_conserve_bytes(
            ctx in 0usize..32,
            batch in 1usize..=6,
            coarse in proptest::bool::ANY,
        ) {
            let mode = if coarse { PipelineMode::Coarse } else { PipelineMode::Fused };
            let image = ModelImage::build_batched(
                &ModelConfig::test_small(),
                WeightFormat::kv260(),
                32,
                6,
            )
            .expect("test model fits");
            let (w1, s1) = split(&batched_token_schedule(&image, ctx, 1, mode));
            let sched = batched_token_schedule(&image, ctx, batch, mode);
            let (w, s) = split(&sched);
            prop_assert_eq!(w, w1);
            prop_assert_eq!(s, s1 * batch as u64);
            prop_assert_eq!(sched.total_bytes(), w1 + s1 * batch as u64);
        }
    }
}
