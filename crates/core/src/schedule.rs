//! The per-token memory/compute operation schedule.
//!
//! For each decoded token the MCU issues a fixed sequence of bursts:
//! the embedding row, then per layer the seven projections interleaved
//! with the KV-cache history reads and the current token's KV write-back,
//! then the LM head. Every operation carries its VPU beat count and — for
//! the coarse-pipeline baseline — the miscellaneous SPU cycles that would
//! be *exposed* without operator fusion (§V-A).

use crate::config::PipelineMode;
use crate::image::ModelImage;
use zllm_layout::BurstDescriptor;

/// One scheduled operation.
#[derive(Debug, Clone)]
pub struct MemOp {
    /// Human-readable label ("L3.w_gate", "L3.kv_read.K", …).
    pub label: String,
    /// The bursts this operation issues.
    pub bursts: Vec<BurstDescriptor>,
    /// Beats the VPU consumes (one per cycle at fanout 1).
    pub vpu_beats: u64,
    /// SPU cycles serialized after this op in the coarse pipeline
    /// (zero in the fused pipeline, where they hide under the next dense
    /// stream).
    pub exposed_misc: u64,
    /// Sequences whose activations multiply against this stream's beats.
    /// Shared weight streams carry the whole batch (`fanout = B`, each
    /// beat's codes retire against `B` activation vectors); per-sequence
    /// streams (KV history, embedding rows) feed only their own sequence
    /// (`fanout = 1`).
    pub compute_fanout: u32,
}

impl MemOp {
    fn new(label: String, bursts: Vec<BurstDescriptor>) -> MemOp {
        let vpu_beats = bursts
            .iter()
            .filter(|b| !b.write)
            .map(|b| b.beats as u64)
            .sum();
        MemOp {
            label,
            bursts,
            vpu_beats,
            exposed_misc: 0,
            compute_fanout: 1,
        }
    }

    fn fanned(label: String, bursts: Vec<BurstDescriptor>, fanout: u32) -> MemOp {
        let mut op = MemOp::new(label, bursts);
        op.compute_fanout = fanout;
        op
    }

    /// A metadata operation (page-table lookups and flushes): its bursts
    /// are priced as real DDR traffic but feed no VPU compute.
    fn meta(label: String, bursts: Vec<BurstDescriptor>) -> MemOp {
        MemOp {
            label,
            bursts,
            vpu_beats: 0,
            exposed_misc: 0,
            compute_fanout: 1,
        }
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bursts.iter().map(BurstDescriptor::bytes).sum()
    }
}

/// The complete schedule of one decode step.
#[derive(Debug, Clone)]
pub struct TokenSchedule {
    /// Operations in issue order.
    pub ops: Vec<MemOp>,
    /// The highest context length this schedule serves (for a lockstep
    /// batch, every sequence's shared context; for a ragged step, the
    /// longest sequence's).
    pub ctx: usize,
    /// Tokens this step produces: the number of concurrent sequences for
    /// a decode step (1 = the single-sequence schedule), or the total
    /// prompt tokens for a chunked-prefill step.
    pub batch: usize,
    /// The `(slot, context)` pair of every sequence taking part, in issue
    /// order. Uniform lockstep schedules carry `(0, ctx) .. (B-1, ctx)`;
    /// ragged schedules carry each sequence's own position; prefill
    /// schedules carry each chunk's last written position.
    pub slots: Vec<(usize, usize)>,
}

impl TokenSchedule {
    /// Total bytes moved in this step.
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(MemOp::bytes).sum()
    }

    /// Total VPU beats.
    pub fn total_vpu_beats(&self) -> u64 {
        self.ops.iter().map(|o| o.vpu_beats).sum()
    }

    /// Total exposed miscellaneous cycles (coarse mode only).
    pub fn total_exposed_misc(&self) -> u64 {
        self.ops.iter().map(|o| o.exposed_misc).sum()
    }
}

/// Builds the schedule for decoding one token with `ctx` tokens already
/// cached (position `ctx` is being produced; its KV is written back).
///
/// Single-sequence convenience over [`batched_token_schedule`] at
/// `batch = 1` (same ops, same labels, same bursts).
///
/// # Panics
///
/// Panics if `ctx >= image.ctx_capacity()`.
pub fn token_schedule(image: &ModelImage, ctx: usize, mode: PipelineMode) -> TokenSchedule {
    batched_token_schedule(image, ctx, 1, mode)
}

/// Builds the schedule for decoding one token for each of `batch`
/// lockstep sequences, all at context length `ctx`.
///
/// Dense weight streams (embedding table rows aside) appear **once** and
/// fan their compute out to all `batch` sequences
/// ([`MemOp::compute_fanout`]); per-sequence traffic — the embedding row
/// of each sequence's token, the KV history reads, the KV write-backs,
/// and the scale-zero metadata flushes — is emitted per sequence against
/// that sequence's own cache region. This is the batched-serving memory
/// model: weight bytes are independent of `batch`, KV bytes linear in it.
///
/// # Panics
///
/// Panics if `ctx >= image.ctx_capacity()`, if `batch == 0`, or if
/// `batch > image.batch()` (the image does not provision KV space for
/// that many sequences).
pub fn batched_token_schedule(
    image: &ModelImage,
    ctx: usize,
    batch: usize,
    mode: PipelineMode,
) -> TokenSchedule {
    assert!(ctx < image.ctx_capacity(), "context beyond image capacity");
    assert!(batch > 0, "batch must be at least one sequence");
    assert!(
        batch <= image.batch(),
        "batch beyond image batch provisioning"
    );
    let slots: Vec<(usize, usize)> = (0..batch).map(|s| (s, ctx)).collect();
    ragged_token_schedule(image, &slots, mode)
}

/// Builds the schedule for decoding one token for each sequence in
/// `slots`, where each `(slot, ctx)` pair names the KV slot a sequence
/// occupies and *that sequence's own* context length — the continuous-
/// batching step. [`batched_token_schedule`] is the uniform special case
/// (`slots = [(0, ctx), …, (B-1, ctx)]`, op-for-op identical).
///
/// Shared weight streams still appear once with their compute fanned out
/// to all participants; per-sequence traffic (embedding row, KV history
/// read, KV write-back, metadata flush) is sized by each sequence's own
/// position, so a step may mix a 3-token-old joiner with a 200-token
/// veteran without padding either.
///
/// # Panics
///
/// Panics if `slots` is empty, contains a duplicate slot, a slot at or
/// beyond `image.batch()`, or a context at or beyond
/// `image.ctx_capacity()`.
pub fn ragged_token_schedule(
    image: &ModelImage,
    slots: &[(usize, usize)],
    mode: PipelineMode,
) -> TokenSchedule {
    assert!(!slots.is_empty(), "batch must be at least one sequence");
    for (i, &(slot, ctx)) in slots.iter().enumerate() {
        assert!(ctx < image.ctx_capacity(), "context beyond image capacity");
        assert!(
            slot < image.batch(),
            "batch beyond image batch provisioning"
        );
        assert!(
            !slots[..i].iter().any(|&(s, _)| s == slot),
            "duplicate slot in ragged schedule"
        );
    }
    let model = image.model();
    let d = model.d_model;
    let hd = model.head_dim();
    let heads = model.n_heads;
    let batch = slots.len();
    let b = batch as u64;
    let fanout = batch as u32;
    let mut ops: Vec<MemOp> = Vec::with_capacity(model.n_layers * (4 + 2 * batch) + 2);

    // Miscellaneous SPU latencies, exposed only in coarse mode. The SPU
    // works per activation vector, so in a batch each sequence pays its
    // own pass. Softmax cost depends on each sequence's own position.
    let rmsnorm = 2 * d as u64;
    let rope_all = (heads + model.n_kv_heads) as u64 * hd as u64;
    let softmax_all = |ctx: usize| 3 * (ctx as u64 + 1) * heads as u64;
    let quant_all = 2 * 2 * model.kv_dim() as u64; // K and V, two passes
    let silu = model.d_ff as u64;

    // One embedding row per sequence (each decodes its own token). A
    // shard image without the table receives hidden states over the
    // interconnect instead — that traffic is priced by the cluster layer,
    // not as DDR.
    if image.owns_embedding() {
        ops.push(MemOp::new(
            "embedding".into(),
            slots.iter().map(|_| image.embedding_row_burst(0)).collect(),
        ));
    }

    // A paged image pays one page-table lookup per participating
    // sequence before any fragmented KV burst can be issued — real
    // metadata DDR traffic, not free bookkeeping.
    if image.is_paged() {
        ops.push(MemOp::meta(
            "kv_pt_read".into(),
            slots
                .iter()
                .map(|&(slot, _)| image.kv_page_table_read_burst(slot))
                .collect(),
        ));
    }

    for layer in 0..model.n_layers {
        let projs = image.layer_projections(layer);
        let find = |name: &str| {
            projs
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("projection {name} missing"))
        };

        // Pre-attention RMSNorm exposes before Q in the coarse pipeline.
        // Sequences with no history have no kv_read op to carry their
        // softmax, so it serializes here instead.
        let mut qkv = MemOp::fanned(
            format!("L{layer}.qkv"),
            vec![find("wq").burst(), find("wk").burst(), find("wv").burst()],
            fanout,
        );
        if mode == PipelineMode::Coarse {
            qkv.exposed_misc = (rmsnorm + rope_all + quant_all) * b
                + slots
                    .iter()
                    .filter(|&&(_, ctx)| ctx == 0)
                    .map(|&(_, ctx)| softmax_all(ctx))
                    .sum::<u64>();
        }
        ops.push(qkv);

        // KV history reads (the attention DOT and weighted-value sums):
        // one stream per sequence, each over its own cache region at its
        // own length.
        for &(slot, ctx) in slots {
            if ctx == 0 {
                continue;
            }
            let mut bursts = image.kv_read_bursts_seq(layer, false, ctx, slot);
            bursts.extend(image.kv_read_bursts_seq(layer, true, ctx, slot));
            let mut kv_read = MemOp::new(format!("L{layer}.kv_read"), bursts);
            if mode == PipelineMode::Coarse {
                kv_read.exposed_misc = softmax_all(ctx);
            }
            ops.push(kv_read);
        }

        // Current tokens' KV write-backs (codes; metadata amortized).
        for &(slot, ctx) in slots {
            ops.push(MemOp::new(
                format!("L{layer}.kv_write"),
                vec![
                    image.kv_write_burst_seq(layer, false, ctx, slot),
                    image.kv_write_burst_seq(layer, true, ctx, slot),
                ],
            ));
        }

        ops.push(MemOp::fanned(
            format!("L{layer}.wo"),
            vec![find("wo").burst()],
            fanout,
        ));

        let mut mlp = MemOp::fanned(
            format!("L{layer}.mlp"),
            vec![
                find("w_gate").burst(),
                find("w_up").burst(),
                find("w_down").burst(),
            ],
            fanout,
        );
        if mode == PipelineMode::Coarse {
            mlp.exposed_misc = (rmsnorm + silu) * b;
        }
        ops.push(mlp);
    }

    // Scale-zero FIFO flush: a sequence crossing a 16-token window
    // boundary this step writes one beat per stream into its own
    // metadata block. In a ragged step only the crossing sequences pay.
    let streams = model.n_layers * model.n_kv_heads * 2;
    let flush_bursts: Vec<BurstDescriptor> = slots
        .iter()
        .filter(|&&(_, ctx)| (ctx + 1).is_multiple_of(16))
        .flat_map(|&(slot, ctx)| {
            let window = (ctx as u64 + 1) / 16 - 1;
            (0..streams).map(move |s| image.kv_meta_write_burst_seq(s, window, slot))
        })
        .collect();
    if !flush_bursts.is_empty() {
        ops.push(MemOp::new("kv_meta_flush".into(), flush_bursts));
    }

    // A sequence whose write-back lands on a fresh page appends one
    // page-table entry — the one-beat allocation cost of on-demand
    // paging, paid exactly when a page boundary is crossed.
    if let Some(pt) = image.page_tokens() {
        let pt_bursts: Vec<BurstDescriptor> = slots
            .iter()
            .filter(|&&(_, ctx)| ctx.is_multiple_of(pt))
            .map(|&(slot, ctx)| image.kv_page_table_write_burst(slot, ctx / pt))
            .collect();
        if !pt_bursts.is_empty() {
            ops.push(MemOp::meta("kv_pt_write".into(), pt_bursts));
        }
    }

    // Only the stage owning the head prices a logits pass.
    if image.owns_head() {
        let mut head = MemOp::fanned("lm_head".into(), vec![image.lm_head().burst()], fanout);
        if mode == PipelineMode::Coarse {
            head.exposed_misc = rmsnorm * b;
        }
        ops.push(head);
    }

    TokenSchedule {
        ops,
        ctx: slots.iter().map(|&(_, ctx)| ctx).max().unwrap_or(0),
        batch,
        slots: slots.to_vec(),
    }
}

/// One contiguous span of a sequence's prompt processed in a single
/// chunked-prefill step: tokens `start .. start + len` of the sequence
/// occupying KV slot `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefillChunk {
    /// KV slot the sequence occupies.
    pub slot: usize,
    /// First prompt position this chunk covers (tokens `0..start` are
    /// already cached from earlier chunks).
    pub start: usize,
    /// Tokens in this chunk (> 0).
    pub len: usize,
}

/// Builds the schedule for one chunked-prefill step: each weight stream
/// is fetched **once** and its compute fanned out across every prompt
/// token of every chunk (`fanout = Σ len`), the defining win of prefill
/// over token-by-token decode. Per chunk the step reads that sequence's
/// cached history `[0, start)` once per layer (the chunk's own K/V stay
/// on-chip and never round-trip through DDR), writes back `len` new KV
/// positions, and flushes the scale-zero metadata of every 16-token
/// window the chunk completes. Only one LM-head pass per *chunk* is
/// scheduled — prefill discards intermediate logits.
///
/// # Panics
///
/// Panics if `chunks` is empty, a chunk is empty, a slot repeats or lies
/// beyond `image.batch()`, or `start + len` exceeds
/// `image.ctx_capacity()`.
pub fn chunked_prefill_schedule(
    image: &ModelImage,
    chunks: &[PrefillChunk],
    mode: PipelineMode,
) -> TokenSchedule {
    assert!(!chunks.is_empty(), "prefill needs at least one chunk");
    for (i, c) in chunks.iter().enumerate() {
        assert!(c.len > 0, "prefill chunk must cover at least one token");
        assert!(
            c.start + c.len <= image.ctx_capacity(),
            "context beyond image capacity"
        );
        assert!(
            c.slot < image.batch(),
            "batch beyond image batch provisioning"
        );
        assert!(
            !chunks[..i].iter().any(|p| p.slot == c.slot),
            "duplicate slot in prefill schedule"
        );
    }
    let model = image.model();
    let d = model.d_model;
    let hd = model.head_dim();
    let heads = model.n_heads;
    let total: usize = chunks.iter().map(|c| c.len).sum();
    let t = total as u64;
    let fanout = total as u32;
    let head_fanout = chunks.len() as u32;
    let mut ops: Vec<MemOp> = Vec::with_capacity(model.n_layers * (4 + 2 * chunks.len()) + 2);

    let rmsnorm = 2 * d as u64;
    let rope_all = (heads + model.n_kv_heads) as u64 * hd as u64;
    // Token at position p attends to p + 1 keys; sum over the chunk.
    let softmax_chunk = |c: &PrefillChunk| {
        (c.start..c.start + c.len)
            .map(|p| 3 * (p as u64 + 1) * heads as u64)
            .sum::<u64>()
    };
    let quant_all = 2 * 2 * model.kv_dim() as u64;
    let silu = model.d_ff as u64;

    // Every prompt token fetches its embedding row (first stage only —
    // later shards receive hidden states over the interconnect).
    if image.owns_embedding() {
        ops.push(MemOp::new(
            "embedding".into(),
            chunks
                .iter()
                .flat_map(|c| (0..c.len).map(|_| image.embedding_row_burst(0)))
                .collect(),
        ));
    }

    // Paged images: one page-table lookup per chunk before its
    // fragmented history reads and page-mapped writes can be issued.
    if image.is_paged() {
        ops.push(MemOp::meta(
            "kv_pt_read".into(),
            chunks
                .iter()
                .map(|c| image.kv_page_table_read_burst(c.slot))
                .collect(),
        ));
    }

    for layer in 0..model.n_layers {
        let projs = image.layer_projections(layer);
        let find = |name: &str| {
            projs
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("projection {name} missing"))
        };

        let mut qkv = MemOp::fanned(
            format!("L{layer}.qkv"),
            vec![find("wq").burst(), find("wk").burst(), find("wv").burst()],
            fanout,
        );
        if mode == PipelineMode::Coarse {
            qkv.exposed_misc = (rmsnorm + rope_all + quant_all) * t
                + chunks
                    .iter()
                    .filter(|c| c.start == 0)
                    .map(softmax_chunk)
                    .sum::<u64>();
        }
        ops.push(qkv);

        // Each chunk reads its sequence's cached history [0, start) once
        // per layer; attention among the chunk's own tokens uses the K/V
        // still resident on-chip.
        for c in chunks {
            if c.start == 0 {
                continue;
            }
            let mut bursts = image.kv_read_bursts_seq(layer, false, c.start, c.slot);
            bursts.extend(image.kv_read_bursts_seq(layer, true, c.start, c.slot));
            let mut kv_read = MemOp::new(format!("L{layer}.kv_read"), bursts);
            kv_read.compute_fanout = c.len as u32;
            if mode == PipelineMode::Coarse {
                kv_read.exposed_misc = softmax_chunk(c);
            }
            ops.push(kv_read);
        }

        // Every chunk token's K/V codes are written back.
        for c in chunks {
            ops.push(MemOp::new(
                format!("L{layer}.kv_write"),
                (c.start..c.start + c.len)
                    .flat_map(|p| {
                        [
                            image.kv_write_burst_seq(layer, false, p, c.slot),
                            image.kv_write_burst_seq(layer, true, p, c.slot),
                        ]
                    })
                    .collect(),
            ));
        }

        ops.push(MemOp::fanned(
            format!("L{layer}.wo"),
            vec![find("wo").burst()],
            fanout,
        ));

        let mut mlp = MemOp::fanned(
            format!("L{layer}.mlp"),
            vec![
                find("w_gate").burst(),
                find("w_up").burst(),
                find("w_down").burst(),
            ],
            fanout,
        );
        if mode == PipelineMode::Coarse {
            mlp.exposed_misc = (rmsnorm + silu) * t;
        }
        ops.push(mlp);
    }

    // Metadata flush for every 16-token window a chunk completes.
    let streams = model.n_layers * model.n_kv_heads * 2;
    let flush_bursts: Vec<BurstDescriptor> = chunks
        .iter()
        .flat_map(|c| {
            (c.start..c.start + c.len)
                .filter(|p| (p + 1).is_multiple_of(16))
                .flat_map(move |p| {
                    let window = (p as u64 + 1) / 16 - 1;
                    (0..streams).map(move |s| image.kv_meta_write_burst_seq(s, window, c.slot))
                })
        })
        .collect();
    if !flush_bursts.is_empty() {
        ops.push(MemOp::new("kv_meta_flush".into(), flush_bursts));
    }

    // Page-table appends for every page boundary a chunk crosses.
    if let Some(pt) = image.page_tokens() {
        let pt_bursts: Vec<BurstDescriptor> = chunks
            .iter()
            .flat_map(|c| {
                (c.start..c.start + c.len)
                    .filter(|p| p.is_multiple_of(pt))
                    .map(move |p| image.kv_page_table_write_burst(c.slot, p / pt))
            })
            .collect();
        if !pt_bursts.is_empty() {
            ops.push(MemOp::meta("kv_pt_write".into(), pt_bursts));
        }
    }

    // Only each chunk's last token needs logits, and only on the stage
    // that owns the head.
    if image.owns_head() {
        let mut head = MemOp::fanned("lm_head".into(), vec![image.lm_head().burst()], head_fanout);
        if mode == PipelineMode::Coarse {
            head.exposed_misc = rmsnorm * chunks.len() as u64;
        }
        ops.push(head);
    }

    TokenSchedule {
        ops,
        ctx: chunks
            .iter()
            .map(|c| c.start + c.len - 1)
            .max()
            .unwrap_or(0),
        batch: total,
        slots: chunks
            .iter()
            .map(|c| (c.slot, c.start + c.len - 1))
            .collect(),
    }
}

/// One sequence's speculative verify window: `ctx` tokens are already
/// committed to the KV cache, a draft model proposed `drafted` tokens,
/// and the target verifies positions `ctx ..= ctx + drafted` in one
/// batched pass (the last committed token plus every draft). `accepted`
/// of the drafts survived greedy accept/reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecWindow {
    /// KV slot the sequence occupies.
    pub slot: usize,
    /// Tokens already committed (the first verify position).
    pub ctx: usize,
    /// Draft tokens proposed (K); zero degenerates to a plain decode
    /// step.
    pub drafted: usize,
    /// Drafts accepted (≤ `drafted`).
    pub accepted: usize,
}

impl SpecWindow {
    /// Tokens the window commits: the accepted drafts plus the bonus
    /// token the target emits at the first non-accepted position.
    pub fn committed(&self) -> usize {
        self.accepted + 1
    }

    /// First position past the committed prefix — the rollback
    /// boundary. Positions `keep() ..= end()` wrote KV that must be
    /// invalidated.
    pub fn keep(&self) -> usize {
        self.ctx + self.accepted + 1
    }

    /// Last verify position.
    pub fn end(&self) -> usize {
        self.ctx + self.drafted
    }
}

/// Builds the schedule for one speculative verify step over `windows`.
///
/// The verify pass is memory-wise a chunked prefill over each window's
/// `drafted + 1` positions — every weight stream is fetched **once**
/// with `compute_fanout = Σ (K+1)` ([`chunked_prefill_schedule`]'s
/// amortization applied to the decode loop), each window reads its
/// cached history `[0, ctx)` once per layer, and every verify position
/// writes its KV back. Two things differ from prefill:
///
/// * **every** verify position needs logits (each one is compared
///   against a draft), so the LM head fans out across all Σ (K+1)
///   positions instead of once per chunk;
/// * the rejected suffix `keep() ..= end()` must be *rolled back*:
///   every 16-token scale-zero window it flushed is re-written to
///   invalidate the dead packs (`kv_meta_rollback`), and — on a paged
///   image — every page-table entry it appended is truncated away
///   (`kv_pt_rollback`). Both are metadata-only DDR traffic, priced
///   like their forward twins (`kv_meta_flush` / `kv_pt_write`) but
///   feeding no VPU compute.
///
/// The returned schedule's `batch` is the number of tokens the step
/// *commits* (Σ accepted + 1 — accepted drafts plus one bonus token per
/// window), so pricing it yields honest tokens-per-second: rejected
/// positions cost bytes and cycles but produce nothing.
///
/// # Panics
///
/// Panics if `windows` is empty, a window has `accepted > drafted`, a
/// slot repeats or lies beyond `image.batch()`, or `ctx + drafted`
/// reaches `image.ctx_capacity()`.
pub fn speculative_verify_schedule(
    image: &ModelImage,
    windows: &[SpecWindow],
    mode: PipelineMode,
) -> TokenSchedule {
    assert!(!windows.is_empty(), "verify step needs at least one window");
    for w in windows {
        assert!(
            w.accepted <= w.drafted,
            "cannot accept more drafts than were proposed"
        );
    }
    let chunks: Vec<PrefillChunk> = windows
        .iter()
        .map(|w| PrefillChunk {
            slot: w.slot,
            start: w.ctx,
            len: w.drafted + 1,
        })
        .collect();
    let mut sched = chunked_prefill_schedule(image, &chunks, mode);

    let model = image.model();
    let total: usize = windows.iter().map(|w| w.drafted + 1).sum();
    // Unlike prefill, every verify position's logits are consumed by
    // accept/reject — the head's compute fans across all of them.
    if let Some(head) = sched.ops.iter_mut().find(|o| o.label == "lm_head") {
        head.compute_fanout = total as u32;
        if mode == PipelineMode::Coarse {
            head.exposed_misc = 2 * model.d_model as u64 * total as u64;
        }
    }

    // Rollback: re-write every scale-zero window the rejected suffix
    // flushed, invalidating the dead packs in place.
    let streams = model.n_layers * model.n_kv_heads * 2;
    let meta_bursts: Vec<BurstDescriptor> = windows
        .iter()
        .flat_map(|w| {
            (w.keep()..=w.end())
                .filter(|p| (p + 1).is_multiple_of(16))
                .flat_map(move |p| {
                    let window = (p as u64 + 1) / 16 - 1;
                    (0..streams).map(move |s| image.kv_meta_write_burst_seq(s, window, w.slot))
                })
        })
        .collect();
    if !meta_bursts.is_empty() {
        // Write bursts carry no VPU beats, so `MemOp::new` prices this
        // as pure metadata traffic — same shape as `kv_meta_flush`.
        sched
            .ops
            .push(MemOp::new("kv_meta_rollback".into(), meta_bursts));
    }

    // Rollback on a paged image: truncate every page-table entry the
    // rejected suffix appended (the allocator hands the pages back).
    if let Some(pt) = image.page_tokens() {
        let pt_bursts: Vec<BurstDescriptor> = windows
            .iter()
            .flat_map(|w| {
                (w.keep()..=w.end())
                    .filter(|p| p.is_multiple_of(pt))
                    .map(move |p| image.kv_page_table_write_burst(w.slot, p / pt))
            })
            .collect();
        if !pt_bursts.is_empty() {
            sched
                .ops
                .push(MemOp::meta("kv_pt_rollback".into(), pt_bursts));
        }
    }

    sched.batch = windows.iter().map(SpecWindow::committed).sum();
    sched.slots = windows
        .iter()
        .map(|w| (w.slot, w.ctx + w.accepted))
        .collect();
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use zllm_layout::weight::WeightFormat;
    use zllm_model::ModelConfig;

    fn image() -> ModelImage {
        ModelImage::build(&ModelConfig::test_small(), WeightFormat::kv260(), 32)
            .expect("test model fits")
    }

    fn batched_image(batch: usize) -> ModelImage {
        ModelImage::build_batched(&ModelConfig::test_small(), WeightFormat::kv260(), 32, batch)
            .expect("test model fits")
    }

    /// Bytes split into the two halves of the batched memory model:
    /// `(shared weight-stream bytes, per-sequence bytes)`.
    fn split_bytes(sched: &TokenSchedule) -> (u64, u64) {
        let per_seq: u64 = sched
            .ops
            .iter()
            .filter(|o| {
                o.label.contains("kv_read")
                    || o.label.contains("kv_write")
                    || o.label == "kv_meta_flush"
                    || o.label == "embedding"
            })
            .map(MemOp::bytes)
            .sum();
        (sched.total_bytes() - per_seq, per_seq)
    }

    #[test]
    fn schedule_covers_all_weights() {
        let image = image();
        let sched = token_schedule(&image, 4, PipelineMode::Fused);
        // Every projection byte appears exactly once.
        let weight_bytes: u64 = image.weight_stream_bytes();
        let sched_weight_bytes: u64 = sched
            .ops
            .iter()
            .filter(|o| {
                o.label.contains(".qkv")
                    || o.label.contains(".wo")
                    || o.label.contains(".mlp")
                    || o.label == "lm_head"
            })
            .map(MemOp::bytes)
            .sum();
        assert_eq!(sched_weight_bytes, weight_bytes);
    }

    #[test]
    fn fused_mode_exposes_nothing() {
        let sched = token_schedule(&image(), 4, PipelineMode::Fused);
        assert_eq!(sched.total_exposed_misc(), 0);
    }

    #[test]
    fn coarse_mode_exposure_grows_with_context() {
        let image = image();
        let short = token_schedule(&image, 2, PipelineMode::Coarse);
        let long = token_schedule(&image, 30, PipelineMode::Coarse);
        assert!(short.total_exposed_misc() > 0);
        assert!(long.total_exposed_misc() > short.total_exposed_misc());
    }

    #[test]
    fn kv_reads_scale_with_context() {
        let image = image();
        let b4 = token_schedule(&image, 4, PipelineMode::Fused).total_bytes();
        let b16 = token_schedule(&image, 16, PipelineMode::Fused).total_bytes();
        assert!(b16 > b4);
    }

    #[test]
    fn zero_context_schedules_no_history_reads() {
        let sched = token_schedule(&image(), 0, PipelineMode::Fused);
        assert!(!sched.ops.iter().any(|o| o.label.contains("kv_read")));
        // But KV write-back still happens.
        assert!(sched.ops.iter().any(|o| o.label.contains("kv_write")));
    }

    #[test]
    fn meta_flush_every_16_tokens() {
        let image = image();
        let s15 = token_schedule(&image, 15, PipelineMode::Fused);
        assert!(s15.ops.iter().any(|o| o.label == "kv_meta_flush"));
        let s14 = token_schedule(&image, 14, PipelineMode::Fused);
        assert!(!s14.ops.iter().any(|o| o.label == "kv_meta_flush"));
    }

    #[test]
    fn writes_do_not_count_as_vpu_beats() {
        let sched = token_schedule(&image(), 4, PipelineMode::Fused);
        let write_op = sched
            .ops
            .iter()
            .find(|o| o.label.contains("kv_write"))
            .expect("has write op");
        assert_eq!(write_op.vpu_beats, 0);
        assert!(write_op.bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "context beyond image capacity")]
    fn capacity_checked() {
        let image = image();
        let _ = token_schedule(&image, 32, PipelineMode::Fused);
    }

    #[test]
    #[should_panic(expected = "batch beyond image batch provisioning")]
    fn batch_provisioning_checked() {
        let image = image();
        let _ = batched_token_schedule(&image, 4, 2, PipelineMode::Fused);
    }

    #[test]
    fn batch_of_one_is_the_single_sequence_schedule() {
        let image = batched_image(4);
        for mode in [PipelineMode::Fused, PipelineMode::Coarse] {
            for ctx in [0, 4, 15, 31] {
                let single = token_schedule(&image, ctx, mode);
                let batched = batched_token_schedule(&image, ctx, 1, mode);
                assert_eq!(single.batch, 1);
                assert_eq!(single.ops.len(), batched.ops.len());
                for (a, b) in single.ops.iter().zip(&batched.ops) {
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.bytes(), b.bytes());
                    assert_eq!(a.vpu_beats, b.vpu_beats);
                    assert_eq!(a.exposed_misc, b.exposed_misc);
                    assert_eq!(a.compute_fanout, 1);
                    assert_eq!(b.compute_fanout, 1);
                    assert_eq!(a.bursts.len(), b.bursts.len());
                    for (ba, bb) in a.bursts.iter().zip(&b.bursts) {
                        assert_eq!(ba.addr, bb.addr);
                        assert_eq!(ba.beats, bb.beats);
                        assert_eq!(ba.write, bb.write);
                    }
                }
            }
        }
    }

    #[test]
    fn weight_bytes_amortize_kv_bytes_scale() {
        let image = batched_image(8);
        let (w1, s1) = split_bytes(&batched_token_schedule(&image, 16, 1, PipelineMode::Fused));
        for batch in [2usize, 4, 8] {
            let sched = batched_token_schedule(&image, 16, batch, PipelineMode::Fused);
            let (w, s) = split_bytes(&sched);
            assert_eq!(w, w1, "weight bytes must not scale with batch");
            assert_eq!(s, s1 * batch as u64, "per-seq bytes must scale linearly");
        }
    }

    #[test]
    fn shared_streams_fan_out_per_sequence_streams_do_not() {
        let sched = batched_token_schedule(&batched_image(4), 16, 4, PipelineMode::Fused);
        for op in &sched.ops {
            let per_seq =
                op.label.contains("kv_") || op.label == "kv_meta_flush" || op.label == "embedding";
            let expect = if per_seq { 1 } else { 4 };
            assert_eq!(op.compute_fanout, expect, "fanout of {}", op.label);
        }
    }

    #[test]
    fn uniform_ragged_schedule_matches_batched() {
        let image = batched_image(4);
        for mode in [PipelineMode::Fused, PipelineMode::Coarse] {
            for ctx in [0, 4, 15, 31] {
                let batched = batched_token_schedule(&image, ctx, 4, mode);
                let slots: Vec<(usize, usize)> = (0..4).map(|s| (s, ctx)).collect();
                let ragged = ragged_token_schedule(&image, &slots, mode);
                assert_eq!(batched.ops.len(), ragged.ops.len());
                assert_eq!(batched.slots, ragged.slots);
                for (a, b) in batched.ops.iter().zip(&ragged.ops) {
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.bytes(), b.bytes());
                    assert_eq!(a.vpu_beats, b.vpu_beats);
                    assert_eq!(a.exposed_misc, b.exposed_misc);
                    assert_eq!(a.compute_fanout, b.compute_fanout);
                }
            }
        }
    }

    #[test]
    fn ragged_per_sequence_bytes_sum_per_slot_costs() {
        let image = batched_image(4);
        let slots = [(0usize, 3usize), (1, 17), (3, 0)];
        let sched = ragged_token_schedule(&image, &slots, PipelineMode::Fused);
        let (shared, per_seq) = split_bytes(&sched);
        let (shared1, _) = split_bytes(&batched_token_schedule(&image, 3, 1, PipelineMode::Fused));
        assert_eq!(shared, shared1, "weight bytes independent of raggedness");
        let expect: u64 = slots
            .iter()
            .map(|&(_, ctx)| {
                let s = batched_token_schedule(&image, ctx, 1, PipelineMode::Fused);
                split_bytes(&s).1
            })
            .sum();
        assert_eq!(per_seq, expect, "each sequence pays its own KV traffic");
    }

    #[test]
    fn ragged_meta_flush_only_for_crossing_sequences() {
        let image = batched_image(4);
        // Slot 1 crosses the 16-token window; slot 0 does not.
        let sched = ragged_token_schedule(&image, &[(0, 4), (1, 15)], PipelineMode::Fused);
        let flush = sched
            .ops
            .iter()
            .find(|o| o.label == "kv_meta_flush")
            .expect("crossing sequence flushes");
        let single = token_schedule(&image, 15, PipelineMode::Fused);
        let single_flush = single
            .ops
            .iter()
            .find(|o| o.label == "kv_meta_flush")
            .unwrap();
        assert_eq!(flush.bytes(), single_flush.bytes());
        let none = ragged_token_schedule(&image, &[(0, 4), (1, 14)], PipelineMode::Fused);
        assert!(!none.ops.iter().any(|o| o.label == "kv_meta_flush"));
    }

    #[test]
    #[should_panic(expected = "duplicate slot in ragged schedule")]
    fn ragged_rejects_duplicate_slots() {
        let image = batched_image(4);
        let _ = ragged_token_schedule(&image, &[(2, 4), (2, 9)], PipelineMode::Fused);
    }

    #[test]
    fn prefill_fans_weights_across_prompt_tokens() {
        let image = batched_image(2);
        let chunks = [
            PrefillChunk {
                slot: 0,
                start: 0,
                len: 8,
            },
            PrefillChunk {
                slot: 1,
                start: 4,
                len: 4,
            },
        ];
        let sched = chunked_prefill_schedule(&image, &chunks, PipelineMode::Fused);
        assert_eq!(sched.batch, 12);
        // Weight streams appear once, fanned to the 12 prompt tokens.
        let qkv = sched.ops.iter().find(|o| o.label == "L0.qkv").unwrap();
        assert_eq!(qkv.compute_fanout, 12);
        let single = token_schedule(&image, 0, PipelineMode::Fused);
        let sq = single.ops.iter().find(|o| o.label == "L0.qkv").unwrap();
        assert_eq!(qkv.bytes(), sq.bytes(), "weights fetched once per step");
        // LM head runs once per chunk, not per token.
        let head = sched.ops.iter().find(|o| o.label == "lm_head").unwrap();
        assert_eq!(head.compute_fanout, 2);
        // Only slot 1 reads history (slot 0 starts from scratch).
        let reads: Vec<_> = sched
            .ops
            .iter()
            .filter(|o| o.label == "L0.kv_read")
            .collect();
        assert_eq!(reads.len(), 1);
        // Every chunk token writes its KV back.
        let writes: u64 = sched
            .ops
            .iter()
            .filter(|o| o.label == "L0.kv_write")
            .map(|o| o.bursts.len() as u64)
            .sum();
        assert_eq!(writes, 2 * 12);
    }

    #[test]
    fn prefill_chunks_of_one_token_match_decode_bytes() {
        // A one-token chunk at position p moves the same bytes as the
        // decode step at ctx = p, modulo the LM head fanout.
        let image = batched_image(2);
        let chunk = [PrefillChunk {
            slot: 0,
            start: 9,
            len: 1,
        }];
        let pre = chunked_prefill_schedule(&image, &chunk, PipelineMode::Fused);
        let dec = token_schedule(&image, 9, PipelineMode::Fused);
        assert_eq!(pre.total_bytes(), dec.total_bytes());
        assert_eq!(pre.batch, 1);
    }

    #[test]
    #[should_panic(expected = "context beyond image capacity")]
    fn prefill_capacity_checked() {
        let image = batched_image(2);
        let _ = chunked_prefill_schedule(
            &image,
            &[PrefillChunk {
                slot: 0,
                start: 16,
                len: 17,
            }],
            PipelineMode::Fused,
        );
    }

    #[test]
    fn batched_kv_reads_touch_distinct_regions() {
        let image = batched_image(2);
        let sched = batched_token_schedule(&image, 8, 2, PipelineMode::Fused);
        let reads: Vec<_> = sched
            .ops
            .iter()
            .filter(|o| o.label == "L0.kv_read")
            .collect();
        assert_eq!(reads.len(), 2);
        assert_ne!(reads[0].bursts[0].addr, reads[1].bursts[0].addr);
        assert_eq!(reads[0].bytes(), reads[1].bytes());
    }

    fn paged_image(batch: usize) -> ModelImage {
        ModelImage::build_paged(
            &ModelConfig::test_small(),
            WeightFormat::kv260(),
            32,
            batch,
            16,
        )
        .expect("test model fits")
    }

    /// Bytes in the page-table metadata ops alone.
    fn pt_bytes(sched: &TokenSchedule) -> u64 {
        sched
            .ops
            .iter()
            .filter(|o| o.label.starts_with("kv_pt_"))
            .map(MemOp::bytes)
            .sum()
    }

    #[test]
    fn paged_schedule_adds_only_page_table_traffic() {
        let flat = batched_image(4);
        let paged = paged_image(4);
        let slots = [(0usize, 3usize), (1, 17), (2, 16), (3, 0)];
        for mode in [PipelineMode::Fused, PipelineMode::Coarse] {
            let f = ragged_token_schedule(&flat, &slots, mode);
            let p = ragged_token_schedule(&paged, &slots, mode);
            // The same KV/weight bytes move; paging adds metadata bursts.
            assert_eq!(p.total_bytes() - pt_bytes(&p), f.total_bytes());
            assert!(pt_bytes(&p) > 0);
            assert_eq!(pt_bytes(&f), 0, "contiguous schedules have no tables");
            // The compute side is untouched: page tables feed no VPU.
            assert_eq!(p.total_vpu_beats(), f.total_vpu_beats());
            assert_eq!(p.total_exposed_misc(), f.total_exposed_misc());
        }
        // One lookup per sequence; appends only for boundary-crossing
        // writes (ctx 16 starts logical page 1, ctx 0 page 0).
        let p = ragged_token_schedule(&paged, &slots, PipelineMode::Fused);
        let read = p.ops.iter().find(|o| o.label == "kv_pt_read").unwrap();
        assert_eq!(read.bursts.len(), 4);
        let write = p.ops.iter().find(|o| o.label == "kv_pt_write").unwrap();
        assert_eq!(write.bursts.len(), 2);
        let none = ragged_token_schedule(&paged, &[(0, 3), (1, 17)], PipelineMode::Fused);
        assert!(!none.ops.iter().any(|o| o.label == "kv_pt_write"));
    }

    #[test]
    fn paged_reads_fragment_into_per_page_bursts() {
        let paged = paged_image(2);
        let sched = ragged_token_schedule(&paged, &[(0, 31)], PipelineMode::Fused);
        let read = sched.ops.iter().find(|o| o.label == "L0.kv_read").unwrap();
        // 31 tokens span two 16-token pages, K and V each: 4 bursts.
        assert_eq!(read.bursts.len(), 4);
        let flat = batched_image(2);
        let fsched = ragged_token_schedule(&flat, &[(0, 31)], PipelineMode::Fused);
        let fread = fsched.ops.iter().find(|o| o.label == "L0.kv_read").unwrap();
        assert_eq!(fread.bursts.len(), 2);
        assert_eq!(read.bytes(), fread.bytes());
        assert_eq!(read.vpu_beats, fread.vpu_beats);
    }

    #[test]
    fn paged_prefill_prices_page_table_appends() {
        let flat = batched_image(2);
        let paged = paged_image(2);
        let chunks = [
            PrefillChunk {
                slot: 0,
                start: 0,
                len: 20,
            },
            PrefillChunk {
                slot: 1,
                start: 16,
                len: 8,
            },
        ];
        let f = chunked_prefill_schedule(&flat, &chunks, PipelineMode::Fused);
        let p = chunked_prefill_schedule(&paged, &chunks, PipelineMode::Fused);
        assert_eq!(p.total_bytes() - pt_bytes(&p), f.total_bytes());
        // Chunk 0 crosses positions 0 and 16 (2 appends); chunk 1
        // crosses position 16 (1 append).
        let write = p.ops.iter().find(|o| o.label == "kv_pt_write").unwrap();
        assert_eq!(write.bursts.len(), 3);
        let read = p.ops.iter().find(|o| o.label == "kv_pt_read").unwrap();
        assert_eq!(read.bursts.len(), 2, "one lookup per chunk");
    }

    #[test]
    fn spec_window_of_zero_drafts_matches_decode_bytes() {
        // drafted = 0, accepted = 0: the verify window is one position —
        // a plain decode step, byte for byte.
        let image = batched_image(2);
        let w = [SpecWindow {
            slot: 0,
            ctx: 9,
            drafted: 0,
            accepted: 0,
        }];
        let spec = speculative_verify_schedule(&image, &w, PipelineMode::Fused);
        let dec = token_schedule(&image, 9, PipelineMode::Fused);
        assert_eq!(spec.total_bytes(), dec.total_bytes());
        assert_eq!(spec.batch, 1);
        assert_eq!(spec.slots, vec![(0, 9)]);
        assert!(!spec.ops.iter().any(|o| o.label.ends_with("_rollback")));
    }

    #[test]
    fn spec_verify_streams_weights_once_with_k_plus_1_fanout() {
        let image = batched_image(2);
        let w = [SpecWindow {
            slot: 0,
            ctx: 8,
            drafted: 4,
            accepted: 2,
        }];
        let spec = speculative_verify_schedule(&image, &w, PipelineMode::Fused);
        // The dense streams appear once, at the bytes of a single decode
        // step, with compute fanned across the K + 1 verify positions.
        let qkv = spec.ops.iter().find(|o| o.label == "L0.qkv").unwrap();
        assert_eq!(qkv.compute_fanout, 5);
        let single = token_schedule(&image, 8, PipelineMode::Fused);
        let sq = single.ops.iter().find(|o| o.label == "L0.qkv").unwrap();
        assert_eq!(qkv.bytes(), sq.bytes(), "weights fetched once per window");
        // Unlike prefill, every verify position needs logits.
        let head = spec.ops.iter().find(|o| o.label == "lm_head").unwrap();
        assert_eq!(head.compute_fanout, 5);
        // The step commits accepted + 1 tokens, not K + 1.
        assert_eq!(spec.batch, 3);
        assert_eq!(spec.slots, vec![(0, 10)]);
        // Coarse mode exposes one final RMSNorm per verify position.
        let coarse = speculative_verify_schedule(&image, &w, PipelineMode::Coarse);
        let head = coarse.ops.iter().find(|o| o.label == "lm_head").unwrap();
        assert_eq!(
            head.exposed_misc,
            2 * image.model().d_model as u64 * 5,
            "head norm exposed per verify position"
        );
    }

    #[test]
    fn spec_multi_window_fans_weights_across_all_verify_positions() {
        let image = batched_image(2);
        let ws = [
            SpecWindow {
                slot: 0,
                ctx: 4,
                drafted: 3,
                accepted: 3,
            },
            SpecWindow {
                slot: 1,
                ctx: 9,
                drafted: 2,
                accepted: 0,
            },
        ];
        let spec = speculative_verify_schedule(&image, &ws, PipelineMode::Fused);
        let qkv = spec.ops.iter().find(|o| o.label == "L0.qkv").unwrap();
        assert_eq!(qkv.compute_fanout, 4 + 3);
        let head = spec.ops.iter().find(|o| o.label == "lm_head").unwrap();
        assert_eq!(head.compute_fanout, 4 + 3);
        assert_eq!(spec.batch, 4 + 1, "committed = Σ (accepted + 1)");
        assert_eq!(spec.slots, vec![(0, 7), (1, 9)]);
    }

    #[test]
    fn spec_rollback_prices_rejected_meta_windows() {
        let image = batched_image(2);
        // Verify positions 10..=18; keep = 12, so the rejected span
        // 12..=18 contains the window flush at p = 15 — one stream set
        // of invalidation bursts comes back out.
        let w = [SpecWindow {
            slot: 0,
            ctx: 10,
            drafted: 8,
            accepted: 1,
        }];
        let spec = speculative_verify_schedule(&image, &w, PipelineMode::Fused);
        let rb = spec
            .ops
            .iter()
            .find(|o| o.label == "kv_meta_rollback")
            .expect("rejected window flush is rolled back");
        let m = image.model();
        assert_eq!(rb.bursts.len(), m.n_layers * m.n_kv_heads * 2);
        assert_eq!(rb.vpu_beats, 0, "metadata feeds no compute");
        // Fully accepted windows roll nothing back.
        let all = [SpecWindow {
            slot: 0,
            ctx: 10,
            drafted: 8,
            accepted: 8,
        }];
        let spec = speculative_verify_schedule(&image, &all, PipelineMode::Fused);
        assert!(!spec.ops.iter().any(|o| o.label.ends_with("_rollback")));
        // A rejected span that crosses no flush boundary costs nothing.
        let cheap = [SpecWindow {
            slot: 0,
            ctx: 16,
            drafted: 8,
            accepted: 2,
        }];
        let spec = speculative_verify_schedule(&image, &cheap, PipelineMode::Fused);
        assert!(!spec.ops.iter().any(|o| o.label == "kv_meta_rollback"));
    }

    #[test]
    fn spec_rollback_prices_page_table_truncation_only_when_paged() {
        let flat = batched_image(2);
        let paged = paged_image(2);
        // Verify positions 14..=22 append the page-table entry at
        // p = 16; rejecting everything past position 14 truncates it.
        let w = [SpecWindow {
            slot: 0,
            ctx: 14,
            drafted: 8,
            accepted: 0,
        }];
        let p = speculative_verify_schedule(&paged, &w, PipelineMode::Fused);
        let rb = p
            .ops
            .iter()
            .find(|o| o.label == "kv_pt_rollback")
            .expect("paged rollback truncates the table");
        assert_eq!(rb.bursts.len(), 1);
        assert_eq!(rb.vpu_beats, 0);
        let f = speculative_verify_schedule(&flat, &w, PipelineMode::Fused);
        assert!(!f.ops.iter().any(|o| o.label == "kv_pt_rollback"));
        // Modulo rollback + page-table metadata, both images move the
        // same verify bytes.
        let meta: u64 = p
            .ops
            .iter()
            .filter(|o| o.label.starts_with("kv_pt_") || o.label == "kv_meta_rollback")
            .map(MemOp::bytes)
            .sum();
        let f_meta: u64 = f
            .ops
            .iter()
            .filter(|o| o.label == "kv_meta_rollback")
            .map(MemOp::bytes)
            .sum();
        assert_eq!(p.total_bytes() - meta, f.total_bytes() - f_meta);
    }

    #[test]
    #[should_panic(expected = "cannot accept more drafts")]
    fn spec_rejects_overaccepted_window() {
        let image = batched_image(2);
        let _ = speculative_verify_schedule(
            &image,
            &[SpecWindow {
                slot: 0,
                ctx: 0,
                drafted: 2,
                accepted: 3,
            }],
            PipelineMode::Fused,
        );
    }

    #[test]
    fn shard_schedules_partition_full_ddr_traffic() {
        let cfg = ModelConfig::test_small();
        let full = ModelImage::build_batched(&cfg, WeightFormat::kv260(), 32, 2).expect("fits");
        let mid = cfg.n_layers / 2;
        let first =
            ModelImage::build_shard(&cfg, WeightFormat::kv260(), 32, 2, 0..mid).expect("fits");
        let last = ModelImage::build_shard(&cfg, WeightFormat::kv260(), 32, 2, mid..cfg.n_layers)
            .expect("fits");
        let slots = [(0usize, 15usize), (1, 7)];
        for mode in [PipelineMode::Fused, PipelineMode::Coarse] {
            let whole = ragged_token_schedule(&full, &slots, mode);
            let a = ragged_token_schedule(&first, &slots, mode);
            let b = ragged_token_schedule(&last, &slots, mode);
            // Every DDR byte of the single-board step lands on exactly
            // one shard: embedding on the first, head on the last, each
            // layer's weights/KV/metadata on its owner.
            assert_eq!(a.total_bytes() + b.total_bytes(), whole.total_bytes());
            assert!(a.ops.iter().any(|o| o.label == "embedding"));
            assert!(a.ops.iter().all(|o| o.label != "lm_head"));
            assert!(b.ops.iter().all(|o| o.label != "embedding"));
            assert!(b.ops.iter().any(|o| o.label == "lm_head"));
        }
        // Prefill conserves bytes across the split too.
        let chunks = [
            PrefillChunk {
                slot: 0,
                start: 0,
                len: 16,
            },
            PrefillChunk {
                slot: 1,
                start: 8,
                len: 8,
            },
        ];
        let whole = chunked_prefill_schedule(&full, &chunks, PipelineMode::Fused);
        let a = chunked_prefill_schedule(&first, &chunks, PipelineMode::Fused);
        let b = chunked_prefill_schedule(&last, &chunks, PipelineMode::Fused);
        assert_eq!(a.total_bytes() + b.total_bytes(), whole.total_bytes());
    }
}

#[cfg(all(test, feature = "proptest"))]
mod properties {
    use super::*;
    use proptest::prelude::*;
    use zllm_layout::weight::WeightFormat;
    use zllm_model::ModelConfig;

    fn split(sched: &TokenSchedule) -> (u64, u64) {
        let per_seq: u64 = sched
            .ops
            .iter()
            .filter(|o| {
                o.label.contains("kv_read")
                    || o.label.contains("kv_write")
                    || o.label == "kv_meta_flush"
                    || o.label == "embedding"
            })
            .map(MemOp::bytes)
            .sum();
        (sched.total_bytes() - per_seq, per_seq)
    }

    proptest! {
        /// Weight bytes are independent of B; per-sequence bytes (KV plus
        /// embedding rows) are exactly linear in B.
        #[test]
        fn batched_schedules_conserve_bytes(
            ctx in 0usize..32,
            batch in 1usize..=6,
            coarse in proptest::bool::ANY,
        ) {
            let mode = if coarse { PipelineMode::Coarse } else { PipelineMode::Fused };
            let image = ModelImage::build_batched(
                &ModelConfig::test_small(),
                WeightFormat::kv260(),
                32,
                6,
            )
            .expect("test model fits");
            let (w1, s1) = split(&batched_token_schedule(&image, ctx, 1, mode));
            let sched = batched_token_schedule(&image, ctx, batch, mode);
            let (w, s) = split(&sched);
            prop_assert_eq!(w, w1);
            prop_assert_eq!(s, s1 * batch as u64);
            prop_assert_eq!(sched.total_bytes(), w1 + s1 * batch as u64);
        }
    }
}
