//! The per-token memory/compute operation schedule.
//!
//! For each decoded token the MCU issues a fixed sequence of bursts:
//! the embedding row, then per layer the seven projections interleaved
//! with the KV-cache history reads and the current token's KV write-back,
//! then the LM head. Every operation carries its VPU beat count and — for
//! the coarse-pipeline baseline — the miscellaneous SPU cycles that would
//! be *exposed* without operator fusion (§V-A).

use crate::config::PipelineMode;
use crate::image::ModelImage;
use zllm_layout::BurstDescriptor;

/// One scheduled operation.
#[derive(Debug, Clone)]
pub struct MemOp {
    /// Human-readable label ("L3.w_gate", "L3.kv_read.K", …).
    pub label: String,
    /// The bursts this operation issues.
    pub bursts: Vec<BurstDescriptor>,
    /// Beats the VPU consumes (one per cycle).
    pub vpu_beats: u64,
    /// SPU cycles serialized after this op in the coarse pipeline
    /// (zero in the fused pipeline, where they hide under the next dense
    /// stream).
    pub exposed_misc: u64,
}

impl MemOp {
    fn new(label: String, bursts: Vec<BurstDescriptor>) -> MemOp {
        let vpu_beats = bursts
            .iter()
            .filter(|b| !b.write)
            .map(|b| b.beats as u64)
            .sum();
        MemOp {
            label,
            bursts,
            vpu_beats,
            exposed_misc: 0,
        }
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bursts.iter().map(BurstDescriptor::bytes).sum()
    }
}

/// The complete schedule of one decode step.
#[derive(Debug, Clone)]
pub struct TokenSchedule {
    /// Operations in issue order.
    pub ops: Vec<MemOp>,
    /// The context length this schedule serves.
    pub ctx: usize,
}

impl TokenSchedule {
    /// Total bytes moved in this step.
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(MemOp::bytes).sum()
    }

    /// Total VPU beats.
    pub fn total_vpu_beats(&self) -> u64 {
        self.ops.iter().map(|o| o.vpu_beats).sum()
    }

    /// Total exposed miscellaneous cycles (coarse mode only).
    pub fn total_exposed_misc(&self) -> u64 {
        self.ops.iter().map(|o| o.exposed_misc).sum()
    }
}

/// Builds the schedule for decoding one token with `ctx` tokens already
/// cached (position `ctx` is being produced; its KV is written back).
///
/// # Panics
///
/// Panics if `ctx >= image.ctx_capacity()`.
pub fn token_schedule(image: &ModelImage, ctx: usize, mode: PipelineMode) -> TokenSchedule {
    assert!(ctx < image.ctx_capacity(), "context beyond image capacity");
    let model = image.model();
    let d = model.d_model;
    let hd = model.head_dim();
    let heads = model.n_heads;
    let mut ops: Vec<MemOp> = Vec::with_capacity(model.n_layers * 12 + 2);

    // Miscellaneous SPU latencies, exposed only in coarse mode.
    let rmsnorm = 2 * d as u64;
    let rope_all = (heads + model.n_kv_heads) as u64 * hd as u64;
    let softmax_all = 3 * (ctx as u64 + 1) * heads as u64;
    let quant_all = 2 * 2 * model.kv_dim() as u64; // K and V, two passes
    let silu = model.d_ff as u64;

    ops.push(MemOp::new(
        "embedding".into(),
        vec![image.embedding_row_burst(0)],
    ));

    for layer in 0..model.n_layers {
        let projs = image.layer_projections(layer);
        let find = |name: &str| {
            projs
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("projection {name} missing"))
        };

        // Pre-attention RMSNorm exposes before Q in the coarse pipeline.
        let mut qkv = MemOp::new(
            format!("L{layer}.qkv"),
            vec![find("wq").burst(), find("wk").burst(), find("wv").burst()],
        );
        if mode == PipelineMode::Coarse {
            qkv.exposed_misc = rmsnorm + rope_all + quant_all;
        }
        ops.push(qkv);

        // KV history reads (the attention DOT and weighted-value sums).
        if ctx > 0 {
            let mut kv_read = MemOp::new(
                format!("L{layer}.kv_read"),
                vec![
                    image.kv_read_burst(layer, false, ctx),
                    image.kv_read_burst(layer, true, ctx),
                ],
            );
            if mode == PipelineMode::Coarse {
                kv_read.exposed_misc = softmax_all;
            }
            ops.push(kv_read);
        } else if mode == PipelineMode::Coarse {
            // Even with no history the current token's scores need softmax.
            if let Some(last) = ops.last_mut() {
                last.exposed_misc += softmax_all;
            }
        }

        // Current token's KV write-back (codes; metadata beats amortized).
        ops.push(MemOp::new(
            format!("L{layer}.kv_write"),
            vec![
                image.kv_write_burst(layer, false, ctx),
                image.kv_write_burst(layer, true, ctx),
            ],
        ));

        ops.push(MemOp::new(format!("L{layer}.wo"), vec![find("wo").burst()]));

        let mut mlp = MemOp::new(
            format!("L{layer}.mlp"),
            vec![
                find("w_gate").burst(),
                find("w_up").burst(),
                find("w_down").burst(),
            ],
        );
        if mode == PipelineMode::Coarse {
            mlp.exposed_misc = rmsnorm + silu;
        }
        ops.push(mlp);
    }

    // Scale-zero FIFO flush: every 16th token writes one beat per stream.
    if (ctx + 1).is_multiple_of(16) {
        let streams = model.n_layers * model.n_kv_heads * 2;
        let window = (ctx as u64 + 1) / 16 - 1;
        let bursts = (0..streams)
            .map(|s| image.kv_meta_write_burst(s, window))
            .collect();
        ops.push(MemOp::new("kv_meta_flush".into(), bursts));
    }

    let mut head = MemOp::new("lm_head".into(), vec![image.lm_head().burst()]);
    if mode == PipelineMode::Coarse {
        head.exposed_misc = rmsnorm;
    }
    ops.push(head);

    TokenSchedule { ops, ctx }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zllm_layout::weight::WeightFormat;
    use zllm_model::ModelConfig;

    fn image() -> ModelImage {
        ModelImage::build(&ModelConfig::test_small(), WeightFormat::kv260(), 32)
            .expect("test model fits")
    }

    #[test]
    fn schedule_covers_all_weights() {
        let image = image();
        let sched = token_schedule(&image, 4, PipelineMode::Fused);
        // Every projection byte appears exactly once.
        let weight_bytes: u64 = image.weight_stream_bytes();
        let sched_weight_bytes: u64 = sched
            .ops
            .iter()
            .filter(|o| {
                o.label.contains(".qkv")
                    || o.label.contains(".wo")
                    || o.label.contains(".mlp")
                    || o.label == "lm_head"
            })
            .map(MemOp::bytes)
            .sum();
        assert_eq!(sched_weight_bytes, weight_bytes);
    }

    #[test]
    fn fused_mode_exposes_nothing() {
        let sched = token_schedule(&image(), 4, PipelineMode::Fused);
        assert_eq!(sched.total_exposed_misc(), 0);
    }

    #[test]
    fn coarse_mode_exposure_grows_with_context() {
        let image = image();
        let short = token_schedule(&image, 2, PipelineMode::Coarse);
        let long = token_schedule(&image, 30, PipelineMode::Coarse);
        assert!(short.total_exposed_misc() > 0);
        assert!(long.total_exposed_misc() > short.total_exposed_misc());
    }

    #[test]
    fn kv_reads_scale_with_context() {
        let image = image();
        let b4 = token_schedule(&image, 4, PipelineMode::Fused).total_bytes();
        let b16 = token_schedule(&image, 16, PipelineMode::Fused).total_bytes();
        assert!(b16 > b4);
    }

    #[test]
    fn zero_context_schedules_no_history_reads() {
        let sched = token_schedule(&image(), 0, PipelineMode::Fused);
        assert!(!sched.ops.iter().any(|o| o.label.contains("kv_read")));
        // But KV write-back still happens.
        assert!(sched.ops.iter().any(|o| o.label.contains("kv_write")));
    }

    #[test]
    fn meta_flush_every_16_tokens() {
        let image = image();
        let s15 = token_schedule(&image, 15, PipelineMode::Fused);
        assert!(s15.ops.iter().any(|o| o.label == "kv_meta_flush"));
        let s14 = token_schedule(&image, 14, PipelineMode::Fused);
        assert!(!s14.ops.iter().any(|o| o.label == "kv_meta_flush"));
    }

    #[test]
    fn writes_do_not_count_as_vpu_beats() {
        let sched = token_schedule(&image(), 4, PipelineMode::Fused);
        let write_op = sched
            .ops
            .iter()
            .find(|o| o.label.contains("kv_write"))
            .expect("has write op");
        assert_eq!(write_op.vpu_beats, 0);
        assert!(write_op.bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "context beyond image capacity")]
    fn capacity_checked() {
        let image = image();
        let _ = token_schedule(&image, 32, PipelineMode::Fused);
    }
}
