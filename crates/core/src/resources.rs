//! Parametric FPGA resource estimation, calibrated to Table I.
//!
//! Vivado reports are unavailable offline, so Table I is *regenerated*
//! from an analytic model: per-primitive costs (an FP16 multiplier, an
//! FP32 tree adder, a datamover channel, each SPU pipeline) scaled by the
//! architecture parameters (lanes, AXI ports). The per-primitive constants
//! are calibrated so the default KV260 configuration reproduces the
//! paper's numbers; changing `lanes` or `ports` then predicts how the
//! design scales — which is what an estimator is for.

use crate::config::AccelConfig;

/// A vector of FPGA resource counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector {
    /// Look-up tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// CARRY8 blocks.
    pub carry: f64,
    /// DSP48/DSP58 slices.
    pub dsp: f64,
    /// 36 Kb block RAMs (halves allowed).
    pub bram: f64,
    /// UltraRAMs.
    pub uram: f64,
}

impl std::ops::Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, r: ResourceVector) -> ResourceVector {
        ResourceVector {
            lut: self.lut + r.lut,
            ff: self.ff + r.ff,
            carry: self.carry + r.carry,
            dsp: self.dsp + r.dsp,
            bram: self.bram + r.bram,
            uram: self.uram + r.uram,
        }
    }
}

impl ResourceVector {
    /// Element-wise utilization against a device budget.
    pub fn utilization(&self, device: &ResourceVector) -> ResourceVector {
        ResourceVector {
            lut: self.lut / device.lut,
            ff: self.ff / device.ff,
            carry: self.carry / device.carry,
            dsp: self.dsp / device.dsp,
            bram: self.bram / device.bram,
            uram: self.uram / device.uram,
        }
    }

    /// The largest utilization component (the binding constraint).
    pub fn max_component(&self) -> f64 {
        [
            self.lut, self.ff, self.carry, self.dsp, self.bram, self.uram,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// The KV260's Kria K26 device budget.
pub fn kv260_device() -> ResourceVector {
    ResourceVector {
        lut: 117_120.0,
        ff: 234_240.0,
        carry: 14_640.0,
        dsp: 1_248.0,
        bram: 144.0,
        uram: 64.0,
    }
}

/// Per-unit breakdown of the accelerator (the rows of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelEstimate {
    /// Memory Control Unit.
    pub mcu: ResourceVector,
    /// Vector Processing Unit.
    pub vpu: ResourceVector,
    /// Scalar Processing Unit.
    pub spu: ResourceVector,
    /// Whole design (units + top-level glue).
    pub total: ResourceVector,
}

/// Estimates the design's resource consumption for a configuration.
///
/// # Example
///
/// ```
/// use zllm_accel::{resources, AccelConfig};
///
/// let est = resources::estimate(&AccelConfig::kv260());
/// let util = est.total.utilization(&resources::kv260_device());
/// assert!(util.lut > 0.6 && util.lut < 0.75); // the paper's 67%
/// ```
pub fn estimate(cfg: &AccelConfig) -> AccelEstimate {
    let ports = cfg.axi.ports as f64;
    let lanes = cfg.lanes as f64;
    let tree_adders = (cfg.lanes.saturating_sub(1)) as f64;

    // MCU: one datamover channel per port + command generator + merge
    // buffers (URAM) sized by the merged bus width.
    let mcu = ResourceVector {
        lut: 3_000.0 * ports + 2_000.0,
        ff: 4_800.0 * ports + 1_800.0,
        carry: 150.0 * ports,
        dsp: 1.0,
        bram: 7.0 * ports + 2.0,
        uram: 1.75 * ports,
    };

    // VPU: per-lane FP16 multiplier + FP32 adder tree + scale/accumulate.
    let vpu = ResourceVector {
        lut: 60.0 * lanes + 205.0 * tree_adders,
        ff: 90.0 * lanes + 255.0 * tree_adders,
        carry: 16.5 * tree_adders,
        dsp: lanes + tree_adders + 11.0,
        bram: 0.0,
        uram: 0.0,
    };

    // SPU: fixed pipelines (RoPE, softmax, RMSNorm, SiLU, quantizer) plus
    // the hidden-state FIFOs (URAM) and serial↔parallel adapters.
    let spu = ResourceVector {
        lut: 29_000.0,
        ff: 40_000.0,
        carry: 1_000.0,
        dsp: 24.0,
        bram: 6.5,
        uram: 3.0,
    };

    // Top-level glue (reset trees, AXI-Lite, debug).
    let glue = ResourceVector {
        lut: 1_000.0,
        ff: 1_000.0,
        carry: 100.0,
        dsp: 0.0,
        bram: 0.0,
        uram: 0.0,
    };

    AccelEstimate {
        mcu,
        vpu,
        spu,
        total: mcu + vpu + spu + glue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, want: f64, tol: f64) -> bool {
        (got - want).abs() <= want * tol
    }

    #[test]
    fn default_estimate_reproduces_table_i_per_unit() {
        let est = estimate(&AccelConfig::kv260());
        // MCU row: 14K LUT, 21K FF, 0.6K CARRY, 1 DSP, 30 BRAM, 7 URAM.
        assert!(
            close(est.mcu.lut, 14_000.0, 0.05),
            "mcu lut {}",
            est.mcu.lut
        );
        assert!(close(est.mcu.ff, 21_000.0, 0.05));
        assert!(close(est.mcu.carry, 600.0, 0.05));
        assert_eq!(est.mcu.dsp, 1.0);
        assert_eq!(est.mcu.bram, 30.0);
        assert_eq!(est.mcu.uram, 7.0);
        // VPU row: 34K LUT, 44K FF, 2.1K CARRY, 266 DSP.
        assert!(
            close(est.vpu.lut, 34_000.0, 0.05),
            "vpu lut {}",
            est.vpu.lut
        );
        assert!(close(est.vpu.ff, 44_000.0, 0.05));
        assert!(close(est.vpu.carry, 2_100.0, 0.05));
        assert!(close(est.vpu.dsp, 266.0, 0.01), "vpu dsp {}", est.vpu.dsp);
        // SPU row: 29K LUT, 40K FF, 24 DSP, 6.5 BRAM, 3 URAM.
        assert_eq!(est.spu.lut, 29_000.0);
        assert_eq!(est.spu.dsp, 24.0);
    }

    #[test]
    fn default_totals_match_table_i() {
        let est = estimate(&AccelConfig::kv260());
        assert!(
            close(est.total.lut, 78_000.0, 0.04),
            "lut {}",
            est.total.lut
        );
        assert!(close(est.total.ff, 105_000.0, 0.04), "ff {}", est.total.ff);
        assert!(
            close(est.total.carry, 3_800.0, 0.05),
            "carry {}",
            est.total.carry
        );
        assert!(close(est.total.dsp, 291.0, 0.02), "dsp {}", est.total.dsp);
        assert!(close(est.total.bram, 36.5, 0.02), "bram {}", est.total.bram);
        assert_eq!(est.total.uram, 10.0);
    }

    #[test]
    fn utilization_matches_papers_percentages() {
        let est = estimate(&AccelConfig::kv260());
        let util = est.total.utilization(&kv260_device());
        assert!((0.62..0.72).contains(&util.lut), "lut util {}", util.lut);
        assert!((0.40..0.50).contains(&util.ff));
        assert!((0.21..0.30).contains(&util.carry));
        assert!((0.20..0.27).contains(&util.dsp));
        assert!((0.22..0.28).contains(&util.bram));
        assert!((0.14..0.18).contains(&util.uram));
        // LUTs are the binding constraint, as the paper emphasises
        // ("up to 70% system LUT utilization").
        assert_eq!(util.max_component(), util.lut);
    }

    #[test]
    fn design_fits_the_device() {
        let est = estimate(&AccelConfig::kv260());
        let util = est.total.utilization(&kv260_device());
        assert!(util.max_component() < 1.0);
    }

    #[test]
    fn doubling_lanes_roughly_doubles_vpu() {
        let mut cfg = AccelConfig::kv260();
        cfg.lanes = 256;
        let big = estimate(&cfg);
        let base = estimate(&AccelConfig::kv260());
        assert!(big.vpu.dsp > base.vpu.dsp * 1.9);
        assert!(big.vpu.lut > base.vpu.lut * 1.9);
        // A 256-lane VPU would overflow the paper's LUT headroom.
        let util = big.total.utilization(&kv260_device());
        assert!(
            util.lut > 0.9,
            "256 lanes should nearly exhaust LUTs: {}",
            util.lut
        );
    }

    #[test]
    fn fewer_ports_shrink_the_mcu() {
        let mut cfg = AccelConfig::kv260();
        cfg.axi.ports = 2;
        let est = estimate(&cfg);
        let base = estimate(&AccelConfig::kv260());
        assert!(est.mcu.lut < base.mcu.lut);
        assert!(est.mcu.bram < base.mcu.bram);
    }
}
