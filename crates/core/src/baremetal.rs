//! The bare-metal runtime, simulated: SD-card image load, region
//! verification and the PS→PL command interface (§VII-A, Fig. 1).
//!
//! The paper's deployment has no operating system: a C program loads the
//! converted model from an SD card into the mapped DDR regions, then
//! drives the accelerator by writing token indices over AXI-Lite. This
//! module reproduces that control plane so end-to-end examples exercise
//! the same boot → load → verify → decode sequence a board bring-up
//! would.

use crate::image::ModelImage;
use zllm_layout::addr_map::Region;

/// SD card model (sequential read throughput).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdCard {
    /// Sustained sequential read in MB/s (decimal).
    pub read_mb_s: f64,
}

impl SdCard {
    /// A typical UHS-I card in the KV260's slot.
    pub const fn uhs_i() -> SdCard {
        SdCard { read_mb_s: 40.0 }
    }
}

impl Default for SdCard {
    fn default() -> SdCard {
        SdCard::uhs_i()
    }
}

/// One verified region in the boot log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedRegion {
    /// Region name.
    pub name: String,
    /// Bytes loaded.
    pub bytes: u64,
    /// Deterministic descriptor checksum (FNV-1a over the placement).
    pub checksum: u64,
}

/// Outcome of the simulated boot.
#[derive(Debug, Clone, PartialEq)]
pub struct BootReport {
    /// Seconds to stream the image from SD into DDR.
    pub load_seconds: f64,
    /// Per-region load records.
    pub regions: Vec<LoadedRegion>,
    /// Console transcript (what the UART would print).
    pub console: Vec<String>,
}

impl BootReport {
    /// Total bytes loaded.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }
}

/// FNV-1a over a region descriptor — the integrity check the loader
/// performs per region (over data in the real system; over the placement
/// here, since weights are synthetic).
fn region_checksum(region: &Region) -> u64 {
    fn mix(hash: &mut u64, bytes: impl IntoIterator<Item = u8>) {
        for b in bytes {
            *hash ^= b as u64;
            *hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    mix(&mut hash, region.name.bytes());
    mix(&mut hash, region.base.to_le_bytes());
    mix(&mut hash, region.size.to_le_bytes());
    hash
}

/// Simulates the bare-metal boot: loads every placed region from SD,
/// verifies it, and prints the Fig. 1 banner.
///
/// # Example
///
/// ```
/// use zllm_accel::baremetal::{boot, SdCard};
/// use zllm_accel::image::ModelImage;
/// use zllm_layout::weight::WeightFormat;
/// use zllm_model::ModelConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let image = ModelImage::build(&ModelConfig::test_small(), WeightFormat::kv260(), 32)?;
/// let report = boot(&image, SdCard::uhs_i());
/// assert!(report.load_seconds > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn boot(image: &ModelImage, sd: SdCard) -> BootReport {
    let mut console = Vec::new();
    console.push("zllm bare-metal loader (no OS; see Fig. 1)".to_owned());
    console.push(format!("model: {}", image.model()));

    let mut regions = Vec::new();
    for region in image.map().regions() {
        regions.push(LoadedRegion {
            name: region.name.clone(),
            bytes: region.size,
            checksum: region_checksum(region),
        });
    }
    let total: u64 = regions.iter().map(|r| r.bytes).sum();
    let load_seconds = total as f64 / (sd.read_mb_s * 1e6);
    console.push(format!(
        "loaded {:.1} MiB from SD in {:.1} s ({} regions verified)",
        total as f64 / (1u64 << 20) as f64,
        load_seconds,
        regions.len()
    ));
    console.push(format!(
        "DDR occupancy {:.1}%; Linux bootable: {}",
        image.occupancy() * 100.0,
        image.linux_bootable()
    ));
    console.push("accelerator ready; waiting for token index on AXI-Lite".to_owned());

    BootReport {
        load_seconds,
        regions,
        console,
    }
}

/// The AXI-Lite command register file the PS writes to start a decode
/// step (Fig. 5A: "PS … sending the token index to the memory command
/// generator via the AXI-Lite bus").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AxiLiteRegs {
    token_index: u32,
    context_len: u32,
    start_count: u64,
}

impl AxiLiteRegs {
    /// Creates the register file in reset state.
    pub fn new() -> AxiLiteRegs {
        AxiLiteRegs::default()
    }

    /// PS write: token index register.
    pub fn write_token_index(&mut self, token: u32) {
        self.token_index = token;
    }

    /// PS write: context length register.
    pub fn write_context_len(&mut self, ctx: u32) {
        self.context_len = ctx;
    }

    /// PS write: start pulse. Returns the command the MCU's generator
    /// receives.
    pub fn pulse_start(&mut self) -> (u32, u32) {
        self.start_count += 1;
        (self.token_index, self.context_len)
    }

    /// Number of decode steps started.
    pub fn start_count(&self) -> u64 {
        self.start_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zllm_layout::weight::WeightFormat;
    use zllm_model::ModelConfig;

    fn image() -> ModelImage {
        ModelImage::build(&ModelConfig::test_small(), WeightFormat::kv260(), 32)
            .expect("test model fits")
    }

    #[test]
    fn boot_loads_every_region() {
        let image = image();
        let report = boot(&image, SdCard::uhs_i());
        assert_eq!(report.regions.len(), image.map().regions().len());
        assert_eq!(report.total_bytes(), image.map().allocated_bytes());
        assert!(report
            .console
            .iter()
            .any(|l| l.contains("accelerator ready")));
    }

    #[test]
    fn load_time_scales_with_card_speed() {
        let image = image();
        let slow = boot(&image, SdCard { read_mb_s: 10.0 });
        let fast = boot(&image, SdCard { read_mb_s: 80.0 });
        assert!((slow.load_seconds / fast.load_seconds - 8.0).abs() < 1e-9);
    }

    #[test]
    fn checksums_are_stable_and_distinct() {
        let image = image();
        let a = boot(&image, SdCard::uhs_i());
        let b = boot(&image, SdCard::uhs_i());
        assert_eq!(a.regions, b.regions);
        // Distinct regions hash differently.
        let mut sums: Vec<u64> = a.regions.iter().map(|r| r.checksum).collect();
        sums.sort_unstable();
        sums.dedup();
        assert_eq!(sums.len(), a.regions.len());
    }

    #[test]
    fn seven_b_load_takes_minutes_not_hours() {
        let image = ModelImage::build(&ModelConfig::llama2_7b(), WeightFormat::kv260(), 1024)
            .expect("fits");
        let report = boot(&image, SdCard::uhs_i());
        // ~4 GB at 40 MB/s ≈ 100 s.
        assert!(
            (60.0..200.0).contains(&report.load_seconds),
            "{}",
            report.load_seconds
        );
    }

    #[test]
    fn axi_lite_command_flow() {
        let mut regs = AxiLiteRegs::new();
        regs.write_token_index(1234);
        regs.write_context_len(17);
        assert_eq!(regs.pulse_start(), (1234, 17));
        regs.write_token_index(99);
        assert_eq!(regs.pulse_start(), (99, 17));
        assert_eq!(regs.start_count(), 2);
    }
}
