//! Top-level accelerator configuration.

use zllm_ddr::config::{AxiConfig, DdrConfig};
use zllm_layout::weight::WeightFormat;

/// How the attention layer is pipelined (§V-A, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PipelineMode {
    /// The paper's fine-grained head-wise fusion: every miscellaneous
    /// operation (RoPE, softmax, quantization, norm square-sums) is hidden
    /// inside the dense weight streaming.
    #[default]
    Fused,
    /// A DFX-style coarse pipeline: projections complete before attention
    /// starts, and miscellaneous operations expose their latency.
    Coarse,
}

impl PipelineMode {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineMode::Fused => "fused",
            PipelineMode::Coarse => "coarse",
        }
    }
}

impl std::fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Accelerator parameters.
///
/// # Example
///
/// ```
/// use zllm_accel::AccelConfig;
///
/// let cfg = AccelConfig::kv260();
/// assert_eq!(cfg.lanes, 128);
/// assert_eq!(cfg.freq_mhz, 300.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfig {
    /// VPU multiplier lanes (one dequantized 512-bit beat per cycle).
    pub lanes: usize,
    /// PL clock frequency in MHz.
    pub freq_mhz: f64,
    /// Weight arrangement format.
    pub format: WeightFormat,
    /// Pipeline mode.
    pub pipeline: PipelineMode,
    /// DDR configuration.
    pub ddr: DdrConfig,
    /// AXI fabric configuration.
    pub axi: AxiConfig,
    /// Outstanding-transaction depth of the MCU's datamover.
    pub mem_lookahead: usize,
}

impl AccelConfig {
    /// The paper's configuration on the KV260.
    pub fn kv260() -> AccelConfig {
        AccelConfig {
            lanes: 128,
            freq_mhz: 300.0,
            format: WeightFormat::kv260(),
            pipeline: PipelineMode::Fused,
            ddr: DdrConfig::ddr4_2400_kv260(),
            axi: AxiConfig::kv260(),
            mem_lookahead: 32,
        }
    }

    /// Same hardware with the coarse pipeline (the ablation baseline).
    pub fn kv260_coarse() -> AccelConfig {
        AccelConfig {
            pipeline: PipelineMode::Coarse,
            ..AccelConfig::kv260()
        }
    }

    /// PL cycles per second.
    pub fn cycles_per_second(&self) -> f64 {
        self.freq_mhz * 1e6
    }

    /// Converts PL cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * 1e3 / self.freq_mhz
    }

    /// Peak bytes the PL can absorb per second (the merged stream).
    pub fn pl_peak_bytes_per_s(&self) -> f64 {
        self.axi.bandwidth_gbps() * 1e9
    }
}

impl Default for AccelConfig {
    fn default() -> AccelConfig {
        AccelConfig::kv260()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv260_defaults() {
        let cfg = AccelConfig::kv260();
        assert_eq!(cfg.lanes, 128);
        assert_eq!(cfg.pipeline, PipelineMode::Fused);
        assert_eq!(AccelConfig::default(), cfg);
        assert_eq!(AccelConfig::kv260_coarse().pipeline, PipelineMode::Coarse);
    }

    #[test]
    fn clock_conversions() {
        let cfg = AccelConfig::kv260();
        assert!((cfg.cycles_to_ns(300) - 1000.0).abs() < 1e-9);
        assert_eq!(cfg.cycles_per_second(), 3e8);
        assert_eq!(cfg.pl_peak_bytes_per_s(), 19.2e9);
    }

    #[test]
    fn mode_names() {
        assert_eq!(PipelineMode::Fused.to_string(), "fused");
        assert_eq!(PipelineMode::Coarse.to_string(), "coarse");
    }
}
