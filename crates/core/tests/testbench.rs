//! A cocotb-style behavioural testbench (§VII-A): drives the on-chip
//! units beat-by-beat in *streaming order* — port split → merge → demux
//! FSM → metadata capture → dequantize → VPU — and checks every cycle's
//! output against an offline golden model.
//!
//! This is deliberately wired differently from the functional decoder:
//! the DUT here consumes one beat per "clock" with no global view of the
//! stream, exactly as the RTL would, so FSM phase bugs, metadata-buffer
//! staleness and lane-ordering mistakes cannot hide.

use zllm_accel::mcu::{merge_streams, split_command, StreamDemux, StreamItem};
use zllm_accel::vpu::Vpu;
use zllm_fp16::F16;
use zllm_layout::weight::{encode, WeightFormat};
use zllm_layout::{Beat, BurstDescriptor};
use zllm_quant::group::{GroupQuantConfig, GroupQuantizer};

/// The streaming DUT: demux FSM + 5-beat metadata buffer + dot engine.
struct StreamingDut {
    demux: StreamDemux,
    vpu: Vpu,
    /// Zero-point beat of the current superblock.
    zeros: Beat,
    /// Scale beats of the current superblock.
    scales: Vec<Beat>,
    /// Group counter within the superblock.
    group: usize,
    /// Running dot-product accumulator.
    acc: f32,
    /// Weights consumed so far.
    consumed: usize,
}

impl StreamingDut {
    fn new(fmt: WeightFormat) -> StreamingDut {
        StreamingDut {
            demux: StreamDemux::new(fmt),
            vpu: Vpu::kv260(),
            zeros: Beat::zeroed(),
            scales: Vec::new(),
            group: 0,
            acc: 0.0,
            consumed: 0,
        }
    }

    /// One clock: accept a beat, update state, maybe emit a partial dot.
    fn clock(&mut self, beat: Beat, x: &[F16], n_weights: usize) {
        match self.demux.next_item() {
            StreamItem::Zeros => {
                self.zeros = beat;
                self.scales.clear();
                self.group = 0;
            }
            StreamItem::Scales => self.scales.push(beat),
            StreamItem::Weights => {
                let g = self.group;
                self.group += 1;
                if self.consumed >= n_weights {
                    return; // padding beats of the final superblock
                }
                let zero = self.zeros.nibble(g);
                let scale = F16::from_bits(self.scales[g / 32].half(g % 32));
                let lo = self.consumed;
                let hi = (lo + 128).min(n_weights);
                let codes: Vec<u8> = (0..hi - lo).map(|i| beat.nibble(i)).collect();
                let w = self.vpu.dequantize_beat(&codes, zero, scale);
                self.acc += self.vpu.dot(&w, &x[lo..hi]);
                self.consumed = hi;
            }
        }
    }
}

fn golden_dot(values: &[f32], x: &[F16]) -> f32 {
    let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(values);
    let vpu = Vpu::kv260();
    let mut acc = 0.0f32;
    for (g, chunk) in q.codes().chunks(128).enumerate() {
        let w = vpu.dequantize_beat(chunk, q.zeros()[g], q.scales()[g]);
        acc += vpu.dot(&w, &x[g * 128..g * 128 + chunk.len()]);
    }
    acc
}

/// Simulated DDR backing store for the port-split replay.
fn memory_image(beats: &[Beat], base: u64) -> impl Fn(u64) -> [u8; 16] + '_ {
    move |addr: u64| {
        let off = (addr - base) as usize;
        let beat = &beats[off / 64];
        let lane = (off % 64) / 16;
        let mut out = [0u8; 16];
        out.copy_from_slice(&beat.as_bytes()[lane * 16..lane * 16 + 16]);
        out
    }
}

#[test]
fn streaming_dut_matches_golden_model() {
    for n_weights in [128usize, 16384, 16384 + 128, 16384 * 3 + 640] {
        let values: Vec<f32> = (0..n_weights)
            .map(|i| ((i * 131) % 509) as f32 / 254.5 - 1.0)
            .collect();
        let x: Vec<F16> = (0..n_weights)
            .map(|i| F16::from_f32(((i * 37) % 101) as f32 / 50.5 - 1.0))
            .collect();

        let fmt = WeightFormat::kv260();
        let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
        let enc = encode(&fmt, &q);

        let mut dut = StreamingDut::new(fmt);
        for beat in enc.beats() {
            dut.clock(*beat, &x, n_weights);
        }
        assert_eq!(dut.consumed, n_weights, "n={n_weights}: stream truncated");
        let golden = golden_dot(&values, &x);
        assert_eq!(
            dut.acc.to_bits(),
            golden.to_bits(),
            "n={n_weights}: streaming result {} differs from golden {}",
            dut.acc,
            golden
        );
    }
}

#[test]
fn port_split_replay_reconstructs_the_stream() {
    // Encode a stream, place it at an address, fetch it through the four
    // split port commands against a simulated memory, merge, and compare
    // against the original beats — the full MCU datapath of Fig. 5A.
    let values: Vec<f32> = (0..16384).map(|i| (i as f32 * 0.031).sin()).collect();
    let q = GroupQuantizer::new(GroupQuantConfig::w4_g128()).quantize(&values);
    let enc = encode(&WeightFormat::kv260(), &q);
    let base = 0x8010_0000u64;
    let read = memory_image(enc.beats(), base);

    let burst = BurstDescriptor::new(base, enc.beats().len() as u32);
    let cmds = split_command(burst);
    let lanes: [Vec<[u8; 16]>; 4] = std::array::from_fn(|p| {
        (0..cmds[p].words)
            .map(|w| read(cmds[p].addr + w * cmds[p].stride))
            .collect()
    });
    let merged = merge_streams(&lanes);
    assert_eq!(merged.len(), enc.beats().len());
    for (got, want) in merged.iter().zip(enc.beats()) {
        assert_eq!(got.as_bytes(), want.as_bytes());
    }
}

#[test]
fn demux_fsm_survives_randomized_stream_lengths() {
    // The FSM must classify exactly n beats of each kind per superblock,
    // for any number of superblocks.
    let fmt = WeightFormat::kv260();
    for supers in [1usize, 2, 7, 31] {
        let mut demux = StreamDemux::new(fmt);
        let items = demux.classify(fmt.superblock_beats() * supers);
        let zeros = items.iter().filter(|i| **i == StreamItem::Zeros).count();
        let scales = items.iter().filter(|i| **i == StreamItem::Scales).count();
        let weights = items.iter().filter(|i| **i == StreamItem::Weights).count();
        assert_eq!(zeros, supers);
        assert_eq!(scales, supers * fmt.scale_beats_per_superblock());
        assert_eq!(weights, supers * fmt.groups_per_superblock());
    }
}
