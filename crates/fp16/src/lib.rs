//! Software model of the FP16 datapath used by the KV260 LLM accelerator.
//!
//! The accelerator in the paper performs all dense computation in IEEE
//! binary16 ("FP16") on FPGA DSP slices, and implements the trigonometric
//! functions needed by RoPE with a 4096-entry quarter-wave sine ROM plus an
//! inverse-frequency look-up table. This crate reproduces that datapath in
//! software with per-operation rounding, so the numerical behaviour of the
//! simulated accelerator matches what the RTL would compute:
//!
//! * [`F16`] — an IEEE 754 binary16 value with round-to-nearest-even
//!   conversions and arithmetic (each operation rounds once, exactly like a
//!   hardware FP16 unit).
//! * [`lut`] — the quarter-wave sine ROM and RoPE inverse-frequency table
//!   (§VI-C of the paper, "RoPE" submodule).
//! * [`vector`] — the 128-lane multiplier array + binary adder tree + wide
//!   accumulator of the Vector Processing Unit (§VI-B).
//! * [`math`] — scalar special functions (exp, sigmoid, SiLU, rsqrt) as the
//!   Scalar Processing Unit evaluates them.
//! * [`fast`] — the process-wide fast-kernel toggle and the 65,536-entry
//!   f16→f32 decode table. Fast kernels are bit-identical to the scalar
//!   path by construction and by differential test; the toggle exists so
//!   those tests can run both implementations against each other.
//!
//! # Example
//!
//! ```
//! use zllm_fp16::F16;
//!
//! let a = F16::from_f32(1.5);
//! let b = F16::from_f32(2.25);
//! assert_eq!((a * b).to_f32(), 3.375);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod f16;
pub mod fast;
pub mod lut;
pub mod math;
pub mod rtl;
pub mod vector;

pub use f16::{ParseF16Error, F16};
pub use fast::{fast_kernels_enabled, set_fast_kernels};
