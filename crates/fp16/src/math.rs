//! Scalar special functions as evaluated by the Scalar Processing Unit.
//!
//! The SPU pipelines (§VI-C) compute `exp` (softmax), the logistic sigmoid
//! and SiLU (MLP gate), and reciprocal square root (RMSNorm). Hardware
//! evaluates these with short pipelines operating on FP16 inputs/outputs;
//! we model each as "evaluate precisely, round the FP16 result once", plus
//! a piecewise-LUT variant of `exp` for studying the accuracy the hardware
//! would get from a table-based pipeline.

use crate::F16;

/// `e^x`, rounded once to FP16. Overflows to +∞ above ~11.09 (where the
/// result exceeds 65504), underflows to 0 below ~−17.33.
///
/// # Example
///
/// ```
/// use zllm_fp16::{F16, math};
///
/// assert_eq!(math::exp(F16::ZERO).to_f32(), 1.0);
/// ```
pub fn exp(x: F16) -> F16 {
    F16::from_f64(x.to_f64().exp())
}

/// The logistic sigmoid `1 / (1 + e^{-x})`, rounded once to FP16.
pub fn sigmoid(x: F16) -> F16 {
    F16::from_f64(1.0 / (1.0 + (-x.to_f64()).exp()))
}

/// SiLU (sigmoid-weighted linear unit) `x · σ(x)` — the MLP gate activation
/// (§VI-C, "SiLU": logic pipeline computing `x / (1 + e^{-x})`).
pub fn silu(x: F16) -> F16 {
    let xv = x.to_f64();
    F16::from_f64(xv / (1.0 + (-xv).exp()))
}

/// Reciprocal square root `1/√x`, rounded once to FP16 (RMSNorm second pass).
pub fn rsqrt(x: F16) -> F16 {
    F16::from_f64(1.0 / x.to_f64().sqrt())
}

/// A table-driven `exp` pipeline as an FPGA would implement it:
/// range-reduce `x = k·ln2 + r` with `|r| ≤ ln2/2`, look `e^r` up in a
/// 2⁹-entry ROM (linear interpolation omitted, matching a single-BRAM-read
/// pipeline), and scale by `2^k` with an exponent adder.
///
/// Exposed to let experiments quantify how much accuracy a LUT pipeline
/// loses versus the correctly rounded [`exp`].
#[derive(Debug, Clone)]
pub struct ExpLut {
    rom: Vec<F16>,
}

impl ExpLut {
    /// ROM depth (entries covering `e^r` for `r ∈ [−ln2/2, ln2/2]`).
    pub const DEPTH: usize = 512;

    /// Builds the ROM contents.
    pub fn new() -> ExpLut {
        let half_ln2 = std::f64::consts::LN_2 / 2.0;
        let rom = (0..Self::DEPTH)
            .map(|k| {
                // Bin centre within [-ln2/2, ln2/2].
                let r = -half_ln2 + std::f64::consts::LN_2 * (k as f64 + 0.5) / Self::DEPTH as f64;
                F16::from_f64(r.exp())
            })
            .collect();
        ExpLut { rom }
    }

    /// Evaluates `e^x` through the LUT pipeline.
    pub fn eval(&self, x: F16) -> F16 {
        let xv = x.to_f64();
        if !xv.is_finite() {
            return if xv.is_nan() {
                F16::NAN
            } else if xv > 0.0 {
                F16::INFINITY
            } else {
                F16::ZERO
            };
        }
        let ln2 = std::f64::consts::LN_2;
        let k = (xv / ln2).round();
        let r = xv - k * ln2; // |r| <= ln2/2 (+ tiny slack from rounding)
        let half_ln2 = ln2 / 2.0;
        let idx = (((r + half_ln2) / ln2) * Self::DEPTH as f64).floor();
        let idx = (idx.max(0.0) as usize).min(Self::DEPTH - 1);
        let mantissa = self.rom[idx].to_f64();
        F16::from_f64(mantissa * k.exp2())
    }

    /// Maximum relative error of the pipeline over a probe grid — a quick
    /// accuracy figure of merit (used by the ablation bench).
    pub fn max_relative_error(&self, lo: f32, hi: f32, steps: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..=steps {
            let x = lo as f64 + (hi - lo) as f64 * i as f64 / steps as f64;
            // The pipeline's input is FP16; measure against exp of the
            // quantised input so the figure isolates the LUT's own error.
            let xq = F16::from_f64(x);
            let want = xq.to_f64().exp();
            if !want.is_finite() || want < f64::from(F16::MIN_SUBNORMAL.to_f32()) {
                continue;
            }
            let got = self.eval(xq).to_f64();
            worst = worst.max(((got - want) / want).abs());
        }
        worst
    }
}

impl Default for ExpLut {
    fn default() -> ExpLut {
        ExpLut::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_reference_points() {
        assert_eq!(exp(F16::ZERO).to_f32(), 1.0);
        assert!((exp(F16::ONE).to_f64() - std::f64::consts::E).abs() < 2e-3);
        assert_eq!(exp(F16::from_f32(12.0)), F16::INFINITY);
        assert_eq!(exp(F16::from_f32(-20.0)).to_f32(), 0.0);
        assert!(exp(F16::NAN).is_nan());
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        for v in [-8.0f32, -2.0, -0.5, 0.0, 0.5, 2.0, 8.0] {
            let s = sigmoid(F16::from_f32(v)).to_f64();
            assert!((0.0..=1.0).contains(&s), "sigmoid({v}) = {s}");
            let s_neg = sigmoid(F16::from_f32(-v)).to_f64();
            assert!((s + s_neg - 1.0).abs() < 2e-3, "symmetry at {v}");
        }
        assert_eq!(sigmoid(F16::ZERO).to_f32(), 0.5);
    }

    #[test]
    fn silu_matches_x_times_sigmoid() {
        for v in [-6.0f32, -1.0, 0.0, 0.7, 3.0] {
            let x = F16::from_f32(v);
            let direct = silu(x).to_f64();
            let composed = (x * sigmoid(x)).to_f64();
            assert!(
                (direct - composed).abs() < 4e-3,
                "at {v}: {direct} vs {composed}"
            );
        }
        // SiLU(0) = 0, SiLU(large) ≈ large.
        assert_eq!(silu(F16::ZERO).to_f32(), 0.0);
        assert!((silu(F16::from_f32(10.0)).to_f32() - 10.0).abs() < 0.01);
    }

    #[test]
    fn rsqrt_reference_points() {
        assert_eq!(rsqrt(F16::ONE).to_f32(), 1.0);
        assert_eq!(rsqrt(F16::from_f32(4.0)).to_f32(), 0.5);
        assert_eq!(rsqrt(F16::ZERO), F16::INFINITY);
        assert!(rsqrt(F16::from_f32(-1.0)).is_nan());
    }

    #[test]
    fn exp_lut_tracks_exact_exp() {
        let lut = ExpLut::new();
        // A single-read 512-entry table gives ~2^-9 relative accuracy,
        // comfortably inside FP16 working precision for softmax.
        let err = lut.max_relative_error(-10.0, 10.0, 2000);
        assert!(err < 3e-3, "LUT exp relative error too large: {err}");
    }

    #[test]
    fn exp_lut_edge_cases() {
        let lut = ExpLut::new();
        assert!(lut.eval(F16::NAN).is_nan());
        assert_eq!(lut.eval(F16::INFINITY), F16::INFINITY);
        assert_eq!(lut.eval(F16::NEG_INFINITY).to_f32(), 0.0);
        assert_eq!(lut.eval(F16::from_f32(20.0)), F16::INFINITY);
        assert_eq!(lut.eval(F16::from_f32(-30.0)).to_f32(), 0.0);
    }
}
